"""Atomic token-transaction context.

Section 3.3: *"A condition is satisfied only if all its primitives succeed
simultaneously.  If a condition is satisfied, the OSM can transition to the
next state along the edge and commit all transactions of the condition
simultaneously.  If all primitives do not succeed, the condition is not
satisfied and all transaction requests are abandoned."*

The two-phase probe/commit protocol is realised by a :class:`Transaction`
object created per edge evaluation.  During the probe phase primitives ask
their managers whether the transaction *would* succeed; grants recorded in
the transaction are tentative.  Managers consult the transaction so that a
condition allocating two tokens from one pool is answered consistently
(the second allocate must not be offered the token tentatively granted to
the first).  Only when every primitive succeeds does the director commit
the transaction, at which point ownership actually changes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Set

from .token import Token


class Transaction:
    """Records the tentative effects of one edge-condition evaluation."""

    __slots__ = ("osm", "grants", "releases", "discards", "inquiries",
                 "_granted_ids", "dirty")

    def __init__(self, osm):
        self.osm = osm
        #: True once any tentative effect is recorded; a clean transaction
        #: can be reused for the next probe without clearing anything
        self.dirty = False
        #: tokens tentatively granted, with the buffer slot they will occupy
        self.grants: List[Tuple[str, Token]] = []
        #: tokens tentatively released (with the buffer slot they leave and
        #: an optional writeback value); slot ``None`` means "unknown, look
        #: it up at commit" (kept for direct non-primitive users)
        self.releases: List[Tuple[Token, Any, Optional[str]]] = []
        #: tokens to be discarded on commit, with their buffer slot
        self.discards: List[Tuple[Token, Optional[str]]] = []
        #: (manager, ident) pairs successfully inquired, for tracing
        self.inquiries: List[Tuple[Any, Any]] = []
        self._granted_ids: Set[int] = set()

    # -- probe-phase bookkeeping -------------------------------------------

    def add_grant(self, slot: str, token: Token) -> None:
        """Record a tentative allocate grant into buffer slot *slot*."""
        self.dirty = True
        self.grants.append((slot, token))
        self._granted_ids.add(id(token))

    def add_release(self, token: Token, value: Any = None,
                    slot: Optional[str] = None) -> None:
        """Record a tentative release (with optional value handed back).

        Callers that know which buffer slot holds *token* pass it so the
        commit phase avoids a reverse scan of the token buffer.
        """
        self.dirty = True
        self.releases.append((token, value, slot))

    def add_discard(self, token: Token, slot: Optional[str] = None) -> None:
        self.dirty = True
        self.discards.append((token, slot))

    def add_inquiry(self, manager, ident) -> None:
        self.dirty = True
        self.inquiries.append((manager, ident))

    def reset(self, osm) -> None:
        """Recycle this transaction for a fresh probe (object pooling:
        most probes fail and their transactions are reused)."""
        self.osm = osm
        self.dirty = False
        # guard each clear: a typical transaction touches one or two of
        # the five containers, and list.clear on a list known to be empty
        # still costs a method call
        if self.grants:
            self.grants.clear()
            self._granted_ids.clear()
        if self.releases:
            self.releases.clear()
        if self.discards:
            self.discards.clear()
        if self.inquiries:
            self.inquiries.clear()

    def is_tentatively_granted(self, token: Token) -> bool:
        """True when *token* was already promised earlier in this probe.

        Pool managers call this so that one condition containing two
        ``Allocate`` primitives against the same pool never receives the
        same physical token twice.
        """
        return bool(self._granted_ids) and id(token) in self._granted_ids

    def tentative_release_value(self, token: Token) -> Optional[Any]:
        for released, value, _ in self.releases:
            if released is token:
                return value
        return None

    def is_tentatively_released(self, token: Token) -> bool:
        if not self.releases:
            return False
        return any(released is token for released, _, _ in self.releases)

    # -- commit phase --------------------------------------------------------

    def commit(self) -> None:
        """Apply all tentative effects atomically.

        Ordering within the commit is: releases and discards first (so the
        token buffer sheds outgoing tokens), then grants.  Managers receive
        their commit callbacks in the same order.  Note that cross-OSM
        ordering is the director's responsibility; a single transaction only
        ever concerns one OSM.
        """
        osm = self.osm
        buffer = osm.token_buffer
        releases = self.releases
        if releases:
            for token, value, slot in releases:
                if slot is None:
                    slot = osm.slot_of(token)
                if slot is not None:
                    del buffer[slot]
                token.holder = None
                token.manager.on_release_commit(osm, token, value)
            releases.clear()
        discards = self.discards
        if discards:
            for token, slot in discards:
                if slot is None:
                    slot = osm.slot_of(token)
                if slot is not None:
                    del buffer[slot]
                token.holder = None
                token.manager.on_discard(osm, token)
            discards.clear()
        grants = self.grants
        if grants:
            for slot, token in grants:
                token.holder = osm
                buffer[slot] = token
                token.manager.on_allocate_commit(osm, token)
            grants.clear()
            self._granted_ids.clear()
        if self.inquiries:
            self.inquiries.clear()
        # a committed transaction leaves itself clean, ready for the next
        # probe without a reset
        self.dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(osm={self.osm.name}, grants={len(self.grants)}, "
            f"releases={len(self.releases)}, discards={len(self.discards)})"
        )


#: recycled transactions (object pooling: most probes fail, and committed
#: transactions are never retained by managers, so both can be reused)
_TXN_POOL: List[Transaction] = []


def acquire_transaction(osm) -> Transaction:
    """A fresh (possibly recycled) transaction bound to *osm*."""
    pool = _TXN_POOL
    if pool:
        txn = pool.pop()
        if txn.dirty:
            txn.reset(osm)
        else:
            txn.osm = osm
        return txn
    return Transaction(osm)


def recycle_transaction(txn: Transaction) -> None:
    """Return *txn* to the pool once its probe failed or its commit ran."""
    _TXN_POOL.append(txn)
