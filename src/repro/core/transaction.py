"""Atomic token-transaction context.

Section 3.3: *"A condition is satisfied only if all its primitives succeed
simultaneously.  If a condition is satisfied, the OSM can transition to the
next state along the edge and commit all transactions of the condition
simultaneously.  If all primitives do not succeed, the condition is not
satisfied and all transaction requests are abandoned."*

The two-phase probe/commit protocol is realised by a :class:`Transaction`
object created per edge evaluation.  During the probe phase primitives ask
their managers whether the transaction *would* succeed; grants recorded in
the transaction are tentative.  Managers consult the transaction so that a
condition allocating two tokens from one pool is answered consistently
(the second allocate must not be offered the token tentatively granted to
the first).  Only when every primitive succeeds does the director commit
the transaction, at which point ownership actually changes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Set

from .token import Token


class Transaction:
    """Records the tentative effects of one edge-condition evaluation."""

    __slots__ = ("osm", "grants", "releases", "discards", "inquiries", "_granted_ids")

    def __init__(self, osm):
        self.osm = osm
        #: tokens tentatively granted, with the buffer slot they will occupy
        self.grants: List[Tuple[str, Token]] = []
        #: tokens tentatively released (with optional writeback value)
        self.releases: List[Tuple[Token, Any]] = []
        #: tokens to be discarded on commit
        self.discards: List[Token] = []
        #: (manager, ident) pairs successfully inquired, for tracing
        self.inquiries: List[Tuple[Any, Any]] = []
        self._granted_ids: Set[int] = set()

    # -- probe-phase bookkeeping -------------------------------------------

    def add_grant(self, slot: str, token: Token) -> None:
        """Record a tentative allocate grant into buffer slot *slot*."""
        self.grants.append((slot, token))
        self._granted_ids.add(id(token))

    def add_release(self, token: Token, value: Any = None) -> None:
        """Record a tentative release (with optional value handed back)."""
        self.releases.append((token, value))

    def add_discard(self, token: Token) -> None:
        self.discards.append(token)

    def add_inquiry(self, manager, ident) -> None:
        self.inquiries.append((manager, ident))

    def reset(self, osm) -> None:
        """Recycle this transaction for a fresh probe (object pooling:
        most probes fail and their transactions are reused)."""
        self.osm = osm
        self.grants.clear()
        self.releases.clear()
        self.discards.clear()
        self.inquiries.clear()
        self._granted_ids.clear()

    def is_tentatively_granted(self, token: Token) -> bool:
        """True when *token* was already promised earlier in this probe.

        Pool managers call this so that one condition containing two
        ``Allocate`` primitives against the same pool never receives the
        same physical token twice.
        """
        return bool(self._granted_ids) and id(token) in self._granted_ids

    def tentative_release_value(self, token: Token) -> Optional[Any]:
        for released, value in self.releases:
            if released is token:
                return value
        return None

    def is_tentatively_released(self, token: Token) -> bool:
        if not self.releases:
            return False
        return any(released is token for released, _ in self.releases)

    # -- commit phase --------------------------------------------------------

    def commit(self) -> None:
        """Apply all tentative effects atomically.

        Ordering within the commit is: releases and discards first (so the
        token buffer sheds outgoing tokens), then grants.  Managers receive
        their commit callbacks in the same order.  Note that cross-OSM
        ordering is the director's responsibility; a single transaction only
        ever concerns one OSM.
        """
        buffer = self.osm.token_buffer
        for token, value in self.releases:
            slot = self.osm.slot_of(token)
            if slot is not None:
                del buffer[slot]
            token.holder = None
            token.manager.on_release_commit(self.osm, token, value)
        for token in self.discards:
            slot = self.osm.slot_of(token)
            if slot is not None:
                del buffer[slot]
            token.holder = None
            token.manager.on_discard(self.osm, token)
        for slot, token in self.grants:
            token.holder = self.osm
            buffer[slot] = token
            token.manager.on_allocate_commit(self.osm, token)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(osm={self.osm.name}, grants={len(self.grants)}, "
            f"releases={len(self.releases)}, discards={len(self.discards)})"
        )
