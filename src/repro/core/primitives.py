"""The token-transaction language: Allocate, Inquire, Release, Discard.

Section 3.3 defines the language as four primitive transactions; an edge's
guard condition is *"the conjunction of a set of primitives"*.  Disjunction
is deliberately absent — it is realised through parallel edges between two
states, which the :class:`~repro.core.osm.MachineSpec` supports via static
edge priorities.

Primitives are written against *slots* of the OSM token buffer and
*identifiers* that may be static values or per-operation callables (see
:func:`repro.core.token.resolve_identifier`).  A callable identifier
returning ``None`` makes the primitive vacuously true: this expresses
"inquire about the second source register, if the operation has one".
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

from .errors import TokenError
from .manager import TokenManager
from .transaction import Transaction, acquire_transaction, recycle_transaction

IdentLike = Union[Any, Callable[[Any], Any]]


class Primitive:
    """Base class of the four transaction primitives."""

    __slots__ = ()

    #: subclasses set this for traces
    kind = "primitive"

    #: set False on a subclass (or instance) to keep the edge compiler
    #: from baking this primitive into a specialised probe — the edge
    #: then runs the interpreted closure and the fallback is counted in
    #: the spec's :class:`~repro.core.edgecompile.CompileStats` and
    #: reported by effectcheck (EFF008).  Use for probes whose behaviour
    #: depends on being dispatched through the interpreter (e.g. probes
    #: that are monkeypatched per instance at run time).
    compilable = True

    def probe(self, osm, txn: Transaction) -> bool:
        """Probe phase: return True when the transaction would succeed,
        recording tentative effects in *txn*.  Must not mutate any manager
        or OSM state — effectcheck's EFF005 pass statically audits custom
        overrides against this contract."""
        raise NotImplementedError

    def __and__(self, other: "Primitive") -> "Condition":
        return Condition([self, other])


class Allocate(Primitive):
    """Request exclusive ownership of a token.

    Parameters
    ----------
    manager:
        The target token manager.
    ident:
        Token identifier, static or ``callable(osm) -> ident``.  ``None``
        (after resolution) makes the primitive vacuously succeed with no
        grant — the operation simply does not need the resource.
    slot:
        Name of the OSM token-buffer slot that will hold the granted token;
        defaults to the manager name.
    """

    __slots__ = ("manager", "ident", "slot", "_dynamic")

    kind = "allocate"

    def __init__(self, manager: TokenManager, ident: IdentLike = None, slot: Optional[str] = None):
        self.manager = manager
        self.ident = ident
        self.slot = slot or manager.name
        #: resolved once at model-build time: dynamic identifiers are
        #: callables evaluated per probe, static ones are used as-is
        self._dynamic = callable(ident)

    def probe(self, osm, txn: Transaction) -> bool:
        if self._dynamic:
            ident = self.ident(osm)
            if ident is None:
                return True  # operation does not need this resource
        else:
            ident = self.ident
        manager = self.manager
        token = manager.allocate(osm, ident, txn)
        if token is None:
            osm.note_blocked_on(manager, ident)
            return False
        # inlined txn.add_grant (hot path)
        txn.dirty = True
        txn.grants.append((self.slot, token))
        txn._granted_ids.add(id(token))
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"Allocate({self.manager.name}, slot={self.slot!r})"


class AllocateMany(Primitive):
    """Allocate a dynamic *list* of tokens from one manager.

    Used when the number of resources depends on the operation (e.g. one
    rename buffer per destination register).  ``idents`` is a callable
    returning a sequence of identifiers; slots are ``f"{slot}{i}"``.
    """

    __slots__ = ("manager", "idents", "slot")

    kind = "allocate"

    def __init__(self, manager: TokenManager, idents: Callable[[Any], Sequence[Any]], slot: str):
        self.manager = manager
        self.idents = idents
        self.slot = slot

    def probe(self, osm, txn: Transaction) -> bool:
        idents = self.idents(osm) or ()
        for i, ident in enumerate(idents):
            token = self.manager.allocate(osm, ident, txn)
            if token is None:
                osm.note_blocked_on(self.manager, ident)
                return False
            txn.add_grant(f"{self.slot}{i}", token)
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"AllocateMany({self.manager.name}, slot={self.slot!r})"


class Inquire(Primitive):
    """Non-exclusive availability check (e.g. read a register value).

    ``ident`` may resolve to ``None`` (vacuous), a single identifier, or a
    sequence of identifiers all of which must be available.
    """

    __slots__ = ("manager", "ident", "_dynamic")

    kind = "inquire"

    def __init__(self, manager: TokenManager, ident: IdentLike = None):
        self.manager = manager
        self.ident = ident
        self._dynamic = callable(ident)

    def probe(self, osm, txn: Transaction) -> bool:
        if self._dynamic:
            ident = self.ident(osm)
            if ident is None:
                return True  # operation does not use this resource
        else:
            ident = self.ident
        manager = self.manager
        if not isinstance(ident, (list, tuple)):
            # scalar fast path: the overwhelmingly common shape
            if not manager.inquire(osm, ident, txn):
                osm.note_blocked_on(manager, ident)
                return False
            # inlined txn.add_inquiry (hot path)
            txn.dirty = True
            txn.inquiries.append((manager, ident))
            manager.n_inquiries += 1
            return True
        for single in ident:
            if not manager.inquire(osm, single, txn):
                osm.note_blocked_on(manager, single)
                return False
            txn.add_inquiry(manager, single)
            manager.n_inquiries += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"Inquire({self.manager.name})"


class Release(Primitive):
    """Return a held token to its manager, optionally with a value.

    Parameters
    ----------
    slot:
        Token-buffer slot naming the token to release.  If the slot is
        empty the primitive vacuously succeeds (the operation never held
        the optional resource).
    value:
        ``callable(osm) -> value`` handed to the manager on commit (e.g.
        the computed result accompanying a register-update release).
    """

    __slots__ = ("slot", "value")

    kind = "release"

    def __init__(self, slot: str, value: Optional[Callable[[Any], Any]] = None):
        self.slot = slot
        self.value = value

    def probe(self, osm, txn: Transaction) -> bool:
        slot = self.slot
        token = osm.token_buffer.get(slot)
        if token is None:
            return True
        if txn.releases and txn.is_tentatively_released(token):
            raise TokenError(f"double release of slot {slot!r} in one condition")
        if not token.manager.release(osm, token, txn):
            osm.note_blocked_on(token.manager, slot)
            return False
        value = self.value(osm) if self.value is not None else None
        # inlined txn.add_release (hot path)
        txn.dirty = True
        txn.releases.append((token, value, slot))
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"Release({self.slot!r})"


class ReleaseMany(Primitive):
    """Release every buffer slot matching a prefix (dynamic counterpart of
    :class:`AllocateMany`)."""

    __slots__ = ("prefix", "value")

    kind = "release"

    def __init__(self, prefix: str, value: Optional[Callable[[Any, Any], Any]] = None):
        self.prefix = prefix
        self.value = value

    def probe(self, osm, txn: Transaction) -> bool:
        prefix = self.prefix
        for slot, token in list(osm.token_buffer.items()):
            if not slot.startswith(prefix):
                continue
            if not token.manager.release(osm, token, txn):
                osm.note_blocked_on(token.manager, slot)
                return False
            value = self.value(osm, token) if self.value is not None else None
            txn.add_release(token, value, slot)
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"ReleaseMany({self.prefix!r})"


class Discard(Primitive):
    """Unconditionally drop tokens; always succeeds (Section 3.3).

    With no arguments, discards the entire token buffer (the reset case:
    *"Discard can be used when the OSM is reset"*).  With ``slot``,
    discards only that slot if held.
    """

    __slots__ = ("slot",)

    kind = "discard"

    def __init__(self, slot: Optional[str] = None):
        self.slot = slot

    def probe(self, osm, txn: Transaction) -> bool:
        if self.slot is not None:
            token = osm.token_buffer.get(self.slot)
            if token is not None:
                txn.add_discard(token, self.slot)
            return True
        for slot, token in osm.token_buffer.items():
            txn.add_discard(token, slot)
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"Discard({self.slot!r})" if self.slot else "Discard(*)"


class Guard(Primitive):
    """A pure predicate over the OSM (no token traffic).

    Not one of the paper's four primitives: the paper folds such checks
    into manager inquiry decisions ("token managers may check the identity
    of the requesting OSMs").  Exposing the predicate directly keeps model
    code readable without changing expressiveness — a ``Guard`` is exactly
    an ``Inquire`` against an anonymous manager whose policy is the
    predicate.
    """

    __slots__ = ("predicate", "label")

    kind = "guard"

    def __init__(self, predicate: Callable[[Any], bool], label: str = "guard"):
        self.predicate = predicate
        self.label = label

    def probe(self, osm, txn: Transaction) -> bool:
        return bool(self.predicate(osm))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Guard({self.label!r})"


class Condition:
    """Conjunction of primitives guarding one edge.

    Evaluation is all-or-nothing: :meth:`probe` builds a transaction whose
    effects are committed only if every primitive succeeds, per Section 3.3.
    """

    __slots__ = ("primitives",)

    def __init__(self, primitives: Iterable[Primitive] = ()):
        self.primitives: List[Primitive] = list(primitives)

    def __and__(self, other) -> "Condition":
        if isinstance(other, Condition):
            return Condition(self.primitives + other.primitives)
        return Condition(self.primitives + [other])

    def probe(self, osm) -> Optional[Transaction]:
        """Return a ready-to-commit transaction, or ``None`` if unsatisfied."""
        txn = acquire_transaction(osm)
        for primitive in self.primitives:
            if not primitive.probe(osm, txn):
                recycle_transaction(txn)  # failed probes recycle their transaction
                return None
        return txn

    def __repr__(self) -> str:  # pragma: no cover
        return " & ".join(repr(p) for p in self.primitives) or "Always()"


#: the trivially-true condition (edges that always may fire)
ALWAYS = Condition(())
