"""Edge-condition compiler: specialise guard conditions at model-build time.

The paper's C++ implementation owes much of its speed to the fact that
*"the token machinery compiles away"* — each edge's conjunction of
primitives becomes straight-line code.  This module reproduces that step
for the Python interpreter: :func:`compile_condition` turns an edge's
:class:`~repro.core.primitives.Condition` into one generated function

    probe(osm, txn) -> bool

whose body is the concatenation of the primitives' probe bodies with all
per-primitive constants (managers, bound manager methods, slot names,
static identifiers, predicates) baked in as parameter defaults, so the
hot loop pays local-variable loads instead of attribute chains and
per-primitive dispatch.

Semantics are identical to calling ``p.probe(osm, txn)`` for each
primitive in declaration order — each emitter below mirrors the
corresponding ``probe`` body in :mod:`repro.core.primitives` exactly.
Primitives other than the five core types (``AllocateMany``,
``ReleaseMany``, user subclasses) are embedded as a generic
``p.probe(osm, txn)`` call, so custom primitives keep working unchanged.
Any failure during code generation falls back to an interpreted closure.

Fallbacks are no longer silent: :func:`compile_edge_probe` (the entry
point used by :meth:`repro.core.osm.State.probe_plan`) records every
compile outcome in the owning spec's :class:`CompileStats` — which edge
compiled, which fell back, and why ("policy" when the edge was pinned to
the interpreter by :attr:`~repro.core.osm.Edge.compile_mode`, "opt-out"
when a primitive sets ``compilable = False``, or the codegen error).
``repro bench`` surfaces the counts in its JSON row and the effectcheck
analyzer (:mod:`repro.analysis.effects`) reports each fallback edge as
an EFF008 diagnostic.  The effect analyzer's per-model compilability
report feeds back in through :func:`apply_compilability`, which pins
provably-unsafe edges to the interpreted path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import TokenError
from .primitives import (Allocate, AllocateMany, Condition, Discard, Guard,
                         Inquire, Release, ReleaseMany)


class CompileStats:
    """Per-spec record of edge-probe compile outcomes.

    One entry per edge qualname; re-recording an edge (plans are rebuilt
    after spec edits or :func:`apply_compilability`) replaces its entry,
    so the counts never double-count a rebuilt plan.
    """

    def __init__(self):
        #: edge qualname -> None (compiled) or fallback reason string
        self.edges: Dict[str, Optional[str]] = {}
        #: state name -> None (fused) or fallback reason string; recorded
        #: by :func:`repro.core.fuse.fuse_spec`
        self.states: Dict[str, Optional[str]] = {}

    def record(self, edge, reason: Optional[str] = None) -> None:
        self.edges[edge.qualname] = reason

    def record_state(self, state, reason: Optional[str] = None) -> None:
        self.states[state.name] = reason

    @property
    def compiled(self) -> int:
        return sum(1 for reason in self.edges.values() if reason is None)

    @property
    def fallbacks(self) -> int:
        return sum(1 for reason in self.edges.values() if reason is not None)

    @property
    def fused_states(self) -> int:
        return sum(1 for reason in self.states.values() if reason is None)

    @property
    def fused_fallback_states(self) -> int:
        return sum(1 for reason in self.states.values() if reason is not None)

    @property
    def fallback_states(self) -> List[Tuple[str, str]]:
        """``(state name, reason)`` for every unfused state."""
        return sorted(
            (name, reason)
            for name, reason in self.states.items()
            if reason is not None
        )

    @property
    def fallback_edges(self) -> List[Tuple[str, str]]:
        """``(edge qualname, reason)`` for every interpreted fallback."""
        return sorted(
            (qualname, reason)
            for qualname, reason in self.edges.items()
            if reason is not None
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "compiled": self.compiled,
            "fallbacks": self.fallbacks,
            "fallback_edges": [
                {"edge": qualname, "reason": reason}
                for qualname, reason in self.fallback_edges
            ],
            "fused_states": self.fused_states,
            "fused_fallback_states": self.fused_fallback_states,
            "fallback_states": [
                {"state": name, "reason": reason}
                for name, reason in self.fallback_states
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"CompileStats(compiled={self.compiled}, fallbacks={self.fallbacks})"


def _always_true(osm, txn) -> bool:
    return True


def _interpreted(primitives) -> Callable:
    """Fallback probe: call each primitive in order (seed semantics)."""
    def probe(osm, txn, _primitives=tuple(primitives)):
        for p in _primitives:
            if not p.probe(osm, txn):
                return False
        return True
    return probe


def compile_condition(condition: Condition) -> Callable:
    """A ``probe(osm, txn) -> bool`` function specialised for *condition*."""
    probe, _reason = _compile_or_fallback(condition)
    return probe


def compile_edge_probe(edge, spec=None) -> Callable:
    """Compile *edge*'s guard condition, recording the outcome.

    The spec-aware entry point used by ``State.probe_plan``: behaves like
    :func:`compile_condition` but honours ``edge.compile_mode`` (edges
    pinned to ``"interpreted"`` — e.g. by :func:`apply_compilability` —
    skip codegen entirely) and records the outcome in
    ``spec.compile_stats`` so fallbacks are countable and reportable.
    """
    if getattr(edge, "compile_mode", "auto") == "interpreted":
        probe, reason = _interpreted_probe(edge.condition), "policy"
    else:
        probe, reason = _compile_or_fallback(edge.condition)
    if spec is not None:
        spec.compile_stats.record(edge, reason)
    return probe


def apply_compilability(spec, report) -> int:
    """Pin the edges/states *report* deems unsafe to the fallback paths.

    *report* is a :class:`repro.analysis.effects.CompilabilityReport`
    (duck-typed: anything with an ``unsafe_edges`` iterable of edge
    qualnames).  Matching edges get ``compile_mode = "interpreted"`` and
    their source states' probe plans are invalidated so the next
    ``probe_plan()`` rebuilds — and re-records — them.

    A report may additionally carry ``uncertified_states`` — an iterable
    of ``(state name, reason)`` pairs, as produced by transcheck
    (:mod:`repro.analysis.certify`) translation validation.  Each named
    state loses its fused stepper and is re-recorded in
    ``spec.compile_stats`` as a fused fallback with a ``certify:``
    reason, so the demotion is visible in the bench JSON row.

    Returns the number of edges pinned plus states demoted.
    """
    unsafe = set(getattr(report, "unsafe_edges", ()) or ())
    stats = getattr(spec, "compile_stats", None)
    changed = 0
    for edge in spec.edges:
        if edge.qualname in unsafe and edge.compile_mode != "interpreted":
            edge.compile_mode = "interpreted"
            edge.src._plan = None
            edge.src._fused = None  # fused steppers bake the plan too
            if stats is not None and stats.states.get(edge.src.name, "") is None:
                # the state was counted as fused; keep the census honest
                stats.record_state(edge.src, "policy: unsafe edge pinned")
            changed += 1
    for name, reason in getattr(report, "uncertified_states", ()) or ():
        state = spec.states.get(name)
        if state is None:
            continue
        state._fused = None
        if stats is not None:
            stats.record_state(state, f"certify: {reason}")
        changed += 1
    return changed


def _interpreted_probe(condition: Condition) -> Callable:
    if not condition.primitives:
        return _always_true
    return _interpreted(condition.primitives)


def _compile_or_fallback(condition: Condition):
    """``(probe, fallback_reason)``; *fallback_reason* is None when the
    condition compiled to straight-line code."""
    primitives = condition.primitives
    if not primitives:
        return _always_true, None
    for p in primitives:
        if not getattr(p, "compilable", True):
            return _interpreted(primitives), f"opt-out: {p!r}"
    try:
        return _compile(primitives), None
    except Exception as exc:  # codegen failure: interpreted closure, counted
        return _interpreted(primitives), f"codegen: {type(exc).__name__}: {exc}"


def _compile(primitives) -> Callable:
    env: Dict[str, Any] = {"TokenError": TokenError}
    params: List[str] = []

    def bind(name: str, obj: Any) -> str:
        env[name] = obj
        params.append(name)
        return name

    body: List[str] = []
    emit = body.append
    # True once an earlier primitive may already have appended to
    # txn.releases — only then can a Release hit the double-release check
    may_have_releases = False

    for i, p in enumerate(primitives):
        t = type(p)
        if t is Allocate:
            alloc = bind(f"a{i}_alloc", p.manager.allocate)
            mgr = bind(f"a{i}_mgr", p.manager)
            slot = bind(f"a{i}_slot", p.slot)
            ident = bind(f"a{i}_ident", p.ident)
            if p._dynamic:
                emit(f"ident = {ident}(osm)")
                emit("if ident is not None:")
                pre = "    "
            else:
                emit(f"ident = {ident}")
                pre = ""
            emit(pre + f"token = {alloc}(osm, ident, txn)")
            emit(pre + "if token is None:")
            emit(pre + f"    osm.blocked_on = ({mgr}, ident)")
            emit(pre + "    return False")
            emit(pre + "txn.dirty = True")
            emit(pre + f"txn.grants.append(({slot}, token))")
            emit(pre + "txn._granted_ids.add(id(token))")
        elif t is Inquire:
            inq = bind(f"i{i}_inq", p.manager.inquire)
            mgr = bind(f"i{i}_mgr", p.manager)
            if p._dynamic:
                ident = bind(f"i{i}_ident", p.ident)
                emit(f"ident = {ident}(osm)")
                emit("if ident is not None:")
                emit("    if not isinstance(ident, (list, tuple)):")
                emit(f"        if not {inq}(osm, ident, txn):")
                emit(f"            osm.blocked_on = ({mgr}, ident)")
                emit("            return False")
                emit("        txn.dirty = True")
                emit(f"        txn.inquiries.append(({mgr}, ident))")
                emit(f"        {mgr}.n_inquiries += 1")
                emit("    else:")
                emit("        for single in ident:")
                emit(f"            if not {inq}(osm, single, txn):")
                emit(f"                osm.blocked_on = ({mgr}, single)")
                emit("                return False")
                emit("            txn.dirty = True")
                emit(f"            txn.inquiries.append(({mgr}, single))")
                emit(f"            {mgr}.n_inquiries += 1")
            elif isinstance(p.ident, (list, tuple)):
                idents = bind(f"i{i}_idents", tuple(p.ident))
                emit(f"for single in {idents}:")
                emit(f"    if not {inq}(osm, single, txn):")
                emit(f"        osm.blocked_on = ({mgr}, single)")
                emit("        return False")
                emit("    txn.dirty = True")
                emit(f"    txn.inquiries.append(({mgr}, single))")
                emit(f"    {mgr}.n_inquiries += 1")
            else:
                ident = bind(f"i{i}_ident", p.ident)
                emit(f"if not {inq}(osm, {ident}, txn):")
                emit(f"    osm.blocked_on = ({mgr}, {ident})")
                emit("    return False")
                emit("txn.dirty = True")
                emit(f"txn.inquiries.append(({mgr}, {ident}))")
                emit(f"{mgr}.n_inquiries += 1")
        elif t is Release:
            slot = bind(f"r{i}_slot", p.slot)
            emit(f"token = osm.token_buffer.get({slot})")
            emit("if token is not None:")
            if may_have_releases:
                emit("    if txn.releases and txn.is_tentatively_released(token):")
                emit("        raise TokenError(")
                emit(f"            'double release of slot %r in one condition' % ({slot},))")
            emit("    mgr = token.manager")
            emit("    if not mgr.release(osm, token, txn):")
            emit(f"        osm.blocked_on = (mgr, {slot})")
            emit("        return False")
            emit("    txn.dirty = True")
            if p.value is not None:
                value = bind(f"r{i}_value", p.value)
                emit(f"    txn.releases.append((token, {value}(osm), {slot}))")
            else:
                emit(f"    txn.releases.append((token, None, {slot}))")
            may_have_releases = True
        elif t is Discard:
            if p.slot is not None:
                slot = bind(f"d{i}_slot", p.slot)
                emit(f"token = osm.token_buffer.get({slot})")
                emit("if token is not None:")
                emit("    txn.dirty = True")
                emit(f"    txn.discards.append((token, {slot}))")
            else:
                emit("for _slot, _token in osm.token_buffer.items():")
                emit("    txn.dirty = True")
                emit("    txn.discards.append((_token, _slot))")
        elif t is AllocateMany:
            alloc = bind(f"m{i}_alloc", p.manager.allocate)
            mgr = bind(f"m{i}_mgr", p.manager)
            slot = bind(f"m{i}_slot", p.slot)
            idents = bind(f"m{i}_idents", p.idents)
            emit(f"for _i, ident in enumerate({idents}(osm) or ()):")
            emit(f"    token = {alloc}(osm, ident, txn)")
            emit("    if token is None:")
            emit(f"        osm.blocked_on = ({mgr}, ident)")
            emit("        return False")
            emit("    txn.dirty = True")
            emit(f"    txn.grants.append(({slot} + str(_i), token))")
            emit("    txn._granted_ids.add(id(token))")
        elif t is ReleaseMany:
            prefix = bind(f"r{i}_prefix", p.prefix)
            if p.value is not None:
                value = bind(f"r{i}_value", p.value)
                value_expr = f"{value}(osm, _token)"
            else:
                value_expr = "None"
            emit("for _slot, _token in list(osm.token_buffer.items()):")
            emit(f"    if _slot.startswith({prefix}):")
            emit("        if not _token.manager.release(osm, _token, txn):")
            emit("            osm.blocked_on = (_token.manager, _slot)")
            emit("            return False")
            emit("        txn.dirty = True")
            emit(f"        txn.releases.append((_token, {value_expr}, _slot))")
            may_have_releases = True
        elif t is Guard:
            pred = bind(f"g{i}_pred", p.predicate)
            emit(f"if not {pred}(osm):")
            emit("    return False")
        else:  # AllocateMany, ReleaseMany, custom primitives
            probe = bind(f"p{i}_probe", p.probe)
            emit(f"if not {probe}(osm, txn):")
            emit("    return False")
            may_have_releases = True  # the generic probe may append releases
    emit("return True")

    sig = "".join(f", {n}={n}" for n in params)
    src = f"def _probe(osm, txn{sig}):\n" + "\n".join("    " + ln for ln in body)
    exec(compile(src, "<edge-condition>", "exec"), env)
    probe = env["_probe"]
    probe.__probe_source__ = src  # transcheck introspection (TRV003)
    return probe
