"""Edge-condition compiler: specialise guard conditions at model-build time.

The paper's C++ implementation owes much of its speed to the fact that
*"the token machinery compiles away"* — each edge's conjunction of
primitives becomes straight-line code.  This module reproduces that step
for the Python interpreter: :func:`compile_condition` turns an edge's
:class:`~repro.core.primitives.Condition` into one generated function

    probe(osm, txn) -> bool

whose body is the concatenation of the primitives' probe bodies with all
per-primitive constants (managers, bound manager methods, slot names,
static identifiers, predicates) baked in as parameter defaults, so the
hot loop pays local-variable loads instead of attribute chains and
per-primitive dispatch.

Semantics are identical to calling ``p.probe(osm, txn)`` for each
primitive in declaration order — each emitter below mirrors the
corresponding ``probe`` body in :mod:`repro.core.primitives` exactly.
Primitives other than the five core types (``AllocateMany``,
``ReleaseMany``, user subclasses) are embedded as a generic
``p.probe(osm, txn)`` call, so custom primitives keep working unchanged.
Any failure during code generation falls back to an interpreted closure.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from .errors import TokenError
from .primitives import (Allocate, AllocateMany, Condition, Discard, Guard,
                         Inquire, Release, ReleaseMany)


def _always_true(osm, txn) -> bool:
    return True


def _interpreted(primitives) -> Callable:
    """Fallback probe: call each primitive in order (seed semantics)."""
    def probe(osm, txn, _primitives=tuple(primitives)):
        for p in _primitives:
            if not p.probe(osm, txn):
                return False
        return True
    return probe


def compile_condition(condition: Condition) -> Callable:
    """A ``probe(osm, txn) -> bool`` function specialised for *condition*."""
    primitives = condition.primitives
    if not primitives:
        return _always_true
    try:
        return _compile(primitives)
    except Exception:  # pragma: no cover - codegen is total for core types
        return _interpreted(primitives)


def _compile(primitives) -> Callable:
    env: Dict[str, Any] = {"TokenError": TokenError}
    params: List[str] = []

    def bind(name: str, obj: Any) -> str:
        env[name] = obj
        params.append(name)
        return name

    body: List[str] = []
    emit = body.append
    # True once an earlier primitive may already have appended to
    # txn.releases — only then can a Release hit the double-release check
    may_have_releases = False

    for i, p in enumerate(primitives):
        t = type(p)
        if t is Allocate:
            alloc = bind(f"a{i}_alloc", p.manager.allocate)
            mgr = bind(f"a{i}_mgr", p.manager)
            slot = bind(f"a{i}_slot", p.slot)
            ident = bind(f"a{i}_ident", p.ident)
            if p._dynamic:
                emit(f"ident = {ident}(osm)")
                emit("if ident is not None:")
                pre = "    "
            else:
                emit(f"ident = {ident}")
                pre = ""
            emit(pre + f"token = {alloc}(osm, ident, txn)")
            emit(pre + "if token is None:")
            emit(pre + f"    osm.blocked_on = ({mgr}, ident)")
            emit(pre + "    return False")
            emit(pre + "txn.dirty = True")
            emit(pre + f"txn.grants.append(({slot}, token))")
            emit(pre + "txn._granted_ids.add(id(token))")
        elif t is Inquire:
            inq = bind(f"i{i}_inq", p.manager.inquire)
            mgr = bind(f"i{i}_mgr", p.manager)
            if p._dynamic:
                ident = bind(f"i{i}_ident", p.ident)
                emit(f"ident = {ident}(osm)")
                emit("if ident is not None:")
                emit("    if not isinstance(ident, (list, tuple)):")
                emit(f"        if not {inq}(osm, ident, txn):")
                emit(f"            osm.blocked_on = ({mgr}, ident)")
                emit("            return False")
                emit("        txn.dirty = True")
                emit(f"        txn.inquiries.append(({mgr}, ident))")
                emit(f"        {mgr}.n_inquiries += 1")
                emit("    else:")
                emit("        for single in ident:")
                emit(f"            if not {inq}(osm, single, txn):")
                emit(f"                osm.blocked_on = ({mgr}, single)")
                emit("                return False")
                emit("            txn.dirty = True")
                emit(f"            txn.inquiries.append(({mgr}, single))")
                emit(f"            {mgr}.n_inquiries += 1")
            elif isinstance(p.ident, (list, tuple)):
                idents = bind(f"i{i}_idents", tuple(p.ident))
                emit(f"for single in {idents}:")
                emit(f"    if not {inq}(osm, single, txn):")
                emit(f"        osm.blocked_on = ({mgr}, single)")
                emit("        return False")
                emit("    txn.dirty = True")
                emit(f"    txn.inquiries.append(({mgr}, single))")
                emit(f"    {mgr}.n_inquiries += 1")
            else:
                ident = bind(f"i{i}_ident", p.ident)
                emit(f"if not {inq}(osm, {ident}, txn):")
                emit(f"    osm.blocked_on = ({mgr}, {ident})")
                emit("    return False")
                emit("txn.dirty = True")
                emit(f"txn.inquiries.append(({mgr}, {ident}))")
                emit(f"{mgr}.n_inquiries += 1")
        elif t is Release:
            slot = bind(f"r{i}_slot", p.slot)
            emit(f"token = osm.token_buffer.get({slot})")
            emit("if token is not None:")
            if may_have_releases:
                emit("    if txn.releases and txn.is_tentatively_released(token):")
                emit("        raise TokenError(")
                emit(f"            'double release of slot %r in one condition' % ({slot},))")
            emit("    mgr = token.manager")
            emit("    if not mgr.release(osm, token, txn):")
            emit(f"        osm.blocked_on = (mgr, {slot})")
            emit("        return False")
            emit("    txn.dirty = True")
            if p.value is not None:
                value = bind(f"r{i}_value", p.value)
                emit(f"    txn.releases.append((token, {value}(osm), {slot}))")
            else:
                emit(f"    txn.releases.append((token, None, {slot}))")
            may_have_releases = True
        elif t is Discard:
            if p.slot is not None:
                slot = bind(f"d{i}_slot", p.slot)
                emit(f"token = osm.token_buffer.get({slot})")
                emit("if token is not None:")
                emit("    txn.dirty = True")
                emit(f"    txn.discards.append((token, {slot}))")
            else:
                emit("for _slot, _token in osm.token_buffer.items():")
                emit("    txn.dirty = True")
                emit("    txn.discards.append((_token, _slot))")
        elif t is AllocateMany:
            alloc = bind(f"m{i}_alloc", p.manager.allocate)
            mgr = bind(f"m{i}_mgr", p.manager)
            slot = bind(f"m{i}_slot", p.slot)
            idents = bind(f"m{i}_idents", p.idents)
            emit(f"for _i, ident in enumerate({idents}(osm) or ()):")
            emit(f"    token = {alloc}(osm, ident, txn)")
            emit("    if token is None:")
            emit(f"        osm.blocked_on = ({mgr}, ident)")
            emit("        return False")
            emit("    txn.dirty = True")
            emit(f"    txn.grants.append(({slot} + str(_i), token))")
            emit("    txn._granted_ids.add(id(token))")
        elif t is ReleaseMany:
            prefix = bind(f"r{i}_prefix", p.prefix)
            if p.value is not None:
                value = bind(f"r{i}_value", p.value)
                value_expr = f"{value}(osm, _token)"
            else:
                value_expr = "None"
            emit("for _slot, _token in list(osm.token_buffer.items()):")
            emit(f"    if _slot.startswith({prefix}):")
            emit("        if not _token.manager.release(osm, _token, txn):")
            emit("            osm.blocked_on = (_token.manager, _slot)")
            emit("            return False")
            emit("        txn.dirty = True")
            emit(f"        txn.releases.append((_token, {value_expr}, _slot))")
            may_have_releases = True
        elif t is Guard:
            pred = bind(f"g{i}_pred", p.predicate)
            emit(f"if not {pred}(osm):")
            emit("    return False")
        else:  # AllocateMany, ReleaseMany, custom primitives
            probe = bind(f"p{i}_probe", p.probe)
            emit(f"if not {probe}(osm, txn):")
            emit("    return False")
            may_have_releases = True  # the generic probe may append releases
    emit("return True")

    sig = "".join(f", {n}={n}" for n in params)
    src = f"def _probe(osm, txn{sig}):\n" + "\n".join("    " + ln for ln in body)
    exec(compile(src, "<edge-condition>", "exec"), env)
    return env["_probe"]
