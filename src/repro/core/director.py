"""The director: deterministic scheduling of OSM state transitions.

Section 3.4: at each control step the state machines voluntarily send
token-transaction requests and change state if possible; the director
ranks the OSMs, serves transaction requests in rank order, and guarantees
deterministic behaviour.  The scheduling algorithm implemented by
:meth:`Director.control_step` is the paper's Figure 3, with the
case-study optimisation (Section 5) available as ``restart=False``: when
no senior operation ever depends on a junior one for resources — true of
both the StrongARM and PPC-750 models — the outer-loop restart is
unnecessary and a single rank-ordered pass suffices.
"""

from __future__ import annotations

import functools

from bisect import bisect_left
from typing import Any, Callable, Iterable, List, Optional, Tuple

from .errors import SchedulingDeadlockError
from .osm import Edge, OperationStateMachine
from .stats import SimulationStats


def rank_stable_in_flight(fn):
    """Mark a rank-key function whose value for an OSM can change *only*
    when that OSM leaves or returns to the initial state.

    All built-in rankings qualify: they depend only on ``age``,
    ``operation`` identity/``seq``, ``tag`` and ``serial``, all of which
    are assigned exactly at the I boundaries.  The director exploits the
    mark to keep its cached rank order across control steps, re-sorting
    only after a transition that touches state I (see
    ``Director.control_step``).  Custom rank keys without the mark are
    conservatively re-sorted after every control step that committed any
    transition.

    Plain functions are marked in place and returned unchanged, so their
    metadata is untouched.  Callables that refuse attribute assignment
    (bound methods, some partials) are wrapped instead; the wrapper
    carries the mark and ``functools.wraps`` metadata (``__name__``,
    ``__qualname__``, ``__wrapped__``) so diagnostics, tracebacks and
    the effect analyzer all name — and can introspect — the real
    rank function.

    The honesty of the mark is statically audited by effectcheck's
    EFF002 pass (``repro effects``): a marked function that reads
    anything outside the I-boundary-stable inputs is reported as an
    error, because the director's cached rank order would silently go
    stale.
    """
    try:
        fn.rank_changes_only_at_initial = True
        return fn
    except AttributeError:
        @functools.wraps(fn)
        def wrapper(osm):
            return fn(osm)

        wrapper.rank_changes_only_at_initial = True
        return wrapper


@rank_stable_in_flight
def age_rank(osm: OperationStateMachine) -> Tuple[int, int, int]:
    """Default ranking: by age (order of last leaving state I).

    Operations in flight rank above idle OSMs; among in-flight operations,
    the one that left I earliest (smallest age stamp) ranks first; the OSM
    serial number breaks remaining ties deterministically (several OSMs may
    leave I in the same control step of a superscalar model).
    """
    if osm.age < 0:
        return (1, 0, osm.serial)
    return (0, osm.age, osm.serial)


#: departure-monotone: an OSM leaving the initial state always receives a
#: rank key strictly greater than every in-flight OSM's current key (ages
#: are stamped from the monotone clock; sequence numbers from the monotone
#: fetch counter — within one step, departures happen in scan order).  The
#: director exploits the mark to maintain its cached rank order
#: *incrementally* across I-boundary transitions (append departures,
#: bisect re-inserted idles) instead of re-sorting the pool; a runtime
#: strict-monotonicity check degrades to a full re-sort whenever a
#: particular step violates the property (e.g. restart-mode fetches out of
#: serial order), so the mark is an optimisation hint, never a soundness
#: assumption.
age_rank.rank_departure_monotone = True


@rank_stable_in_flight
def operation_seq_rank(osm: OperationStateMachine) -> Tuple[int, int]:
    """Rank strictly by operation fetch-sequence number.

    Age-based ranking cannot order two OSMs that left state I in the same
    control step (a superscalar model fetches several per cycle; the
    serial tie-break is pool-allocation order, not program order).  When
    the model stamps a monotonically increasing ``seq`` on each operation
    payload, ranking by it restores exact program order.
    """
    operation = osm.operation
    if operation is None:
        return (1, osm.serial)
    return (0, operation.seq)


operation_seq_rank.rank_departure_monotone = True


class Director:
    """Coordinates the OSMs of one model (paper Fig. 3).

    Parameters
    ----------
    rank_key:
        ``callable(osm) -> sortable``; smaller ranks first (higher
        priority).  Defaults to :func:`age_rank`.
    restart:
        When True (the general algorithm of Fig. 3), a committed
        transition restarts the outer loop from the highest-ranked
        remaining OSM, so a senior OSM blocked on a resource freed by a
        junior one still transitions this control step.  When False (the
        case-study optimisation), the director performs a single
        rank-ordered pass.
    deadlock_check:
        When True, a control step in which no OSM transitions triggers a
        cyclic-wait analysis over the managers' holder information; a
        cycle raises :class:`SchedulingDeadlockError` (the paper's
        director "will abort in such cases").  Stalls with acyclic waits
        (e.g. everyone behind one cache miss) are normal and do not abort.
    """

    def __init__(
        self,
        rank_key: Optional[Callable[[OperationStateMachine], Any]] = None,
        restart: bool = True,
        deadlock_check: bool = True,
        stats: Optional[SimulationStats] = None,
    ):
        self.rank_key = rank_key or age_rank
        self.restart = restart
        self.deadlock_check = deadlock_check
        self.osms: List[OperationStateMachine] = []
        self.stats = stats or SimulationStats()
        self.clock = 0
        #: optional trace sink: callable(clock, osm, edge)
        self.trace: Optional[Callable[[int, OperationStateMachine, Edge], None]] = None
        #: observable-state version: bumped on every committed transition
        #: and by hardware modules on condition-relevant changes (hold
        #: expiry, redirect/latch application, budget refresh).  An OSM
        #: whose last probe failed at the current version cannot succeed
        #: now, so the director skips it — this makes stalled cycles cheap
        #: without changing any scheduling decision.
        self.version = 0
        #: when True, run the original reference scheduling loop instead of
        #: the cached-order fast path.  Both produce identical schedules;
        #: the reference loop is kept selectable so tests can assert the
        #: equivalence on full workloads.
        self.reference = False
        # -- fast-path caches (see control_step) --
        #: rank order carried across control steps; rebuilt only when dirty
        self._order: List[OperationStateMachine] = []
        self._rank_dirty = True
        self._order_key: Optional[Callable[[OperationStateMachine], Any]] = None
        self._rank_stable = False
        #: per-step stamp replacing the reference loop's pending.pop():
        #: an OSM stamped with the current step id already transitioned
        #: this control step and is not scheduled again
        self._step_id = 0
        # -- incremental rank-order maintenance (see _rebuild_order) --
        #: the rank key is both in-flight-stable and departure-monotone
        self._inc_eligible = False
        #: the current _order is maintained as _flight + _idle partitions
        self._inc_active = False
        self._flight: List[OperationStateMachine] = []
        self._flight_keys: List[Any] = []
        self._idle: List[OperationStateMachine] = []
        self._idle_keys: List[Any] = []
        #: every OSM shares one (spec, tag) class: the idle pool is
        #: homogeneous, enabling the two-phase specialised scan
        self._uniform_pool = False
        #: _order lags behind _flight/_idle (split scan defers the concat)
        self._order_stale = False
        #: observable version at which the whole idle pool was stamped
        #: blocked; the idle phase is skipped wholesale while it matches
        self._idle_fail_version = -1
        #: observable version already cleared by the cyclic-wait analysis
        self._deadlock_version = -1

    def add(self, *osms: OperationStateMachine) -> None:
        """Register OSMs with the director."""
        self.osms.extend(osms)
        self._rank_dirty = True
        for osm in osms:
            osm._fail_version = -1
            osm._stepped = -1
            # Analysis breadcrumb: record which rank key schedules this
            # spec's OSMs so `repro effects` can audit its
            # rank_stable_in_flight mark (EFF002) without a live model.
            osm.spec.analysis_rank_key = self.rank_key

    def notify(self) -> None:
        """Signal an observable hardware-state change (wakes blocked OSMs)."""
        self.version += 1

    # -- the scheduling algorithm (paper Fig. 3) ----------------------------

    def control_step(self) -> int:
        """Run one control step; returns the number of transitions.

        Dispatches to the cached-order fast path, or to the original
        reference loop when :attr:`reference` is set.  The two are
        schedule-equivalent: the fast path replaces the per-step full sort
        with a rank order carried across steps (re-sorted only when a
        transition may have changed a rank — for rank keys marked
        :func:`rank_stable_in_flight`, only transitions leaving or entering
        the initial state qualify), replaces list surgery with per-step
        stamps, and stamps trailing idle peers with the observable version
        so the scan reruns only after something observable changes.  Every
        probe happens against the same OSM in the same order as the
        reference loop would produce.
        """
        if self.reference:
            return self._control_step_reference()
        rank_key = self.rank_key
        if rank_key is not self._order_key:
            self._resolve_order_key(rank_key)
        if self._rank_dirty:
            self._rebuild_order(rank_key)
        if self._inc_active and self._uniform_pool and not self.restart:
            return self._control_step_split(rank_key)
        if self._order_stale:
            self._order = self._flight + self._idle
            self._order_stale = False
        order = self._order
        rank_stable = self._rank_stable
        # I-boundary transitions collected for incremental order
        # maintenance; None = this step falls back to dirty + full re-sort
        boundary = [] if self._inc_active else None
        self._step_id += 1
        step_id = self._step_id
        stats = self.stats
        trace = self.trace
        clock = self.clock
        restart = self.restart
        version = self.version  # mirrored to self.version on every change
        transitions = 0
        probed = 0
        i = 0
        n = len(order)
        while i < n:
            osm = order[i]
            if osm._stepped == step_id or osm._fail_version == version:
                i += 1
                continue
            # Dispatch point: fused whole-state stepper when the current
            # state carries one (see repro.core.fuse), per-edge probe plan
            # otherwise.  Both produce the identical Edge-or-None outcome.
            stepper = osm.current._fused
            if stepper is not None:
                edge = stepper(osm, clock)
            else:
                edge = osm.try_transition(clock)
            probed += 1
            if version != self.version:
                # an edge action called notify(): pick up the new version
                version = self.version
            if edge is not None:
                version += 1
                self.version = version
                transitions += 1
                if trace is not None:
                    trace(clock, osm, edge)
                # Stamped: not scheduled again this control step (the
                # reference loop pops it from the pending list).
                osm._stepped = step_id
                if not rank_stable or edge.src.is_initial or edge.dst.is_initial:
                    # The committed transition may have changed this OSM's
                    # rank (operation assigned/cleared, age stamped).
                    src_init = edge.src.is_initial
                    if boundary is None or not rank_stable:
                        # re-sort before the next control step
                        self._rank_dirty = True
                    elif src_init != edge.dst.is_initial:
                        # membership change: applied incrementally after
                        # the scan (an I self-loop changes neither
                        # membership nor, for a stable key, the rank)
                        boundary.append((osm, src_init))
                if restart:
                    i = 0
                else:
                    i += 1
            else:
                osm._fail_version = version
                if osm.operation is None:
                    # Idle OSMs of the same machine and thread share the
                    # fetch edge: once one fails, its not-yet-transitioned
                    # trailing peers fail identically this step.  The
                    # stamps persist, so the scan reruns only after the
                    # observable version changes.
                    spec = osm.spec
                    tag = osm.tag
                    for j in range(i + 1, n):
                        trailing = order[j]
                        if (
                            trailing._stepped != step_id
                            and trailing.operation is None
                            and trailing.tag == tag
                            and trailing.spec is spec
                        ):
                            trailing._fail_version = version
                i += 1
        if boundary:
            self._apply_boundary(boundary, rank_key)
        stats.control_step_passes += probed
        stats.transitions += transitions
        if transitions == 0 and probed and self.deadlock_check:
            if self._deadlock_version != version:
                # The wait graph is a pure function of the observable
                # version: holders change only with transitions and
                # blocked_on only with probes, both of which this version
                # has already seen.  One clean analysis clears all
                # subsequent stalled steps at the same version.
                self._abort_on_cyclic_wait()
                self._deadlock_version = version
        self.clock += 1
        return transitions

    def _control_step_split(self, rank_key) -> int:
        """Single-pass scan specialised for the common configuration:
        restart off, incremental rank partition active, homogeneous OSM
        pool (one spec/tag class).  Schedule-identical to the generic
        scan — the partition invariant makes the rank order literally
        ``flight + idle``, so walking the two lists in sequence visits
        the same OSMs in the same order — but the flight phase drops the
        per-item step stamp (single pass: no OSM is visited twice) and
        the idle phase exploits homogeneity: after one idle OSM refuses
        to fetch, the rest are stamped wholesale, and the entire phase
        is skipped while the observable version still matches
        ``_idle_fail_version``."""
        stats = self.stats
        trace = self.trace
        clock = self.clock
        version = self.version
        transitions = 0
        probed = 0
        boundary = None
        for osm in self._flight:
            if osm._fail_version == version:
                continue
            stepper = osm.current._fused
            if stepper is not None:
                edge = stepper(osm, clock)
            else:
                edge = osm.try_transition(clock)
            probed += 1
            # reload: an edge action may have called notify()
            version = self.version
            if edge is not None:
                version += 1
                self.version = version
                transitions += 1
                if trace is not None:
                    trace(clock, osm, edge)
                if edge.dst.is_initial:
                    # flight OSMs are not in I, so only a retirement or a
                    # reset changes membership
                    if boundary is None:
                        boundary = [(osm, False)]
                    else:
                        boundary.append((osm, False))
            else:
                osm._fail_version = version
        idle = self._idle
        if idle and self._idle_fail_version != version:
            phase_version = version
            i = 0
            n = len(idle)
            while i < n:
                osm = idle[i]
                i += 1
                if osm._fail_version == version:
                    continue
                stepper = osm.current._fused
                if stepper is not None:
                    edge = stepper(osm, clock)
                else:
                    edge = osm.try_transition(clock)
                probed += 1
                version = self.version
                if edge is not None:
                    version += 1
                    self.version = version
                    transitions += 1
                    if trace is not None:
                        trace(clock, osm, edge)
                    if not edge.dst.is_initial:
                        # an I self-loop (e.g. a doomed fetch discard)
                        # changes neither membership nor rank
                        if boundary is None:
                            boundary = [(osm, True)]
                        else:
                            boundary.append((osm, True))
                else:
                    # Homogeneous idle pool: every remaining idle OSM
                    # shares this fetch edge and fails identically.
                    osm._fail_version = version
                    for j in range(i, n):
                        idle[j]._fail_version = version
                    break
            if version == phase_version:
                # No idle transition: every idle OSM now carries the
                # current version stamp, so the next steps can skip the
                # phase outright until something observable changes.
                self._idle_fail_version = version
        if boundary is not None:
            self._apply_boundary(boundary, rank_key)
        stats.control_step_passes += probed
        stats.transitions += transitions
        if transitions == 0 and probed and self.deadlock_check:
            if self._deadlock_version != version:
                self._abort_on_cyclic_wait()
                self._deadlock_version = version
        self.clock += 1
        return transitions

    # -- rank-order cache maintenance ---------------------------------------

    def prepare(self) -> None:
        """Prime the scheduling caches before a hot loop.

        Optional — :meth:`control_step` builds everything lazily — but
        calling it once up front keeps the first simulated cycles off the
        rebuild path.  A no-op in reference mode (the reference loop owns
        no caches; tests assert ``_order`` stays empty there).
        """
        if self.reference:
            return
        rank_key = self.rank_key
        if rank_key is not self._order_key:
            self._resolve_order_key(rank_key)
        if self._rank_dirty:
            self._rebuild_order(rank_key)

    def _resolve_order_key(self, rank_key) -> None:
        """Adopt a (possibly replaced) rank function: order invalid."""
        self._order_key = rank_key
        self._rank_stable = getattr(
            rank_key, "rank_changes_only_at_initial", False)
        self._inc_eligible = self._rank_stable and getattr(
            rank_key, "rank_departure_monotone", False)
        self._inc_active = False
        self._rank_dirty = True

    def _rebuild_order(self, rank_key) -> None:
        """Full re-sort — the reference semantics: self.osms in
        registration order under a stable sort, so ties break identically.

        When the rank key is marked in-flight-stable *and*
        departure-monotone, the sorted order is additionally partitioned
        into the in-flight prefix and the idle suffix so subsequent
        I-boundary transitions can maintain it incrementally (append
        departures at the flight tail, bisect returning OSMs into the
        idle suffix) instead of re-sorting.  The partition is verified
        here — in-flight strictly before idle, all keys strictly
        increasing — and any violation simply leaves the incremental
        mode off for this rebuild; scheduling is unaffected either way.
        """
        order = sorted(self.osms, key=rank_key)
        self._order = order
        self._order_stale = False
        self._rank_dirty = False
        self._inc_active = False
        if not self._inc_eligible or not order:
            return
        flight = [osm for osm in order if not osm.in_initial]
        if order[:len(flight)] != flight:
            return  # an idle OSM ranks inside the in-flight prefix
        idle = order[len(flight):]
        keys = [rank_key(osm) for osm in order]
        if any(a >= b for a, b in zip(keys, keys[1:])):
            return  # duplicate/unordered keys: bisect maintenance unsound
        self._flight = flight
        self._flight_keys = keys[:len(flight)]
        self._idle = idle
        self._idle_keys = keys[len(flight):]
        self._inc_active = True
        first = order[0]
        self._uniform_pool = all(
            osm.spec is first.spec and osm.tag == first.tag for osm in order
        )

    def _apply_boundary(self, boundary, rank_key) -> None:
        """Incrementally apply this step's I-boundary membership changes
        to the cached rank order.  Any surprise — non-monotone departure
        key, duplicate idle key, an OSM missing from its expected
        partition — degrades to a full re-sort next step."""
        flight = self._flight
        flight_keys = self._flight_keys
        idle = self._idle
        idle_keys = self._idle_keys
        for osm, departed in boundary:
            key = rank_key(osm)
            try:
                if departed:
                    if flight_keys and key <= flight_keys[-1]:
                        self._degrade_inc()
                        return
                    # the departing OSM is almost always the head of the
                    # idle partition (lowest rank fetches first)
                    j = 0 if idle and idle[0] is osm else idle.index(osm)
                    del idle[j]
                    del idle_keys[j]
                    flight.append(osm)
                    flight_keys.append(key)
                else:
                    # retirement in program order: usually the oldest
                    j = 0 if flight and flight[0] is osm else flight.index(osm)
                    del flight[j]
                    del flight_keys[j]
                    pos = bisect_left(idle_keys, key)
                    if pos < len(idle_keys) and idle_keys[pos] == key:
                        self._degrade_inc()
                        return
                    idle.insert(pos, osm)
                    idle_keys.insert(pos, key)
            except ValueError:  # not in the expected partition
                self._degrade_inc()
                return
        # The concatenated order is only needed by the generic scan; the
        # split scan walks the partitions directly, so defer the concat.
        self._order_stale = True

    def _degrade_inc(self) -> None:
        self._inc_active = False
        self._rank_dirty = True

    def _control_step_reference(self) -> int:
        """The original scheduling loop (paper Fig. 3, directly transcribed).

        Kept as the executable specification of the fast path: re-sorts the
        whole OSM pool every step and scans trailing idle peers.  Tests run
        full workloads under both loops and assert identical cycle counts,
        stats and traces.
        """
        # updateOSMList(): rank at the beginning of each control step.
        pending = sorted(self.osms, key=self.rank_key)
        transitions = 0
        probed = 0
        i = 0
        trace = self.trace
        while i < len(pending):
            osm = pending[i]
            if osm._fail_version == self.version:
                # Nothing observable changed since this OSM last failed;
                # the probe outcome is guaranteed identical.
                i += 1
                continue
            edge = osm.try_transition(self.clock)
            probed += 1
            self.stats.control_step_passes += 1
            if edge is not None:
                self.version += 1
                transitions += 1
                if trace is not None:
                    trace(self.clock, osm, edge)
                # "When an OSM changes its state ... it is removed from the
                # list so that it will not be scheduled again in the current
                # control step."
                pending.pop(i)
                if self.restart:
                    # "we restart the outer-loop from the remaining OSM with
                    # the highest rank."
                    i = 0
                # else: continue at the same index, which now addresses the
                # next OSM in rank order (single-pass mode).
            else:
                osm._fail_version = self.version
                if osm.operation is None:
                    # Idle OSMs of the same machine and thread are ranked
                    # last and share the fetch edge: once one fails, its
                    # peers fail identically this step.
                    for trailing in pending[i + 1:]:
                        if (
                            trailing.operation is None
                            and trailing.tag == osm.tag
                            and trailing.spec is osm.spec
                        ):
                            trailing._fail_version = self.version
                i += 1
        self.stats.transitions += transitions
        if transitions == 0 and probed and self.deadlock_check:
            self._abort_on_cyclic_wait()
        self.clock += 1
        return transitions

    # -- deadlock analysis ---------------------------------------------------

    def _abort_on_cyclic_wait(self) -> None:
        """Detect a cyclic resource dependency among blocked OSMs.

        Builds the wait-for graph: OSM -> holder(s) of the resource it is
        blocked on, using each manager's ``holders_of`` knowledge where
        available (falling back to token holders).  A cycle means the model
        is faulty (a cyclic pipeline) and the director aborts.
        """
        waits = {}
        for osm in self.osms:
            if osm.blocked_on is None:
                continue
            manager, ident = osm.blocked_on
            if (
                not hasattr(manager, "holders_of")
                and isinstance(ident, str)
                and ident in osm.token_buffer
            ):
                # A refused release of a token the OSM itself holds is a
                # hardware hold (variable latency), not a wait on another
                # OSM — unless the manager says otherwise via holders_of.
                continue
            holders = _holders(manager, ident)
            targets = {id(h) for h in holders if h is not None and h is not osm}
            if targets:
                waits[id(osm)] = (osm, targets)
        # DFS cycle detection over the wait-for graph.
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {key: WHITE for key in waits}
        for start in list(waits):
            if colour[start] != WHITE:
                continue
            stack = [(start, iter(waits[start][1]))]
            colour[start] = GREY
            path = [start]
            while stack:
                node, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in waits:
                        continue
                    if colour[succ] == GREY:
                        cycle_start = path.index(succ)
                        cycle = [waits[k][0] for k in path[cycle_start:]]
                        raise SchedulingDeadlockError(self.clock, cycle)
                    if colour[succ] == WHITE:
                        colour[succ] = GREY
                        stack.append((succ, iter(waits[succ][1])))
                        path.append(succ)
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
                    path.pop()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Director({len(self.osms)} OSMs, clock={self.clock})"


def _holders(manager, ident) -> Iterable[Any]:
    """Best-effort answer to "who holds the resource *ident* of *manager*"."""
    holders_of = getattr(manager, "holders_of", None)
    if holders_of is not None:
        return holders_of(ident)
    token = getattr(manager, "token", None)
    if token is not None:  # SlotManager-like
        return [token.holder]
    tokens = getattr(manager, "tokens", None)
    if tokens is not None:  # PoolManager-like: waiting for any free entry
        return [t.holder for t in tokens]
    pending_writer = getattr(manager, "pending_writer", None)
    if pending_writer is not None and isinstance(ident, int):
        return [pending_writer(ident)]
    return []
