"""Whole-model specialization: fused per-state step functions.

:mod:`repro.core.edgecompile` compiles one probe per edge; the remaining
per-transition overhead is the dispatch *around* those probes — the
plan walk in :meth:`~repro.core.osm.OperationStateMachine.try_transition`,
the transaction object bookkeeping, the virtual calls into the token
managers, and the post-commit state update.  This module removes all of
it: :func:`fuse_spec` generates **one Python function per state** whose
body is the concatenation of every outgoing edge's guard evaluation,
commit effects and OSM bookkeeping as straight-line code with all
constants (managers, tokens, slots, predicates, destination states)
pre-bound as parameter defaults.  The director's fast path dispatches
through ``State._fused`` when present and falls back to
``try_transition`` otherwise, so fused and unfused states interleave
freely within one model.

Two generation modes per edge, decided statically:

* **native** — every primitive's manager has a registered
  :class:`ManagerEmitter` for its *exact* class, so the manager probe
  *and* commit-hook bodies are inlined; the transaction object is
  replaced by local tentative-grant/release tracking.  Release/
  ReleaseMany never block native mode: tokens carry their manager, so
  the generic virtual ``release``/``on_release_commit`` calls are exact
  (with an inline fast path when every candidate manager shares one
  emitter-backed class).
* **transaction** — anything else (custom managers, custom primitives,
  edges pinned ``compile_mode="interpreted"``) probes through the
  per-edge compiled probe against ``osm._txn`` and commits via
  :meth:`Transaction.commit`, exactly like ``try_transition``.

**Soundness.** A fused stepper must be bit-identical to
``try_transition`` over the same edge plan: every manager call, counter
increment, ``blocked_on`` note, commit-hook effect and error message is
mirrored from :mod:`repro.core.primitives` / :mod:`repro.core.manager` /
:meth:`repro.core.transaction.Transaction.commit`.  Which states may be
fused at all is decided by the effectcheck compilability report
(:mod:`repro.analysis.effects`): :func:`enable_fusion` certifies the
spec, pins unsafe edges via
:func:`~repro.core.edgecompile.apply_compilability`, and fuses only the
certified states.  Everything else — and any codegen failure — falls
back to the per-edge plan, with the outcome recorded per state in the
spec's :class:`~repro.core.edgecompile.CompileStats`.

Steppers bake per-edge constants (actions, ``on_enter`` hooks,
destination states); ``MachineSpec.edge()`` and ``apply_compilability``
invalidate ``State._fused`` so mutated specs regenerate lazily via
:func:`fuse_spec` — mutating edge callables in place after fusion is
outside the contract, exactly as for compiled probes.
"""

from __future__ import annotations

import ast
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

from .edgecompile import apply_compilability, compile_edge_probe
from .errors import TokenError
from .manager import PoolManager, RegisterFileManager, ResetManager, SlotManager
from .primitives import (Allocate, AllocateMany, Discard, Guard, Inquire,
                         Release, ReleaseMany)


# --------------------------------------------------------------------------
# codegen scaffolding


class _Writer:
    """Indentation-tracking line collector for one generated function."""

    def __init__(self):
        self.lines: List[str] = []
        self.indent = 1

    def __call__(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    @contextmanager
    def block(self, header: str):
        self(header)
        self.indent += 1
        try:
            yield
        finally:
            self.indent -= 1


class _Codegen:
    """Constant binding (edgecompile's params-as-defaults idiom) plus a
    shared counter for fresh local names."""

    def __init__(self):
        self.env: Dict[str, Any] = {"TokenError": TokenError}
        self.params: List[str] = []
        self._bound: Dict[int, str] = {}
        self._n = 0

    def bind(self, hint: str, obj: Any) -> str:
        name = self._bound.get(id(obj))
        if name is not None and self.env[name] is obj:
            return name
        self._n += 1
        name = f"{hint}_{self._n}"
        self.env[name] = obj
        self.params.append(name)
        self._bound[id(obj)] = name
        return name

    def fresh(self, hint: str) -> str:
        self._n += 1
        return f"{hint}{self._n}"


def _is_literal(value: Any) -> bool:
    if value is None or isinstance(value, (bool, int, str)):
        return True
    if isinstance(value, tuple):
        return all(_is_literal(v) for v in value)
    return False


def _expr(g: _Codegen, hint: str, value: Any) -> str:
    """A source expression for *value*: a literal when repr round-trips,
    else a bound parameter."""
    if _is_literal(value):
        return repr(value)
    return g.bind(hint, value)


#: AST node types an inline ident expression may contain — pure data
#: navigation only; anything that can call, comprehend or assign is out
_INLINE_SAFE_NODES = (
    ast.Expression, ast.Name, ast.Attribute, ast.Subscript, ast.Constant,
    ast.Tuple, ast.List, ast.Index, ast.Slice, ast.Load,
)


def safe_inline_expr(expr: Any) -> bool:
    """True when *expr* is a syntactically side-effect-free expression.

    The ``__fuse_inline__`` contract only admits pure data navigation
    over ``osm`` — names, attribute chains, subscripts and literal
    containers.  Calls, comprehensions, lambdas, boolean operators and
    anything else that could hide effects (or diverge from the tagged
    function's footprint) are rejected; the fuser then demotes the site
    to a dynamic call instead of pasting the expression (and transcheck
    rule TRV002 reports the broken declaration)."""
    if not isinstance(expr, str):
        return False
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError:
        return False
    return all(isinstance(node, _INLINE_SAFE_NODES) for node in ast.walk(tree))


def _ident_call(g: _Codegen, hint: str, fn: Any) -> str:
    """A source expression for ``fn(osm)``.

    A dynamic-ident callable may declare ``__fuse_inline__`` — a
    side-effect-free source expression over ``osm`` that evaluates to the
    same value as calling it — and the stepper then pays zero call
    overhead for the hazard-identifier hot path.  The declaration is a
    contract: the expression and the function body must stay in lockstep
    (the A/B determinism tests compare the fused and reference paths, and
    transcheck's TRV002 compares the footprints statically).  A tagged
    expression that fails :func:`safe_inline_expr` is not pasted — the
    site demotes to the dynamic call."""
    inline = getattr(fn, "__fuse_inline__", None)
    if inline is not None and safe_inline_expr(inline):
        return f"({inline})"
    return f"{g.bind(hint, fn)}(osm)"


def _avoid_cond(tok_expr: str, scalars: List[str], lists: List[str]) -> str:
    """Extra availability terms excluding tokens tentatively granted
    earlier in the same condition (mirrors ``txn._granted_ids``)."""
    parts = [f"{tok_expr} is not {s}" for s in scalars]
    parts += [f"{tok_expr} not in {l}" for l in lists]
    return " and ".join(parts)


class _Grant:
    __slots__ = ("mgr", "emitter", "var", "slot", "many", "conditional")

    def __init__(self, mgr, emitter, var, slot, many, conditional):
        self.mgr = mgr
        self.emitter = emitter
        self.var = var          # token var (scalar) or list var (many)
        self.slot = slot        # slot source expression
        self.many = many
        self.conditional = conditional  # dynamic ident: may be vacuous


class _Rel:
    __slots__ = ("many", "var", "mgr_var", "slot", "value_var", "dispatch")

    def __init__(self, many, var, mgr_var, slot, value_var, dispatch):
        self.many = many
        self.var = var          # token var (scalar) or (slot, tok, mgr, val) list var
        self.mgr_var = mgr_var
        self.slot = slot
        self.value_var = value_var  # None -> commit with literal None
        self.dispatch = dispatch    # (class, emitter) fast path or None


class _EdgeCtx:
    """Tentative-effect tracking for one native edge (the txn replacement)."""

    def __init__(self):
        self.grants: List[_Grant] = []
        self.releases: List[_Rel] = []
        self.discards: List[Tuple[Optional[str], str]] = []  # (slot expr or None, var)
        self.may_have_releases = False

    def avoid(self, mgr) -> Tuple[List[str], List[str]]:
        scalars = [gr.var for gr in self.grants if gr.mgr is mgr and not gr.many]
        lists = [gr.var for gr in self.grants if gr.mgr is mgr and gr.many]
        return scalars, lists

    def grant_count_expr(self) -> str:
        terms = []
        for gr in self.grants:
            if gr.many:
                terms.append(f"len({gr.var})")
            elif gr.conditional:
                terms.append(f"({gr.var} is not None)")
            else:
                terms.append("1")
        return " + ".join(terms) if terms else "0"


# --------------------------------------------------------------------------
# manager emitters


class ManagerEmitter:
    """Native code emitters for one *exact* token-manager class.

    Each method mirrors the corresponding TMI method or commit hook in
    :mod:`repro.core.manager` exactly — identical checks, counter
    updates and error messages.  Registration is by exact type (no MRO
    walk): a manager subclass gets native code only when it registers
    its own emitter via :func:`register_native_emitter`, otherwise its
    edges run in transaction mode.

    ``allocate``/``inquire``/``allocate_commit`` are always invoked with
    the concrete manager instance (the primitive names it), so they may
    bind its internals as constants.  ``release_check``/
    ``release_commit`` are invoked with a *runtime* manager expression
    (``token.manager``) guarded by an exact-type test, so they must use
    attribute access.
    """

    can_allocate = False
    can_inquire = False
    can_release = False

    def allocate(self, g: _Codegen, w: _Writer, mgr, out: str, ident_expr: str,
                 avoid: Tuple[List[str], List[str]]) -> None:
        """Assign the grantable token (or None) to local *out*."""
        raise NotImplementedError

    def allocate_commit(self, g: _Codegen, w: _Writer, mgr, tok: str) -> None:
        """``on_allocate_commit`` body (holder/buffer updates are emitted
        by the caller)."""
        raise NotImplementedError

    def inquire(self, g: _Codegen, w: _Writer, mgr, ident_expr: str,
                ctx: _EdgeCtx, fail: Callable[[], None]) -> None:
        """Emit the availability check; call *fail* on the refusal path."""
        raise NotImplementedError

    def release_check(self, g: _Codegen, w: _Writer, mgr_expr: str, tok: str,
                      fail: Callable[[], None]) -> None:
        raise NotImplementedError

    def release_commit(self, g: _Codegen, w: _Writer, mgr_expr: str, tok: str,
                       value_expr: str) -> None:
        raise NotImplementedError


class SlotManagerEmitter(ManagerEmitter):
    can_allocate = can_inquire = can_release = True

    def allocate(self, g, w, mgr, out, ident_expr, avoid):
        tok = g.bind("slot_tok", mgr.token)
        cond = f"{tok}.holder is None"
        extra = _avoid_cond(tok, *avoid)
        if extra:
            cond = f"{cond} and {extra}"
        w(f"{out} = {tok} if {cond} else None")

    def allocate_commit(self, g, w, mgr, tok):
        m = g.bind("mgr", mgr)
        w(f"{m}.n_allocates += 1")

    def inquire(self, g, w, mgr, ident_expr, ctx, fail):
        tok = g.bind("slot_tok", mgr.token)
        with w.block(f"if {tok}.holder is not None:"):
            fail()

    def release_check(self, g, w, mgr_expr, tok, fail):
        with w.block(f"if {tok} is not {mgr_expr}.token:"):
            w(f"raise TokenError('%s: release of foreign token %r'"
              f" % ({mgr_expr}.name, {tok}))")
        with w.block(f"if {tok}.holder is not osm:"):
            w(f"raise TokenError('%s: %r does not hold %r'"
              f" % ({mgr_expr}.name, osm, {tok}))")
        with w.block(f"if {mgr_expr}.hold_release:"):
            fail()

    def release_commit(self, g, w, mgr_expr, tok, value_expr):
        w(f"{mgr_expr}.n_releases += 1")


class PoolManagerEmitter(ManagerEmitter):
    can_allocate = can_inquire = can_release = True

    def allocate(self, g, w, mgr, out, ident_expr, avoid):
        m = g.bind("mgr", mgr)
        toks = g.bind("pool", mgr.tokens)
        w(f"{out} = None")
        with w.block(f"if {m}._n_free != 0:"):
            tv = g.fresh("_pt")
            cond = f"{tv}.holder is None"
            extra = _avoid_cond(tv, *avoid)
            if extra:
                cond = f"{cond} and {extra}"
            with w.block(f"for {tv} in {toks}:"):
                with w.block(f"if {cond}:"):
                    w(f"{out} = {tv}")
                    w("break")

    def allocate_commit(self, g, w, mgr, tok):
        m = g.bind("mgr", mgr)
        w(f"{m}.n_allocates += 1")
        w(f"{m}._n_free -= 1")

    def inquire(self, g, w, mgr, ident_expr, ctx, fail):
        m = g.bind("mgr", mgr)
        toks = g.bind("pool", mgr.tokens)
        nf = g.fresh("_nf")
        w(f"{nf} = {m}._n_free")
        with w.block(f"if {nf} == 0:"):
            fail()
        # n_free > len(txn.grants) -> available; otherwise scan for a free
        # token not tentatively granted in this condition
        tv = g.fresh("_pt")
        cond = f"{tv}.holder is None"
        extra = _avoid_cond(tv, *ctx.avoid(mgr))
        if extra:
            cond = f"{cond} and {extra}"
        with w.block(f"if {nf} <= {ctx.grant_count_expr()}:"):
            with w.block(f"if not any({cond} for {tv} in {toks}):"):
                fail()

    def release_check(self, g, w, mgr_expr, tok, fail):
        # token.manager is this manager by dispatch; the interpreted
        # foreign-token check is vacuously satisfied
        with w.block(f"if {tok}.holder is not osm:"):
            w(f"raise TokenError('%s: %r does not hold %r'"
              f" % ({mgr_expr}.name, osm, {tok}))")
        with w.block(f"if {mgr_expr}.hold_release:"):
            fail()

    def release_commit(self, g, w, mgr_expr, tok, value_expr):
        w(f"{mgr_expr}.n_releases += 1")
        w(f"{mgr_expr}._n_free += 1")


class RegisterFileManagerEmitter(ManagerEmitter):
    can_allocate = can_inquire = can_release = True

    def allocate(self, g, w, mgr, out, ident_expr, avoid):
        m = g.bind("mgr", mgr)
        upd = g.bind("upd", mgr.update_tokens)
        wr = g.bind("writers", mgr._writers)
        mo = g.fresh("_mo")
        w(f"{out} = None")
        w(f"{mo} = {m}.max_outstanding")
        gate = (f"{ident_expr} is not None"
                f" and ({mo} is None or {m}._outstanding < {mo})"
                f" and len({wr}[{ident_expr}]) < {m}.updates_per_reg")
        with w.block(f"if {gate}:"):
            tv = g.fresh("_rt")
            cond = f"{tv}.holder is None"
            extra = _avoid_cond(tv, *avoid)
            if extra:
                cond = f"{cond} and {extra}"
            with w.block(f"for {tv} in {upd}[{ident_expr}]:"):
                with w.block(f"if {cond}:"):
                    w(f"{out} = {tv}")
                    w("break")

    def allocate_commit(self, g, w, mgr, tok):
        m = g.bind("mgr", mgr)
        wr = g.bind("writers", mgr._writers)
        w(f"{m}.n_allocates += 1")
        w(f"{m}._outstanding += 1")
        w(f"{wr}[{tok}.index].append(osm)")

    def inquire(self, g, w, mgr, ident_expr, ctx, fail):
        wr = g.bind("writers", mgr._writers)
        with w.block(f"if {ident_expr} is not None and {wr}[{ident_expr}]:"):
            fail()

    def release_check(self, g, w, mgr_expr, tok, fail):
        # always accepts; the interpreted foreign-manager check is
        # vacuously satisfied under token.manager dispatch
        with w.block(f"if {tok}.holder is not osm:"):
            w(f"raise TokenError('%s: invalid release of %r by %r'"
              f" % ({mgr_expr}.name, {tok}, osm))")

    def release_commit(self, g, w, mgr_expr, tok, value_expr):
        wv = g.fresh("_wl")
        w(f"{mgr_expr}.n_releases += 1")
        w(f"{mgr_expr}._outstanding -= 1")
        w(f"{wv} = {mgr_expr}._writers[{tok}.index]")
        with w.block(f"if osm in {wv}:"):
            w(f"{wv}.remove(osm)")
        if value_expr != "None":
            with w.block(f"if {value_expr} is not None:"):
                w(f"{mgr_expr}.backing.write({tok}.index, {value_expr})")


class ResetManagerEmitter(ManagerEmitter):
    can_allocate = can_inquire = can_release = True

    def allocate(self, g, w, mgr, out, ident_expr, avoid):
        w(f"{out} = None")  # the reset manager owns no allocatable tokens

    def allocate_commit(self, g, w, mgr, tok):  # pragma: no cover - unreachable
        m = g.bind("mgr", mgr)
        w(f"{m}.n_allocates += 1")

    def inquire(self, g, w, mgr, ident_expr, ctx, fail):
        doomed = g.bind("doomed", mgr._doomed)
        with w.block(f"if id(osm) not in {doomed}:"):
            fail()

    def release_check(self, g, w, mgr_expr, tok, fail):
        w(f"raise TokenError('%s manages no releasable tokens'"
          f" % ({mgr_expr}.name,))")

    def release_commit(self, g, w, mgr_expr, tok, value_expr):  # pragma: no cover
        w(f"{mgr_expr}.n_releases += 1")


#: exact manager class -> emitter
_EMITTERS: Dict[type, ManagerEmitter] = {}


def register_native_emitter(manager_class: type, emitter: ManagerEmitter) -> None:
    """Register native codegen for *manager_class* (exact type match).

    Model layers with custom manager subclasses call this at import time
    so their specs fuse to fully native steppers; unregistered classes
    simply keep their edges in transaction mode — never unsound, only
    slower.
    """
    _EMITTERS[manager_class] = emitter


register_native_emitter(SlotManager, SlotManagerEmitter())
register_native_emitter(PoolManager, PoolManagerEmitter())
register_native_emitter(RegisterFileManager, RegisterFileManagerEmitter())
register_native_emitter(ResetManager, ResetManagerEmitter())


# --------------------------------------------------------------------------
# per-edge emission


def _edge_native_blocker(edge) -> Optional[str]:
    """None when every primitive of *edge* can be emitted natively, else
    the reason the edge must run in transaction mode."""
    if getattr(edge, "compile_mode", "auto") == "interpreted":
        return "policy"
    for p in edge.condition.primitives:
        if not getattr(p, "compilable", True):
            return f"opt-out: {p!r}"
        t = type(p)
        if t is Guard or t is Discard or t is Release or t is ReleaseMany:
            continue
        if t is Allocate or t is AllocateMany:
            em = _EMITTERS.get(type(p.manager))
            if em is None or not em.can_allocate:
                return f"no native allocate for {type(p.manager).__name__}"
        elif t is Inquire:
            em = _EMITTERS.get(type(p.manager))
            if em is None or not em.can_inquire:
                return f"no native inquire for {type(p.manager).__name__}"
        else:
            return f"custom primitive {type(p).__name__}"
    return None


def _slot_candidates(spec) -> Tuple[Dict[str, List[Any]], List[Tuple[str, Any]]]:
    """Managers whose grants may fill each buffer slot, spec-wide."""
    exact: Dict[str, List[Any]] = {}
    many: List[Tuple[str, Any]] = []
    for edge in spec.edges:
        for p in edge.condition.primitives:
            t = type(p)
            if t is Allocate:
                mgrs = exact.setdefault(p.slot, [])
                if not any(m is p.manager for m in mgrs):
                    mgrs.append(p.manager)
            elif t is AllocateMany:
                if not any(s == p.slot and m is p.manager for s, m in many):
                    many.append((p.slot, p.manager))
    return exact, many


def _release_dispatch(slot_cands, slot: str):
    """``(class, emitter)`` fast path when every manager that can fill
    *slot* shares one emitter-backed exact class, else None (generic
    virtual dispatch — exact either way)."""
    exact, many = slot_cands
    mgrs = list(exact.get(slot, []))
    mgrs += [m for prefix, m in many if slot.startswith(prefix)]
    return _uniform_dispatch(mgrs)


def _release_many_dispatch(slot_cands, prefix: str):
    exact, many = slot_cands
    mgrs = [m for s, ms in exact.items() if s.startswith(prefix) for m in ms]
    mgrs += [m for s, m in many
             if s.startswith(prefix) or prefix.startswith(s)]
    return _uniform_dispatch(mgrs)


def _uniform_dispatch(mgrs):
    types = {type(m) for m in mgrs}
    if len(types) != 1:
        return None
    cls = types.pop()
    em = _EMITTERS.get(cls)
    if em is None or not em.can_release:
        return None
    return cls, em


def _emit_release_check(g, w, dispatch, mv, tok, slot_expr, fail):
    """Probe-phase release acceptance, dispatched on ``token.manager``."""
    def generic():
        with w.block(f"if not {mv}.release(osm, {tok}, osm._txn):"):
            fail()

    if dispatch is None:
        generic()
    else:
        cls, em = dispatch
        cname = g.bind("cls", cls)
        with w.block(f"if type({mv}) is {cname}:"):
            em.release_check(g, w, mv, tok, fail)
        with w.block("else:"):
            generic()


def _emit_release_hook(g, w, dispatch, mv, tok, value_expr):
    """Commit-phase ``on_release_commit``, dispatched on ``token.manager``."""
    if dispatch is None:
        w(f"{mv}.on_release_commit(osm, {tok}, {value_expr})")
    else:
        cls, em = dispatch
        cname = g.bind("cls", cls)
        with w.block(f"if type({mv}) is {cname}:"):
            em.release_commit(g, w, mv, tok, value_expr)
        with w.block("else:"):
            w(f"{mv}.on_release_commit(osm, {tok}, {value_expr})")


def _nat_guard(g, w, p, idx, ctx):
    pred = g.bind(f"g{idx}pred", p.predicate)
    with w.block(f"if not {pred}(osm):"):
        w("break")


def _nat_allocate(g, w, p, idx, ctx):
    em = _EMITTERS[type(p.manager)]
    m = g.bind("mgr", p.manager)
    slot = _expr(g, f"a{idx}slot", p.slot)
    out = g.fresh(f"a{idx}t")
    if p._dynamic:
        iv = g.fresh(f"a{idx}i")
        w(f"{iv} = {_ident_call(g, f'a{idx}ident', p.ident)}")
        w(f"{out} = None")
        with w.block(f"if {iv} is not None:"):
            em.allocate(g, w, p.manager, out, iv, ctx.avoid(p.manager))
            with w.block(f"if {out} is None:"):
                w(f"osm.blocked_on = ({m}, {iv})")
                w("break")
        conditional = True  # None past this point means vacuous, not refused
    else:
        ident = _expr(g, f"a{idx}ident", p.ident)
        em.allocate(g, w, p.manager, out, ident, ctx.avoid(p.manager))
        with w.block(f"if {out} is None:"):
            w(f"osm.blocked_on = ({m}, {ident})")
            w("break")
        conditional = False
    ctx.grants.append(_Grant(p.manager, em, out, slot, False, conditional))


def _nat_allocate_many(g, w, p, idx, ctx):
    em = _EMITTERS[type(p.manager)]
    m = g.bind("mgr", p.manager)
    slot = _expr(g, f"m{idx}slot", p.slot)
    idents_call = _ident_call(g, f"m{idx}idents", p.idents)
    lst = g.fresh(f"m{idx}l")
    ok = g.fresh(f"m{idx}ok")
    iv = g.fresh(f"m{idx}i")
    tv = g.fresh(f"m{idx}t")
    w(f"{lst} = []")
    w(f"{ok} = True")
    # the in-progress list participates in its own dedup scans
    ctx.grants.append(_Grant(p.manager, em, lst, slot, True, False))
    with w.block(f"for {iv} in {idents_call} or ():"):
        em.allocate(g, w, p.manager, tv, iv, ctx.avoid(p.manager))
        with w.block(f"if {tv} is None:"):
            w(f"osm.blocked_on = ({m}, {iv})")
            w(f"{ok} = False")
            w("break")
        w(f"{lst}.append({tv})")
    with w.block(f"if not {ok}:"):
        w("break")


def _nat_inquire(g, w, p, idx, ctx):
    em = _EMITTERS[type(p.manager)]
    m = g.bind("mgr", p.manager)

    def check(ident_expr, fail):
        em.inquire(g, w, p.manager, ident_expr, ctx, fail)
        w(f"{m}.n_inquiries += 1")

    def scalar_fail(ident_expr):
        def fail():
            w(f"osm.blocked_on = ({m}, {ident_expr})")
            w("break")
        return fail

    if p._dynamic:
        iv = g.fresh(f"i{idx}v")
        w(f"{iv} = {_ident_call(g, f'i{idx}ident', p.ident)}")
        with w.block(f"if {iv} is not None:"):
            with w.block(f"if not isinstance({iv}, (list, tuple)):"):
                check(iv, scalar_fail(iv))
            with w.block("else:"):
                ok = g.fresh(f"i{idx}ok")
                sv = g.fresh(f"i{idx}s")

                def loop_fail():
                    w(f"osm.blocked_on = ({m}, {sv})")
                    w(f"{ok} = False")
                    w("break")

                w(f"{ok} = True")
                with w.block(f"for {sv} in {iv}:"):
                    check(sv, loop_fail)
                with w.block(f"if not {ok}:"):
                    w("break")
    elif isinstance(p.ident, (list, tuple)):
        for j, element in enumerate(p.ident):
            expr = _expr(g, f"i{idx}e{j}", element)
            check(expr, scalar_fail(expr))
    else:
        expr = _expr(g, f"i{idx}ident", p.ident)
        check(expr, scalar_fail(expr))


def _nat_release(g, w, p, idx, ctx, slot_cands):
    slot = _expr(g, f"r{idx}slot", p.slot)
    dispatch = _release_dispatch(slot_cands, p.slot)
    tv = g.fresh(f"r{idx}t")
    mv = g.fresh(f"r{idx}m")
    vv = None
    w(f"{tv} = buffer.get({slot})")
    with w.block(f"if {tv} is not None:"):
        if ctx.may_have_releases:
            conds = [f"{tv} is {rel.var}" for rel in ctx.releases if not rel.many]
            conds += [f"any({tv} is _x[1] for _x in {rel.var})"
                      for rel in ctx.releases if rel.many]
            with w.block(f"if {' or '.join(conds)}:"):
                w("raise TokenError("
                  f"'double release of slot %r in one condition' % ({slot},))")
        w(f"{mv} = {tv}.manager")

        def fail():
            w(f"osm.blocked_on = ({mv}, {slot})")
            w("break")

        _emit_release_check(g, w, dispatch, mv, tv, slot, fail)
        if p.value is not None:
            vf = g.bind(f"r{idx}value", p.value)
            vv = g.fresh(f"r{idx}v")
            w(f"{vv} = {vf}(osm)")
    ctx.releases.append(_Rel(False, tv, mv, slot, vv, dispatch))
    ctx.may_have_releases = True


def _nat_release_many(g, w, p, idx, ctx, slot_cands):
    prefix = _expr(g, f"r{idx}prefix", p.prefix)
    dispatch = _release_many_dispatch(slot_cands, p.prefix)
    lst = g.fresh(f"r{idx}l")
    ok = g.fresh(f"r{idx}ok")
    sv = g.fresh(f"r{idx}s")
    tv = g.fresh(f"r{idx}t")
    mv = g.fresh(f"r{idx}m")
    w(f"{lst} = []")
    w(f"{ok} = True")
    with w.block(f"for {sv}, {tv} in list(buffer.items()):"):
        with w.block(f"if not {sv}.startswith({prefix}):"):
            w("continue")
        w(f"{mv} = {tv}.manager")

        def fail():
            w(f"osm.blocked_on = ({mv}, {sv})")
            w(f"{ok} = False")
            w("break")

        _emit_release_check(g, w, dispatch, mv, tv, sv, fail)
        if p.value is not None:
            vf = g.bind(f"r{idx}value", p.value)
            w(f"{lst}.append(({sv}, {tv}, {mv}, {vf}(osm, {tv})))")
        else:
            w(f"{lst}.append(({sv}, {tv}, {mv}, None))")
    with w.block(f"if not {ok}:"):
        w("break")
    ctx.releases.append(_Rel(True, lst, None, None, None, dispatch))
    ctx.may_have_releases = True


def _nat_discard(g, w, p, idx, ctx):
    if p.slot is not None:
        slot = _expr(g, f"d{idx}slot", p.slot)
        dv = g.fresh(f"d{idx}t")
        w(f"{dv} = buffer.get({slot})")
        ctx.discards.append((slot, dv))
    else:
        dv = g.fresh(f"d{idx}l")
        w(f"{dv} = list(buffer.items())")
        ctx.discards.append((None, dv))


def _emit_native_commit(g, w, ctx):
    """Apply tentative effects in :meth:`Transaction.commit` order:
    releases, then discards, then grants."""
    for rel in ctx.releases:
        if rel.many:
            sv = g.fresh("_cs")
            tv = g.fresh("_ct")
            mv = g.fresh("_cm")
            vv = g.fresh("_cv")
            with w.block(f"for {sv}, {tv}, {mv}, {vv} in {rel.var}:"):
                w(f"del buffer[{sv}]")
                w(f"{tv}.holder = None")
                _emit_release_hook(g, w, rel.dispatch, mv, tv, vv)
        else:
            with w.block(f"if {rel.var} is not None:"):
                w(f"del buffer[{rel.slot}]")
                w(f"{rel.var}.holder = None")
                _emit_release_hook(g, w, rel.dispatch, rel.mgr_var, rel.var,
                                   rel.value_var if rel.value_var else "None")
    for slot, var in ctx.discards:
        if slot is not None:
            with w.block(f"if {var} is not None:"):
                w(f"del buffer[{slot}]")
                w(f"{var}.holder = None")
                w(f"{var}.manager.on_discard(osm, {var})")
        else:
            sv = g.fresh("_ds")
            tv = g.fresh("_dt")
            with w.block(f"for {sv}, {tv} in {var}:"):
                w(f"del buffer[{sv}]")
                w(f"{tv}.holder = None")
                w(f"{tv}.manager.on_discard(osm, {tv})")
    for gr in ctx.grants:
        if gr.many:
            ix = g.fresh("_gi")
            tv = g.fresh("_gt")
            with w.block(f"for {ix}, {tv} in enumerate({gr.var}):"):
                w(f"{tv}.holder = osm")
                w(f"buffer[{gr.slot} + str({ix})] = {tv}")
                gr.emitter.allocate_commit(g, w, gr.mgr, tv)
        elif gr.conditional:
            with w.block(f"if {gr.var} is not None:"):
                w(f"{gr.var}.holder = osm")
                w(f"buffer[{gr.slot}] = {gr.var}")
                gr.emitter.allocate_commit(g, w, gr.mgr, gr.var)
        else:
            w(f"{gr.var}.holder = osm")
            w(f"buffer[{gr.slot}] = {gr.var}")
            gr.emitter.allocate_commit(g, w, gr.mgr, gr.var)


def _emit_native_edge(g, w, edge, slot_cands):
    ctx = _EdgeCtx()
    for idx, p in enumerate(edge.condition.primitives):
        t = type(p)
        if t is Guard:
            _nat_guard(g, w, p, idx, ctx)
        elif t is Allocate:
            _nat_allocate(g, w, p, idx, ctx)
        elif t is AllocateMany:
            _nat_allocate_many(g, w, p, idx, ctx)
        elif t is Inquire:
            _nat_inquire(g, w, p, idx, ctx)
        elif t is Release:
            _nat_release(g, w, p, idx, ctx, slot_cands)
        elif t is ReleaseMany:
            _nat_release_many(g, w, p, idx, ctx, slot_cands)
        elif t is Discard:
            _nat_discard(g, w, p, idx, ctx)
        else:  # unreachable behind _edge_native_blocker
            raise TypeError(f"non-native primitive {type(p).__name__}")
    _emit_native_commit(g, w, ctx)


def _emit_txn_edge(g, w, edge, spec, k):
    probe = g.bind(f"e{k}probe", compile_edge_probe(edge, spec))
    tv = g.fresh(f"e{k}txn")
    w(f"{tv} = osm._txn")
    with w.block(f"if {tv}.dirty:"):
        w(f"{tv}.reset(osm)")
    with w.block(f"if not {probe}(osm, {tv}):"):
        with w.block(f"if {tv}.dirty:"):
            w(f"{tv}.reset(osm)")
        w("break")
    w(f"{tv}.commit()")


def _emit_bookkeeping(g, w, edge):
    """Post-commit OSM state update, mirroring ``try_transition``."""
    dst = edge.dst
    ename = g.bind("edge", edge)
    w(f"osm.current = {g.bind('dst', dst)}")
    w(f"osm.last_edge = {ename}")
    w("osm.n_transitions += 1")
    if edge.src.is_initial:
        w("osm.age = clock")
    if edge.action is not None:
        w(f"{g.bind('action', edge.action)}(osm)")
    if dst.on_enter is not None:
        w(f"{g.bind('on_enter', dst.on_enter)}(osm)")
    if dst.is_initial:
        with w.block("if buffer:"):
            w("raise TokenError('%s: returned to initial state still "
              "holding %s' % (osm.name, sorted(buffer)))")
        w("osm.operation = None")
        w("osm.age = -1")
    w(f"return {ename}")


def generate_stepper(state, spec) -> Callable:
    """Generate the fused ``step(osm, clock) -> Edge | None`` for *state*.

    Raises on any generation problem; callers (:func:`fuse_spec`) catch
    and fall back to the per-edge plan.
    """
    g = _Codegen()
    w = _Writer()
    slot_cands = _slot_candidates(spec)
    w("osm.blocked_on = None")
    w("buffer = osm.token_buffer")
    for k, edge in enumerate(state.out_edges):
        blocker = _edge_native_blocker(edge)
        with w.block("while True:"):
            if blocker is None:
                _emit_native_edge(g, w, edge, slot_cands)
                spec.compile_stats.record(edge, None)
            else:
                _emit_txn_edge(g, w, edge, spec, k)
            _emit_bookkeeping(g, w, edge)
    w("return None")
    sig = "".join(f", {n}={n}" for n in g.params)
    src = f"def _fused_step(osm, clock{sig}):\n" + "\n".join(w.lines)
    code = compile(src, f"<fused:{spec.name}.{state.name}>", "exec")
    exec(code, g.env)
    fn = g.env["_fused_step"]
    fn.__fused_source__ = src  # debugging / test introspection
    return fn


# --------------------------------------------------------------------------
# spec-level entry points


def fuse_spec(spec, states=None) -> int:
    """Generate fused steppers for *spec*'s states and install them on
    ``State._fused``.

    *states* restricts fusion to the named states (the certified-fusable
    set from effectcheck); others are recorded as policy fallbacks.  Any
    generation failure is caught, recorded in ``spec.compile_stats`` and
    degrades that state to the per-edge plan.  Returns the number of
    states fused.
    """
    stats = spec.compile_stats
    fused = 0
    for state in spec.states.values():
        if states is not None and state.name not in states:
            state._fused = None
            stats.record_state(state, "policy: not certified fusable")
            continue
        try:
            stepper = generate_stepper(state, spec)
        except Exception as exc:  # degrade, never break model build
            state._fused = None
            stats.record_state(state, f"codegen: {type(exc).__name__}: {exc}")
        else:
            state._fused = stepper
            stats.record_state(state, None)
            fused += 1
    return fused


def defuse_spec(spec) -> None:
    """Remove all fused steppers (A/B testing, post-mutation cleanup).

    Also the stats-reset hook for unfused model builds: clears the
    per-state fusion census and the fuse certificate, so counters from
    an earlier fused build never leak into an unfused one."""
    for state in spec.states.values():
        state._fused = None
    spec.compile_stats.states.clear()
    if getattr(spec, "fuse_certificate", None) is not None:
        spec.fuse_certificate = None


class _UnsafeEdges:
    def __init__(self, unsafe_edges):
        self.unsafe_edges = unsafe_edges


class _Uncertified:
    """Minimal compilability-report shape carrying only transcheck
    demotions, for :func:`apply_compilability`."""

    unsafe_edges: tuple = ()

    def __init__(self, uncertified_states):
        self.uncertified_states = uncertified_states


def _structure_key(spec) -> tuple:
    """Cache key for the effectcheck verdict: the spec's structure plus
    the identity (qualname) of every live edge callable."""
    def qn(obj):
        return getattr(obj, "__qualname__", None)

    parts: List[Any] = [spec.name, tuple(getattr(spec, "lint_allow", ()))]
    for edge in spec.edges:
        prims = tuple(
            (type(p).__name__,
             type(getattr(p, "manager", None)).__name__,
             qn(getattr(p, "predicate", None)),
             qn(getattr(p, "ident", None)),
             qn(getattr(p, "idents", None)),
             qn(getattr(p, "value", None)))
            for p in edge.condition.primitives
        )
        parts.append((edge.qualname, edge.src.name, edge.dst.name,
                      tuple(edge.lint_allow), qn(edge.action), prims))
    parts.append(qn(getattr(spec, "analysis_rank_key", None)))
    return tuple(parts)


#: structure key -> (frozenset of fusable state names, tuple of unsafe edges)
_CERT_CACHE: Dict[tuple, Tuple[frozenset, tuple]] = {}

#: (structure key, generator fingerprint) -> tuple of (state, reason)
#: transcheck demotions — empty for a generator that certifies clean
_TRV_CACHE: Dict[tuple, tuple] = {}


def enable_fusion(spec) -> int:
    """Certify *spec* with effectcheck and fuse the certified states.

    The gated entry point used by model constructors: runs the effect
    analysis (cached per spec structure, so repeated model builds pay it
    once per process), pins statically-unsafe edges to the interpreted
    path via :func:`apply_compilability`, and fuses exactly the states
    the compilability report deems fusable.  The generated steppers are
    then translation-validated by transcheck
    (:mod:`repro.analysis.certify`, cached per structure + generator
    fingerprint): a state whose stepper fails certification is demoted
    back to the per-edge plan, with the fallback counted in
    ``spec.compile_stats``.  The surviving set is stamped on
    ``spec.fuse_certificate`` together with the generator fingerprint so
    ``repro certify`` can flag stale certificates (TRV008).  Analysis
    failures degrade to no fusion — the per-edge plan keeps working —
    and are recorded in ``spec.compile_stats``.  Returns the number of
    states fused.
    """
    try:
        key = _structure_key(spec)
        verdict = _CERT_CACHE.get(key)
        if verdict is None:
            # Imported lazily: repro.analysis imports the model registry,
            # which imports the models, which import repro.core — a
            # module-level import here would be circular.
            from ..analysis.effects import compilability_report, effects_spec
            report = effects_spec(spec)
            comp = compilability_report(spec, report)
            verdict = (frozenset(comp.fusable_states),
                       tuple(sorted(comp.unsafe_edges)))
            _CERT_CACHE[key] = verdict
        fusable, unsafe = verdict
        if unsafe:
            apply_compilability(spec, _UnsafeEdges(unsafe))
        fused = fuse_spec(spec, states=fusable)

        from ..analysis.certify import (certify_fused_states,
                                        generator_fingerprint)
        fingerprint = generator_fingerprint()
        trv_key = (key, fingerprint)
        uncertified = _TRV_CACHE.get(trv_key)
        if uncertified is None:
            uncertified = tuple(certify_fused_states(spec))
            _TRV_CACHE[trv_key] = uncertified
        if uncertified:
            fused -= apply_compilability(spec, _Uncertified(uncertified))
        spec.fuse_certificate = {
            "generator": fingerprint,
            "fused_states": sorted(
                name for name, state in spec.states.items()
                if state._fused is not None),
        }
        return fused
    except Exception as exc:  # analysis failure: degrade to unfused
        for state in spec.states.values():
            state._fused = None
            spec.compile_stats.record_state(
                state, f"analysis: {type(exc).__name__}: {exc}")
        return 0
