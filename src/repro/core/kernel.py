"""Simulation kernels embedding the OSM domain in the hardware layer.

Two kernels are provided, matching the two organisations the paper
describes:

* :class:`SimulationKernel` — the paper's Figure 4: a discrete-event
  scheduler whose queue carries hardware events plus periodic clock
  events; at each clock edge the director's control step runs (in zero DE
  time, introducing no events of its own).

* :class:`CycleDrivenKernel` — the specialisation used by both case
  studies (Section 5: "We utilized cycle-driven simulation for the
  hardware layer"): hardware modules expose begin/end-of-cycle hooks and
  the kernel alternates hardware phases with OSM control steps, avoiding
  the event-queue overhead entirely.

The ablation benchmark A2 compares the two on identical models.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..de.clock import Clock
from ..de.module import HardwareModule
from ..de.scheduler import DiscreteEventScheduler
from .director import Director
from .errors import SimulationError
from .stats import SimulationStats


class KernelBase:
    """Shared plumbing of the two kernels."""

    def __init__(self, director: Director, modules: Iterable[HardwareModule] = ()):
        self.director = director
        self.modules: List[HardwareModule] = list(modules)
        self.stats: SimulationStats = director.stats
        #: predicate checked after every cycle; simulation stops when true
        self.stop_condition: Optional[Callable[[], bool]] = None
        self.cycle = 0
        for module in self.modules:
            module.notify = director.notify
        self._hooks_stale = True
        self._begin_hooks: List[Callable[[int], None]] = []
        self._end_hooks: List[Callable[[int], None]] = []

    def add_module(self, module: HardwareModule) -> HardwareModule:
        self.modules.append(module)
        module.notify = self.director.notify
        self._hooks_stale = True
        return module

    def _rebind_hooks(self) -> None:
        """Snapshot the modules' overridden cycle hooks (in module order),
        skipping base-class no-ops so the per-cycle loop pays only for
        modules that actually do hardware work."""
        base_begin = HardwareModule.begin_cycle
        base_end = HardwareModule.end_cycle
        self._begin_hooks = [
            m.begin_cycle for m in self.modules
            if type(m).begin_cycle is not base_begin
        ]
        self._end_hooks = [
            m.end_cycle for m in self.modules
            if type(m).end_cycle is not base_end
        ]
        self._hooks_stale = False

    def _finished(self) -> bool:
        return self.stop_condition is not None and self.stop_condition()

    def run(self, max_cycles: int) -> SimulationStats:
        raise NotImplementedError


class CycleDrivenKernel(KernelBase):
    """Cycle-driven kernel: the case-study configuration."""

    def step(self) -> None:
        """One clock cycle: hardware begin phase, OSM control step,
        hardware end phase."""
        if self._hooks_stale:
            self._rebind_hooks()
        cycle = self.cycle
        for hook in self._begin_hooks:
            hook(cycle)
        self.director.control_step()
        for hook in self._end_hooks:
            hook(cycle)
        self.cycle += 1
        self.stats.cycles += 1

    def run(self, max_cycles: int = 10_000_000) -> SimulationStats:
        """Run until the stop condition holds or *max_cycles* elapse.

        The loop body is :meth:`step` inlined with the hook lists and the
        control-step callable hoisted to locals — one cycle is the hottest
        path of the whole simulator.
        """
        stats = self.stats
        stats.start_timer()
        self.director.prepare()
        try:
            while self.cycle < max_cycles:
                stop = self.stop_condition
                if stop is not None and stop():
                    return stats
                if self._hooks_stale:
                    self._rebind_hooks()
                begin_hooks = self._begin_hooks
                end_hooks = self._end_hooks
                control_step = self.director.control_step
                cycle = start_cycle = self.cycle
                try:
                    while cycle < max_cycles:
                        if stop is not None and stop():
                            break
                        for hook in begin_hooks:
                            hook(cycle)
                        control_step()
                        for hook in end_hooks:
                            hook(cycle)
                        cycle += 1
                        if self._hooks_stale or self.stop_condition is not stop:
                            break  # modules or stop condition changed mid-run
                finally:
                    self.cycle = cycle
                    stats.cycles += cycle - start_cycle
        finally:
            stats.stop_timer(phase="simulate")
        if not self._finished():
            raise SimulationError(
                f"simulation did not terminate within {max_cycles} cycles"
            )
        return stats


class SimulationKernel(KernelBase):
    """The paper's Fig. 4 kernel: OSM control steps embedded in DE.

    Hardware modules may schedule events on :attr:`scheduler` at arbitrary
    timestamps; the kernel inserts a clock event every ``clock.edge_interval``
    and runs the director's control step when it fires.  Module hooks are
    also honoured so the same models run unchanged under either kernel:
    ``begin_cycle`` is scheduled just before each edge's control step and
    ``end_cycle`` just after (still at the same timestamp, ordered by
    insertion).
    """

    def __init__(
        self,
        director: Director,
        modules: Iterable[HardwareModule] = (),
        clock: Optional[Clock] = None,
    ):
        super().__init__(director, modules)
        self.scheduler = DiscreteEventScheduler()
        self.clock = clock or Clock()

    def step(self) -> None:
        """Advance to (and through) the next clock edge, per Fig. 4."""
        if self._hooks_stale:
            self._rebind_hooks()
        interval = self.clock.period // self.clock.phases
        next_edge = self.scheduler.now + interval
        # Run all hardware events strictly before the edge.
        self.scheduler.run_until(next_edge)
        cycle = self.cycle
        for hook in self._begin_hooks:
            hook(cycle)
        # The control step finishes in zero time from the DE viewpoint and
        # introduces no events directly.
        before = len(self.scheduler.queue)
        self.director.control_step()
        if len(self.scheduler.queue) != before:
            raise SimulationError(
                "OSM control step scheduled DE events; the control step must "
                "finish in zero time (paper Fig. 4)"
            )
        for hook in self._end_hooks:
            hook(cycle)
        self.cycle += 1
        self.stats.cycles += 1

    def run(self, max_cycles: int = 10_000_000) -> SimulationStats:
        self.stats.start_timer()
        try:
            while self.cycle < max_cycles:
                if self._finished():
                    return self.stats
                self.step()
        finally:
            self.stats.stop_timer(phase="simulate")
        if not self._finished():
            raise SimulationError(
                f"simulation did not terminate within {max_cycles} cycles"
            )
        return self.stats
