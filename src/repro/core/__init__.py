"""Core OSM formalism: the paper's primary contribution.

Public API re-exports the classes a model author needs:

>>> from repro.core import (MachineSpec, OperationStateMachine, Director,
...                         CycleDrivenKernel, SlotManager, Allocate, Release)
"""

from .errors import (
    OsmError,
    SchedulingDeadlockError,
    SimulationError,
    SpecError,
    TokenError,
)
from .token import Token, TokenIdentifier, resolve_identifier
from .transaction import Transaction
from .manager import (
    PoolManager,
    RegisterFileManager,
    ResetManager,
    SlotManager,
    TokenManager,
)
from .primitives import (
    ALWAYS,
    Allocate,
    AllocateMany,
    Condition,
    Discard,
    Guard,
    Inquire,
    Primitive,
    Release,
    ReleaseMany,
)
from .osm import Edge, MachineSpec, OperationStateMachine, State
from .edgecompile import CompileStats, apply_compilability, compile_edge_probe
from .fuse import (
    ManagerEmitter,
    defuse_spec,
    enable_fusion,
    fuse_spec,
    register_native_emitter,
)
from .director import Director, age_rank, rank_stable_in_flight
from .kernel import CycleDrivenKernel, SimulationKernel
from .stats import SimulationStats

__all__ = [
    "ALWAYS",
    "Allocate",
    "AllocateMany",
    "CompileStats",
    "Condition",
    "CycleDrivenKernel",
    "Director",
    "Discard",
    "Edge",
    "Guard",
    "Inquire",
    "MachineSpec",
    "ManagerEmitter",
    "OperationStateMachine",
    "OsmError",
    "PoolManager",
    "Primitive",
    "RegisterFileManager",
    "Release",
    "ReleaseMany",
    "ResetManager",
    "SchedulingDeadlockError",
    "SimulationError",
    "SimulationKernel",
    "SimulationStats",
    "SlotManager",
    "SpecError",
    "State",
    "Token",
    "TokenIdentifier",
    "TokenManager",
    "Transaction",
    "age_rank",
    "apply_compilability",
    "compile_edge_probe",
    "defuse_spec",
    "enable_fusion",
    "fuse_spec",
    "rank_stable_in_flight",
    "register_native_emitter",
    "resolve_identifier",
]
