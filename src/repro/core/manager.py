"""Token managers: the hardware layer's interface to operations.

Section 3.2/4 of the paper: a token manager *"manages one or more closely
related tokens.  It can grant a token to, or reclaim a token from an OSM
upon request.  Token managers may check the identity of the requesting OSMs
when making decisions."*  Hardware modules that interact with operations
implement the token manager interface (TMI) whose four methods correspond to
the four primitives of the transaction language; modules that do not
interact with operations (caches, TLBs, the bus) live purely in the
hardware layer and need no TMI.

This module provides the abstract :class:`TokenManager` plus the two
reusable concrete managers that cover most structure resources:

* :class:`SlotManager` — a single occupancy token (a pipeline-stage slot);
* :class:`PoolManager` — a pool of interchangeable tokens (a fetch queue,
  reservation-station entries, rename buffers, a completion queue).

The paper notes that *"TMIs of the same nature are very much alike and code
reuse can be exploited to a great extent"*; these two classes are that
reuse, shared across the pipeline5, StrongARM and PPC-750 models.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .errors import TokenError
from .token import Token
from .transaction import Transaction


class TokenManager:
    """Abstract token manager interface (TMI).

    Subclasses implement the probe-phase methods :meth:`allocate`,
    :meth:`inquire` and :meth:`release`; :meth:`discard` needs no
    permission and always succeeds.  The commit-phase notification hooks
    (:meth:`on_allocate_commit`, :meth:`on_release_commit`,
    :meth:`on_discard`) let the hardware module update its internal state
    when a transaction actually happens.

    Managers never communicate with each other directly (Section 4: "TMIs
    do not communicate with each other directly"); any coupling goes
    through the hardware layer between control steps.
    """

    def __init__(self, name: str):
        self.name = name
        #: transaction counters for :class:`~repro.core.stats.SimulationStats`
        self.n_allocates = 0
        self.n_inquiries = 0
        self.n_releases = 0
        self.n_discards = 0

    @property
    def capacity(self) -> Optional[int]:
        """Static token capacity for one identifier class, or ``None``
        when it is unbounded or per-identifier (read-only introspection
        used by the static analyses; never consulted during simulation)."""
        return None

    # -- probe phase (the four language primitives) -----------------------

    def allocate(self, osm, ident, txn: Transaction) -> Optional[Token]:
        """Map *ident* to a token and return it if grantable, else ``None``.

        Must not mutate manager state: the grant is tentative until
        :meth:`on_allocate_commit`.  Implementations must honour
        ``txn.is_tentatively_granted`` so one condition never receives the
        same token twice.
        """
        raise NotImplementedError

    def inquire(self, osm, ident, txn: Transaction) -> bool:
        """Return True when the resource denoted by *ident* is available to
        *osm* without transferring ownership (non-exclusive access, e.g.
        reading a register value)."""
        raise NotImplementedError

    def release(self, osm, token: Token, txn: Transaction) -> bool:
        """Return True when the manager accepts *token* back.

        A manager may refuse — this is how variable latency is modelled:
        e.g. the fetch stage refuses to take its slot token back until the
        I-cache miss completes, stalling the operation (Section 4,
        "Variable latency").
        """
        raise NotImplementedError

    def discard(self, osm, token: Token) -> None:
        """Unconditional return of a token (used when an OSM is reset)."""
        # Probe phase is trivially successful; actual effect in on_discard.

    # -- commit phase -------------------------------------------------------

    def on_allocate_commit(self, osm, token: Token) -> None:
        self.n_allocates += 1

    def on_release_commit(self, osm, token: Token, value: Any) -> None:
        self.n_releases += 1

    def on_discard(self, osm, token: Token) -> None:
        self.n_discards += 1

    def resync_from_holders(self) -> None:
        """Rebuild any cached occupancy bookkeeping from token holders.

        Normal simulation keeps caches (e.g. the pool free count) in sync
        through the commit hooks above.  Tools that teleport system state by
        assigning ``token.holder`` directly — the explicit-state model
        checker's ``restore`` — must call this afterwards.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class SlotManager(TokenManager):
    """TMI controlling a single occupancy token.

    Section 4: *"a pipeline stage contains a token manager interface
    controlling one occupancy token.  Since the token can be allocated to
    only one operation at a time, at most one operation can occupy the
    pipeline stage at a time.  Structure hazards are therefore resolved."*

    ``hold_release`` can be set (by the owning hardware module) to make the
    manager refuse release requests, stalling the occupant; this is the
    variable-latency mechanism used for cache misses and multi-cycle
    function units.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.token = Token(self, name, 0)
        #: when True, release requests are refused (occupant must stall)
        self.hold_release = False

    @property
    def capacity(self) -> int:
        return 1

    @property
    def occupant(self):
        """The OSM occupying the slot, or ``None``."""
        return self.token.holder

    def allocate(self, osm, ident, txn: Transaction) -> Optional[Token]:
        token = self.token
        # inlined txn.is_tentatively_granted (hot path)
        if token.holder is None and id(token) not in txn._granted_ids:
            return token
        # The slot frees within this control step only if an earlier-ranked
        # OSM already committed its release; sequential director scheduling
        # guarantees we observe that (holder is None above).
        return None

    def inquire(self, osm, ident, txn: Transaction) -> bool:
        return self.token.holder is None

    def release(self, osm, token: Token, txn: Transaction) -> bool:
        if token is not self.token:
            raise TokenError(f"{self.name}: release of foreign token {token!r}")
        if token.holder is not osm:
            raise TokenError(f"{self.name}: {osm!r} does not hold {token!r}")
        return not self.hold_release


class PoolManager(TokenManager):
    """TMI controlling a pool of interchangeable tokens.

    Covers queues and buffer files: the PPC-750 fetch queue (6 entries),
    reservation stations, rename buffers and the completion queue are all
    pools.  ``ident`` is ignored for plain pools; subclasses may interpret
    it (e.g. :class:`~repro.models.ppc750.managers.CompletionQueueManager`
    enforces in-order retirement by refusing out-of-order releases).
    """

    def __init__(self, name: str, size: int):
        super().__init__(name)
        if size <= 0:
            raise ValueError(f"pool {name!r} must have positive size, got {size}")
        self.tokens: List[Token] = [Token(self, f"{name}[{i}]", i) for i in range(size)]
        self.hold_release = False
        #: committed free-token count, maintained by the commit hooks; lets
        #: a probe against a full pool fail in O(1) instead of scanning
        #: (full pools are the common case for stalled cycles)
        self._n_free = size

    @property
    def capacity(self) -> int:
        return len(self.tokens)

    @property
    def size(self) -> int:
        return len(self.tokens)

    @property
    def n_free(self) -> int:
        # Introspection recounts from holders so it stays truthful even for
        # tools that poke token.holder directly; the probe fast path uses
        # the cached _n_free, resynced via resync_from_holders().
        return sum(1 for t in self.tokens if t.holder is None)

    @property
    def occupants(self) -> List[Any]:
        return [t.holder for t in self.tokens if t.holder is not None]

    def allocate(self, osm, ident, txn: Transaction) -> Optional[Token]:
        # Tentative grants only shrink availability, and tentative releases
        # do not free tokens until commit, so an empty committed free count
        # is an exact refusal.  When tokens are free, the scan preserves the
        # deterministic lowest-index selection.
        if self._n_free == 0:
            return None
        granted = txn._granted_ids
        for token in self.tokens:
            if token.holder is None and id(token) not in granted:
                return token
        return None

    def inquire(self, osm, ident, txn: Transaction) -> bool:
        n_free = self._n_free
        if n_free == 0:
            return False
        if n_free > len(txn.grants):
            # More committed-free tokens than tentative grants in the whole
            # transaction: at least one free token cannot be granted yet.
            return True
        return any(
            t.holder is None and not txn.is_tentatively_granted(t) for t in self.tokens
        )

    def release(self, osm, token: Token, txn: Transaction) -> bool:
        if token.manager is not self:
            raise TokenError(f"{self.name}: release of foreign token {token!r}")
        if token.holder is not osm:
            raise TokenError(f"{self.name}: {osm!r} does not hold {token!r}")
        return not self.hold_release

    def on_allocate_commit(self, osm, token: Token) -> None:
        super().on_allocate_commit(osm, token)
        self._n_free -= 1

    def on_release_commit(self, osm, token: Token, value: Any) -> None:
        super().on_release_commit(osm, token, value)
        self._n_free += 1

    def on_discard(self, osm, token: Token) -> None:
        super().on_discard(osm, token)
        self._n_free += 1

    def resync_from_holders(self) -> None:
        self._n_free = sum(1 for t in self.tokens if t.holder is None)


class RegisterFileManager(TokenManager):
    """TMI for a register file: value tokens plus register-update tokens.

    Section 4: *"The register file contains a TMI m_r, which manages a set
    of value tokens corresponding to the registers, and several
    register-update tokens."*  An operation holding a register-update
    token of register *r* makes inquiries about *r*'s value token fail for
    younger dependents, which therefore stall — this resolves data (RAW)
    hazards.  On releasing the update token the operation hands back the
    computed value, which the manager writes into its backing store.

    Per the paper's plural, each register owns a small *pool* of update
    tokens (``updates_per_reg``, default 3 — the E..W depth of a 5-stage
    pipeline), so WAW sequences do not stall an in-order machine: writes
    retire in program order and the youngest outstanding writer defines
    availability for readers.

    ``ident`` for both allocate and inquire is the register number.  The
    backing store is any object with ``read(reg)``/``write(reg, value)``
    (typically the architectural register file of the ISS).
    """

    def __init__(
        self,
        name: str,
        n_regs: int,
        backing,
        updates_per_reg: int = 3,
        n_update_tokens: Optional[int] = None,
    ):
        super().__init__(name)
        self.n_regs = n_regs
        self.backing = backing
        self.updates_per_reg = updates_per_reg
        self.update_tokens: Dict[int, List[Token]] = {
            r: [Token(self, f"{name}.upd[{r}].{i}", r) for i in range(updates_per_reg)]
            for r in range(n_regs)
        }
        #: outstanding writers per register, in allocation (program) order
        self._writers: Dict[int, List[Any]] = {r: [] for r in range(n_regs)}
        #: optional global cap on outstanding register updates (rename-buffer
        #: style limit); None means unbounded.
        self.max_outstanding = n_update_tokens
        self._outstanding = 0

    def outstanding(self, reg: int) -> int:
        return len(self._writers[reg])

    def pending_writer(self, reg: int):
        """The *youngest* OSM with an outstanding update to *reg*."""
        writers = self._writers[reg]
        return writers[-1] if writers else None

    def allocate(self, osm, ident, txn: Transaction) -> Optional[Token]:
        reg = ident
        if reg is None:
            return None
        if self.max_outstanding is not None and self._outstanding >= self.max_outstanding:
            return None
        # One committed writer holds exactly one update token of its
        # register, so a full writer list means no free token: O(1) refusal
        # without scanning the token pool (the common WAW-stall case).
        if len(self._writers[reg]) >= self.updates_per_reg:
            return None
        granted = txn._granted_ids
        for token in self.update_tokens[reg]:
            if token.holder is None and id(token) not in granted:
                return token
        return None

    def inquire(self, osm, ident, txn: Transaction) -> bool:
        reg = ident
        if reg is None:
            return True
        # The value token of r is available iff no outstanding update to r.
        return not self._writers[reg]

    def release(self, osm, token: Token, txn: Transaction) -> bool:
        if token.manager is not self or token.holder is not osm:
            raise TokenError(f"{self.name}: invalid release of {token!r} by {osm!r}")
        return True

    def holders_of(self, ident) -> List[Any]:
        if isinstance(ident, int):
            return list(self._writers[ident])
        return []

    def read(self, reg: int):
        """Non-exclusive read of the committed register value (the value
        token's payload).  Models call this from an edge action after a
        successful inquire."""
        return self.backing.read(reg)

    def on_allocate_commit(self, osm, token: Token) -> None:
        super().on_allocate_commit(osm, token)
        self._outstanding += 1
        self._writers[token.index].append(osm)

    def _drop_writer(self, token: Token, osm) -> None:
        writers = self._writers[token.index]
        if osm in writers:
            writers.remove(osm)

    def on_release_commit(self, osm, token: Token, value: Any) -> None:
        super().on_release_commit(osm, token, value)
        self._outstanding -= 1
        self._drop_writer(token, osm)
        if value is not None:
            self.backing.write(token.index, value)

    def on_discard(self, osm, token: Token) -> None:
        super().on_discard(osm, token)
        self._outstanding -= 1
        self._drop_writer(token, osm)


class ResetManager(TokenManager):
    """TMI implementing the control-hazard kill mechanism.

    Section 4, "Control hazard": reset edges carry an inquiry to
    ``m_reset``; the manager rejects inquiries from normal OSMs, and
    accepts them from OSMs marked speculative-dead after a branch
    mispredict resolves, causing those OSMs to take their (higher-priority)
    reset edges, discard all tokens and return to state I.
    """

    def __init__(self, name: str = "m_reset"):
        super().__init__(name)
        self._doomed: set = set()
        self._pending: set = set()

    @property
    def capacity(self) -> int:
        return 0  # owns no allocatable tokens

    def doom(self, osm) -> None:
        """Mark *osm* for reset from the next control step onwards.

        The paper: "At the *next* control step, the speculative OSMs will
        execute along their reset edges" — dooming latches at the cycle
        boundary via :meth:`latch` (call it from a hardware module's
        ``end_cycle``).
        """
        self._pending.add(id(osm))

    def doom_now(self, osm) -> None:
        """Mark *osm* for reset effective immediately (same control step)."""
        self._doomed.add(id(osm))

    def latch(self) -> None:
        """Activate pending dooms (cycle-boundary behaviour)."""
        if self._pending:
            self._doomed |= self._pending
            self._pending.clear()

    def pardon(self, osm) -> None:
        self._doomed.discard(id(osm))
        self._pending.discard(id(osm))

    def is_doomed(self, osm) -> bool:
        return id(osm) in self._doomed or id(osm) in self._pending

    def allocate(self, osm, ident, txn: Transaction) -> Optional[Token]:
        return None  # the reset manager owns no allocatable tokens

    def inquire(self, osm, ident, txn: Transaction) -> bool:
        return id(osm) in self._doomed

    def release(self, osm, token: Token, txn: Transaction) -> bool:
        raise TokenError(f"{self.name} manages no releasable tokens")

    def acknowledge(self, osm) -> None:
        """Called by the reset edge's action once the OSM has been killed."""
        self._doomed.discard(id(osm))
