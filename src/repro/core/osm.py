"""Operation state machines (Section 3.1).

An OSM's *states* represent the execution steps of a machine operation; its
*edges* carry guard conditions (conjunctions of token-transaction
primitives) and static priorities.  Each OSM owns a token buffer of
allocated resources and has a distinguished initial state ``I`` in which
the buffer is empty.  OSMs never talk to each other — their only interface
to the world is token transactions against managers.

Because a simulated processor keeps a pool of identical OSMs (one per
potentially in-flight operation), the state graph is factored into an
immutable :class:`MachineSpec` shared by all instances, and the mutable
per-operation part lives in :class:`OperationStateMachine`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .edgecompile import CompileStats, compile_edge_probe
from .errors import SpecError, TokenError
from .primitives import ALWAYS, Condition, Primitive
from .token import Token
from .transaction import Transaction

Action = Callable[["OperationStateMachine"], None]


class State:
    """A named state in a machine specification."""

    __slots__ = ("name", "is_initial", "on_enter", "out_edges", "spec",
                 "source_span", "_plan", "_fused")

    def __init__(self, name: str, is_initial: bool = False, on_enter: Optional[Action] = None):
        self.name = name
        self.is_initial = is_initial
        self.on_enter = on_enter
        #: ``(unit, lineno)`` provenance when this state was synthesized
        #: from a source description (ADL); ``None`` for hand-built specs.
        #: The shared diagnostics layer renders it so analysis findings
        #: can point at the describing source line.
        self.source_span: Optional[Tuple[str, int]] = None
        #: owning spec, set by :meth:`MachineSpec.state`; carries the
        #: per-spec :class:`~repro.core.edgecompile.CompileStats` that
        #: :meth:`probe_plan` records compile outcomes into
        self.spec: Optional["MachineSpec"] = None
        #: outgoing edges sorted by descending static priority
        self.out_edges: List["Edge"] = []
        #: pre-bound probe plan: ``((edge, compiled_probe), ...)`` snapshot
        #: of the outgoing edges, each guard condition compiled to one
        #: specialised ``probe(osm, txn) -> bool`` function (see
        #: :mod:`repro.core.edgecompile`).  Built lazily at first use and
        #: invalidated whenever an edge is declared; compiling once at
        #: model-build time keeps the per-cycle transition probe free of
        #: per-primitive dispatch, attribute chasing and temporary lists.
        self._plan: Optional[Tuple[Tuple["Edge", Callable], ...]] = None
        #: fused whole-state stepper ``step(osm, clock) -> Edge | None``
        #: installed by :func:`repro.core.fuse.fuse_spec` for states the
        #: effect analysis certifies; ``None`` means "walk the per-edge
        #: probe plan" (the always-available fallback)
        self._fused: Optional[Callable] = None

    def probe_plan(self) -> Tuple[Tuple["Edge", Callable], ...]:
        """The pre-bound (edge, compiled probe) plan for this state."""
        plan = self._plan
        if plan is None:
            plan = tuple(
                (edge, compile_edge_probe(edge, self.spec))
                for edge in self.out_edges
            )
            self._plan = plan
        return plan

    def __repr__(self) -> str:  # pragma: no cover
        return f"State({self.name!r})"


class Edge:
    """A transition between two states.

    Parameters
    ----------
    src, dst:
        Source and destination states.
    condition:
        The guard condition; defaults to always-satisfied.
    priority:
        Static priority.  When several outgoing edges of a state are
        simultaneously satisfied, the highest-priority edge is taken
        (Section 3.1: this models multiple execution paths in superscalar
        processors).  Higher number = higher priority.
    action:
        Optional callback run right after the transaction commits and the
        state updates (e.g. "compute the result" on entering E).
    label:
        Trace label.
    allow:
        Lint-rule codes (e.g. ``"OSM004"``) whose findings on this edge
        are acknowledged false positives; see ``docs/static-analysis.md``.
    """

    __slots__ = ("src", "dst", "condition", "priority", "action", "label",
                 "index", "lint_allow", "compile_mode", "source_span")

    def __init__(
        self,
        src: State,
        dst: State,
        condition: Optional[Condition] = None,
        priority: int = 0,
        action: Optional[Action] = None,
        label: str = "",
        allow: Iterable[str] = (),
    ):
        if isinstance(condition, Primitive):
            condition = Condition([condition])
        self.src = src
        self.dst = dst
        self.condition = condition if condition is not None else ALWAYS
        self.priority = priority
        self.action = action
        self.label = label or f"{src.name}->{dst.name}"
        #: declaration index within the owning spec (stable identity even
        #: when labels repeat); assigned by :meth:`MachineSpec.edge`
        self.index: int = -1
        self.lint_allow: Tuple[str, ...] = tuple(allow)
        #: "auto" (compile the guard condition, interpreted fallback on
        #: failure) or "interpreted" (skip codegen — set by
        #: :func:`repro.core.edgecompile.apply_compilability` for edges
        #: the effect analyzer cannot certify)
        self.compile_mode: str = "auto"
        #: ``(unit, lineno)`` provenance when synthesized from a source
        #: description (see :class:`State.source_span`)
        self.source_span: Optional[Tuple[str, int]] = None

    @property
    def qualname(self) -> str:
        """Stable, unique edge name: ``label@index`` within the spec."""
        return f"{self.label}@{self.index}"

    def allow_lint(self, *codes: str) -> "Edge":
        """Suppress the given lint-rule codes on this edge (chainable)."""
        self.lint_allow = self.lint_allow + tuple(codes)
        return self

    def __repr__(self) -> str:  # pragma: no cover
        return f"Edge({self.label}, prio={self.priority})"


class MachineSpec:
    """The immutable state graph shared by a family of OSM instances."""

    def __init__(self, name: str):
        self.name = name
        self.states: Dict[str, State] = {}
        self.edges: List[Edge] = []
        self.initial: Optional[State] = None
        #: spec-wide lint suppressions (rule codes); see Edge.lint_allow
        #: for the per-edge variant
        self.lint_allow: Tuple[str, ...] = ()
        #: per-spec edge-probe compile outcomes (see CompileStats)
        self.compile_stats = CompileStats()
        #: analysis breadcrumb: the rank-key function of the director the
        #: spec's OSMs were last registered with (stamped by
        #: ``Director.add``); the effect analyzer's EFF002 pass audits it
        #: when it carries the ``rank_stable_in_flight`` mark
        self.analysis_rank_key: Optional[Callable] = None
        #: name of the source description this spec was synthesized from
        #: (``None`` for hand-written models); states/edges carry the
        #: per-declaration ``source_span`` counterpart
        self.source_unit: Optional[str] = None

    def allow_lint(self, *codes: str) -> "MachineSpec":
        """Suppress the given lint-rule codes everywhere in this spec."""
        self.lint_allow = self.lint_allow + tuple(codes)
        return self

    def state(self, name: str, initial: bool = False, on_enter: Optional[Action] = None) -> State:
        """Declare (or fetch) a state.  Exactly one state must be initial."""
        if name in self.states:
            return self.states[name]
        st = State(name, initial, on_enter)
        st.spec = self
        self.states[name] = st
        if initial:
            if self.initial is not None:
                raise SpecError(f"{self.name}: two initial states ({self.initial.name}, {name})")
            self.initial = st
        return st

    def edge(
        self,
        src: str,
        dst: str,
        condition: Optional[Condition] = None,
        priority: int = 0,
        action: Optional[Action] = None,
        label: str = "",
        allow: Iterable[str] = (),
    ) -> Edge:
        """Declare an edge between two already-declared states."""
        for endpoint in (src, dst):
            if endpoint not in self.states:
                raise SpecError(f"{self.name}: edge references unknown state {endpoint!r}")
        e = Edge(self.states[src], self.states[dst], condition, priority, action, label,
                 allow=allow)
        e.index = len(self.edges)
        self.edges.append(e)
        source = self.states[src]
        out = source.out_edges
        out.append(e)
        # keep outgoing edges sorted: highest static priority first, then
        # declaration order (stable sort) for determinism among equals
        out.sort(key=lambda edge: -edge.priority)
        source._plan = None  # edge set changed: rebuild the probe plan
        source._fused = None  # and drop any fused stepper baked on the old set
        # the fusion census entry described the old edge set; drop it so
        # a later rebuild (or none) never reports a stale fused state
        self.compile_stats.states.pop(source.name, None)
        return e

    def validate(self) -> None:
        """Check structural invariants; raises :class:`SpecError`."""
        if self.initial is None:
            raise SpecError(f"{self.name}: no initial state declared")
        reachable = {self.initial.name}
        frontier = [self.initial]
        while frontier:
            st = frontier.pop()
            for e in st.out_edges:
                if e.dst.name not in reachable:
                    reachable.add(e.dst.name)
                    frontier.append(e.dst)
        unreachable = set(self.states) - reachable
        if unreachable:
            raise SpecError(
                f"{self.name}: states unreachable from {self.initial.name}: "
                f"{sorted(unreachable)}"
            )

    def __repr__(self) -> str:  # pragma: no cover
        return f"MachineSpec({self.name!r}, {len(self.states)} states, {len(self.edges)} edges)"


class OperationStateMachine:
    """One in-flight operation, executing over a shared :class:`MachineSpec`.

    Attributes
    ----------
    token_buffer:
        slot name -> held :class:`~repro.core.token.Token` (Section 3.1:
        "Each state machine contains a token buffer for allocated
        resources"; the buffer is empty in state I).
    operation:
        Opaque per-operation payload set by model code at fetch/decode time
        (typically a decoded-instruction record); cleared when the OSM
        returns to I.
    age:
        Monotonic stamp assigned when the OSM last left state I, used by
        the default age-based ranking (Section 5: "the director ranks the
        OSMs according to their ages, i.e. the order in which they last
        leave state I").
    tag:
        Free-form grouping tag (Section 6 uses it for the thread id in
        multi-threaded models; it may contribute to ranking and to manager
        decisions).
    """

    __slots__ = ("spec", "name", "serial", "tag", "current", "token_buffer",
                 "operation", "age", "blocked_on", "n_transitions",
                 "last_edge", "_fail_version", "_stepped", "_txn")

    _next_serial = 0

    def __init__(self, spec: MachineSpec, name: Optional[str] = None, tag: Any = None):
        if spec.initial is None:
            raise SpecError(f"{spec.name}: cannot instantiate, no initial state")
        self.spec = spec
        serial = OperationStateMachine._next_serial
        OperationStateMachine._next_serial += 1
        self.name = name or f"{spec.name}#{serial}"
        self.serial = serial
        self.tag = tag
        self.current = spec.initial
        self.token_buffer: Dict[str, Token] = {}
        self.operation: Any = None
        self.age: int = -1
        #: (manager, ident) the OSM most recently failed a probe against,
        #: consumed by deadlock analysis and traces
        self.blocked_on: Optional[Tuple[Any, Any]] = None
        #: transition count, for stats
        self.n_transitions = 0
        #: the edge most recently committed by :meth:`try_transition`.
        #: Unlike the return value, this is set *before* the home-invariant
        #: check, so a caller catching the buffer-at-I :class:`TokenError`
        #: can still report which edge fired (model-checker traces).
        self.last_edge: Optional[Edge] = None
        #: director bookkeeping: observable-state version at the last
        #: failed probe (see Director.control_step)
        self._fail_version = -1
        #: director bookkeeping: control-step id of the last committed
        #: transition (an OSM transitions at most once per control step)
        self._stepped = -1
        #: the OSM's private reusable transaction: probe traffic is always
        #: sequential per OSM, so one lazily-reset object serves every
        #: try_transition call without pool traffic
        self._txn = Transaction(self)

    # -- token buffer helpers ---------------------------------------------

    def token(self, slot: str) -> Token:
        """The held token in *slot*; raises if absent."""
        try:
            return self.token_buffer[slot]
        except KeyError:
            raise TokenError(f"{self.name}: no token in slot {slot!r}") from None

    def holds(self, slot: str) -> bool:
        return slot in self.token_buffer

    def slot_of(self, token: Token) -> Optional[str]:
        for slot, held in self.token_buffer.items():
            if held is token:
                return slot
        return None

    # -- state machinery (driven by the director) --------------------------

    @property
    def in_initial(self) -> bool:
        return self.current is self.spec.initial

    def note_blocked_on(self, manager, ident) -> None:
        self.blocked_on = (manager, ident)

    def try_transition(self, clock: int) -> Optional[Edge]:
        """Attempt one transition per the per-OSM scheduling rules.

        Probes outgoing edges in static-priority order; on the first
        satisfied condition, commits the transaction, updates state, runs
        the edge action and the destination's ``on_enter``, and returns the
        edge.  Returns ``None`` when no edge fires.

        The probe loop runs over the state's pre-bound
        :meth:`State.probe_plan`: each edge's guard condition is compiled
        at model-build time into one specialised probe function (see
        :mod:`repro.core.edgecompile`), so per-cycle work is one call per
        candidate edge instead of per-primitive dispatch.  The observable
        behaviour is identical to probing each edge's condition in
        declaration order.
        """
        self.blocked_on = None
        current = self.current
        plan = current._plan
        if plan is None:
            plan = current.probe_plan()
        txn = self._txn
        if txn.dirty:
            txn.reset(self)
        for edge, probe in plan:
            if probe(self, txn):
                txn.commit()
                dst = edge.dst
                self.current = dst
                self.last_edge = edge
                self.n_transitions += 1
                if current.is_initial:
                    self.age = clock
                if edge.action is not None:
                    edge.action(self)
                if dst.on_enter is not None:
                    dst.on_enter(self)
                if dst.is_initial:
                    # Back to I: token buffer must be empty (model invariant).
                    if self.token_buffer:
                        raise TokenError(
                            f"{self.name}: returned to initial state still "
                            f"holding {sorted(self.token_buffer)}"
                        )
                    self.operation = None
                    self.age = -1
                return edge
            if txn.dirty:
                txn.reset(self)
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"OSM({self.name}@{self.current.name})"
