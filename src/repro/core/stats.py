"""Simulation statistics collected by the director and kernels.

Besides the raw counters, stats carry a *phase-attributed* timing layer:
coarse named phases (``assemble``, ``build``, ``simulate``, ``verify``
by convention) accumulated in :attr:`SimulationStats.phase_seconds`.
Phases are timed only at harness boundaries — wrapping a whole
assemble/build/run call via :meth:`time_phase` or the ``phase=``
argument of :meth:`stop_timer` — never inside the per-cycle hot loop,
so the attribution is free at simulation time.  ``repro bench`` reports
the per-phase breakdown in its JSON row.

Timer misuse contract (explicit, and tested):

* :meth:`stop_timer` with no timer running is a documented no-op that
  returns ``False`` — harnesses stop defensively in ``finally`` blocks.
* :meth:`start_timer` while a timer is already running raises
  ``RuntimeError`` — the old behaviour silently discarded the first
  interval, under-reporting wall time.
* Nested :meth:`time_phase` blocks attribute **exclusive** (self) time:
  an inner phase's seconds are subtracted from its enclosing phase, so
  ``sum(phase_seconds.values())`` never double-counts a nested interval.
  A :meth:`stop_timer(phase=...)` interval landing inside an open
  ``time_phase`` block is likewise credited to the inner phase only.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class SimulationStats:
    """Counters describing one simulation run.

    The case studies (Section 5) report model efficiency as simulated
    cycles per wall-clock second; :attr:`cycles_per_second` provides that
    figure, alongside transition/transaction counts useful for the
    ablation benches.
    """

    def __init__(self):
        self.cycles = 0
        self.transitions = 0
        self.control_step_passes = 0
        self.instructions = 0
        #: per-state occupancy histogram: state name -> OSM-cycles spent
        self.state_occupancy: Dict[str, int] = {}
        #: phase name -> accumulated wall seconds (see module docstring)
        self.phase_seconds: Dict[str, float] = {}
        #: edge probes compiled to straight-line code / interpreted
        #: fallbacks, absorbed from the model spec's CompileStats after a
        #: run (see :meth:`absorb_compile_stats`); ``repro bench``
        #: surfaces both in its JSON row
        self.compiled_probes = 0
        self.probe_fallbacks = 0
        #: ``(edge qualname, reason)`` for every counted fallback
        self.fallback_edges: list = []
        self._wall_start: Optional[float] = None
        self.wall_seconds = 0.0
        #: open ``time_phase`` frames: ``[name, start, child_seconds]``
        self._phase_stack: list = []

    def start_timer(self) -> None:
        """Start the wall timer.

        Raises ``RuntimeError`` if a timer is already running: the old
        behaviour silently dropped the running interval, so overlapping
        ``start_timer`` calls under-reported wall time with no signal.
        """
        if self._wall_start is not None:
            raise RuntimeError(
                "start_timer() while a timer is already running — "
                "the running interval would be silently discarded; "
                "call stop_timer() first"
            )
        self._wall_start = time.perf_counter()

    def stop_timer(self, phase: Optional[str] = None) -> bool:
        """Stop the wall timer; with *phase*, also attribute the elapsed
        interval to that phase (the kernels pass ``"simulate"``).

        Stopping with no timer running is a documented no-op returning
        ``False`` (harnesses stop defensively from ``finally`` blocks);
        returns ``True`` when an interval was actually recorded.
        """
        if self._wall_start is None:
            return False
        now = time.perf_counter()
        elapsed = now - self._wall_start
        self.wall_seconds += elapsed
        self._wall_start = None
        if phase is not None:
            self.record_phase(phase, elapsed)
            if self._phase_stack:
                # the interval also lies inside an open time_phase block:
                # charge it to that frame's child account so the enclosing
                # phase reports exclusive time.  Clamp to the frame's own
                # extent in case the timer predates the frame.
                frame = self._phase_stack[-1]
                frame[2] += min(elapsed, now - frame[1])
        return True

    def record_phase(self, name: str, seconds: float) -> None:
        """Attribute *seconds* of wall time to the named phase."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    @contextmanager
    def time_phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and attribute it to the named phase.

        Intended for harness-level boundaries (assembling, model build,
        verification re-runs) — not for per-cycle code.  Nested blocks
        record **exclusive** time: the inner block's whole duration is
        subtracted from the enclosing phase, so summing
        ``phase_seconds`` across phases counts every wall-clock second
        at most once.  (Previously a nested interval was attributed to
        both phases, double-counting it in the bench breakdown.)
        """
        frame = [name, time.perf_counter(), 0.0]
        self._phase_stack.append(frame)
        try:
            yield
        finally:
            self._phase_stack.pop()
            elapsed = time.perf_counter() - frame[1]
            self.record_phase(name, max(0.0, elapsed - frame[2]))
            if self._phase_stack:
                self._phase_stack[-1][2] += elapsed

    def absorb_compile_stats(self, spec) -> None:
        """Accumulate the edge-probe compile outcomes of *spec* (a
        :class:`~repro.core.MachineSpec`) into this stats object.

        Called at harness boundaries (``repro bench`` after each model
        run) — only states whose probe plans were actually built are
        counted, so the figures describe what the simulation ran, not
        what the spec declares.
        """
        compile_stats = getattr(spec, "compile_stats", None)
        if compile_stats is None:
            return
        self.compiled_probes += compile_stats.compiled
        self.probe_fallbacks += compile_stats.fallbacks
        self.fallback_edges.extend(compile_stats.fallback_edges)

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per wall-clock second (0.0 when untimed)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def transitions_per_second(self) -> float:
        """Committed OSM transitions (scheduling events) per wall second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.transitions / self.wall_seconds

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def record_occupancy(self, osms) -> None:
        """Accumulate one cycle of state occupancy for *osms* (optional,
        enabled by kernels only when tracing is requested — it costs time)."""
        occ = self.state_occupancy
        for osm in osms:
            name = osm.current.name
            occ[name] = occ.get(name, 0) + 1

    def summary(self) -> str:
        lines = [
            f"cycles           : {self.cycles}",
            f"instructions     : {self.instructions}",
            f"IPC              : {self.ipc:.3f}",
            f"transitions      : {self.transitions}",
            f"wall seconds     : {self.wall_seconds:.3f}",
            f"cycles/second    : {self.cycles_per_second:,.0f}",
        ]
        if self.compiled_probes or self.probe_fallbacks:
            lines.append(f"compiled probes  : {self.compiled_probes}")
            lines.append(f"probe fallbacks  : {self.probe_fallbacks}")
        for name in sorted(self.phase_seconds):
            lines.append(f"phase {name:<11}: {self.phase_seconds[name]:.3f}s")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimulationStats(cycles={self.cycles}, instructions={self.instructions})"
