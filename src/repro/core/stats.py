"""Simulation statistics collected by the director and kernels."""

from __future__ import annotations

import time
from typing import Dict, Optional


class SimulationStats:
    """Counters describing one simulation run.

    The case studies (Section 5) report model efficiency as simulated
    cycles per wall-clock second; :attr:`cycles_per_second` provides that
    figure, alongside transition/transaction counts useful for the
    ablation benches.
    """

    def __init__(self):
        self.cycles = 0
        self.transitions = 0
        self.control_step_passes = 0
        self.instructions = 0
        #: per-state occupancy histogram: state name -> OSM-cycles spent
        self.state_occupancy: Dict[str, int] = {}
        self._wall_start: Optional[float] = None
        self.wall_seconds = 0.0

    def start_timer(self) -> None:
        self._wall_start = time.perf_counter()

    def stop_timer(self) -> None:
        if self._wall_start is not None:
            self.wall_seconds += time.perf_counter() - self._wall_start
            self._wall_start = None

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per wall-clock second (0.0 when untimed)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def record_occupancy(self, osms) -> None:
        """Accumulate one cycle of state occupancy for *osms* (optional,
        enabled by kernels only when tracing is requested — it costs time)."""
        occ = self.state_occupancy
        for osm in osms:
            name = osm.current.name
            occ[name] = occ.get(name, 0) + 1

    def summary(self) -> str:
        lines = [
            f"cycles           : {self.cycles}",
            f"instructions     : {self.instructions}",
            f"IPC              : {self.ipc:.3f}",
            f"transitions      : {self.transitions}",
            f"wall seconds     : {self.wall_seconds:.3f}",
            f"cycles/second    : {self.cycles_per_second:,.0f}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimulationStats(cycles={self.cycles}, instructions={self.instructions})"
