"""Exception hierarchy for the OSM core.

Every error raised by the operation-state-machine layer derives from
:class:`OsmError` so that callers embedding the kernel (examples, benchmark
harnesses, the ADL synthesiser) can catch model-level failures without
masking ordinary Python bugs.
"""

from __future__ import annotations


class OsmError(Exception):
    """Base class for all OSM model errors."""


class SchedulingDeadlockError(OsmError):
    """Raised when the director detects a cyclic resource dependency.

    The paper (Section 3.4) treats deadlock as a pathological situation:
    in a processor model a cyclic wait between operations implies a cyclic
    pipeline, which occurs only under faulty models, so the director aborts.
    """

    def __init__(self, cycle, waiters):
        self.cycle = cycle
        self.waiters = list(waiters)
        names = " -> ".join(str(w) for w in self.waiters)
        super().__init__(
            f"scheduling deadlock at control step {cycle}: cyclic wait {names}"
        )


class TokenError(OsmError):
    """Raised on an ill-formed token transaction (e.g. releasing a token the
    OSM does not hold, or a manager granting a token it does not own)."""


class SpecError(OsmError):
    """Raised when a machine specification is inconsistent (unknown state,
    duplicate edge priority, missing initial state, ...)."""


class SimulationError(OsmError):
    """Raised when the simulation kernel cannot make progress or is
    configured inconsistently."""
