"""Tokens: the currency of the OSM model.

Section 3.2 of the paper: *"Microprocessor operations require structure and
data resources for their fetching, issuing, execution and completion.  In
the OSM model, we model the resources as tokens."*

A :class:`Token` represents one unit of a structure resource (a pipeline
stage slot, a reservation-station entry, a rename buffer) or a data
resource (a register value).  Tokens are created and owned by a token
manager; operations obtain and return them exclusively through the four
transaction primitives of the :mod:`repro.core.primitives` language.
"""

from __future__ import annotations

from typing import Any, Optional


class Token:
    """A single resource unit managed by a token manager.

    Attributes
    ----------
    manager:
        The :class:`~repro.core.manager.TokenManager` that owns this token.
    name:
        Human-readable identity, used in traces and error messages.
    index:
        Position of the token within its manager (slot number, register
        number, ...).
    value:
        Optional payload carried by the token.  Value tokens representing
        registers use this for the register content; structure tokens
        usually leave it ``None``.
    holder:
        The OSM currently holding the token, or ``None`` when the token is
        free.  Maintained by the manager, never by client code.
    """

    __slots__ = ("manager", "name", "index", "value", "holder")

    def __init__(self, manager, name: str, index: int = 0, value: Any = None):
        self.manager = manager
        self.name = name
        self.index = index
        self.value = value
        self.holder = None

    @property
    def is_free(self) -> bool:
        """True when no OSM holds the token."""
        return self.holder is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = getattr(self.holder, "name", None)
        return f"Token({self.name}@{self.manager.name}, holder={owner})"


class TokenIdentifier:
    """An identifier presented to a manager during allocate/inquire.

    The paper: *"An OSM may request a token from a manager by presenting a
    token identifier.  The manager interprets the identifier and maps it to
    a token."*  Identifiers are opaque to the OSM layer; only the target
    manager interprets them.  An identifier may be static (fixed at model
    construction, e.g. "the decode-stage slot") or dynamic (computed per
    operation after decode, e.g. "the value token of source register r3").

    ``TokenIdentifier`` is a small convenience wrapper; managers accept any
    hashable object (or this wrapper) as an identifier.
    """

    __slots__ = ("kind", "key")

    def __init__(self, kind: str, key: Any = None):
        self.kind = kind
        self.key = key

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TokenIdentifier)
            and self.kind == other.kind
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.key is None:
            return f"TokenIdentifier({self.kind!r})"
        return f"TokenIdentifier({self.kind!r}, {self.key!r})"


def resolve_identifier(ident, osm) -> Optional[Any]:
    """Resolve a possibly-dynamic identifier against an OSM.

    Identifiers on edges may be given as plain values (used as-is) or as
    callables taking the OSM and returning the actual identifier; the
    callable form is how models express "the register number decoded by
    *this* operation".  A callable returning ``None`` means the primitive
    does not apply to this operation (e.g. an instruction with no second
    source register) and the caller treats the primitive as trivially
    satisfied.
    """
    if callable(ident):
        return ident(osm)
    return ident
