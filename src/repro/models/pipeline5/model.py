"""The Section-4 tutorial model: a 5-stage pipelined RISC processor.

States F, D, E, B and W correspond to the fetch, decode, execution,
buffer and write-back stages of the paper's Figure 5/6; the initial state
I is the unused OSM.  All four control behaviours of Section 4 are
modelled exactly as described:

* **Structure hazard** — each stage's TMI controls one occupancy token.
* **Data hazard** — the register-file manager ``m_r`` hands out
  register-update tokens at D->E; dependants fail their value inquiries
  and stall at D until the producer releases at W.
* **Variable latency** — stage managers refuse token releases while a
  cache access (or multi-cycle execute) is outstanding.
* **Control hazard** — reset edges from F and D to I, guarded by an
  inquiry to ``m_reset``, kill speculative operations at the control step
  after a taken branch resolves in E.

The model is execution-driven: an operation decodes its instruction when
it holds the fetch token and performs its semantics on entry to E, in
program order (in-order issue guarantees architectural order at E).
"""

from __future__ import annotations

from typing import Optional

from ...core.director import operation_seq_rank
from ...core import (
    AllocateMany,
    Allocate,
    Condition,
    CycleDrivenKernel,
    Director,
    Discard,
    Inquire,
    MachineSpec,
    OperationStateMachine,
    RegisterFileManager,
    Release,
    ReleaseMany,
    SimulationStats,
    defuse_spec,
    enable_fusion,
)
from ...isa.arm import semantics as arm_semantics
from ...isa.bits import popcount_significant_bytes
from ...isa.program import Program
from ...iss.interpreter import ArmInterpreter
from ...memory.cache import Cache
from ...memory.tlb import Tlb
from ..common import (FetchUnit, Operation, ResetUnit, StageUnit,
                      kill_younger, memory_latency)

#: number of OSMs instantiated: pipeline depth + spares so fetch never
#: starves while an OSM finishes its W->I transition
DEFAULT_N_OSMS = 7


class _TimingRegisterBacking:
    """Backing store for the register-file TMI.

    The model is execution-driven (values live in the architectural
    state), so the timing-side register file only needs to accept the
    write-back values handed over on token release; index 16 is the flags
    pseudo-register.
    """

    def __init__(self, n_regs: int):
        self.values = [0] * n_regs

    def read(self, reg: int) -> int:
        return self.values[reg]

    def write(self, reg: int, value: int) -> None:
        self.values[reg] = value & 0xFFFFFFFF


def _source_regs(osm) -> tuple:
    return osm.operation.instr.src_regs


def _dest_regs(osm) -> tuple:
    return osm.operation.instr.dst_regs


# Fused steppers paste these expressions in place of the calls (they must
# mirror the function bodies exactly — see repro.core.fuse._ident_call).
_source_regs.__fuse_inline__ = "osm.operation.instr.src_regs"
_dest_regs.__fuse_inline__ = "osm.operation.instr.dst_regs"


class Pipeline5Model:
    """The tutorial 5-stage OSM processor model over the ARM-like ISA.

    Parameters
    ----------
    program:
        The assembled :class:`~repro.isa.program.Program` to run.
    icache, dcache, itlb, dtlb:
        Optional memory-hierarchy timing models; ``None`` means the
        access completes in one cycle (the perfect-memory tutorial
        configuration).
    n_osms:
        Size of the OSM pool.
    restart:
        Director outer-loop restart (Fig. 3 general algorithm) — the
        case-study optimisation disables it; exposed for ablation A1.
    fused:
        Generate fused per-state step functions for the states the effect
        analysis certifies (see :mod:`repro.core.fuse`); ``False`` keeps
        the per-edge probe plans only.  Scheduling results are identical
        either way.
    """

    #: units whose :meth:`execute_latency` can exceed one cycle —
    #: ``_execute_op`` consults the latency hook only for these, so
    #: subclasses stretching other units must extend this set too
    MULTI_CYCLE_UNITS = frozenset({"mul"})

    def __init__(
        self,
        program: Program,
        icache: Optional[Cache] = None,
        dcache: Optional[Cache] = None,
        itlb: Optional[Tlb] = None,
        dtlb: Optional[Tlb] = None,
        n_osms: int = DEFAULT_N_OSMS,
        restart: bool = False,
        stdin: bytes = b"",
        fused: bool = True,
    ):
        self.program = program
        self.iss = ArmInterpreter(program, stdin=stdin)
        self.state = self.iss.state

        # -- hardware layer: modules and their TMIs -------------------------
        self.fetch = FetchUnit(self.iss.fetch_decode, program.entry, icache, itlb,
                               cache=self.iss.decode_cache)
        self.decode_stage = StageUnit("m_d")
        self.execute_stage = StageUnit("m_e")
        self.buffer_stage = StageUnit("m_b")
        self.writeback_stage = StageUnit("m_w")
        self.regfile = RegisterFileManager(
            "m_r", n_regs=17, backing=_TimingRegisterBacking(17)
        )
        self.reset_unit = ResetUnit()
        self.dcache = dcache
        self.dtlb = dtlb

        # -- operation layer: the machine spec of Figure 6 -------------------
        self.spec = self._build_spec()
        self.director = Director(rank_key=operation_seq_rank, restart=restart)
        self.osms = [OperationStateMachine(self.spec) for _ in range(n_osms)]
        self.director.add(*self.osms)
        if fused:
            # After director.add: fusion certification audits the stamped
            # rank key and bakes the per-state steppers (repro.core.fuse).
            enable_fusion(self.spec)
        else:
            # reset the fusion census too, so counters from an earlier
            # fused build never leak into an unfused one
            defuse_spec(self.spec)

        modules = [
            self.fetch,
            self.decode_stage,
            self.execute_stage,
            self.buffer_stage,
            self.writeback_stage,
            self.reset_unit,
        ]
        self.kernel = CycleDrivenKernel(self.director, modules)
        self.kernel.stop_condition = self._finished
        self.retired = 0

    # -- spec construction ------------------------------------------------------

    def _build_spec(self) -> MachineSpec:
        spec = MachineSpec("pipeline5")
        for name in "IFDEBW":
            spec.state(name, initial=(name == "I"))

        m_f = self.fetch.manager
        m_d = self.decode_stage.manager
        m_e = self.execute_stage.manager
        m_b = self.buffer_stage.manager
        m_w = self.writeback_stage.manager
        m_r = self.regfile
        m_reset = self.reset_unit.manager

        spec.edge(
            "I", "F",
            Condition([Allocate(m_f)]),
            action=self.fetch.fetch_into,
            label="fetch",
        )
        spec.edge(
            "F", "D",
            Condition([Allocate(m_d), Release("m_f")]),
            label="decode",
        )
        spec.edge(
            "D", "E",
            Condition([
                Allocate(m_e),
                Inquire(m_r, _source_regs),
                AllocateMany(m_r, _dest_regs, slot="rupd"),
                Release("m_d"),
            ]),
            action=self._execute_op,
            label="issue",
        )
        spec.edge(
            "E", "B",
            Condition([Allocate(m_b), Release("m_e")]),
            action=self._memory_access,
            label="mem",
        )
        spec.edge(
            "B", "W",
            Condition([Allocate(m_w), Release("m_b")]),
            label="writeback",
        )
        spec.edge(
            "W", "I",
            Condition([Release("m_w"), ReleaseMany("rupd")]),
            action=self._complete,
            label="retire",
        )
        # Control-hazard reset edges (higher static priority than normal).
        for state in ("F", "D"):
            spec.edge(
                state, "I",
                Condition([Inquire(m_reset), Discard()]),
                priority=10,
                action=self._killed,
                label=f"reset-{state}",
            )
        spec.validate()
        return spec

    # -- edge actions -------------------------------------------------------------

    def _execute_op(self, osm) -> None:
        """Entry to E: perform the operation's semantics (program order)."""
        op: Operation = osm.operation
        instr = op.instr
        fn = instr.exec_fn
        info = fn(self.state) if fn is not None \
            else arm_semantics.execute(self.state, instr)
        op.info = info
        self.state.instret += 1
        if instr.unit in self.MULTI_CYCLE_UNITS:
            extra = self.execute_latency(op) - 1
            if extra > 0:
                self.execute_stage.hold(extra)
                self._hold_functional_units(op, extra)
        sequential = (op.pc + 4) & 0xFFFFFFFF
        if info.next_pc != sequential:
            self.fetch.redirect(info.next_pc)
            kill_younger(self.osms, op.seq, self.reset_unit)
        if self.state.halted:
            self.fetch.halt()
            kill_younger(self.osms, op.seq, self.reset_unit)

    def _hold_functional_units(self, op: Operation, extra: int) -> None:
        """Multi-cycle hook: occupy functional units beyond the E stage
        itself for *extra* further cycles (override in subclasses)."""

    def execute_latency(self, op: Operation) -> int:
        """Execute-stage occupancy in cycles (override in subclasses)."""
        instr = op.instr
        if instr.unit == "mul" and op.info is not None and op.info.executed:
            operand = op.info.mul_operand or 0
            latency = 1 + popcount_significant_bytes(operand)
            if instr.kind == "mull":
                latency += 1
            return latency
        return 1

    def _memory_access(self, osm) -> None:
        """Entry to B: charge D-cache/TLB latency (block transfers pay one
        beat per word, the Section-4 variable-latency idiom)."""
        info = osm.operation.info
        if info is None or info.mem_addr is None:
            return  # non-memory operation: one cycle, nothing to charge
        latency = memory_latency(info, self.dcache, self.dtlb)
        if latency > 1:
            self.buffer_stage.hold(latency - 1)

    def _complete(self, osm) -> None:
        self.retired += 1
        self.director.stats.instructions += 1

    def _killed(self, osm) -> None:
        self.reset_unit.acknowledge(osm)

    # -- running ---------------------------------------------------------------------

    def _finished(self) -> bool:
        return self.state.halted and all(osm.in_initial for osm in self.osms)

    def run(self, max_cycles: int = 10_000_000) -> SimulationStats:
        """Run to program exit; returns the statistics."""
        return self.kernel.run(max_cycles)

    @property
    def cycles(self) -> int:
        return self.kernel.stats.cycles

    @property
    def exit_code(self) -> int:
        return self.state.exit_code

    @property
    def output_text(self) -> str:
        return self.iss.syscalls.output_text
