"""Tutorial 5-stage pipelined RISC model (paper Section 4, Figures 5/6)."""

from .model import DEFAULT_N_OSMS, Pipeline5Model

__all__ = ["DEFAULT_N_OSMS", "Pipeline5Model"]
