"""The StrongARM (SA-1100) micro-architecture model — paper Section 5.1.

A five-stage pipelined implementation of the ARM-like ISA "similar to the
pipeline in Figure 5, but it includes forwarding paths and a multiplier":

* forwarding paths via the combined register-file/forwarding TMI
  (:class:`~repro.models.strongarm.managers.ForwardingRegisterFileManager`),
* an early-terminating multiplier module with its own TMI (the SA-110
  multiplier retires 12 bits per cycle; we model 1 + significant-byte
  latency),
* 16 KB I-cache and 8 KB D-cache (32-way, 32-byte lines) plus 32-entry
  TLBs — purely in the hardware layer, no TMI, per the paper.

The clock frequency attribute converts cycle counts into the seconds
reported by Table 1 (the SA-1100 in the iPAQ-3650 runs at 206 MHz).
"""

from __future__ import annotations

from typing import Optional

from ...core import (
    Allocate,
    AllocateMany,
    Condition,
    Discard,
    Inquire,
    MachineSpec,
    Release,
    ReleaseMany,
)
from ...isa.bits import popcount_significant_bytes
from ...isa.program import Program
from ...memory.cache import Cache
from ...memory.tlb import Tlb
from ..common import Operation, StageUnit
from ..pipeline5.model import Pipeline5Model, _TimingRegisterBacking, _dest_regs, _source_regs
from .managers import ForwardingRegisterFileManager

CLOCK_HZ = 206_000_000  # SA-1100 in the iPAQ-3650


def default_icache() -> Cache:
    return Cache("icache", size=16 * 1024, line_size=32, assoc=32, miss_penalty=26)


def default_dcache() -> Cache:
    return Cache("dcache", size=8 * 1024, line_size=32, assoc=32, miss_penalty=26)


def default_itlb() -> Tlb:
    return Tlb("itlb", entries=32, walk_penalty=18)


def default_dtlb() -> Tlb:
    return Tlb("dtlb", entries=32, walk_penalty=18)


def _mul_ident(osm):
    """Multiplier-token identifier: None (vacuous) for non-multiply ops."""
    return True if osm.operation.instr.unit == "mul" else None


class StrongArmModel(Pipeline5Model):
    """OSM model of the StrongARM core."""

    def __init__(
        self,
        program: Program,
        icache: Optional[Cache] = None,
        dcache: Optional[Cache] = None,
        itlb: Optional[Tlb] = None,
        dtlb: Optional[Tlb] = None,
        perfect_memory: bool = False,
        n_osms: int = 7,
        restart: bool = False,
        stdin: bytes = b"",
        fused: bool = True,
    ):
        if not perfect_memory:
            icache = icache if icache is not None else default_icache()
            dcache = dcache if dcache is not None else default_dcache()
            itlb = itlb if itlb is not None else default_itlb()
            dtlb = dtlb if dtlb is not None else default_dtlb()
        # Created before _build_spec (called by the base constructor).
        self.multiplier = StageUnit("m_mul")
        super().__init__(
            program,
            icache=icache,
            dcache=dcache,
            itlb=itlb,
            dtlb=dtlb,
            n_osms=n_osms,
            restart=restart,
            stdin=stdin,
            fused=fused,
        )
        self.kernel.add_module(self.multiplier)
        self.clock_hz = CLOCK_HZ

    # -- spec -----------------------------------------------------------------

    def _build_spec(self) -> MachineSpec:
        # The base class builds self.regfile before calling _build_spec;
        # replace it with the forwarding variant first.
        self.regfile = ForwardingRegisterFileManager(
            "m_r", n_regs=17, backing=_TimingRegisterBacking(17)
        )
        spec = MachineSpec("strongarm")
        for name in "IFDEBW":
            spec.state(name, initial=(name == "I"))

        m_f = self.fetch.manager
        m_d = self.decode_stage.manager
        m_e = self.execute_stage.manager
        m_b = self.buffer_stage.manager
        m_w = self.writeback_stage.manager
        m_r = self.regfile
        m_mul = self.multiplier.manager
        m_reset = self.reset_unit.manager

        spec.edge("I", "F", Condition([Allocate(m_f)]),
                  action=self.fetch.fetch_into, label="fetch")
        spec.edge("F", "D", Condition([Allocate(m_d), Release("m_f")]),
                  label="decode")
        spec.edge(
            "D", "E",
            Condition([
                Allocate(m_e),
                Allocate(m_mul, ident=_mul_ident, slot="m_mul"),
                Inquire(m_r, _source_regs),
                AllocateMany(m_r, _dest_regs, slot="rupd"),
                Release("m_d"),
            ]),
            action=self._execute_op,
            label="issue",
        )
        spec.edge(
            "E", "B",
            Condition([Allocate(m_b), Release("m_e"), Release("m_mul")]),
            action=self._enter_buffer,
            label="mem",
        )
        spec.edge(
            "B", "W",
            Condition([Allocate(m_w), Release("m_b")]),
            action=self._enter_writeback,
            label="writeback",
        )
        spec.edge(
            "W", "I",
            Condition([Release("m_w"), ReleaseMany("rupd")]),
            action=self._complete,
            label="retire",
        )
        for state in ("F", "D"):
            spec.edge(
                state, "I",
                Condition([Inquire(m_reset), Discard()]),
                priority=10,
                action=self._killed,
                label=f"reset-{state}",
            )
        spec.validate()
        return spec

    # -- timing hooks ------------------------------------------------------------

    def execute_latency(self, op: Operation) -> int:
        """SA-110 early-terminating multiplier: 1 + significant bytes of
        the Rs operand; long multiplies take one extra cycle."""
        instr = op.instr
        if instr.unit == "mul" and op.info is not None and op.info.executed:
            operand = op.info.mul_operand or 0
            latency = 1 + popcount_significant_bytes(operand)
            if instr.kind == "mull":
                latency += 1
            return latency
        return 1

    def _hold_functional_units(self, op: Operation, extra: int) -> None:
        # Multiplier structural occupancy mirrors the E-stage hold.
        if op.instr.unit == "mul":
            self.multiplier.hold(extra)

    def _enter_buffer(self, osm) -> None:
        """E->B: charge memory latency and publish forwardable results.

        ALU and multiplier results exist once E completes, so their
        destination registers become forwardable here — making dependent
        operations issue back-to-back (0-cycle ALU-to-ALU distance).
        Loads publish at B->W instead (1-cycle load-use penalty).
        """
        self._memory_access(osm)
        op: Operation = osm.operation
        if not op.instr.is_load:
            for reg in op.instr.dst_regs:
                self.regfile.mark_ready(reg, osm)

    def _enter_writeback(self, osm) -> None:
        op: Operation = osm.operation
        if op.instr.is_load:
            for reg in op.instr.dst_regs:
                self.regfile.mark_ready(reg, osm)

    # -- reporting ---------------------------------------------------------------

    def seconds(self) -> float:
        """Simulated wall-clock seconds at the SA-1100 frequency."""
        return self.cycles / self.clock_hz
