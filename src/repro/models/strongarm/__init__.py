"""StrongARM (SA-1100) case-study model — paper Section 5.1."""

from .managers import ForwardingRegisterFileManager
from .model import (
    CLOCK_HZ,
    StrongArmModel,
    default_dcache,
    default_dtlb,
    default_icache,
    default_itlb,
)

__all__ = [
    "CLOCK_HZ",
    "ForwardingRegisterFileManager",
    "StrongArmModel",
    "default_dcache",
    "default_dtlb",
    "default_icache",
    "default_itlb",
]
