"""StrongARM-specific token managers.

Section 5.1: "We implemented TMIs for the pipeline stage modules, the
combined register file and forwarding paths module, and the multiplier
module."  The forwarding register file is the interesting one: the paper's
Section 4 notes that with bypassing, "OSMs can inquire either m_r or the
bypassing manager for source operand availability" — we combine both
policies in one TMI, as the real SA-110 combines the register file with
its forwarding network.
"""

from __future__ import annotations

from typing import Any

from ...core.fuse import RegisterFileManagerEmitter, register_native_emitter
from ...core.manager import RegisterFileManager
from ...core.token import Token
from ...core.transaction import Transaction


class ForwardingRegisterFileManager(RegisterFileManager):
    """Register file + forwarding paths in one TMI.

    A value inquiry succeeds when either no update is outstanding for the
    register, or the outstanding producer has computed its result and the
    forwarding network can supply it (``mark_ready``).  The producing
    operation marks readiness when its result exists: ALU results at
    E->B, load results at B->W, multiplier results when the multiply
    completes — giving the SA-110's 0-cycle ALU-to-ALU and 1-cycle
    load-use forwarding distances.
    """

    def __init__(self, name: str, n_regs: int, backing):
        super().__init__(name, n_regs, backing)
        self._ready = [True] * n_regs

    def inquire(self, osm, ident, txn: Transaction) -> bool:
        reg = ident
        if reg is None:
            return True
        if not self._writers[reg]:
            return True
        # The youngest outstanding writer defines availability: a newer
        # in-flight write clears readiness until its result exists.
        return self._ready[reg]

    def mark_ready(self, reg: int, osm=None) -> None:
        """The in-flight producer of *reg* now has a forwardable result.

        Only the *youngest* writer's publication counts — an older
        writer's late publication must not expose a stale value.  In-order
        publication alone does not guarantee this: a load publishes at
        B->W, two cycles after its allocate, so a younger writer of the
        same register can allocate in between, after which the older
        load's publication must be ignored.  Callers pass the publishing
        *osm* so stale publications can be dropped (``None`` trusts the
        caller unconditionally, for hand-built specs without operations).
        """
        if osm is not None:
            writers = self._writers[reg]
            if not writers or writers[-1] is not osm:
                return
        self._ready[reg] = True

    def on_allocate_commit(self, osm, token: Token) -> None:
        super().on_allocate_commit(osm, token)
        self._ready[token.index] = False

    def on_release_commit(self, osm, token: Token, value: Any) -> None:
        super().on_release_commit(osm, token, value)
        if not self._writers[token.index]:
            self._ready[token.index] = True

    def on_discard(self, osm, token: Token) -> None:
        super().on_discard(osm, token)
        if not self._writers[token.index]:
            self._ready[token.index] = True


class ForwardingRegisterFileEmitter(RegisterFileManagerEmitter):
    """Native fusion codegen for :class:`ForwardingRegisterFileManager`:
    the base register-file bodies plus the forwarding-readiness bit in
    inquire and the commit hooks.  Discards stay on the virtual
    ``on_discard`` path, so only the hook bodies mirrored here matter."""

    def inquire(self, g, w, mgr, ident_expr, ctx, fail):
        wr = g.bind("writers", mgr._writers)
        ready = g.bind("ready", mgr._ready)
        cond = (f"{ident_expr} is not None and {wr}[{ident_expr}]"
                f" and not {ready}[{ident_expr}]")
        with w.block(f"if {cond}:"):
            fail()

    def allocate_commit(self, g, w, mgr, tok):
        super().allocate_commit(g, w, mgr, tok)
        ready = g.bind("ready", mgr._ready)
        w(f"{ready}[{tok}.index] = False")

    def release_commit(self, g, w, mgr_expr, tok, value_expr):
        super().release_commit(g, w, mgr_expr, tok, value_expr)
        with w.block(f"if not {mgr_expr}._writers[{tok}.index]:"):
            w(f"{mgr_expr}._ready[{tok}.index] = True")


register_native_emitter(
    ForwardingRegisterFileManager, ForwardingRegisterFileEmitter()
)
