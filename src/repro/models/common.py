"""Machinery shared by the in-order OSM micro-architecture models.

The tutorial 5-stage pipeline (Section 4) and the StrongARM case study
(Section 5.1) are *execution-driven*: operations carry out their semantics
when they reach the execute stage, reading and writing one architectural
state in program order — exactly the organisation the paper describes,
where the OSM "can then decode the instruction and initialize all its
allocation and inquiry identifiers" in F and compute results in E.

This module provides the :class:`Operation` payload, the fetch-unit
hardware module (program counter, redirects, I-cache stall via refused
token release), stage modules with variable-latency hold-release
countdowns, and the reset/kill plumbing for control hazards.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core import ResetManager, SlotManager, register_native_emitter
from ..core.fuse import SlotManagerEmitter
from ..de.module import HardwareModule
from ..iss.decode_cache import DecodeCache
from ..memory.cache import Cache
from ..memory.tlb import Tlb


class Operation:
    """Per-operation payload attached to an OSM while it is in flight."""

    __slots__ = ("seq", "instr", "info", "pc", "wrong_path", "kill_count", "miss_cycles")

    def __init__(self, seq: int, pc: int, instr):
        self.seq = seq
        self.pc = pc
        self.instr = instr
        #: the :class:`~repro.isa.arm.semantics.ExecInfo` once executed
        self.info = None
        self.wrong_path = False
        self.kill_count = 0
        #: outstanding memory-miss cycles (used by models with a separate
        #: miss-wait state, e.g. the multithreaded model)
        self.miss_cycles = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Operation(#{self.seq} {self.instr.text})"


class StageUnit(HardwareModule):
    """A pipeline stage: one occupancy token plus a hold-release countdown.

    ``hold(n)`` makes the stage refuse its token release for *n* further
    cycles — the paper's variable-latency idiom ("the fetch manager m_f
    can turn down its token release request until the cache access is
    finished").
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.manager = SlotManager(name)
        self._countdown = 0
        self.stall_cycles = 0

    def hold(self, cycles: int) -> None:
        if cycles > 0:
            self._countdown = max(self._countdown, cycles)
            self.manager.hold_release = True

    def begin_cycle(self, cycle: int) -> None:
        if self._countdown > 0:
            self._countdown -= 1
            self.stall_cycles += 1
            if self._countdown == 0:
                self.manager.hold_release = False
                self.notify()  # the hold expired: blocked OSMs can move

    def reset(self) -> None:
        self._countdown = 0
        self.manager.hold_release = False


class FetchUnit(HardwareModule):
    """The fetch stage: PC management, I-cache timing, redirects.

    The TMI is a :class:`~repro.core.SlotManager`; allocation is refused
    while a redirect is pending (so the cycle after a taken branch fetches
    from the new target, giving the standard squash penalty) and after the
    program has exited.
    """

    def __init__(self, decode_at: Callable[[int], object], entry: int,
                 icache: Optional[Cache] = None, itlb: Optional[Tlb] = None,
                 cache: Optional[DecodeCache] = None):
        super().__init__("m_f")
        self.manager = _FetchSlotManager("m_f", self)
        self.decode_at = decode_at
        #: the shared decode cache, probed inline before falling back to
        #: ``decode_at`` (hot-path shortcut; the block layer is probed
        #: first so re-entering a cached block counts as block reuse —
        #: the same contract as ``BaseInterpreter.fetch_decode``)
        self._cache = cache
        self.fetch_pc = entry
        self.icache = icache
        self.itlb = itlb
        self._redirect_pending: Optional[int] = None
        self._countdown = 0
        self.halted = False
        self._seq = 0
        self.fetched = 0
        self.stall_cycles = 0

    # -- interface used by edge guards/actions ------------------------------

    def can_accept(self) -> bool:
        return not self.halted and self._redirect_pending is None

    def fetch_into(self, osm) -> None:
        """Edge action for I->F: create the operation for this OSM."""
        pc = self.fetch_pc
        cache = self._cache
        if cache is not None:
            block = cache.blocks.get(pc)
            if block is not None:
                cache.block_hits += 1
                instr = block.instrs[0]
            else:
                instr = cache.entries.get(pc)
                if instr is None:
                    instr = self.decode_at(pc)
        else:
            instr = self.decode_at(pc)
        seq = self._seq
        osm.operation = Operation(seq, pc, instr)
        self._seq = seq + 1
        self.fetched += 1
        self.fetch_pc = (pc + 4) & 0xFFFFFFFF
        itlb = self.itlb
        icache = self.icache
        latency = 1
        if itlb is not None:
            latency += itlb.access(pc)
        if icache is not None:
            latency += icache.access(pc) - 1
        if latency > 1:
            self._countdown = latency - 1
            self.manager.hold_release = True

    def redirect(self, target: int) -> None:
        """Called when a control transfer resolves; takes effect at the
        next cycle boundary (end_cycle)."""
        self._redirect_pending = target & 0xFFFFFFFF

    def halt(self) -> None:
        self.halted = True

    # -- hardware behaviour ----------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        if self._countdown > 0:
            self._countdown -= 1
            self.stall_cycles += 1
            if self._countdown == 0:
                self.manager.hold_release = False
                self.notify()

    def end_cycle(self, cycle: int) -> None:
        if self._redirect_pending is not None:
            self.fetch_pc = self._redirect_pending
            self._redirect_pending = None
            # A redirect squashes any in-progress I-cache stall.
            self._countdown = 0
            self.manager.hold_release = False
            self.notify()  # fetch resumes: idle OSMs can claim the slot


class _FetchSlotManager(SlotManager):
    """Fetch-slot TMI that also gates allocation on fetch-unit state."""

    def __init__(self, name: str, unit: FetchUnit):
        super().__init__(name)
        self._unit = unit

    def allocate(self, osm, ident, txn):
        # inlined can_accept() + SlotManager.allocate (hot path: probed by
        # every idle OSM every cycle)
        unit = self._unit
        if unit.halted or unit._redirect_pending is not None:
            return None
        token = self.token
        if token.holder is None and id(token) not in txn._granted_ids:
            return token
        return None


class _FetchSlotEmitter(SlotManagerEmitter):
    """Native fusion codegen mirroring :meth:`_FetchSlotManager.allocate`:
    the plain slot grant gated on the fetch unit accepting.  Inquire,
    release and the commit hooks are inherited SlotManager behaviour."""

    def allocate(self, g, w, mgr, out, ident_expr, avoid):
        unit = g.bind("fetch_unit", mgr._unit)
        w(f"{out} = None")
        gate = f"{unit}.halted or {unit}._redirect_pending is not None"
        with w.block(f"if not ({gate}):"):
            super().allocate(g, w, mgr, out, ident_expr, avoid)


register_native_emitter(_FetchSlotManager, _FetchSlotEmitter())


class ResetUnit(HardwareModule):
    """Hardware half of the control-hazard mechanism: latches dooms at the
    cycle boundary so speculative OSMs die at the *next* control step
    (Section 4, "Control hazard")."""

    def __init__(self):
        super().__init__("m_reset")
        self.manager = ResetManager("m_reset")
        self.kills = 0

    def end_cycle(self, cycle: int) -> None:
        if self.manager._pending:
            self.manager.latch()
            self.notify()  # doomed OSMs' reset edges become enabled

    def acknowledge(self, osm) -> None:
        self.kills += 1
        self.manager.acknowledge(osm)


def memory_latency(info, dcache, dtlb=None) -> int:
    """Cycles spent in the memory stage for one operation.

    Single accesses take 1 cycle plus cache/TLB penalties; block
    transfers (LDM/STM) take one beat per word, each beat passing through
    the cache; the TLB is consulted once (sequential words share a page
    in practice).
    """
    if info is None or info.mem_addr is None:
        return 1
    addresses = info.mem_addrs if info.mem_addrs is not None else (info.mem_addr,)
    latency = 0
    for index, address in enumerate(addresses):
        beat = 1
        if dtlb is not None and index == 0:
            beat += dtlb.access(address)
        if dcache is not None:
            beat += dcache.access(address, info.mem_is_store) - 1
        latency += beat
    return latency


def kill_younger(
    osms: List, victim_seq_threshold: int, reset: ResetUnit, immediate: bool = False
) -> int:
    """Doom every in-flight OSM whose operation is younger than the
    resolving operation (sequence number above the threshold).

    ``immediate`` makes the doom effective in the *current* control step
    instead of the next one.  Execution-driven models whose execute stage
    is wider than one slot need this: a wrong-path operation scheduled
    later in the same control step must be stopped before it performs its
    semantics.  (Oracle-driven models keep the paper's next-step kill.)

    Returns the number of OSMs doomed.  Ops already doomed stay doomed.
    """
    doomed = 0
    for osm in osms:
        operation = osm.operation
        if operation is None or osm.in_initial:
            continue
        if operation.seq > victim_seq_threshold and not reset.manager.is_doomed(osm):
            if immediate:
                reset.manager.doom_now(osm)
            else:
                reset.manager.doom(osm)
            doomed += 1
    return doomed
