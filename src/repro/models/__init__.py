"""OSM micro-architecture models.

* :mod:`repro.models.pipeline5` — the Section-4 tutorial 5-stage pipeline.
* :mod:`repro.models.strongarm` — the StrongARM (SA-1100) case study.
* :mod:`repro.models.ppc750` — the PowerPC-750 out-of-order case study.
* :mod:`repro.models.vliw` — VLIW extension (Section 6).
* :mod:`repro.models.multithread` — multithreaded extension (Section 6).
"""
