"""Multithreaded extension model (paper Section 6)."""

from .model import MultithreadModel, ThreadContext, ThreadedFetchUnit

__all__ = ["MultithreadModel", "ThreadContext", "ThreadedFetchUnit"]
