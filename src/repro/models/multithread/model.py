"""Multithreaded (MT) processor model (paper Section 6).

"When modeling MT with OSM, each OSM carries a tag indicating the thread
that it belongs to.  The tags are used as part of the identifiers for
token transactions and may contribute to the ranking of the OSMs."

This model implements fine-grained (round-robin) multithreading over the
5-stage ARM-like pipeline:

* every OSM carries its thread id in ``osm.tag``;
* each thread has its own architectural state and its own register-file
  TMI — value/update identifiers are implicitly thread-qualified because
  the per-thread manager instance *is* part of the identifier;
* the shared fetch stage arbitrates by tag: its TMI prefers the
  round-robin thread but grants the slot to any ready thread whose
  pipeline is not stalled, which is how MT hides memory latency;
* ranking is (age, tag) so interleaved threads stay deterministic.

Long-latency stalls (D-cache misses) in one thread leave the shared
pipeline stages free for the others; the bench/examples show the
throughput gain over running the same programs back-to-back.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...core import (
    Allocate,
    AllocateMany,
    Condition,
    CycleDrivenKernel,
    Director,
    Discard,
    Inquire,
    MachineSpec,
    OperationStateMachine,
    Release,
    ReleaseMany,
    SimulationStats,
    SlotManager,
)
from ...de.module import HardwareModule
from ...isa.arm import semantics as arm_semantics
from ...isa.bits import popcount_significant_bytes
from ...isa.program import Program
from ...iss.interpreter import ArmInterpreter
from ...memory.cache import Cache
from ...core.director import rank_stable_in_flight
from ..common import Operation, ResetUnit, StageUnit
from ..strongarm.managers import ForwardingRegisterFileManager


@rank_stable_in_flight
def _mt_rank(osm):
    """Age ranking with the thread tag contributing (Section 6).

    Depends only on the operation seq, tag and serial, all fixed while the
    OSM is in flight, so the director may cache the rank order between
    I-boundary transitions.
    """
    operation = osm.operation
    if operation is None:
        return (1, osm.tag, osm.serial)
    return (0, operation.seq, osm.tag)


class ThreadContext:
    """One hardware thread: functional state plus fetch bookkeeping."""

    def __init__(self, tid: int, program: Program, stdin: bytes = b""):
        self.tid = tid
        self.iss = ArmInterpreter(program, stdin=stdin)
        self.fetch_pc = program.entry
        self.redirect_pending: Optional[int] = None
        self.halted = False
        self.retired = 0

    @property
    def state(self):
        return self.iss.state

    def can_fetch(self) -> bool:
        return not self.halted and self.redirect_pending is None


class ThreadedFetchUnit(HardwareModule):
    """Shared fetch stage with per-tag arbitration.

    The TMI checks the identity (tag) of the requesting OSM — exactly the
    Section-6 recipe — and grants the slot round-robin among threads that
    can fetch this cycle.
    """

    def __init__(self, threads: Sequence[ThreadContext]):
        super().__init__("m_f")
        self.threads = list(threads)
        self.manager = _ThreadedFetchManager("m_f", self)
        self._turn = 0
        self._seq = 0
        self.fetched_per_thread = [0] * len(self.threads)

    def thread_may_fetch(self, tid: int) -> bool:
        thread = self.threads[tid]
        if not thread.can_fetch():
            return False
        # Round-robin preference: the turn-holder fetches; if it cannot,
        # any other ready thread may take the slot (the arbitration that
        # hides stalled threads).
        turn = self._turn % len(self.threads)
        if tid == turn:
            return True
        return not self.threads[turn].can_fetch()

    def fetch_into(self, osm) -> None:
        tid = osm.tag
        thread = self.threads[tid]
        pc = thread.fetch_pc
        instr = thread.iss.fetch_decode(pc)
        operation = Operation(self._seq, pc, instr)
        self._seq += 1
        osm.operation = operation
        thread.fetch_pc = (pc + 4) & 0xFFFFFFFF
        self.fetched_per_thread[tid] += 1
        self._turn = tid + 1

    def end_cycle(self, cycle: int) -> None:
        for thread in self.threads:
            if thread.redirect_pending is not None:
                thread.fetch_pc = thread.redirect_pending
                thread.redirect_pending = None
                self.notify()  # the thread may fetch again


class _ThreadedFetchManager(SlotManager):
    def __init__(self, name: str, unit: ThreadedFetchUnit):
        super().__init__(name)
        self._unit = unit

    def allocate(self, osm, ident, txn):
        if not self._unit.thread_may_fetch(osm.tag):
            return None
        return super().allocate(osm, ident, txn)


class MultithreadModel:
    """Fine-grained multithreaded 5-stage pipeline over the ARM-like ISA."""

    def __init__(
        self,
        programs: Sequence[Program],
        dcache: Optional[Cache] = None,
        osms_per_thread: int = 3,
        restart: bool = False,
    ):
        if not programs:
            raise ValueError("need at least one thread program")
        self.threads = [ThreadContext(tid, prog) for tid, prog in enumerate(programs)]
        self.fetch = ThreadedFetchUnit(self.threads)
        self.decode_stage = StageUnit("m_d")
        self.execute_stage = StageUnit("m_e")
        self.buffer_stage = StageUnit("m_b")
        self.writeback_stage = StageUnit("m_w")
        self.regfiles: List[ForwardingRegisterFileManager] = [
            ForwardingRegisterFileManager(f"m_r{tid}", 17, _Backing())
            for tid in range(len(self.threads))
        ]
        #: per-thread miss-wait slots: a missing memory operation parks
        #: here so the shared pipeline keeps flowing for other threads
        self.miss_units: List[StageUnit] = [
            StageUnit(f"m_miss{tid}") for tid in range(len(self.threads))
        ]
        self.reset_unit = ResetUnit()
        self.dcache = dcache

        self.spec = self._build_spec()
        self.director = Director(rank_key=_mt_rank, restart=restart)
        self.osms = []
        for tid in range(len(self.threads)):
            for _ in range(osms_per_thread):
                self.osms.append(OperationStateMachine(self.spec, tag=tid))
        self.director.add(*self.osms)
        self.kernel = CycleDrivenKernel(
            self.director,
            [self.fetch, self.decode_stage, self.execute_stage,
             self.buffer_stage, self.writeback_stage, self.reset_unit,
             *self.miss_units],
        )
        self.kernel.stop_condition = self._finished

    #: kept as an attribute for back-compat with code referencing
    #: ``MultithreadModel._rank``
    _rank = staticmethod(_mt_rank)

    def _build_spec(self) -> MachineSpec:
        spec = MachineSpec("mt5")
        for name in "IFDEBW":
            spec.state(name, initial=(name == "I"))
        spec.state("M")  # per-thread miss wait (latency hiding)

        def sources(osm):
            return osm.operation.instr.src_regs

        def dests(osm):
            return osm.operation.instr.dst_regs

        # inlined into fused steppers (must mirror the bodies above)
        sources.__fuse_inline__ = "osm.operation.instr.src_regs"
        dests.__fuse_inline__ = "osm.operation.instr.dst_regs"

        spec.edge("I", "F", Condition([Allocate(self.fetch.manager, slot="m_f")]),
                  action=self.fetch.fetch_into, label="fetch")
        spec.edge("F", "D",
                  Condition([Allocate(self.decode_stage.manager, slot="m_d"),
                             Release("m_f")]), label="decode")
        # Per-thread register files: the inquiry/allocation is routed to
        # the requesting OSM's thread manager via parallel guarded edges
        # (the tag is part of the effective identifier).
        for tid, regfile in enumerate(self.regfiles):
            spec.edge(
                "D", "E",
                Condition([
                    _TagGuard(tid),
                    Allocate(self.execute_stage.manager, slot="m_e"),
                    Inquire(regfile, sources),
                    AllocateMany(regfile, dests, slot="rupd"),
                    Release("m_d"),
                ]),
                action=self._execute_op,
                label=f"issue-t{tid}",
            )
        spec.edge("E", "B",
                  Condition([Allocate(self.buffer_stage.manager, slot="m_b"),
                             Release("m_e")]),
                  action=self._enter_buffer, label="mem")
        # A missing memory operation steps aside into its thread's miss
        # slot, freeing the shared buffer stage for the other threads —
        # this is where multithreading hides memory latency.
        for tid, miss_unit in enumerate(self.miss_units):
            spec.edge(
                "B", "M",
                Condition([
                    _TagGuard(tid),
                    _MissGuard(),
                    Allocate(miss_unit.manager, slot="m_miss"),
                    Release("m_b"),
                ]),
                priority=5,
                action=self._park_miss,
                label=f"miss-t{tid}",
            )
        spec.edge("M", "W",
                  Condition([Allocate(self.writeback_stage.manager, slot="m_w"),
                             Release("m_miss")]),
                  action=self._enter_writeback, label="miss-done")
        spec.edge("B", "W",
                  Condition([Allocate(self.writeback_stage.manager, slot="m_w"),
                             Release("m_b")]),
                  action=self._enter_writeback, label="writeback")
        spec.edge("W", "I", Condition([Release("m_w"), ReleaseMany("rupd")]),
                  action=self._complete, label="retire")
        for state in ("F", "D"):
            spec.edge(state, "I",
                      Condition([Inquire(self.reset_unit.manager), Discard()]),
                      priority=10, action=self._killed, label=f"reset-{state}")
        spec.validate()
        return spec

    # -- edge actions ----------------------------------------------------------

    def _execute_op(self, osm) -> None:
        thread = self.threads[osm.tag]
        op: Operation = osm.operation
        fn = op.instr.exec_fn
        info = fn(thread.state) if fn is not None \
            else arm_semantics.execute(thread.state, op.instr)
        op.info = info
        thread.state.instret += 1
        if op.instr.unit == "mul" and info.executed:
            extra = popcount_significant_bytes(info.mul_operand or 0)
            if extra > 0:
                self.execute_stage.hold(extra)
        sequential = (op.pc + 4) & 0xFFFFFFFF
        if info.next_pc != sequential or thread.state.halted:
            thread.redirect_pending = info.next_pc
            if thread.state.halted:
                thread.halted = True
            self._kill_thread_younger(osm.tag, op.seq)

    def _kill_thread_younger(self, tid: int, seq: int) -> None:
        for osm in self.osms:
            if osm.tag != tid or osm.operation is None or osm.in_initial:
                continue
            if osm.operation.seq > seq and not self.reset_unit.manager.is_doomed(osm):
                self.reset_unit.manager.doom_now(osm)

    def _memory_access(self, osm) -> None:
        from ..common import memory_latency

        op: Operation = osm.operation
        extra = memory_latency(op.info, self.dcache) - 1
        if extra > 0:
            op.miss_cycles = extra  # consumed by the B->M miss edge

    def _enter_buffer(self, osm) -> None:
        """E->B: charge memory latency; publish forwardable ALU results."""
        self._memory_access(osm)
        op: Operation = osm.operation
        if not op.instr.is_load:
            regfile = self.regfiles[osm.tag]
            for reg in op.instr.dst_regs:
                regfile.mark_ready(reg, osm)

    def _enter_writeback(self, osm) -> None:
        op: Operation = osm.operation
        if op.instr.is_load:
            regfile = self.regfiles[osm.tag]
            for reg in op.instr.dst_regs:
                regfile.mark_ready(reg, osm)

    def _park_miss(self, osm) -> None:
        op: Operation = osm.operation
        self.miss_units[osm.tag].hold(op.miss_cycles)
        op.miss_cycles = 0

    def _complete(self, osm) -> None:
        self.threads[osm.tag].retired += 1
        self.director.stats.instructions += 1

    def _killed(self, osm) -> None:
        self.reset_unit.acknowledge(osm)

    # -- running ------------------------------------------------------------------

    def _finished(self) -> bool:
        return all(t.halted for t in self.threads) and all(
            osm.in_initial for osm in self.osms
        )

    def run(self, max_cycles: int = 10_000_000) -> SimulationStats:
        return self.kernel.run(max_cycles)

    @property
    def cycles(self) -> int:
        return self.kernel.stats.cycles

    def exit_codes(self) -> List[int]:
        return [t.state.exit_code for t in self.threads]


class _TagGuard:
    """Guard primitive matching the OSM's thread tag."""

    kind = "guard"

    def __init__(self, tid: int):
        self.tid = tid

    def probe(self, osm, txn) -> bool:
        return osm.tag == self.tid

    def __repr__(self) -> str:  # pragma: no cover
        return f"TagGuard({self.tid})"


class _MissGuard:
    """Guard primitive: true for operations with an outstanding miss."""

    kind = "guard"

    def probe(self, osm, txn) -> bool:
        return osm.operation.miss_cycles > 0

    def __repr__(self) -> str:  # pragma: no cover
        return "MissGuard()"


class _Backing:
    def __init__(self):
        self.values = [0] * 17

    def read(self, reg: int) -> int:
        return self.values[reg]

    def write(self, reg: int, value: int) -> None:
        self.values[reg] = value & 0xFFFFFFFF
