"""The PowerPC-750 out-of-order superscalar model — paper Section 5.2.

The MPC750 is a dual-issue out-of-order processor: a 6-entry fetch queue,
dual in-order dispatch, six function units (IU1, IU2, SRU, LSU, FPU, BPU)
each with an independent reservation station, register renaming buffers,
and a 6-entry completion queue retiring up to two operations per cycle in
program order.

The operation OSM is the paper's Figure 2 shape: from the fetch queue an
operation dispatches *directly into its function unit* when its operands
and the unit are available (the high-priority edge), and *into the unit's
reservation station* otherwise — "such typical superscalar behavior cannot
be modeled by L-chart, but it can be easily modeled by an OSM".

States: I (idle) -> Q (fetch queue) -> {X (executing) | R (reservation
station) -> X} -> W (waiting in completion queue) -> I.

Functional execution uses the in-order oracle
(:class:`~repro.iss.oracle.Oracle`); fetch follows real BHT/BTIC
predictions, creates wrong-path operations on mispredicted paths, and the
reset manager kills them when the branch resolves, exactly as Section 4's
control-hazard scheme prescribes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...core.director import operation_seq_rank
from ...core import (
    Allocate,
    AllocateMany,
    Condition,
    CycleDrivenKernel,
    Director,
    Discard,
    Guard,
    Inquire,
    MachineSpec,
    OperationStateMachine,
    Release,
    ReleaseMany,
    SimulationStats,
    defuse_spec,
    enable_fusion,
)
from ...de.module import HardwareModule
from ...isa.ppc import isa as ppc_isa
from ...isa.program import Program
from ...iss.interpreter import PpcInterpreter
from ...iss.oracle import ExecRecord, Oracle
from ...memory.cache import Cache
from ..common import ResetUnit, StageUnit
from .branch import BranchPredictor
from .managers import CompletionQueueManager, FetchQueueManager, RegisterRenameManager

CLOCK_HZ = 300_000_000  # a typical PPC-750 part of the era

UNIT_NAMES = (ppc_isa.UNIT_IU1, ppc_isa.UNIT_IU2, ppc_isa.UNIT_SRU,
              ppc_isa.UNIT_LSU, ppc_isa.UNIT_FPU, ppc_isa.UNIT_BPU)

#: execution latencies by mnemonic (cycles in the function unit)
MULDIV_LATENCY = {"mulli": 3, "mullw": 4, "mulhw": 5, "divw": 19, "divwu": 19}
LSU_BASE_LATENCY = 2


def default_icache() -> Cache:
    return Cache("icache", size=32 * 1024, line_size=32, assoc=8, miss_penalty=30)


def default_dcache() -> Cache:
    return Cache("dcache", size=32 * 1024, line_size=32, assoc=8, miss_penalty=30)


class OooOperation:
    """Per-operation payload for the out-of-order model."""

    __slots__ = ("seq", "pc", "instr", "record", "predicted_next", "done",
                 "src_deps", "rs_unit", "exec_unit")

    def __init__(self, seq: int, pc: int, instr, record: Optional[ExecRecord]):
        self.seq = seq
        self.pc = pc
        self.instr = instr
        #: the oracle record; None marks a wrong-path operation
        self.record = record
        self.predicted_next = (pc + 4) & 0xFFFFFFFF
        #: True once execution has finished (result forwardable)
        self.done = False
        #: producer operations captured at dispatch (RS wakeup set)
        self.src_deps: Tuple["OooOperation", ...] = ()
        #: which reservation station holds the op (unit name), if any
        self.rs_unit: Optional[str] = None
        #: which unit executed the op
        self.exec_unit: Optional[str] = None

    @property
    def wrong_path(self) -> bool:
        return self.record is None

    def __repr__(self) -> str:  # pragma: no cover
        tag = " WP" if self.wrong_path else ""
        return f"OooOperation(#{self.seq} {self.instr.text}{tag})"


def unit_routes(instr) -> Tuple[str, ...]:
    """Acceptable function units in preference order for an instruction."""
    unit = instr.unit
    if unit == ppc_isa.UNIT_IU2:
        # Plain integer work runs on either IU; prefer IU2 to keep IU1
        # free for multiply/divide (dispatcher heuristic).
        return (ppc_isa.UNIT_IU2, ppc_isa.UNIT_IU1)
    return (unit,)


class FetchEngine(HardwareModule):
    """Fetch unit: PC, branch prediction, oracle cursor, I-cache timing."""

    def __init__(self, oracle: Oracle, predictor: BranchPredictor, entry: int,
                 icache: Optional[Cache] = None, fetch_width: int = 4):
        super().__init__("fetch")
        self.oracle = oracle
        self.predictor = predictor
        self.fetch_pc = entry
        self.icache = icache
        self.fetch_width = fetch_width
        self.cursor = 0  # next correct-path oracle index
        self.halted = False
        self._fetched_this_cycle = 0
        self._stall = 0
        self._redirect: Optional[Tuple[int, int]] = None  # (target, cursor)
        self._seq = 0
        self.fetched = 0
        self.wrong_path_fetched = 0

    def can_accept(self) -> bool:
        if self.halted or self._redirect is not None or self._stall > 0:
            return False
        if self._fetched_this_cycle >= self.fetch_width:
            return False
        # Past program exit every further fetch would be junk; stop.
        if self.oracle.record(self.cursor) is None and not self._on_wrong_path():
            return False
        return True

    def _on_wrong_path(self) -> bool:
        expected = self.oracle.record(self.cursor)
        return expected is not None and expected.pc != self.fetch_pc

    def fetch_into(self, osm) -> None:
        pc = self.fetch_pc
        expected = self.oracle.record(self.cursor)
        if expected is not None and expected.pc == pc:
            record: Optional[ExecRecord] = expected
            self.cursor += 1
        else:
            record = None
            self.wrong_path_fetched += 1
        instr = self.oracle.decode_at(pc)
        op = OooOperation(self._seq, pc, instr, record)
        self._seq += 1
        self.fetched += 1
        self._fetched_this_cycle += 1
        if instr.is_branch:
            taken, target = self.predictor.predict(instr)
            if taken and target is not None:
                op.predicted_next = target
        self.fetch_pc = op.predicted_next
        osm.operation = op
        if self.icache is not None:
            extra = self.icache.access(pc) - 1
            if extra > 0:
                self._stall = extra
        return

    def redirect(self, target: int, cursor: int) -> None:
        self._redirect = (target & 0xFFFFFFFF, cursor)

    def halt(self) -> None:
        self.halted = True

    def begin_cycle(self, cycle: int) -> None:
        if self._fetched_this_cycle >= self.fetch_width:
            self.notify()  # the fetch budget refreshed
        self._fetched_this_cycle = 0
        if self._stall > 0:
            self._stall -= 1
            if self._stall == 0:
                self.notify()  # I-cache stall over

    def end_cycle(self, cycle: int) -> None:
        if self._redirect is not None:
            self.fetch_pc, self.cursor = self._redirect
            self._redirect = None
            self._stall = 0
            self.notify()  # fetch resumes at the redirect target


class QueueUnit(HardwareModule):
    """Hardware wrapper resetting a queue manager's per-cycle budget."""

    def __init__(self, manager):
        super().__init__(manager.name)
        self.manager = manager

    def begin_cycle(self, cycle: int) -> None:
        if self.manager.budget_was_used():
            self.notify()  # dispatch/retire budget refreshed
        self.manager.new_cycle()


class Ppc750Model:
    """OSM model of the PowerPC 750."""

    def __init__(
        self,
        program: Program,
        icache: Optional[Cache] = None,
        dcache: Optional[Cache] = None,
        perfect_memory: bool = False,
        n_osms: int = 18,
        restart: bool = True,
        fetch_width: int = 4,
        fq_size: int = 6,
        cq_size: int = 6,
        dispatch_width: int = 2,
        retire_width: int = 2,
        gpr_rename_buffers: int = 6,
        stdin: bytes = b"",
        fused: bool = True,
    ):
        if not perfect_memory:
            icache = icache if icache is not None else default_icache()
            dcache = dcache if dcache is not None else default_dcache()
        self.program = program
        self.oracle = Oracle(PpcInterpreter(program, stdin=stdin))
        self.predictor = BranchPredictor()
        self.fetch = FetchEngine(self.oracle, self.predictor, program.entry,
                                 icache, fetch_width)
        self.dcache = dcache

        self.fq = FetchQueueManager(size=fq_size, dispatch_width=dispatch_width)
        self.cq = CompletionQueueManager(size=cq_size, retire_width=retire_width)
        self.rename = RegisterRenameManager(gpr_buffers=gpr_rename_buffers)
        self.units: Dict[str, StageUnit] = {
            name: StageUnit(f"m_{name}") for name in UNIT_NAMES
        }
        from ...core import PoolManager

        self.stations: Dict[str, PoolManager] = {
            name: PoolManager(f"m_rs_{name}", 1) for name in UNIT_NAMES
        }
        self.reset_unit = ResetUnit()

        self.spec = self._build_spec()
        self.director = Director(rank_key=operation_seq_rank, restart=restart)
        self.osms = [OperationStateMachine(self.spec) for _ in range(n_osms)]
        self.director.add(*self.osms)
        if fused:
            # Fused per-state steppers for every state the effect analysis
            # certifies (repro.core.fuse); scheduling results identical.
            enable_fusion(self.spec)
        else:
            # reset the fusion census too, so counters from an earlier
            # fused build never leak into an unfused one
            defuse_spec(self.spec)

        modules: List[HardwareModule] = [
            self.fetch,
            QueueUnit(self.fq),
            QueueUnit(self.cq),
            *self.units.values(),
            self.reset_unit,
        ]
        self.kernel = CycleDrivenKernel(self.director, modules)
        self.kernel.stop_condition = self._finished
        self.halted = False
        self.retired = 0

    # -- spec ---------------------------------------------------------------

    def _build_spec(self) -> MachineSpec:
        spec = MachineSpec("ppc750")
        for name in "IQRXW":
            spec.state(name, initial=(name == "I"))

        def src_idents(osm):
            return osm.operation.instr.src_regs

        def dst_idents(osm):
            return osm.operation.instr.dst_regs

        def dep_idents(osm):
            return osm.operation.src_deps

        # inlined into fused steppers (must mirror the bodies above)
        src_idents.__fuse_inline__ = "osm.operation.instr.src_regs"
        dst_idents.__fuse_inline__ = "osm.operation.instr.dst_regs"
        dep_idents.__fuse_inline__ = "osm.operation.src_deps"

        # Audited suppression: can_accept() consults the lazily-extended
        # oracle trace, so probing may run the reference ISS forward and
        # append records (effectcheck sees shared writes / opaque calls).
        # The extension is pure memoization — record(i) is idempotent and
        # its value never changes once computed — so probe frequency
        # cannot affect results.
        spec.edge(
            "I", "Q",
            Condition([Guard(lambda osm: self.fetch.can_accept(), "fetch-ready"),
                       Allocate(self.fq, slot="fq")]),
            action=self.fetch.fetch_into,
            label="fetch",
        ).allow_lint("EFF001", "EFF008")

        # Dispatch edges.  Direct-to-unit (Figure 2's e2) outranks
        # dispatch-to-reservation-station (e1); unit preference order is
        # encoded in decreasing static priority.
        priority = 40
        for unit_name in UNIT_NAMES:
            spec.edge(
                "Q", "X",
                Condition([
                    Guard(self._route_guard(unit_name, 0), f"route-{unit_name}"),
                    Inquire(self.rename, src_idents),
                    Allocate(self.units[unit_name].manager, slot="unit"),
                    Allocate(self.cq, slot="cq"),
                    AllocateMany(self.rename, dst_idents, slot="ren"),
                    Release("fq"),
                ]),
                priority=priority,
                action=self._dispatch_execute,
                label=f"direct-{unit_name}",
            )
            priority -= 1
        # IU fallback: plain integer ops may also enter IU1 directly.
        spec.edge(
            "Q", "X",
            Condition([
                Guard(self._route_guard(ppc_isa.UNIT_IU1, 1), "route-iu1-alt"),
                Inquire(self.rename, src_idents),
                Allocate(self.units[ppc_isa.UNIT_IU1].manager, slot="unit"),
                Allocate(self.cq, slot="cq"),
                AllocateMany(self.rename, dst_idents, slot="ren"),
                Release("fq"),
            ]),
            priority=priority,
            action=self._dispatch_execute,
            label="direct-iu1-alt",
        )

        priority = 20
        for unit_name in UNIT_NAMES:
            spec.edge(
                "Q", "R",
                Condition([
                    Guard(self._route_guard(unit_name, 0), f"rsroute-{unit_name}"),
                    Allocate(self.stations[unit_name], slot="rs"),
                    Allocate(self.cq, slot="cq"),
                    AllocateMany(self.rename, dst_idents, slot="ren"),
                    Release("fq"),
                ]),
                priority=priority,
                action=self._dispatch_to_station(unit_name),
                label=f"station-{unit_name}",
            )
            priority -= 1

        # Issue from reservation station into the unit.
        for unit_name in UNIT_NAMES:
            spec.edge(
                "R", "X",
                Condition([
                    Guard(self._station_guard(unit_name), f"in-rs-{unit_name}"),
                    Inquire(self.rename, dep_idents),
                    Allocate(self.units[unit_name].manager, slot="unit"),
                    Release("rs"),
                ]),
                action=self._begin_execution,
                label=f"issue-{unit_name}",
            )

        spec.edge(
            "X", "W",
            Condition([Release("unit")]),
            action=self._finish_execution,
            label="finish",
        )
        spec.edge(
            "W", "I",
            Condition([Release("cq"), ReleaseMany("ren")]),
            action=self._retire,
            label="retire",
        )
        for state in "QRXW":
            spec.edge(
                state, "I",
                Condition([Inquire(self.reset_unit.manager), Discard()]),
                priority=90,
                action=self._killed,
                label=f"reset-{state}",
            )
        spec.validate()
        return spec

    def _route_guard(self, unit_name: str, choice_index: int):
        def guard(osm) -> bool:
            routes = unit_routes(osm.operation.instr)
            return len(routes) > choice_index and routes[choice_index] == unit_name

        return guard

    def _station_guard(self, unit_name: str):
        def guard(osm) -> bool:
            return osm.operation.rs_unit == unit_name

        return guard

    # -- edge actions ----------------------------------------------------------

    def _capture_deps(self, op: OooOperation) -> None:
        deps = []
        for reg in op.instr.src_regs:
            # Youngest producer older than this op.  The op's own rename
            # allocation has already committed (it is the chain tail for
            # ops like ``addi r3, r3, 1``), so walk past self to find the
            # true source.
            for producer in reversed(self.rename.producers[reg]):
                if producer is op or producer.seq >= op.seq:
                    continue
                if not producer.done:
                    deps.append(producer)
                break
        op.src_deps = tuple(deps)

    def _dispatch_execute(self, osm) -> None:
        """Q->X direct dispatch: capture (empty) deps, start executing."""
        self._capture_deps(osm.operation)
        self._begin_execution(osm)

    def _dispatch_to_station(self, unit_name: str):
        def action(osm) -> None:
            op: OooOperation = osm.operation
            op.rs_unit = unit_name
            self._capture_deps(op)

        return action

    def _begin_execution(self, osm) -> None:
        op: OooOperation = osm.operation
        unit_manager = osm.token_buffer["unit"].manager
        unit_name = unit_manager.name[2:]  # strip "m_"
        op.exec_unit = unit_name
        unit = self.units[unit_name]
        latency = self.execute_latency(op)
        if latency > 1:
            unit.hold(latency - 1)
        if op.instr.is_branch and op.record is not None:
            self._resolve_branch(op)
        return

    def execute_latency(self, op: OooOperation) -> int:
        """Function-unit occupancy in cycles."""
        instr = op.instr
        if instr.unit == ppc_isa.UNIT_LSU:
            latency = LSU_BASE_LATENCY
            if (
                op.record is not None
                and op.record.mem_addr is not None
                and self.dcache is not None
            ):
                latency += self.dcache.access(op.record.mem_addr, op.record.mem_is_store) - 1
            return latency
        if instr.mnemonic in MULDIV_LATENCY:
            return MULDIV_LATENCY[instr.mnemonic]
        return 1

    def _resolve_branch(self, op: OooOperation) -> None:
        record = op.record
        actual_next = record.next_pc
        taken = record.next_pc != ((op.pc + 4) & 0xFFFFFFFF)
        self.predictor.resolve(op.instr, taken, actual_next)
        if op.predicted_next != actual_next:
            self.predictor.note_mispredict()
            self.fetch.redirect(actual_next, record.index + 1)
            self._kill_younger(op.seq)

    def _kill_younger(self, seq_threshold: int) -> None:
        reset = self.reset_unit
        for osm in self.osms:
            op = osm.operation
            if op is None or osm.in_initial:
                continue
            if op.seq > seq_threshold and not reset.manager.is_doomed(osm):
                reset.manager.doom(osm)

    def _finish_execution(self, osm) -> None:
        osm.operation.done = True

    def _retire(self, osm) -> None:
        op: OooOperation = osm.operation
        self.retired += 1
        if op.record is None:
            raise AssertionError(
                f"wrong-path operation retired: {op!r} — kill machinery broken"
            )
        self.director.stats.instructions += 1
        if self.oracle.length is not None and op.record.index == self.oracle.length - 1:
            self.halted = True
            self.fetch.halt()
            self._kill_younger(op.seq)

    def _killed(self, osm) -> None:
        osm.operation.done = True  # release any captured dependants
        self.reset_unit.acknowledge(osm)

    # -- running -------------------------------------------------------------------

    def _finished(self) -> bool:
        return self.halted and all(osm.in_initial for osm in self.osms)

    def run(self, max_cycles: int = 10_000_000) -> SimulationStats:
        return self.kernel.run(max_cycles)

    @property
    def cycles(self) -> int:
        return self.kernel.stats.cycles

    @property
    def exit_code(self) -> int:
        return self.oracle.exit_code

    @property
    def output_text(self) -> str:
        return self.oracle.interpreter.syscalls.output_text
