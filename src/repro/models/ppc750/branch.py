"""PPC-750 branch prediction hardware: BHT and BTIC.

Section 5.2: "The memory subsystem, the branch history table and the
branch target instruction cache of PowerPC 750 are implemented purely in
the hardware layer."  These classes have no TMI; the fetch unit consults
them directly.

* The BHT is a table of 2-bit saturating counters (the MPC750 has a
  512-entry BHT) predicting conditional-branch direction.
* The BTIC caches branch targets (the real BTIC caches target
  *instructions*; for a timing model, caching the target address captures
  the same zero-bubble taken-branch behaviour).  Indirect branches
  (``blr``/``bctr``) predict through the BTIC as well, which doubles as a
  crude link/count-register target predictor.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ...isa.ppc.decode import PpcInstruction

TAKEN_THRESHOLD = 2  # counter values 2,3 predict taken


class BranchHistoryTable:
    """2-bit saturating-counter direction predictor."""

    def __init__(self, entries: int = 512):
        if entries & (entries - 1):
            raise ValueError(f"BHT entries must be a power of two, got {entries}")
        self.entries = entries
        self._counters = [1] * entries  # weakly not-taken
        self.lookups = 0
        self.updates = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        self.lookups += 1
        return self.would_predict(pc)

    def would_predict(self, pc: int) -> bool:
        """Pure direction lookup (no statistics) for delta-cycle models."""
        return self._counters[self._index(pc)] >= TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        self.updates += 1
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)


class BranchTargetCache:
    """A small fully-associative target cache (BTIC role), LRU replaced."""

    def __init__(self, entries: int = 64):
        self.entries = entries
        self._table: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Optional[int]:
        target = self._table.get(pc)
        if target is None:
            self.misses += 1
            return None
        self.hits += 1
        self._table.move_to_end(pc)
        return target

    def peek(self, pc: int) -> Optional[int]:
        """Pure target lookup (no statistics, no LRU touch)."""
        return self._table.get(pc)

    def update(self, pc: int, target: int) -> None:
        self._table[pc] = target
        self._table.move_to_end(pc)
        while len(self._table) > self.entries:
            self._table.popitem(last=False)


class BranchPredictor:
    """Combined fetch-time predictor: direction (BHT) + target (BTIC)."""

    def __init__(self, bht_entries: int = 512, btic_entries: int = 64):
        self.bht = BranchHistoryTable(bht_entries)
        self.btic = BranchTargetCache(btic_entries)
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, instr: PpcInstruction) -> Tuple[bool, Optional[int]]:
        """Predict (taken?, target) for a decoded branch at fetch time."""
        self.predictions += 1
        pc = instr.addr
        if instr.kind == "b":
            target = instr.imm if instr.aa else pc + instr.imm
            return True, target & 0xFFFFFFFF
        if instr.kind == "bc":
            static_target = (instr.imm if instr.aa else pc + instr.imm) & 0xFFFFFFFF
            if instr.bo & 0b10000 and instr.bo & 0b00100:
                return True, static_target  # branch-always encoding
            return self.bht.predict(pc), static_target
        # blr / bctr: indirect — predict last seen target if any
        target = self.btic.lookup(pc)
        if target is None:
            return False, None
        return True, target

    def predict_pure(self, instr: PpcInstruction) -> Tuple[bool, Optional[int]]:
        """Side-effect-free prediction for delta-cycle (re-evaluating)
        hardware models; identical policy to :meth:`predict`."""
        pc = instr.addr
        if instr.kind == "b":
            target = instr.imm if instr.aa else pc + instr.imm
            return True, target & 0xFFFFFFFF
        if instr.kind == "bc":
            static_target = (instr.imm if instr.aa else pc + instr.imm) & 0xFFFFFFFF
            if instr.bo & 0b10000 and instr.bo & 0b00100:
                return True, static_target
            return self.bht.would_predict(pc), static_target
        target = self.btic.peek(pc)
        if target is None:
            return False, None
        return True, target

    def resolve(self, instr: PpcInstruction, taken: bool, target: int) -> None:
        """Train the predictor with the architected outcome."""
        pc = instr.addr
        if instr.kind == "bc":
            self.bht.update(pc, taken)
        if taken:
            self.btic.update(pc, target)

    def note_mispredict(self) -> None:
        self.mispredictions += 1

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions
