"""PowerPC-750 out-of-order superscalar case-study model (Section 5.2)."""

from .branch import BranchHistoryTable, BranchPredictor, BranchTargetCache
from .managers import CompletionQueueManager, FetchQueueManager, RegisterRenameManager
from .model import (
    CLOCK_HZ,
    OooOperation,
    Ppc750Model,
    default_dcache,
    default_icache,
    unit_routes,
)

__all__ = [
    "BranchHistoryTable",
    "BranchPredictor",
    "BranchTargetCache",
    "CLOCK_HZ",
    "CompletionQueueManager",
    "FetchQueueManager",
    "OooOperation",
    "Ppc750Model",
    "RegisterRenameManager",
    "default_dcache",
    "default_icache",
    "unit_routes",
]
