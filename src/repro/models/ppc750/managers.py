"""PPC-750-specific token managers.

Section 5.2: "a 6-entry fetch queue, 6 function units with 6 independent
reservation stations, 5 register files with renaming buffers, and a
6-entry completion queue".  The TMI-enabled modules of this model:

* 1 fetch-queue manager (6 entries, in-order dual dispatch),
* 1 completion-queue manager (6 entries, in-order retirement, 2/cycle),
* 6 function-unit managers (IU1, IU2, SRU, LSU, FPU, BPU),
* 6 reservation-station managers (one per unit),
* 1 register-rename manager containing the 5 register files with their
  renaming buffers (GPR x6, FPR x6, CR, LR, CTR — FPR present but
  untouched by the integer subset),
* 1 reset manager.

The branch history table, the branch target instruction cache and the
memory subsystem are implemented purely in the hardware layer, per the
paper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...core.errors import TokenError
from ...core.manager import PoolManager, TokenManager
from ...core.token import Token
from ...core.transaction import Transaction
from ...isa.ppc.isa import CR0_REG, CTR_REG, LR_REG


class FetchQueueManager(PoolManager):
    """The 6-entry fetch (instruction) queue.

    Tokens are granted in fetch order; releases — i.e. dispatches — are
    accepted only in that same order, so operations leave the queue in
    program order.  The per-cycle dual-dispatch budget is enforced here
    too; the owning hardware module resets it each cycle.
    """

    def __init__(self, name: str = "m_fq", size: int = 6, dispatch_width: int = 2):
        super().__init__(name, size)
        self.dispatch_width = dispatch_width
        self._order: List[Any] = []  # OSMs in allocation (fetch) order
        self._dispatched_this_cycle = 0

    def new_cycle(self) -> None:
        self._dispatched_this_cycle = 0

    def budget_was_used(self) -> bool:
        return self._dispatched_this_cycle > 0

    def holders_of(self, ident) -> List[Any]:
        """Wait-for precision for deadlock analysis: a refused dispatch is
        only ever waiting on the queue head (in-order release) — never on
        its fellow queued operations."""
        return [self._order[0]] if self._order else []

    def release(self, osm, token: Token, txn: Transaction) -> bool:
        if not super().release(osm, token, txn):
            return False
        if self._dispatched_this_cycle >= self.dispatch_width:
            return False
        # In-order dispatch: only the oldest queued operation may leave.
        return bool(self._order) and self._order[0] is osm

    def on_allocate_commit(self, osm, token: Token) -> None:
        super().on_allocate_commit(osm, token)
        self._order.append(osm)

    def on_release_commit(self, osm, token: Token, value: Any) -> None:
        super().on_release_commit(osm, token, value)
        self._order.remove(osm)
        self._dispatched_this_cycle += 1

    def on_discard(self, osm, token: Token) -> None:
        super().on_discard(osm, token)
        if osm in self._order:
            self._order.remove(osm)


class CompletionQueueManager(PoolManager):
    """The 6-entry completion queue: in-order retirement, 2 per cycle.

    Entries are allocated at dispatch (program order, because dispatch is
    in-order) and released at retirement; a release is accepted only for
    the oldest outstanding entry — the reorder-buffer discipline expressed
    as a token-release policy.
    """

    def __init__(self, name: str = "m_cq", size: int = 6, retire_width: int = 2):
        super().__init__(name, size)
        self.retire_width = retire_width
        self._order: List[Any] = []
        self._retired_this_cycle = 0

    def new_cycle(self) -> None:
        self._retired_this_cycle = 0

    def budget_was_used(self) -> bool:
        return self._retired_this_cycle > 0

    def head(self):
        return self._order[0] if self._order else None

    def holders_of(self, ident) -> List[Any]:
        """A refused retirement waits only on the completion-queue head."""
        return [self._order[0]] if self._order else []

    def release(self, osm, token: Token, txn: Transaction) -> bool:
        if not super().release(osm, token, txn):
            return False
        if self._retired_this_cycle >= self.retire_width:
            return False
        return bool(self._order) and self._order[0] is osm

    def on_allocate_commit(self, osm, token: Token) -> None:
        super().on_allocate_commit(osm, token)
        self._order.append(osm)

    def on_release_commit(self, osm, token: Token, value: Any) -> None:
        super().on_release_commit(osm, token, value)
        self._order.remove(osm)
        self._retired_this_cycle += 1

    def on_discard(self, osm, token: Token) -> None:
        super().on_discard(osm, token)
        if osm in self._order:
            self._order.remove(osm)


class RegisterRenameManager(TokenManager):
    """The five register files and their renaming buffers, as one TMI.

    Architectural name space: GPR 0..31, CR0 (32), LR (33), CTR (34);
    the FPR file exists for structural fidelity but the integer subset
    never allocates from it.  Rename-buffer sizes follow the MPC750: six
    GPR buffers, six FPR buffers, one each for CR/LR/CTR.

    Identifier protocol:

    * ``allocate`` with a register number grabs a rename buffer from the
      register's file (dispatch stalls when the file is exhausted — a
      real MPC750 structural hazard);
    * ``inquire`` with a register number asks "is the latest value of
      this register available now" (direct-dispatch operand check);
    * ``inquire`` with a captured producer :class:`Operation` asks "has
      this specific producer finished" (reservation-station wakeup).

    Producer bookkeeping is driven entirely by token traffic: allocation
    appends the producer to the register's in-flight chain, release
    (retirement) and discard (squash) remove it.
    """

    DEFAULT_FILES: Tuple[Tuple[str, int], ...] = (
        ("gpr", 6),
        ("fpr", 6),
        ("cr", 1),
        ("lr", 1),
        ("ctr", 1),
    )

    def __init__(self, name: str = "m_rename", gpr_buffers: int = 6):
        super().__init__(name)
        self.files: Tuple[Tuple[str, int], ...] = tuple(
            (file_name, gpr_buffers if file_name in ("gpr", "fpr") else size)
            for file_name, size in self.DEFAULT_FILES
        )
        self.pools: Dict[str, List[Token]] = {}
        for file_name, size in self.files:
            self.pools[file_name] = [
                Token(self, f"{name}.{file_name}[{i}]", i) for i in range(size)
            ]
        self.producers: Dict[int, List[Any]] = {reg: [] for reg in range(35)}

    @staticmethod
    def file_of(reg: int) -> str:
        if reg < 32:
            return "gpr"
        if reg == CR0_REG:
            return "cr"
        if reg == LR_REG:
            return "lr"
        if reg == CTR_REG:
            return "ctr"
        raise TokenError(f"unknown architectural register {reg}")

    def free_buffers(self, file_name: str) -> int:
        return sum(1 for t in self.pools[file_name] if t.holder is None)

    def last_producer(self, reg: int):
        chain = self.producers[reg]
        return chain[-1] if chain else None

    # -- TMI ---------------------------------------------------------------

    def allocate(self, osm, ident, txn: Transaction) -> Optional[Token]:
        if not isinstance(ident, int):
            raise TokenError(f"{self.name}: bad rename identifier {ident!r}")
        for token in self.pools[self.file_of(ident)]:
            if token.holder is None and not txn.is_tentatively_granted(token):
                token.value = ident  # which register this buffer renames
                return token
        return None

    def inquire(self, osm, ident, txn: Transaction) -> bool:
        if isinstance(ident, int):
            producer = self.last_producer(ident)
            return producer is None or producer.done
        # captured producer operation (reservation-station wakeup)
        return bool(ident.done)

    def release(self, osm, token: Token, txn: Transaction) -> bool:
        if token.manager is not self or token.holder is not osm:
            raise TokenError(f"{self.name}: invalid release of {token!r}")
        return True

    def _drop_producer(self, token: Token, osm) -> None:
        chain = self.producers.get(token.value)
        if chain is not None and osm.operation in chain:
            chain.remove(osm.operation)

    def on_allocate_commit(self, osm, token: Token) -> None:
        super().on_allocate_commit(osm, token)
        self.producers[token.value].append(osm.operation)

    def on_release_commit(self, osm, token: Token, value: Any) -> None:
        super().on_release_commit(osm, token, value)
        self._drop_producer(token, osm)

    def on_discard(self, osm, token: Token) -> None:
        super().on_discard(osm, token)
        self._drop_producer(token, osm)
