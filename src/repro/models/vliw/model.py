"""VLIW processor model (paper Section 6).

"Since Very Long Instruction Word (VLIW) architectures have simpler
pipeline control, they can be easily modeled by OSM as well."

This model demonstrates that: a width-W in-order machine over the
ARM-like ISA in which each pipeline stage's TMI controls a *pool* of W
occupancy tokens (one per issue slot) and there is **no register-file
manager** — a VLIW relies on the compiler for data hazards, so operations
never stall on operands.  The only stalls are structural: a memory or
multiplier hold on a stage refuses all token releases of that stage,
which stalls the whole machine in lockstep — the classic VLIW global
stall.

Functional results remain exact even on unscheduled code because
operations still execute in program order at E (director rank order);
only the *timing* assumes the compiler has scheduled around latencies,
which is precisely the VLIW contract.
"""

from __future__ import annotations

from typing import Optional

from ...core import (
    Allocate,
    Condition,
    CycleDrivenKernel,
    Director,
    Discard,
    Inquire,
    MachineSpec,
    OperationStateMachine,
    PoolManager,
    Release,
    SimulationStats,
)
from ...core.director import operation_seq_rank
from ...de.module import HardwareModule
from ...isa.arm import semantics as arm_semantics
from ...isa.bits import popcount_significant_bytes
from ...isa.program import Program
from ...iss.interpreter import ArmInterpreter
from ...memory.cache import Cache
from ..common import FetchUnit, Operation, ResetUnit


class WideStageUnit(HardwareModule):
    """A pipeline stage with one occupancy token per issue slot."""

    def __init__(self, name: str, width: int):
        super().__init__(name)
        self.manager = PoolManager(name, width)
        self._countdown = 0
        self.stall_cycles = 0

    def hold(self, cycles: int) -> None:
        if cycles > 0:
            self._countdown = max(self._countdown, cycles)
            self.manager.hold_release = True

    def begin_cycle(self, cycle: int) -> None:
        if self._countdown > 0:
            self._countdown -= 1
            self.stall_cycles += 1
            if self._countdown == 0:
                self.manager.hold_release = False
                self.notify()  # the lockstep stall expired


class WideFetchUnit(FetchUnit):
    """Fetch unit issuing up to ``width`` sequential operations per cycle.

    The fetch TMI controls ``width`` slot tokens; the per-cycle budget
    follows from the slot pool itself (an OSM transitions once per step,
    so at most ``width`` fresh operations can claim slots each cycle).
    """

    def __init__(self, decode_at, entry: int, width: int,
                 icache: Optional[Cache] = None,
                 cache=None):
        super().__init__(decode_at, entry, icache, None, cache=cache)
        self.manager = _WideFetchManager("m_f", self, width)


class _WideFetchManager(PoolManager):
    def __init__(self, name: str, unit: WideFetchUnit, width: int):
        super().__init__(name, width)
        self._unit = unit

    def allocate(self, osm, ident, txn):
        if not self._unit.can_accept():
            return None
        return super().allocate(osm, ident, txn)


class VliwModel:
    """A width-W VLIW pipeline (F D E B W) over the ARM-like ISA."""

    def __init__(
        self,
        program: Program,
        width: int = 2,
        icache: Optional[Cache] = None,
        dcache: Optional[Cache] = None,
        restart: bool = False,
        stdin: bytes = b"",
    ):
        if width < 1:
            raise ValueError(f"VLIW width must be >= 1, got {width}")
        self.width = width
        self.iss = ArmInterpreter(program, stdin=stdin)
        self.state = self.iss.state

        self.fetch = WideFetchUnit(self.iss.fetch_decode, program.entry, width,
                                   icache, cache=self.iss.decode_cache)
        self.decode_stage = WideStageUnit("m_d", width)
        self.execute_stage = WideStageUnit("m_e", width)
        self.buffer_stage = WideStageUnit("m_b", width)
        self.writeback_stage = WideStageUnit("m_w", width)
        self.reset_unit = ResetUnit()
        self.dcache = dcache

        self.spec = self._build_spec()
        self.director = Director(rank_key=operation_seq_rank, restart=restart)
        self.osms = [
            OperationStateMachine(self.spec) for _ in range(5 * width + width)
        ]
        self.director.add(*self.osms)
        self.kernel = CycleDrivenKernel(
            self.director,
            [self.fetch, self.decode_stage, self.execute_stage,
             self.buffer_stage, self.writeback_stage, self.reset_unit],
        )
        self.kernel.stop_condition = self._finished
        self.retired = 0

    def _build_spec(self) -> MachineSpec:
        spec = MachineSpec(f"vliw{self.width}")
        for name in "IFDEBW":
            spec.state(name, initial=(name == "I"))
        spec.edge("I", "F", Condition([Allocate(self.fetch.manager, slot="m_f")]),
                  action=self.fetch.fetch_into, label="fetch")
        spec.edge("F", "D",
                  Condition([Allocate(self.decode_stage.manager, slot="m_d"),
                             Release("m_f")]),
                  label="decode")
        # No register-file inquiry: the compiler owns data hazards.
        spec.edge("D", "E",
                  Condition([Allocate(self.execute_stage.manager, slot="m_e"),
                             Release("m_d")]),
                  action=self._execute_op, label="issue")
        spec.edge("E", "B",
                  Condition([Allocate(self.buffer_stage.manager, slot="m_b"),
                             Release("m_e")]),
                  action=self._memory_access, label="mem")
        spec.edge("B", "W",
                  Condition([Allocate(self.writeback_stage.manager, slot="m_w"),
                             Release("m_b")]),
                  label="writeback")
        spec.edge("W", "I", Condition([Release("m_w")]),
                  action=self._complete, label="retire")
        for state in ("F", "D"):
            spec.edge(state, "I",
                      Condition([Inquire(self.reset_unit.manager), Discard()]),
                      priority=10, action=self._killed, label=f"reset-{state}")
        spec.validate()
        return spec

    # -- edge actions -----------------------------------------------------------

    def _execute_op(self, osm) -> None:
        op: Operation = osm.operation
        fn = op.instr.exec_fn
        info = fn(self.state) if fn is not None \
            else arm_semantics.execute(self.state, op.instr)
        op.info = info
        self.state.instret += 1
        if op.instr.unit == "mul" and info.executed:
            extra = popcount_significant_bytes(info.mul_operand or 0)
            if extra > 0:
                self.execute_stage.hold(extra)
        sequential = (op.pc + 4) & 0xFFFFFFFF
        if info.next_pc != sequential or self.state.halted:
            self.fetch.redirect(info.next_pc)
            if self.state.halted:
                self.fetch.halt()
            from ..common import kill_younger

            kill_younger(self.osms, op.seq, self.reset_unit, immediate=True)

    def _memory_access(self, osm) -> None:
        from ..common import memory_latency

        op: Operation = osm.operation
        extra = memory_latency(op.info, self.dcache) - 1
        if extra > 0:
            self.buffer_stage.hold(extra)

    def _complete(self, osm) -> None:
        self.retired += 1
        self.director.stats.instructions += 1

    def _killed(self, osm) -> None:
        self.reset_unit.acknowledge(osm)

    # -- running -----------------------------------------------------------------

    def _finished(self) -> bool:
        return self.state.halted and all(osm.in_initial for osm in self.osms)

    def run(self, max_cycles: int = 10_000_000) -> SimulationStats:
        return self.kernel.run(max_cycles)

    @property
    def cycles(self) -> int:
        return self.kernel.stats.cycles

    @property
    def exit_code(self) -> int:
        return self.state.exit_code
