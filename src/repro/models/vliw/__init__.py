"""VLIW extension model (paper Section 6)."""

from .model import VliwModel, WideFetchUnit, WideStageUnit

__all__ = ["VliwModel", "WideFetchUnit", "WideStageUnit"]
