"""Comparison simulators: SimpleScalar-style, SystemC-style, and the
hardware reference used as the Table-1 stand-in."""
