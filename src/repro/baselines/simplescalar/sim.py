"""SimpleScalar-style hand-coded StrongARM pipeline simulator.

This is the comparison point of Section 5.1: a conventional
micro-architecture simulator in which "programmers have to sequentialize
the concurrency of hardware in ad-hoc ways".  The pipeline registers,
hazard checks, forwarding distances, squash logic and stall counters are
all written out by hand here — no OSMs, no token managers — implementing
the *same* micro-architecture as
:class:`~repro.models.strongarm.StrongArmModel` so that the two can be
cross-validated cycle-for-cycle and raced for simulation speed (the
paper's 650k vs 550k cycles/s comparison).
"""

from __future__ import annotations

import time
from typing import List, Optional

from ...isa.arm import semantics as arm_semantics
from ...isa.bits import popcount_significant_bytes
from ...isa.program import Program
from ...iss.interpreter import ArmInterpreter
from ...memory.cache import Cache
from ...memory.tlb import Tlb

N_HAZARD_REGS = 17  # r0..r15 + flags pseudo-register
MAX_WRITERS_PER_REG = 3  # update-token pool depth (matches the OSM model)


class _PipelineOp:
    __slots__ = ("seq", "pc", "instr", "info")

    def __init__(self, seq: int, pc: int, instr):
        self.seq = seq
        self.pc = pc
        self.instr = instr
        self.info = None


class SimpleScalarArm:
    """Ad-hoc sequentialised five-stage StrongARM simulator.

    Same micro-architecture as the OSM model: F/D/E/B/W stages, combined
    register file with forwarding (ALU results forward from B, load
    results from W), early-terminating multiplier, I/D caches and TLBs,
    two-cycle taken-branch penalty with next-cycle squash.
    """

    def __init__(
        self,
        program: Program,
        icache: Optional[Cache] = None,
        dcache: Optional[Cache] = None,
        itlb: Optional[Tlb] = None,
        dtlb: Optional[Tlb] = None,
        stdin: bytes = b"",
    ):
        self.iss = ArmInterpreter(program, stdin=stdin)
        self.state = self.iss.state
        self.decode_at = self.iss.fetch_decode
        self.icache = icache
        self.dcache = dcache
        self.itlb = itlb
        self.dtlb = dtlb

        self.fetch_pc = program.entry
        self.halted_fetch = False
        self._seq = 0
        # pipeline registers
        self.f_op: Optional[_PipelineOp] = None
        self.d_op: Optional[_PipelineOp] = None
        self.e_op: Optional[_PipelineOp] = None
        self.b_op: Optional[_PipelineOp] = None
        self.w_op: Optional[_PipelineOp] = None
        # stall countdowns
        self.fetch_hold = 0
        self.e_hold = 0
        self.b_hold = 0
        # hazard scoreboard: outstanding writers (program order) + the
        # youngest writer's result-ready flag, mirroring the OSM model's
        # per-register update-token pool
        self.reg_writers: List[List[_PipelineOp]] = [[] for _ in range(N_HAZARD_REGS)]
        self.reg_ready: List[bool] = [True] * N_HAZARD_REGS
        # squash/redirect latches
        self._squash_pending = False
        self._redirect_target: Optional[int] = None

        self.cycles = 0
        self.retired = 0
        self.wall_seconds = 0.0

    # -- timing hooks (identical policies to the OSM model) ------------------

    def execute_latency(self, op: _PipelineOp) -> int:
        instr = op.instr
        if instr.unit == "mul" and op.info is not None and op.info.executed:
            operand = op.info.mul_operand or 0
            latency = 1 + popcount_significant_bytes(operand)
            if instr.kind == "mull":
                latency += 1
            return latency
        return 1

    def memory_latency(self, op: _PipelineOp) -> int:
        info = op.info
        if info is None or info.mem_addr is None:
            return 1
        addresses = info.mem_addrs if info.mem_addrs is not None else (info.mem_addr,)
        latency = 0
        for index, address in enumerate(addresses):
            beat = 1
            if self.dtlb is not None and index == 0:
                beat += self.dtlb.access(address)
            if self.dcache is not None:
                beat += self.dcache.access(address, info.mem_is_store) - 1
            latency += beat
        return latency

    def fetch_latency(self, pc: int) -> int:
        latency = 1
        if self.itlb is not None:
            latency += self.itlb.access(pc)
        if self.icache is not None:
            latency += self.icache.access(pc) - 1
        return latency

    # -- hazard helpers ----------------------------------------------------------

    def _sources_ready(self, op: _PipelineOp) -> bool:
        for reg in op.instr.src_regs:
            if self.reg_writers[reg] and not self.reg_ready[reg]:
                return False
        return True

    def _dests_free(self, op: _PipelineOp) -> bool:
        return all(
            len(self.reg_writers[reg]) < MAX_WRITERS_PER_REG
            for reg in op.instr.dst_regs
        )

    def _claim_dests(self, op: _PipelineOp) -> None:
        for reg in op.instr.dst_regs:
            self.reg_writers[reg].append(op)
            self.reg_ready[reg] = False

    def _publish_dests(self, op: _PipelineOp) -> None:
        for reg in op.instr.dst_regs:
            writers = self.reg_writers[reg]
            if writers and writers[-1] is op:
                self.reg_ready[reg] = True

    def _free_dests(self, op: _PipelineOp) -> None:
        for reg in op.instr.dst_regs:
            writers = self.reg_writers[reg]
            if op in writers:
                writers.remove(op)
            if not writers:
                self.reg_ready[reg] = True

    # -- one simulated cycle ---------------------------------------------------------

    def cycle(self) -> None:
        # begin-of-cycle: countdowns tick (mirrors StageUnit.begin_cycle)
        if self.fetch_hold > 0:
            self.fetch_hold -= 1
        if self.e_hold > 0:
            self.e_hold -= 1
        if self.b_hold > 0:
            self.b_hold -= 1

        # Stages are processed oldest-first so a stage freed this cycle can
        # be refilled this cycle (what the director's rank order achieves).
        # retire: W -> done
        if self.w_op is not None:
            self._free_dests(self.w_op)
            self.retired += 1
            self.w_op = None
        # B -> W
        if self.b_op is not None and self.b_hold == 0:
            op = self.b_op
            self.b_op = None
            self.w_op = op
            if op.instr.is_load:
                self._publish_dests(op)
        # E -> B
        if self.e_op is not None and self.b_op is None and self.e_hold == 0:
            op = self.e_op
            self.e_op = None
            self.b_op = op
            latency = self.memory_latency(op)
            if latency > 1:
                self.b_hold = latency - 1
            if not op.instr.is_load:
                self._publish_dests(op)
        # D -> E (issue + functional execute)
        if (
            self.d_op is not None
            and self.e_op is None
            and self._sources_ready(self.d_op)
            and self._dests_free(self.d_op)
        ):
            op = self.d_op
            self.d_op = None
            self.e_op = op
            fn = op.instr.exec_fn
            op.info = fn(self.state) if fn is not None \
                else arm_semantics.execute(self.state, op.instr)
            self.state.instret += 1
            self._claim_dests(op)
            extra = self.execute_latency(op) - 1
            if extra > 0:
                self.e_hold = extra
            sequential = (op.pc + 4) & 0xFFFFFFFF
            if op.info.next_pc != sequential:
                self._squash_pending = True
                self._redirect_target = op.info.next_pc
            if self.state.halted:
                self.halted_fetch = True
                self._squash_pending = True
                self._redirect_target = None
        # F -> D
        if self.f_op is not None and self.d_op is None and self.fetch_hold == 0:
            self.d_op = self.f_op
            self.f_op = None
        # fetch -> F
        if (
            self.f_op is None
            and not self.halted_fetch
            and not self._squash_pending
        ):
            pc = self.fetch_pc
            op = _PipelineOp(self._seq, pc, self.decode_at(pc))
            self._seq += 1
            self.f_op = op
            self.fetch_pc = (pc + 4) & 0xFFFFFFFF
            latency = self.fetch_latency(pc)
            if latency > 1:
                self.fetch_hold = latency - 1

        # end-of-cycle: apply squash/redirect (mirrors end_cycle latching)
        if self._squash_pending:
            self.f_op = None
            self.d_op = None
            self.fetch_hold = 0
            if self._redirect_target is not None:
                self.fetch_pc = self._redirect_target
            self._squash_pending = False
            self._redirect_target = None

        self.cycles += 1

    # -- run loop -------------------------------------------------------------------

    def finished(self) -> bool:
        return (
            self.state.halted
            and self.f_op is None
            and self.d_op is None
            and self.e_op is None
            and self.b_op is None
            and self.w_op is None
        )

    def run(self, max_cycles: int = 10_000_000) -> int:
        """Run to completion; returns the cycle count."""
        start = time.perf_counter()
        while not self.finished():
            if self.cycles >= max_cycles:
                raise RuntimeError(f"did not finish within {max_cycles} cycles")
            self.cycle()
        self.wall_seconds += time.perf_counter() - start
        return self.cycles

    @property
    def exit_code(self) -> int:
        return self.state.exit_code

    @property
    def cycles_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds
