"""SimpleScalar-style ad-hoc sequential StrongARM simulator."""

from .sim import SimpleScalarArm

__all__ = ["SimpleScalarArm"]
