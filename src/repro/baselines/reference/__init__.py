"""Hardware reference simulator (the Table-1 iPAQ stand-in)."""

from .sim import CLOCK_HZ, IpaqReference

__all__ = ["CLOCK_HZ", "IpaqReference"]
