"""The hardware reference: the Table-1 "iPAQ-3650" stand-in.

The paper validates the StrongARM model against a real iPAQ, measuring
run time with the Linux ``time`` utility, and attributes the residual
differences to (a) the resolution and overhead of ``time``, (b) system
call interpretation in the ISS, and (c) unknown details of the memory
subsystem.

We cannot ship an iPAQ, so the reference is an *independent* simulator
(built on the hand-coded pipeline) that differs from the OSM model in
exactly those components:

* a shared memory bus with contention and DRAM page-miss behaviour on
  cache refills (the OSM model idealises refill latency as a constant);
* a per-syscall kernel-entry overhead (the paper's ISS interprets system
  calls, the iPAQ runs a real kernel);
* a deterministic measurement-jitter model for the ``time`` utility
  (quantisation to clock ticks plus process startup overhead).

Each effect is small; together they produce the low-single-digit signed
percentage differences that Table 1 reports.
"""

from __future__ import annotations

from typing import Optional

from ...isa.program import Program
from ...memory.bus import MemoryBus
from ...memory.cache import Cache
from ...memory.tlb import Tlb
from ..simplescalar.sim import SimpleScalarArm

CLOCK_HZ = 206_000_000  # SA-1100 in the iPAQ-3650
#: `time` reports in 10 ms ticks on the iPAQ's kernel
TIME_TICK_SECONDS = 0.01
#: process startup + syscall measurement overhead of `time`
STARTUP_OVERHEAD_SECONDS = 0.004
#: extra kernel-entry cycles per software interrupt on real hardware
SYSCALL_KERNEL_CYCLES = 180
#: fraction of refills that hit a DRAM page miss, as an LCG threshold
DRAM_PAGE_MISS_PERIOD = 3
DRAM_PAGE_MISS_EXTRA = 8


class IpaqReference(SimpleScalarArm):
    """Detailed StrongARM hardware reference for Table 1."""

    def __init__(
        self,
        program: Program,
        icache: Optional[Cache] = None,
        dcache: Optional[Cache] = None,
        itlb: Optional[Tlb] = None,
        dtlb: Optional[Tlb] = None,
        stdin: bytes = b"",
    ):
        from ...models.strongarm.model import (
            default_dcache,
            default_dtlb,
            default_icache,
            default_itlb,
        )

        super().__init__(
            program,
            icache=icache if icache is not None else default_icache(),
            dcache=dcache if dcache is not None else default_dcache(),
            itlb=itlb if itlb is not None else default_itlb(),
            dtlb=dtlb if dtlb is not None else default_dtlb(),
            stdin=stdin,
        )
        self.bus = MemoryBus("sa1100-bus", beat_cycles=2, width_bytes=4)
        self._refills = 0
        self.clock_hz = CLOCK_HZ

    # -- memory-subsystem detail the OSM model does not have -----------------

    def _refill_extra(self) -> int:
        """Bus contention + occasional DRAM page miss on a refill."""
        self._refills += 1
        extra = self.bus.request(self.cycles, 32)
        if self._refills % DRAM_PAGE_MISS_PERIOD == 0:
            extra += DRAM_PAGE_MISS_EXTRA
        return extra

    def fetch_latency(self, pc: int) -> int:
        latency = super().fetch_latency(pc)
        if latency > 1:  # a miss went to memory
            latency += self._refill_extra()
        return latency

    def memory_latency(self, op) -> int:
        latency = super().memory_latency(op)
        info = op.info
        beats = 1
        if info is not None and info.mem_addrs is not None:
            beats = len(info.mem_addrs)
        if latency > beats:  # some beat went to memory
            latency += self._refill_extra()
        if op.instr.kind == "swi" and op.info is not None and op.info.executed:
            latency += SYSCALL_KERNEL_CYCLES
        return latency

    # -- `time` utility model ----------------------------------------------------

    def measured_seconds(self) -> float:
        """What the `time` utility would report for this run."""
        true_seconds = self.cycles / self.clock_hz + STARTUP_OVERHEAD_SECONDS
        ticks = round(true_seconds / TIME_TICK_SECONDS)
        return max(1, ticks) * TIME_TICK_SECONDS

    def true_seconds(self) -> float:
        return self.cycles / self.clock_hz
