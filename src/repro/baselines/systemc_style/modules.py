"""Port-based hardware modules of the SystemC-style PPC-750 model.

This is the hardware-centric organisation the paper compares against
(Sections 2 and 5.2): modules communicate exclusively through wires with
SystemC evaluate/update (delta-cycle) semantics — state latches at the
clock edge (``on_clock``), request/grant wires settle combinationally
(``evaluate`` repeated until no wire changes).

The micro-architecture is the same dual-issue out-of-order MPC750 as
:class:`repro.models.ppc750.Ppc750Model` — fetch queue, dual in-order
dispatch, six units with reservation stations, rename buffers, completion
queue, BHT/BTIC — so the two simulators can be cross-validated.  The
paper reports agreement within 3%; residual differences here come from
delta-cycle versus director-scheduled intra-cycle ordering, exactly the
"subtle mismatches in interpreting the micro-architecture specifications"
it describes.

Wire protocol summary (one cycle = all ``on_clock`` in module order, then
delta iterations of ``evaluate``/update):

* decisions (fetch bundle, dispatch grants, issue grants, retire grants,
  branch redirect/squash) are *combinational* — recomputed every delta
  with no side effects;
* commitments (queue contents, rename tables, unit countdowns, cache and
  predictor state) happen once, in ``on_clock``, reading the settled
  wires of the previous cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...de.module import PortModule
from ...isa.ppc import isa as ppc_isa
from ...iss.oracle import ExecRecord, Oracle
from ...memory.cache import Cache
from ...models.ppc750.branch import BranchPredictor

UNIT_NAMES = (ppc_isa.UNIT_IU1, ppc_isa.UNIT_IU2, ppc_isa.UNIT_SRU,
              ppc_isa.UNIT_LSU, ppc_isa.UNIT_FPU, ppc_isa.UNIT_BPU)
MULDIV_LATENCY = {"mulli": 3, "mullw": 4, "mulhw": 5, "divw": 19, "divwu": 19}
LSU_BASE_LATENCY = 2
GPR_RENAMES = 6
FETCH_WIDTH = 4
DISPATCH_WIDTH = 2
RETIRE_WIDTH = 2
FQ_SIZE = 6
CQ_SIZE = 6


class PipelineOp:
    """An operation flowing through the wire-connected pipeline."""

    __slots__ = ("seq", "pc", "instr", "record", "predicted_next", "done",
                 "retire_ready", "deps", "unit", "rename_counts")

    def __init__(self, seq: int, pc: int, instr, record: Optional[ExecRecord]):
        self.seq = seq
        self.pc = pc
        self.instr = instr
        self.record = record
        self.predicted_next = (pc + 4) & 0xFFFFFFFF
        self.done = False
        self.retire_ready = False
        self.deps: Tuple["PipelineOp", ...] = ()
        self.unit: Optional[str] = None
        self.rename_counts: Dict[str, int] = {}

    @property
    def wrong_path(self) -> bool:
        return self.record is None

    def __repr__(self) -> str:  # pragma: no cover
        return f"PipelineOp(#{self.seq} {self.instr.text})"


def rename_file_of(reg: int) -> str:
    if reg < 32:
        return "gpr"
    if reg == 32:
        return "cr"
    if reg == 33:
        return "lr"
    return "ctr"


def unit_routes(instr) -> Tuple[str, ...]:
    if instr.unit == ppc_isa.UNIT_IU2:
        return (ppc_isa.UNIT_IU2, ppc_isa.UNIT_IU1)
    return (instr.unit,)


def _squash_threshold(*signals) -> Optional[int]:
    """Combine squash wires; the lowest surviving sequence wins."""
    thresholds = [s[0] for s in signals if s]
    if not thresholds:
        return None
    return min(thresholds)


class FetchModule(PortModule):
    """Program counter, branch prediction, I-cache timing.

    ``evaluate`` computes the cycle's fetch bundle purely (memoised on
    the settled inputs); ``on_clock`` commits it: PC/cursor advance,
    I-cache fills, predictor statistics.
    """

    def __init__(self, oracle: Oracle, predictor: BranchPredictor,
                 entry: int, icache: Optional[Cache]):
        super().__init__("fetcher")
        self.oracle = oracle
        self.predictor = predictor
        self.icache = icache
        self.fetch_pc = entry
        self.cursor = 0
        self.halted = False
        self.stall = 0
        self.seq = 0
        self.fetched = 0
        self.p_iq_free = self.port("iq_free", "in")
        self.p_redirect = self.port("redirect", "in")
        self.p_bundle = self.port("fetch_bundle", "out")
        self._memo_key: Optional[Tuple] = None
        self._memo_bundle: Tuple[PipelineOp, ...] = ()

    # -- combinational ------------------------------------------------------

    def evaluate(self, cycle: int) -> None:
        free = self.p_iq_free.read() or 0
        redirect = self.p_redirect.read()
        key = (cycle, free, redirect if redirect is None else redirect[1:])
        if key != self._memo_key:
            self._memo_key = key
            self._memo_bundle = self._compute_bundle(free, redirect)
        self.p_bundle.write(self._memo_bundle)

    def _compute_bundle(self, free: int, redirect) -> Tuple[PipelineOp, ...]:
        if self.halted or self.stall > 0 or redirect is not None or free <= 0:
            return ()
        bundle: List[PipelineOp] = []
        pc = self.fetch_pc
        cursor = self.cursor
        seq = self.seq
        for _ in range(min(FETCH_WIDTH, free)):
            expected = self.oracle.record(cursor)
            if expected is not None and expected.pc == pc:
                record: Optional[ExecRecord] = expected
                cursor += 1
            elif expected is None:
                break  # past program exit: nothing sensible to fetch
            else:
                record = None  # wrong path
            instr = self.oracle.decode_at(pc)
            op = PipelineOp(seq, pc, instr, record)
            seq += 1
            if instr.is_branch:
                taken, target = self.predictor.predict_pure(instr)
                if taken and target is not None:
                    op.predicted_next = target
            bundle.append(op)
            icache_miss = self.icache is not None and not self.icache.probe(pc)
            pc = op.predicted_next
            if icache_miss:
                break  # the miss stalls the fetch stream
        return tuple(bundle)

    # -- commitment -----------------------------------------------------------

    def on_clock(self, cycle: int) -> None:
        bundle = self.p_bundle.read() or ()
        for op in bundle:
            self.fetched += 1
            if op.instr.is_branch:
                self.predictor.predict(op.instr)  # statistics commit
            if self.icache is not None:
                extra = self.icache.access(op.pc) - 1
                if extra > 0:
                    # The commit edge is already one cycle past the fetch
                    # decision, so charge extra - 1 further blocked cycles
                    # (aligning with the OSM fetch engine's countdown).
                    self.stall = max(0, extra - 1)
            self.fetch_pc = op.predicted_next
            self.cursor = op.record.index + 1 if op.record is not None else self.cursor
            self.seq = op.seq + 1
        if self.stall > 0 and not bundle:
            self.stall -= 1
        redirect = self.p_redirect.read()
        if redirect is not None:
            _, target, cursor = redirect
            self.fetch_pc = target
            self.cursor = cursor
            self.stall = 0
        self._memo_key = None


class InstructionQueueModule(PortModule):
    """The 6-entry fetch queue as a wire-connected FIFO."""

    def __init__(self):
        super().__init__("iq")
        self.entries: List[PipelineOp] = []
        self.p_bundle = self.port("fetch_bundle", "in")
        self.p_grants = self.port("dispatch_grants", "in")
        self.p_squash_br = self.port("squash_br", "in")
        self.p_squash_halt = self.port("squash_halt", "in")
        self.p_free = self.port("iq_free", "out")
        self.p_heads = self.port("iq_heads", "out")

    def evaluate(self, cycle: int) -> None:
        grants = self.p_grants.read() or ()
        granted = {op.seq for op in grants}
        remaining = sum(1 for op in self.entries if op.seq not in granted)
        self.p_free.write(FQ_SIZE - remaining)
        self.p_heads.write(tuple(self.entries[:DISPATCH_WIDTH]))

    def on_clock(self, cycle: int) -> None:
        granted = {op.seq for op in (self.p_grants.read() or ())}
        self.entries = [op for op in self.entries if op.seq not in granted]
        self.entries.extend(self.p_bundle.read() or ())
        threshold = _squash_threshold(self.p_squash_br.read(), self.p_squash_halt.read())
        if threshold is not None:
            self.entries = [op for op in self.entries if op.seq <= threshold]


class RenameModule(PortModule):
    """Rename buffers and producer chains for the five register files."""

    SIZES = {"gpr": GPR_RENAMES, "fpr": GPR_RENAMES, "cr": 1, "lr": 1, "ctr": 1}

    def __init__(self):
        super().__init__("rename")
        self.used = {name: 0 for name in self.SIZES}
        self.producers: Dict[int, List[PipelineOp]] = {r: [] for r in range(35)}
        self.p_grants = self.port("dispatch_grants", "in")
        self.p_retiring = self.port("retire_grants", "in")
        self.p_squash_br = self.port("squash_br", "in")
        self.p_squash_halt = self.port("squash_halt", "in")

    def last_producer_before(self, reg: int, seq: int) -> Optional[PipelineOp]:
        for producer in reversed(self.producers[reg]):
            if producer.seq < seq:
                return producer
        return None

    def on_clock(self, cycle: int) -> None:
        for op in self.p_retiring.read() or ():
            self._release(op)
        for op in self.p_grants.read() or ():
            for reg in op.instr.dst_regs:
                file_name = rename_file_of(reg)
                self.used[file_name] += 1
                op.rename_counts[file_name] = op.rename_counts.get(file_name, 0) + 1
                self.producers[reg].append(op)
        threshold = _squash_threshold(self.p_squash_br.read(), self.p_squash_halt.read())
        if threshold is not None:
            victims: List[PipelineOp] = []
            seen: Set[int] = set()
            for chain in self.producers.values():
                for op in chain:
                    if op.seq > threshold and id(op) not in seen:
                        seen.add(id(op))
                        victims.append(op)
            for op in victims:
                self._release(op)

    def _release(self, op: PipelineOp) -> None:
        for file_name, count in op.rename_counts.items():
            self.used[file_name] -= count
        op.rename_counts = {}
        for reg in op.instr.dst_regs:
            chain = self.producers[reg]
            if op in chain:
                chain.remove(op)


class DispatcherModule(PortModule):
    """Dual in-order dispatch: IQ heads into units or reservation stations."""

    def __init__(self, rename: RenameModule):
        super().__init__("dispatcher")
        self.rename = rename
        self.p_heads = self.port("iq_heads", "in")
        self.p_cq_free = self.port("cq_free", "in")
        self.p_unit_avail = self.port("unit_avail", "in")
        self.p_rs_avail = self.port("rs_avail", "in")
        self.p_retiring = self.port("retire_grants", "in")
        self.p_grants = self.port("dispatch_grants", "out")
        self.p_direct = self.port("direct_issues", "out")
        self.p_rs_fills = self.port("rs_fills", "out")

    def evaluate(self, cycle: int) -> None:
        heads = self.p_heads.read() or ()
        cq_free = self.p_cq_free.read() or 0
        unit_avail = set(self.p_unit_avail.read() or ())
        rs_avail = set(self.p_rs_avail.read() or ())
        grants: List[PipelineOp] = []
        direct: List[Tuple[str, PipelineOp]] = []
        rs_fills: List[Tuple[str, PipelineOp]] = []
        # Rename budget: current usage minus buffers freed by this cycle's
        # retirements (usable the same cycle, as in the OSM model).
        budget = dict(self.rename.used)
        for op in self.p_retiring.read() or ():
            for file_name, count in op.rename_counts.items():
                budget[file_name] -= count
        pending_writes: Set[int] = set()

        for position, op in enumerate(heads):
            if len(grants) >= DISPATCH_WIDTH or cq_free <= len(grants):
                break
            if position != len(grants):
                break  # in-order: an earlier head stalled
            if not self._rename_fits(op, budget):
                break
            ready = self._operands_ready(op, pending_writes)
            placed = False
            for unit in unit_routes(op.instr):
                if ready and unit in unit_avail:
                    direct.append((unit, op))
                    unit_avail.discard(unit)
                    placed = True
                    break
            if not placed:
                for unit in unit_routes(op.instr):
                    if unit in rs_avail:
                        rs_fills.append((unit, op))
                        rs_avail.discard(unit)
                        placed = True
                        break
            if not placed:
                break
            for reg in op.instr.dst_regs:
                budget[rename_file_of(reg)] += 1
                pending_writes.add(reg)
            grants.append(op)
        self.p_grants.write(tuple(grants))
        self.p_direct.write(tuple(direct))
        self.p_rs_fills.write(tuple(rs_fills))

    @staticmethod
    def _rename_fits(op: PipelineOp, budget: Dict[str, int]) -> bool:
        need: Dict[str, int] = {}
        for reg in op.instr.dst_regs:
            file_name = rename_file_of(reg)
            need[file_name] = need.get(file_name, 0) + 1
        return all(
            RenameModule.SIZES[f] - budget[f] >= n for f, n in need.items()
        )

    def _operands_ready(self, op: PipelineOp, pending_writes: Set[int]) -> bool:
        for reg in op.instr.src_regs:
            if reg in pending_writes:
                return False  # written by an earlier same-cycle dispatch
            producer = self.rename.last_producer_before(reg, op.seq)
            if producer is not None and not producer.done:
                return False
        return True


class ReservationStationModule(PortModule):
    """One-entry reservation station in front of a function unit."""

    def __init__(self, unit_name: str, rename: RenameModule):
        super().__init__(f"rs_{unit_name}")
        self.unit_name = unit_name
        self.rename = rename
        self.entry: Optional[PipelineOp] = None
        self.p_rs_fills = self.port("rs_fills", "in")
        self.p_issue_grant = self.port(f"issue_grant_{unit_name}", "in")
        self.p_squash_br = self.port("squash_br", "in")
        self.p_squash_halt = self.port("squash_halt", "in")
        self.p_request = self.port(f"rs_request_{unit_name}", "out")
        self.p_avail = self.port("rs_avail_single", "out")  # rebound in sim

    def evaluate(self, cycle: int) -> None:
        entry = self.entry
        if entry is not None and all(dep.done for dep in entry.deps):
            self.p_request.write(entry)
        else:
            self.p_request.write(None)
        granted = self.p_issue_grant.read()
        frees = self.entry is None or (granted is not None and granted is self.entry)
        self.p_avail.write(self.unit_name if frees else None)

    def on_clock(self, cycle: int) -> None:
        granted = self.p_issue_grant.read()
        if granted is not None and granted is self.entry:
            self.entry = None
        for unit, op in self.p_rs_fills.read() or ():
            if unit == self.unit_name:
                self._capture_deps(op)
                self.entry = op
        threshold = _squash_threshold(self.p_squash_br.read(), self.p_squash_halt.read())
        if threshold is not None and self.entry is not None and self.entry.seq > threshold:
            self.entry = None

    def _capture_deps(self, op: PipelineOp) -> None:
        deps = []
        for reg in op.instr.src_regs:
            producer = self.rename.last_producer_before(reg, op.seq)
            if producer is not None and not producer.done:
                deps.append(producer)
        op.deps = tuple(deps)


class FunctionUnitModule(PortModule):
    """One execution unit: accepts a granted op, counts down its latency."""

    def __init__(self, unit_name: str, dcache: Optional[Cache]):
        super().__init__(f"fu_{unit_name}")
        self.unit_name = unit_name
        self.dcache = dcache
        self.busy_op: Optional[PipelineOp] = None
        self.countdown = 0
        self.p_direct = self.port("direct_issues", "in")
        self.p_rs_request = self.port(f"rs_request_{unit_name}", "in")
        self.p_squash_br = self.port("squash_br", "in")
        self.p_squash_halt = self.port("squash_halt", "in")
        self.p_issue_grant = self.port(f"issue_grant_{unit_name}", "out")
        self.p_avail = self.port("fu_avail_single", "out")  # rebound in sim

    def evaluate(self, cycle: int) -> None:
        free = self.busy_op is None
        rs_op = self.p_rs_request.read()
        will_grant_rs = free and rs_op is not None
        self.p_issue_grant.write(rs_op if will_grant_rs else None)
        # The reservation-station op is older than any same-cycle direct
        # dispatch, so the unit is unavailable to the dispatcher when it
        # is granting its station.
        self.p_avail.write(self.unit_name if free and not will_grant_rs else None)

    def latency_of(self, op: PipelineOp) -> int:
        instr = op.instr
        if instr.unit == ppc_isa.UNIT_LSU:
            latency = LSU_BASE_LATENCY
            if (op.record is not None and op.record.mem_addr is not None
                    and self.dcache is not None):
                latency += self.dcache.access(op.record.mem_addr,
                                              op.record.mem_is_store) - 1
            return latency
        if instr.mnemonic in MULDIV_LATENCY:
            return MULDIV_LATENCY[instr.mnemonic]
        return 1

    def on_clock(self, cycle: int) -> None:
        threshold = _squash_threshold(self.p_squash_br.read(), self.p_squash_halt.read())
        if self.busy_op is not None:
            self.countdown -= 1
            if self.countdown <= 0:
                self.busy_op.done = True
                self.busy_op = None
        accepted: Optional[PipelineOp] = None
        granted = self.p_issue_grant.read()
        if self.busy_op is None and granted is not None:
            accepted = granted
        if accepted is None and self.busy_op is None:
            for unit, op in self.p_direct.read() or ():
                if unit == self.unit_name:
                    accepted = op
                    break
        if accepted is not None and threshold is not None and accepted.seq > threshold:
            accepted = None  # squashed in its grant cycle
        if accepted is not None:
            accepted.unit = self.unit_name
            # The grant cycle counts as the first execution cycle, so the
            # residual occupancy is latency - 2 (floor 0): a 1- or 2-cycle
            # op is forwardable the cycle after its grant, matching the
            # OSM model's done-at-X->W timing.
            self.countdown = max(0, self.latency_of(accepted) - 2)
            if self.countdown == 0:
                accepted.done = True
            else:
                self.busy_op = accepted
        if (threshold is not None and self.busy_op is not None
                and self.busy_op.seq > threshold):
            self.busy_op = None
            self.countdown = 0


class CompletionModule(PortModule):
    """The completion queue: allocated at dispatch, in-order retirement."""

    def __init__(self, oracle: Oracle):
        super().__init__("completion")
        self.oracle = oracle
        self.entries: List[PipelineOp] = []
        self.retired = 0
        self.instructions = 0
        self.halted = False
        self.halt_seq: Optional[int] = None
        self.p_grants = self.port("dispatch_grants", "in")
        self.p_squash_br = self.port("squash_br", "in")
        self.p_cq_free = self.port("cq_free", "out")
        self.p_retire_grants = self.port("retire_grants", "out")
        self.p_squash_halt = self.port("squash_halt", "out")

    def evaluate(self, cycle: int) -> None:
        retire: List[PipelineOp] = []
        for op in self.entries[:RETIRE_WIDTH]:
            if op.retire_ready:
                retire.append(op)
            else:
                break
        self.p_retire_grants.write(tuple(retire))
        self.p_cq_free.write(CQ_SIZE - len(self.entries) + len(retire))
        self.p_squash_halt.write(
            (self.halt_seq,) if self.halt_seq is not None else None
        )

    def on_clock(self, cycle: int) -> None:
        # 1. commit last cycle's retirements
        for op in self.p_retire_grants.read() or ():
            if op in self.entries:
                self.entries.remove(op)
            self.retired += 1
            if op.record is not None:
                self.instructions += 1
                if (self.oracle.length is not None
                        and op.record.index == self.oracle.length - 1):
                    self.halted = True
                    self.halt_seq = op.seq
        # 2. promote operations whose results existed last cycle (retire
        #    happens the cycle after completion, as in the OSM model);
        #    this module's on_clock runs before the units', so the done
        #    flags read here are last cycle's.
        for op in self.entries:
            if op.done:
                op.retire_ready = True
        # 3. accept this edge's dispatches
        self.entries.extend(self.p_grants.read() or ())
        # 4. squash
        threshold = _squash_threshold(
            self.p_squash_br.read(),
            (self.halt_seq,) if self.halt_seq is not None else None,
        )
        if threshold is not None:
            self.entries = [op for op in self.entries if op.seq <= threshold]

    @property
    def drained(self) -> bool:
        return self.halted and not self.entries


class BranchResolveModule(PortModule):
    """Resolves correct-path branches in their grant cycle.

    Purely combinational in ``evaluate`` (drives redirect/squash from the
    grant wires); predictor training and misprediction accounting commit
    in ``on_clock`` against the settled grants.
    """

    def __init__(self, predictor: BranchPredictor):
        super().__init__("branch_resolve")
        self.predictor = predictor
        self.p_direct = self.port("direct_issues", "in")
        self.p_issue_grant = self.port(f"issue_grant_{ppc_isa.UNIT_BPU}", "in")
        self.p_redirect = self.port("redirect", "out")
        self.p_squash_br = self.port("squash_br", "out")
        self.mispredicts = 0

    def _granted_branch(self) -> Optional[PipelineOp]:
        granted = self.p_issue_grant.read()
        if granted is not None and granted.record is not None:
            return granted
        for unit, op in self.p_direct.read() or ():
            if unit == ppc_isa.UNIT_BPU and op.record is not None:
                return op
        return None

    def evaluate(self, cycle: int) -> None:
        op = self._granted_branch()
        if op is None:
            self.p_redirect.write(None)
            self.p_squash_br.write(None)
            return
        record = op.record
        if op.predicted_next != record.next_pc:
            self.p_redirect.write((op.seq, record.next_pc, record.index + 1))
            self.p_squash_br.write((op.seq,))
        else:
            self.p_redirect.write(None)
            self.p_squash_br.write(None)

    def on_clock(self, cycle: int) -> None:
        op = self._granted_branch()
        if op is None:
            return
        record = op.record
        taken = record.next_pc != ((op.pc + 4) & 0xFFFFFFFF)
        self.predictor.resolve(op.instr, taken, record.next_pc)
        if op.predicted_next != record.next_pc:
            self.mispredicts += 1
            self.predictor.note_mispredict()
