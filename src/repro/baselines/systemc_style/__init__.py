"""SystemC-style hardware-centric PPC-750 simulator."""

from .modules import PipelineOp
from .sim import Ppc750SystemC

__all__ = ["PipelineOp", "Ppc750SystemC"]
