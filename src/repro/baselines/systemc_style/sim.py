"""The SystemC-style PPC-750 simulator: module instantiation and wiring.

Builds the ~20 port-based modules of :mod:`.modules`, connects them with
explicit wires (the paper notes the real SystemC PowerPC model needed
"more than 200 wires or buses ... to connect 20 modules" — the count here
is printed by :func:`Ppc750SystemC.wiring_summary`), and runs them under
the delta-cycle engine.

This simulator exists to reproduce two claims of Section 5.2: the OSM
model is about 4x *faster* (delta-cycle settling visits every module
several times per cycle) and substantially *smaller*, while the two agree
closely on timing.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ...de.module import PortModule, Wire
from ...de.scheduler import DeltaCycleSimulator
from ...isa.ppc import isa as ppc_isa
from ...isa.program import Program
from ...iss.interpreter import PpcInterpreter
from ...iss.oracle import Oracle
from ...memory.cache import Cache
from ...models.ppc750.branch import BranchPredictor
from .modules import (
    UNIT_NAMES,
    BranchResolveModule,
    CompletionModule,
    DispatcherModule,
    FetchModule,
    FunctionUnitModule,
    InstructionQueueModule,
    RenameModule,
    ReservationStationModule,
)


class AvailabilityAggregator(PortModule):
    """Combinational OR-reduction of per-unit availability wires into the
    tuple wires the dispatcher consumes (a hardware-centric model needs
    this kind of glue module; the OSM model does not)."""

    def __init__(self, kind: str):
        super().__init__(f"{kind}_aggregate")
        self.inputs = [self.port(f"{kind}_{unit}", "in") for unit in UNIT_NAMES]
        self.output = self.port(f"{kind}_avail", "out")

    def evaluate(self, cycle: int) -> None:
        names = tuple(p.read() for p in self.inputs if p.read() is not None)
        self.output.write(names)


def default_icache() -> Cache:
    return Cache("icache", size=32 * 1024, line_size=32, assoc=8, miss_penalty=30)


def default_dcache() -> Cache:
    return Cache("dcache", size=32 * 1024, line_size=32, assoc=8, miss_penalty=30)


class Ppc750SystemC:
    """Hardware-centric (port/wire/delta-cycle) PPC-750 simulator."""

    def __init__(self, program: Program, icache: Optional[Cache] = None,
                 dcache: Optional[Cache] = None, perfect_memory: bool = False,
                 stdin: bytes = b""):
        if not perfect_memory:
            icache = icache if icache is not None else default_icache()
            dcache = dcache if dcache is not None else default_dcache()
        self.oracle = Oracle(PpcInterpreter(program, stdin=stdin))
        self.predictor = BranchPredictor()
        self.sim = DeltaCycleSimulator()

        # -- modules (order fixes on_clock sequencing; see modules.py) -----
        self.completion = CompletionModule(self.oracle)
        self.rename = RenameModule()
        self.fetcher = FetchModule(self.oracle, self.predictor, program.entry, icache)
        self.iq = InstructionQueueModule()
        self.dispatcher = DispatcherModule(self.rename)
        self.stations: Dict[str, ReservationStationModule] = {
            unit: ReservationStationModule(unit, self.rename) for unit in UNIT_NAMES
        }
        self.units: Dict[str, FunctionUnitModule] = {
            unit: FunctionUnitModule(unit, dcache) for unit in UNIT_NAMES
        }
        self.branch_resolve = BranchResolveModule(self.predictor)
        self.rs_aggregate = AvailabilityAggregator("rs")
        self.fu_aggregate = AvailabilityAggregator("fu")

        for module in (self.completion, self.rename, self.fetcher, self.iq,
                       *self.stations.values(), *self.units.values(),
                       self.branch_resolve, self.dispatcher,
                       self.rs_aggregate, self.fu_aggregate):
            self.sim.add_module(module)

        self._wire_up()
        self.wall_seconds = 0.0

    # -- wiring -------------------------------------------------------------

    def _wire_up(self) -> None:
        sim = self.sim

        def wire(name: str, *ports) -> Wire:
            w = sim.wire(name, None)
            for port in ports:
                port.bind(w)
            return w

        wire("fetch_bundle", self.fetcher.p_bundle, self.iq.p_bundle)
        wire("iq_free", self.iq.p_free, self.fetcher.p_iq_free)
        wire("iq_heads", self.iq.p_heads, self.dispatcher.p_heads)
        wire("dispatch_grants", self.dispatcher.p_grants, self.iq.p_grants,
             self.rename.p_grants, self.completion.p_grants)
        wire("direct_issues", self.dispatcher.p_direct,
             self.branch_resolve.p_direct,
             *[fu.p_direct for fu in self.units.values()])
        wire("rs_fills", self.dispatcher.p_rs_fills,
             *[rs.p_rs_fills for rs in self.stations.values()])
        wire("cq_free", self.completion.p_cq_free, self.dispatcher.p_cq_free)
        wire("retire_grants", self.completion.p_retire_grants,
             self.rename.p_retiring, self.dispatcher.p_retiring)
        wire("redirect", self.branch_resolve.p_redirect, self.fetcher.p_redirect)
        squash_br_ports = [self.branch_resolve.p_squash_br, self.iq.p_squash_br,
                           self.rename.p_squash_br, self.completion.p_squash_br]
        squash_halt_ports = [self.completion.p_squash_halt, self.iq.p_squash_halt,
                             self.rename.p_squash_halt]
        for unit in UNIT_NAMES:
            station = self.stations[unit]
            fu = self.units[unit]
            wire(f"rs_request_{unit}", station.p_request, fu.p_rs_request)
            wire(f"issue_grant_{unit}", fu.p_issue_grant, station.p_issue_grant)
            wire(f"rs_has_{unit}", station.p_avail,
                 self.rs_aggregate.ports[f"rs_{unit}"])
            wire(f"fu_has_{unit}", fu.p_avail,
                 self.fu_aggregate.ports[f"fu_{unit}"])
            squash_br_ports.extend([station.p_squash_br, fu.p_squash_br])
            squash_halt_ports.extend([station.p_squash_halt, fu.p_squash_halt])
        # the branch resolver listens on the BPU issue-grant wire
        self.branch_resolve.p_issue_grant.bind(
            self.units[ppc_isa.UNIT_BPU].p_issue_grant.wire
        )
        wire("squash_br", *squash_br_ports)
        wire("squash_halt", *squash_halt_ports)
        wire("rs_avail", self.rs_aggregate.output, self.dispatcher.p_rs_avail)
        wire("fu_avail", self.fu_aggregate.output, self.dispatcher.p_unit_avail)

    def wiring_summary(self) -> str:
        n_modules = len(self.sim.modules)
        n_wires = len(self.sim.wires)
        n_ports = sum(len(m.ports) for m in self.sim.modules)
        return (f"{n_modules} modules, {n_wires} wires, {n_ports} port bindings")

    # -- running ----------------------------------------------------------------

    def finished(self) -> bool:
        return (
            self.completion.drained
            and not self.iq.entries
            and all(rs.entry is None for rs in self.stations.values())
            and all(fu.busy_op is None for fu in self.units.values())
        )

    def run(self, max_cycles: int = 10_000_000) -> int:
        start = time.perf_counter()
        while not self.finished():
            if self.sim.cycle >= max_cycles:
                raise RuntimeError(f"did not finish within {max_cycles} cycles")
            self.sim.step()
        self.wall_seconds += time.perf_counter() - start
        return self.sim.cycle

    @property
    def cycles(self) -> int:
        return self.sim.cycle

    @property
    def retired(self) -> int:
        return self.completion.retired

    @property
    def instructions(self) -> int:
        return self.completion.instructions

    @property
    def exit_code(self) -> int:
        return self.oracle.exit_code

    @property
    def cycles_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds
