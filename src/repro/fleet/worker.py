"""Worker-side job execution: build a fresh model, run it, report JSON.

Everything here must behave identically in the submitting process and
in a freshly ``spawn``-ed worker: a job is resolved to assembly text,
assembled, simulated on a model built **from the job's config alone**
(no ambient registries, no inherited module state), and reduced to a
plain-JSON result payload.  The payload deliberately contains only
deterministic fields — cycle counts, instruction counts, transitions,
exit codes, derived rates — never wall-clock times, so a cached payload
is bit-identical to a recomputed one.

Cross-process hazards audited for this contract (and why each is safe):

* ``repro.analysis.registry`` registers the bundled spec builders at
  module import, so a spawned worker sees the same registry — but the
  worker does not consult it at all: models are built from
  :data:`_BUILDERS` below, keyed only by job fields.
* ``repro.core.fuse._CERT_CACHE``/``_TRV_CACHE`` memoise effectcheck /
  transcheck verdicts per spec *structure* (qualnames, not object
  identities), so a fresh process recomputes the same verdict it would
  inherit under ``fork``.
* ``repro.core.transaction._TXN_POOL`` recycles transactions across
  model builds inside one worker; transactions are reset on reuse and
  carry no cross-job state.
* ``repro.iss.decode_cache.DecodeCache`` is per-``MainMemory`` instance
  state, created fresh with every model build.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from .jobs import Job, job_key, resolve_workload


def _materialize_cache(name: str, params: Optional[Dict[str, Any]]):
    """A :class:`~repro.memory.cache.Cache` from its JSON description."""
    if params is None:
        return None
    from ..memory.cache import Cache

    return Cache(name, **params)


def _materialize_tlb(name: str, params: Optional[Dict[str, Any]]):
    if params is None:
        return None
    from ..memory.tlb import Tlb

    return Tlb(name, **params)


#: config keys describing memory structures, materialised into timing
#: model instances before reaching the model constructor
_CACHE_KEYS = ("icache", "dcache")
_TLB_KEYS = ("itlb", "dtlb")


def _split_config(config: Dict[str, Any]) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """``(constructor kwargs, memory-structure kwargs)`` for *config*.

    A memory key that is *absent* keeps the model's default structure; a
    key explicitly set to ``null`` passes ``None`` (perfect one-cycle
    access for that structure).
    """
    kwargs = dict(config)
    memory: Dict[str, Any] = {}
    for key in _CACHE_KEYS:
        if key in kwargs:
            memory[key] = _materialize_cache(key, kwargs.pop(key))
    for key in _TLB_KEYS:
        if key in kwargs:
            memory[key] = _materialize_tlb(key, kwargs.pop(key))
    return kwargs, memory


def _build_strongarm(program, config):
    from ..models.strongarm import StrongArmModel

    kwargs, memory = _split_config(config)
    return StrongArmModel(program, **memory, **kwargs)


def _build_pipeline5(program, config):
    from ..models.pipeline5 import Pipeline5Model

    kwargs, memory = _split_config(config)
    return Pipeline5Model(program, **memory, **kwargs)


def _build_vliw(program, config):
    from ..models.vliw import VliwModel

    kwargs, memory = _split_config(config)
    for key in _TLB_KEYS:  # the VLIW model has no TLBs
        if memory.pop(key, None) is not None:
            raise ValueError("the vliw model takes no TLB config")
    return VliwModel(program, **memory, **kwargs)


def _build_ppc750(program, config):
    from ..models.ppc750 import Ppc750Model

    kwargs, memory = _split_config(config)
    for key in _TLB_KEYS:
        if memory.pop(key, None) is not None:
            raise ValueError("the ppc750 model takes no TLB config")
    return Ppc750Model(program, **memory, **kwargs)


_BUILDERS: Dict[str, Callable] = {
    "strongarm": _build_strongarm,
    "pipeline5": _build_pipeline5,
    "vliw": _build_vliw,
    "ppc750": _build_ppc750,
}


def _assemble(isa: str, source: str):
    if isa == "arm":
        from ..isa.arm import assemble
    else:
        from ..isa.ppc import assemble
    return assemble(source)


def _memory_metrics(model) -> Dict[str, Any]:
    """Deterministic memory-hierarchy figures, where structures exist."""
    metrics: Dict[str, Any] = {}
    for attr in ("icache", "dcache"):
        cache = getattr(model, attr, None)
        stats = getattr(cache, "stats", None)
        if stats is not None:
            metrics[f"{attr}_accesses"] = stats.accesses
            metrics[f"{attr}_hit_rate"] = round(stats.hit_rate, 6)
    return metrics


def run_job(job_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one job description; never raises.

    Returns ``{"ok": True, "result": payload}`` or ``{"ok": False,
    "error": {...}}``.  The ``result`` payload is the deterministic,
    cacheable part; timing lives in the envelope the runner adds.
    """
    try:
        job = Job.from_dict(job_dict)
        source = resolve_workload(job.workload, job.isa, job.seed)
        program = _assemble(job.isa, source)
        model = _BUILDERS[job.model](program, job.config)
        stats = model.run(job.max_cycles)
        metrics = {
            "cycles": stats.cycles,
            "instructions": stats.instructions,
            "transitions": stats.transitions,
            "exit_code": model.exit_code,
            "ipc": round(stats.ipc, 6),
        }
        metrics.update(_memory_metrics(model))
        return {
            "ok": True,
            "result": {
                "schema": 1,
                "model": job.model,
                "isa": job.isa,
                "seed": job.seed,
                "metrics": metrics,
            },
        }
    except Exception as exc:
        return {
            "ok": False,
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }


def pool_run(item: Tuple[str, Dict[str, Any]]) -> Tuple[str, Dict[str, Any]]:
    """Pool entry point: ``(key, job dict) -> (key, outcome)``.

    Must stay a module-level function so ``spawn`` workers can import it
    by qualified name.
    """
    import time

    key, job_dict = item
    start = time.perf_counter()
    outcome = run_job(job_dict)
    outcome["seconds"] = round(time.perf_counter() - start, 6)
    return key, outcome


def run_job_with_key(job_dict: Dict[str, Any]) -> Dict[str, Any]:
    """``run_job`` plus the job's cache key — the one-shot entry point
    the cross-process determinism tests drive in a spawned process."""
    outcome = run_job(job_dict)
    try:
        outcome["key"] = job_key(Job.from_dict(job_dict))
    except Exception as exc:
        outcome.setdefault("error", {"type": type(exc).__name__,
                                     "message": str(exc)})
    return outcome
