"""Fleet job model: canonical job descriptions and content-addressed keys.

A fleet *job* is one simulation request — ``(model, workload, config,
seed)`` plus a cycle budget — expressed entirely in JSON-serialisable
data so it can cross process and socket boundaries unchanged.  Two jobs
that serialise identically ARE the same job: the determinism pinned by
``tests/integration/test_fastpath_determinism.py`` (and re-pinned
cross-process by ``tests/fleet/test_cross_process.py``) guarantees they
produce bit-identical results, which is what makes the fleet's
content-addressed result cache sound.

The cache key (:func:`job_key`) is the sha256 of:

* the **model implementation fingerprint** — source hashes of every
  package the model's simulation semantics depend on, via the
  transcheck fingerprint machinery
  (:mod:`repro.analysis.certify.fingerprint`).  Editing any file in the
  closure changes the key, so stale results can never be served across
  a code change;
* the **workload bytes** — the resolved assembly source text, not the
  workload's name, so renaming a workload cannot alias two different
  programs (and two names for the same program share cache entries);
* the **canonical config** — the model-constructor parameters in
  canonical JSON (sorted keys, no whitespace variance);
* the **seed** — threaded into generated workloads
  (:class:`repro.workloads.generator.Mix`), inert but still keyed for
  named workloads;
* the cycle budget and the result schema version.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: bump when the result payload layout changes — old cache entries
#: stop matching instead of being misread
RESULT_SCHEMA = 1

#: default per-job cycle budget (matches ``repro run``/``repro bench``)
DEFAULT_MAX_CYCLES = 10_000_000

#: model name -> ISA it consumes (fleet-runnable OSM models)
MODEL_ISA: Dict[str, str] = {
    "pipeline5": "arm",
    "strongarm": "arm",
    "vliw": "arm",
    "ppc750": "ppc",
}

#: packages every model's results depend on (assembler, ISS, OSM core,
#: memory timing, DE kernels) — hashed into every fingerprint
_BASE_PACKAGES = (
    "repro.core",
    "repro.de",
    "repro.iss",
    "repro.memory",
    "repro.isa.bits",
    "repro.isa.instruction",
    "repro.isa.program",
    "repro.isa.assembler",
)

#: model name -> model-layer modules in its implementation closure
#: (strongarm subclasses pipeline5; everything uses models.common)
_MODEL_PACKAGES = {
    "pipeline5": ("repro.models.pipeline5", "repro.models.common"),
    "strongarm": ("repro.models.strongarm", "repro.models.pipeline5",
                  "repro.models.common"),
    "vliw": ("repro.models.vliw", "repro.models.common"),
    "ppc750": ("repro.models.ppc750", "repro.models.common"),
}


def canonical_json(obj: Any) -> str:
    """Canonical JSON text: sorted keys, minimal separators.

    Raises ``TypeError`` for anything not JSON-serialisable — job specs
    must survive a socket round-trip unchanged, so non-JSON config
    values are rejected at submission time, not in the worker.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class Job:
    """One simulation request; everything is plain JSON data."""

    model: str
    workload: Dict[str, Any]
    config: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    max_cycles: int = DEFAULT_MAX_CYCLES

    def __post_init__(self):
        if self.model not in MODEL_ISA:
            raise ValueError(
                f"unknown fleet model {self.model!r}; "
                f"choose one of {', '.join(sorted(MODEL_ISA))}"
            )
        if not isinstance(self.workload, dict) or "kind" not in self.workload:
            raise ValueError("workload must be a dict with a 'kind' field")

    @property
    def isa(self) -> str:
        return MODEL_ISA[self.model]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "workload": self.workload,
            "config": self.config,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        unknown = set(data) - {"model", "workload", "config", "seed", "max_cycles"}
        if unknown:
            raise ValueError(f"unknown job field(s): {sorted(unknown)}")
        try:
            return cls(
                model=data["model"],
                workload=data["workload"],
                config=dict(data.get("config") or {}),
                seed=int(data.get("seed", 0)),
                max_cycles=int(data.get("max_cycles", DEFAULT_MAX_CYCLES)),
            )
        except KeyError as exc:
            raise ValueError(f"job missing required field {exc.args[0]!r}") from None


# -- workload resolution ----------------------------------------------------

def resolve_workload(workload: Dict[str, Any], isa: str, seed: int) -> str:
    """The assembly source text a workload spec denotes for *isa*.

    Resolution is pure: the same (spec, isa, seed) always yields the
    same text, in every process — the text is what gets hashed into the
    job key and what the worker assembles.

    Supported kinds::

        {"kind": "mediabench", "name": "gsm_dec"}     # both ISAs
        {"kind": "kernel", "name": "stride8"}         # ARM diagnostics
        {"kind": "speclike", "name": "sort"}          # PPC kernels
        {"kind": "source", "text": "..."}             # inline assembly
        {"kind": "generated", "mix": {"alu": 6, ...}} # synthetic mix
                                                       # (job seed wins)
    """
    kind = workload.get("kind")
    if kind == "mediabench":
        from ..workloads import mediabench

        name = _workload_name(workload)
        if name not in mediabench.MEDIABENCH_NAMES:
            raise ValueError(f"unknown mediabench workload {name!r}")
        source_of = mediabench.arm_source if isa == "arm" else mediabench.ppc_source
        return source_of(name)
    if kind == "kernel":
        from ..workloads import kernels

        if isa != "arm":
            raise ValueError("diagnostic kernel loops are ARM-only")
        return kernels.arm_source(_workload_name(workload))
    if kind == "speclike":
        from ..workloads import speclike

        if isa != "ppc":
            raise ValueError("SPEC-like kernels are PPC-only")
        return speclike.ppc_source(_workload_name(workload))
    if kind == "source":
        text = workload.get("text")
        if not isinstance(text, str) or not text.strip():
            raise ValueError("source workload needs a non-empty 'text' field")
        return text
    if kind == "generated":
        from ..workloads.generator import Mix, arm_source, ppc_source

        params = dict(workload.get("mix") or {})
        params.pop("seed", None)  # the job seed parameterises generation
        try:
            mix = Mix(seed=seed, **params)
        except TypeError as exc:
            raise ValueError(f"bad generated-workload mix: {exc}") from None
        return arm_source(mix) if isa == "arm" else ppc_source(mix)
    raise ValueError(f"unknown workload kind {kind!r}")


def _workload_name(workload: Dict[str, Any]) -> str:
    name = workload.get("name")
    if not isinstance(name, str):
        raise ValueError(f"workload {workload!r} needs a 'name' field")
    return name


# -- fingerprints and keys --------------------------------------------------

def model_fingerprint(model: str) -> str:
    """sha256 over the source closure of *model*'s implementation.

    Conservative on purpose: the closure covers the model's package, the
    model-layer modules it builds on, the OSM core, the ISS, the memory
    timing models and the ISA infrastructure.  Over-invalidating costs a
    re-simulation; under-invalidating would serve a stale result after a
    semantics change.
    """
    from ..analysis.certify.fingerprint import combined_fingerprint

    try:
        model_packages = _MODEL_PACKAGES[model]
    except KeyError:
        raise ValueError(
            f"unknown fleet model {model!r}; "
            f"choose one of {', '.join(sorted(MODEL_ISA))}"
        ) from None
    isa_package = f"repro.isa.{MODEL_ISA[model]}"
    return combined_fingerprint(_BASE_PACKAGES + model_packages + (isa_package,))


def job_key(job: Job, source: Optional[str] = None) -> str:
    """Content-addressed cache key for *job* (sha256 hex digest).

    *source* is the resolved workload text; passing it avoids resolving
    twice when the caller already has it.
    """
    if source is None:
        source = resolve_workload(job.workload, job.isa, job.seed)
    digest = hashlib.sha256()
    digest.update(b"repro-fleet-job\x00")
    digest.update(str(RESULT_SCHEMA).encode("ascii"))
    digest.update(b"\x00")
    digest.update(model_fingerprint(job.model).encode("ascii"))
    digest.update(b"\x00")
    digest.update(job.model.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_json(job.config).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(job.seed).encode("ascii"))
    digest.update(b"\x00")
    digest.update(str(job.max_cycles).encode("ascii"))
    return digest.hexdigest()
