"""``repro submit``: client for the fleet job server.

:class:`FleetClient` speaks the JSON-lines protocol of
:mod:`repro.fleet.server`.  ``submit`` is a generator so callers see
each result the moment the server streams it — a sweep's early results
are usable while the tail is still simulating.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, List

from .server import DEFAULT_PORT


class FleetClientError(RuntimeError):
    """The server reported an error or broke protocol."""


class FleetClient:
    """One fleet server endpoint (host, port); connections per request."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, payload: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as conn:
            conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            with conn.makefile("r", encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    message = json.loads(line)
                    if message.get("type") == "error":
                        raise FleetClientError(message.get("message", "error"))
                    yield message

    def _one(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        for message in self._request(payload):
            return message
        raise FleetClientError("server closed the connection without replying")

    def ping(self) -> Dict[str, Any]:
        return self._one({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self._one({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        return self._one({"op": "shutdown"})

    def submit(self, jobs: List[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        """Stream ``result`` records, then the terminating ``summary``."""
        yield from self._request({"op": "submit", "jobs": list(jobs)})

    def run_sweep(self, jobs: List[Dict[str, Any]]):
        """Submit and drain: ``(records in submission order, summary)``."""
        records: List[Dict[str, Any]] = []
        summary: Dict[str, Any] = {}
        for message in self.submit(jobs):
            if message.get("type") == "result":
                records.append(message)
            elif message.get("type") == "summary":
                summary = message
        if not summary:
            raise FleetClientError("submission ended without a summary")
        records.sort(key=lambda r: r["job"])
        return records, summary
