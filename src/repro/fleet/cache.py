"""Content-addressed result cache for fleet jobs.

Entries are keyed by the sha256 job key (:func:`repro.fleet.jobs.job_key`)
and hold the deterministic result payload verbatim: a hit returns the
exact bytes a fresh simulation would produce, which the cross-process
determinism tests assert.  Two backends share one interface:

* :class:`MemoryCache` — a per-process dict; the default for one-shot
  sweeps and benchmarks, where cross-run persistence would make the
  numbers lie.
* :class:`ResultCache` — a directory of JSON files sharded by the first
  two key hex digits (``ab/abcdef....json``).  Writes go through a
  temporary file and ``os.replace`` so concurrent workers/servers never
  observe a torn entry; unreadable or corrupt entries degrade to a miss
  (and are dropped) rather than poisoning results.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Any, Dict, Optional


class MemoryCache:
    """In-process result cache (thread-safe)."""

    persistent = False

    def __init__(self):
        self._entries: Dict[str, str] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            text = self._entries.get(key)
            if text is None:
                self.misses += 1
                return None
            self.hits += 1
        return json.loads(text)

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        text = json.dumps(payload, sort_keys=True)
        with self._lock:
            self._entries[key] = text

    def __len__(self) -> int:
        return len(self._entries)


class ResultCache:
    """Directory-backed content-addressed cache (process-safe)."""

    persistent = True

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            # missing, unreadable or torn: a miss either way; drop a
            # corrupt file so it cannot keep masking fresh results
            if os.path.exists(path):
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - racing cleanup
                    pass
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        path = self._path(key)
        shard = os.path.dirname(path)
        os.makedirs(shard, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        count = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count


def open_cache(cache_dir: Optional[str]):
    """A cache backend: directory-backed when *cache_dir* is given,
    otherwise in-process memory."""
    return ResultCache(cache_dir) if cache_dir else MemoryCache()
