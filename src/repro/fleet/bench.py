"""``repro fleet-bench``: end-to-end throughput of the fleet layer.

Runs a fixed sweep matrix twice over one runner: the **cold** pass
measures end-to-end jobs/s through the pool with an empty cache, the
**warm** pass replays the identical matrix and must be served almost
entirely from the content-addressed cache — the bench fails unless the
warm pass is at least 90% cache hits AND every warm payload is
bit-identical to its cold counterpart (the soundness contract the
determinism tests underwrite).  The JSON row lands in
``BENCH_fleet.json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .pool import FleetRunner

#: instruction mixes swept by the bench (generated workloads — small,
#: deterministic, distinct cache keys per (mix, seed, model, config))
_MIXES = (
    {"alu": 6.0, "mem": 2.0, "mul": 1.0},
    {"alu": 2.0, "mem": 6.0, "mul": 1.0},
    {"alu": 3.0, "mem": 3.0, "mul": 3.0},
)

#: warm-pass cache hit rate the bench (and CI's fleet-smoke job) requires
MIN_WARM_HIT_RATE = 0.9


def _generated(mix: Dict[str, float]) -> Dict[str, Any]:
    return {"kind": "generated",
            "mix": {**mix, "block_length": 12, "iterations": 16,
                    "footprint_words": 32}}


def bench_jobs(quick: bool = False) -> List[Dict[str, Any]]:
    """The sweep matrix: (model, workload, config, seed) products."""
    strongarm_configs: List[Dict[str, Any]] = [
        {"perfect_memory": True},
        {"dcache": {"size": 1024, "line_size": 32, "assoc": 4,
                    "miss_penalty": 26},
         "icache": None, "itlb": None, "dtlb": None},
    ]
    ppc750_configs: List[Dict[str, Any]] = [
        {"perfect_memory": True},
        {"perfect_memory": True, "dispatch_width": 1, "retire_width": 1},
    ]
    mixes = _MIXES[:2] if quick else _MIXES
    seeds = (1,) if quick else (1, 2)
    if quick:
        strongarm_configs = strongarm_configs[:1]
        ppc750_configs = ppc750_configs[:1]
    jobs: List[Dict[str, Any]] = []
    for model, configs in (("strongarm", strongarm_configs),
                           ("ppc750", ppc750_configs)):
        for config in configs:
            for mix in mixes:
                for seed in seeds:
                    jobs.append({
                        "model": model,
                        "workload": _generated(mix),
                        "config": config,
                        "seed": seed,
                        "max_cycles": 2_000_000,
                    })
    return jobs


def _pass_row(summary: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "jobs": summary["jobs"],
        "executed": summary["executed"],
        "cache_hits": summary["cache_hits"],
        "dedup_hits": summary["dedup_hits"],
        "errors": summary["errors"],
        "cache_hit_rate": summary["cache_hit_rate"],
        "wall_seconds": summary["wall_seconds"],
        "jobs_per_second": summary["jobs_per_second"],
    }


def fleet_bench(workers: int = 2, quick: bool = False,
                cache_dir: Optional[str] = None,
                start_method: str = "spawn") -> Dict[str, Any]:
    """Run the two-pass bench; returns the ``BENCH_fleet.json`` row."""
    jobs = bench_jobs(quick=quick)
    with FleetRunner(workers=workers, cache_dir=cache_dir,
                     start_method=start_method) as runner:
        cold_records, cold = runner.run_sweep(jobs)
        warm_records, warm = runner.run_sweep(jobs)
    identical = all(
        a.get("result") == b.get("result")
        for a, b in zip(cold_records, warm_records)
    )
    row = {
        "bench": "fleet",
        "quick": bool(quick),
        "workers": workers,
        "start_method": start_method,
        "jobs": len(jobs),
        "unique_jobs": cold["executed"],
        "cold": _pass_row(cold),
        "warm": _pass_row(warm),
        # headline figures: end-to-end throughput (cold, through the
        # pool) and the replay cache hit rate (warm)
        "jobs_per_second": cold["jobs_per_second"],
        "cache_hit_rate": warm["cache_hit_rate"],
        "results_identical": identical,
        "ok": (identical
               and warm["cache_hit_rate"] >= MIN_WARM_HIT_RATE
               and cold["errors"] == 0 and warm["errors"] == 0),
    }
    return row
