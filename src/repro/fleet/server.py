"""``repro serve``: the fleet job server.

A JSON-lines protocol over TCP, chosen for zero dependencies and
trivially scriptable clients (``nc``, a five-line Python loop, or
:mod:`repro.fleet.client`).  Each connection carries one request line;
the server streams response lines and closes:

* ``{"op": "ping"}`` → ``{"type": "pong", ...}``
* ``{"op": "stats"}`` → ``{"type": "stats", ...}`` (pool + cache counters)
* ``{"op": "submit", "jobs": [...]}`` → one ``{"type": "result", ...}``
  line per job **as each completes** (cache hits first, then pool
  completions — the streaming/async half of the contract), terminated
  by a ``{"type": "summary", ...}`` line
* ``{"op": "shutdown"}`` → ``{"type": "bye"}`` and the server stops

Connections are handled on daemon threads over one shared
:class:`~repro.fleet.pool.FleetRunner`, so concurrent sweeps share the
worker pool, the result cache and the in-flight dedupe table: two
clients submitting the same job simulate it once.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Any, Dict, Optional

from .pool import FleetRunner

#: default port; "OSM1" on a phone pad has nothing on just picking one
DEFAULT_PORT = 7341


class _Handler(socketserver.StreamRequestHandler):
    def _send(self, payload: Dict[str, Any]) -> None:
        self.wfile.write((json.dumps(payload) + "\n").encode("utf-8"))
        self.wfile.flush()

    def handle(self) -> None:
        server: "FleetServer" = self.server  # type: ignore[assignment]
        line = self.rfile.readline()
        if not line.strip():
            return
        try:
            request = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            self._send({"type": "error", "message": f"bad request JSON: {exc}"})
            return
        op = request.get("op")
        try:
            if op == "ping":
                self._send({"type": "pong", "workers": server.runner.workers})
            elif op == "stats":
                self._send(server.stats_payload())
            elif op == "submit":
                jobs = request.get("jobs")
                if not isinstance(jobs, list) or not jobs:
                    raise ValueError("submit needs a non-empty 'jobs' list")
                completed = cache_hits = dedup_hits = errors = 0
                for record in server.runner.submit(jobs):
                    completed += 1
                    cache_hits += record["cached"]
                    dedup_hits += record["dedup"]
                    errors += not record["ok"]
                    record["progress"] = {"completed": completed,
                                          "total": len(jobs)}
                    self._send(record)
                self._send({
                    "type": "summary",
                    "jobs": len(jobs),
                    "executed": completed - cache_hits - dedup_hits,
                    "cache_hits": cache_hits,
                    "dedup_hits": dedup_hits,
                    "errors": errors,
                    "cache_hit_rate": (round(cache_hits / completed, 4)
                                       if completed else 0.0),
                })
            elif op == "shutdown":
                self._send({"type": "bye"})
                threading.Thread(target=server.shutdown, daemon=True).start()
            else:
                raise ValueError(f"unknown op {op!r}")
        except ValueError as exc:
            self._send({"type": "error", "message": str(exc)})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass


class FleetServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines fleet server over a shared runner."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 runner: Optional[FleetRunner] = None, workers: int = 2,
                 cache_dir: Optional[str] = None, start_method: str = "spawn"):
        self.runner = runner or FleetRunner(
            workers=workers, cache_dir=cache_dir, start_method=start_method)
        super().__init__((host, port), _Handler)

    @property
    def address(self):
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self.server_address[:2]

    def stats_payload(self) -> Dict[str, Any]:
        cache = self.runner.cache
        return {
            "type": "stats",
            "workers": self.runner.workers,
            "executed": self.runner.executed,
            "errors": self.runner.errors,
            "cache": {
                "persistent": cache.persistent,
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
            },
        }

    def server_close(self) -> None:  # also tear down the worker pool
        super().server_close()
        self.runner.close()


def serve(host: str = "127.0.0.1", port: int = DEFAULT_PORT, workers: int = 2,
          cache_dir: Optional[str] = None, start_method: str = "spawn",
          announce=print) -> None:
    """Run a fleet server until shutdown (op or KeyboardInterrupt)."""
    server = FleetServer(host=host, port=port, workers=workers,
                         cache_dir=cache_dir, start_method=start_method)
    bound_host, bound_port = server.address
    announce(f"repro fleet: serving on {bound_host}:{bound_port} "
             f"({workers} workers, cache "
             f"{cache_dir if cache_dir else 'in-memory'})")
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.server_close()
