"""The fleet runner: a deduplicating, caching multiprocess job pool.

:class:`FleetRunner` fans job batches across a pool of worker processes
and streams result records back in completion order.  Three layers keep
redundant work off the pool:

1. **Result cache** — jobs whose content-addressed key is already cached
   are answered immediately (``cached: true``) without touching a
   worker.
2. **In-flight dedupe** — while a key is executing, further submissions
   of the same key (from this batch or a concurrent one) attach to the
   running execution instead of launching another (``dedup: true``).
3. **Batch dedupe** — duplicates within one batch share one execution.

Workers default to the ``spawn`` start method: every worker process
imports the model code fresh, which is the configuration the
cross-process determinism tests pin (a forked worker could silently
lean on inherited module state; a spawned one cannot).  ``workers=0``
runs jobs serially in-process — same records, same cache, no pool —
which is what the sweep benchmarks use so their numbers measure the
simulator, not process scheduling.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .cache import open_cache
from .jobs import Job, job_key, resolve_workload
from .worker import pool_run, run_job


class _Pending:
    """One in-flight execution; followers wait on :attr:`event`."""

    __slots__ = ("event", "outcome")

    def __init__(self):
        self.event = threading.Event()
        self.outcome: Optional[Dict[str, Any]] = None


class FleetRunner:
    """Deduplicating, caching job runner over a multiprocess pool."""

    def __init__(
        self,
        workers: int = 0,
        cache_dir: Optional[str] = None,
        cache=None,
        start_method: str = "spawn",
    ):
        self.cache = cache if cache is not None else open_cache(cache_dir)
        self.workers = max(0, int(workers))
        self._start_method = start_method
        self._pool = None
        self._lock = threading.Lock()
        #: key -> _Pending for executions currently on the pool
        self._inflight: Dict[str, _Pending] = {}
        self.executed = 0
        self.errors = 0

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            context = multiprocessing.get_context(self._start_method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "FleetRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- submission ---------------------------------------------------------

    def submit(self, jobs: Iterable[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        """Run *jobs* (dicts); yield one record per job as results land.

        Records carry the submission index (``job``), the cache key,
        ``cached``/``dedup`` provenance flags and either the
        deterministic ``result`` payload or an ``error``.  Cache hits
        stream first, then executions in completion order.  Malformed
        jobs raise ``ValueError`` before anything runs.
        """
        prepared: List[Tuple[int, Job, str]] = []
        for index, job_dict in enumerate(jobs):
            job = Job.from_dict(dict(job_dict))
            source = resolve_workload(job.workload, job.isa, job.seed)
            prepared.append((index, job, job_key(job, source=source)))

        ready: List[Dict[str, Any]] = []
        leaders: List[Tuple[str, Job]] = []
        follower_keys: List[str] = []
        members: Dict[str, List[int]] = {}  # key -> indices awaiting execution
        followed: Dict[str, _Pending] = {}
        with self._lock:
            for index, job, key in prepared:
                if key in members:
                    members[key].append(index)  # batch duplicate
                    continue
                payload = self.cache.get(key)
                if payload is not None:
                    ready.append(self._record(index, key, cached=True,
                                              outcome={"ok": True,
                                                       "result": payload}))
                    continue
                members[key] = [index]
                pending = self._inflight.get(key)
                if pending is not None:  # running for a concurrent batch
                    followed[key] = pending
                    follower_keys.append(key)
                else:
                    self._inflight[key] = _Pending()
                    leaders.append((key, job))

        yield from ready

        if not members:
            return

        done: "queue.Queue[Tuple[str, Dict[str, Any]]]" = queue.Queue()

        def settle(key: str, outcome: Dict[str, Any]) -> None:
            """Publish a finished execution: cache, wake followers."""
            with self._lock:
                pending = self._inflight.pop(key, None)
                self.executed += 1
                if outcome.get("ok"):
                    self.cache.put(key, outcome["result"])
                else:
                    self.errors += 1
            if pending is not None:
                pending.outcome = outcome
                pending.event.set()

        for key in follower_keys:
            threading.Thread(
                target=lambda key=key, pending=followed[key]: (
                    pending.event.wait(),
                    done.put((key, dict(pending.outcome or {}))),
                ),
                daemon=True,
            ).start()

        if self.workers == 0:
            # serial in-process execution, submission order
            for key, job in leaders:
                start = time.perf_counter()
                outcome = run_job(job.to_dict())
                outcome["seconds"] = round(time.perf_counter() - start, 6)
                settle(key, outcome)
                done.put((key, outcome))
        else:
            pool = self._ensure_pool()
            for key, job in leaders:
                def _cb(result, _key=key):
                    finished_key, outcome = result
                    settle(finished_key, outcome)
                    done.put((finished_key, outcome))

                def _err(exc, _key=key):  # pragma: no cover - worker crash
                    outcome = {"ok": False,
                               "error": {"type": type(exc).__name__,
                                         "message": str(exc)}}
                    settle(_key, outcome)
                    done.put((_key, outcome))

                pool.apply_async(pool_run, ((key, job.to_dict()),),
                                 callback=_cb, error_callback=_err)

        for _ in range(len(members)):
            key, outcome = done.get()
            indices = members.pop(key)
            dedup = key in followed
            yield self._record(indices[0], key, cached=False, outcome=outcome,
                               dedup=dedup)
            for index in indices[1:]:
                yield self._record(index, key, cached=False, outcome=outcome,
                                   dedup=True)

    def _record(self, index: int, key: str, cached: bool,
                outcome: Dict[str, Any], dedup: bool = False) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "result",
            "job": index,
            "key": key,
            "cached": cached,
            "dedup": dedup,
            "ok": bool(outcome.get("ok")),
        }
        if outcome.get("ok"):
            record["result"] = outcome["result"]
        else:
            record["error"] = outcome.get("error",
                                          {"type": "UnknownError",
                                           "message": "no outcome"})
        if outcome.get("seconds") is not None and not cached and not dedup:
            record["seconds"] = outcome["seconds"]
        return record

    # -- batch convenience --------------------------------------------------

    def run_sweep(self, jobs: Iterable[Dict[str, Any]]):
        """Run a batch to completion.

        Returns ``(records, summary)`` — records in submission order,
        summary with job counts, cache/dedupe hits, errors, end-to-end
        wall seconds and jobs/s.
        """
        jobs = list(jobs)
        start = time.perf_counter()
        records = sorted(self.submit(jobs), key=lambda r: r["job"])
        wall = time.perf_counter() - start
        cache_hits = sum(1 for r in records if r["cached"])
        dedup_hits = sum(1 for r in records if r["dedup"])
        errors = sum(1 for r in records if not r["ok"])
        summary = {
            "type": "summary",
            "jobs": len(records),
            "executed": len(records) - cache_hits - dedup_hits,
            "cache_hits": cache_hits,
            "dedup_hits": dedup_hits,
            "errors": errors,
            "cache_hit_rate": round(cache_hits / len(records), 4) if records else 0.0,
            "wall_seconds": round(wall, 4),
            "jobs_per_second": round(len(records) / wall, 2) if wall > 0 else 0.0,
        }
        return records, summary


def sweep(
    jobs: Iterable[Dict[str, Any]],
    workers: int = 0,
    cache_dir: Optional[str] = None,
    start_method: str = "spawn",
):
    """One-shot batch API: run *jobs* on a fresh runner, return
    ``(records, summary)``.  The sweep benchmarks are thin clients of
    this call; ``workers=0`` (the default) runs in-process."""
    with FleetRunner(workers=workers, cache_dir=cache_dir,
                     start_method=start_method) as runner:
        return runner.run_sweep(jobs)
