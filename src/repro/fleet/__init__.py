"""Sharded, cached fleet runner: ``repro serve`` / ``repro submit``.

The fleet layer fans (model, workload, config, seed) jobs across a
multiprocess worker pool, dedupes identical jobs through a
content-addressed result cache (sha256 over the model's source-closure
fingerprint, the resolved workload text, the canonical config, the seed
and the cycle budget — see :mod:`repro.fleet.jobs`), and streams JSON
results back as they complete.  Caching is sound because simulation is
deterministic — the property `tests/integration/test_fastpath_determinism.py`
pins; see ``docs/fleet.md`` for the full argument.
"""

from .cache import MemoryCache, ResultCache, open_cache
from .jobs import (
    DEFAULT_MAX_CYCLES,
    RESULT_SCHEMA,
    Job,
    canonical_json,
    job_key,
    model_fingerprint,
    resolve_workload,
)
from .pool import FleetRunner, sweep
from .worker import run_job, run_job_with_key
from .server import DEFAULT_PORT, FleetServer, serve
from .client import FleetClient, FleetClientError
from .bench import MIN_WARM_HIT_RATE, bench_jobs, fleet_bench

__all__ = [
    "DEFAULT_MAX_CYCLES",
    "DEFAULT_PORT",
    "MIN_WARM_HIT_RATE",
    "RESULT_SCHEMA",
    "FleetClient",
    "FleetClientError",
    "FleetRunner",
    "FleetServer",
    "Job",
    "MemoryCache",
    "ResultCache",
    "bench_jobs",
    "canonical_json",
    "fleet_bench",
    "job_key",
    "model_fingerprint",
    "open_cache",
    "resolve_workload",
    "run_job",
    "run_job_with_key",
    "serve",
    "sweep",
]
