"""Architectural state shared by the instruction-set simulators."""

from __future__ import annotations

from typing import List, Optional

from ..memory.mainmem import MainMemory


class RegisterFile:
    """A flat integer register file (32-bit values)."""

    __slots__ = ("values",)

    def __init__(self, n_regs: int):
        self.values: List[int] = [0] * n_regs

    def read(self, reg: int) -> int:
        return self.values[reg]

    def write(self, reg: int, value: int) -> None:
        self.values[reg] = value & 0xFFFFFFFF

    def __len__(self) -> int:
        return len(self.values)


class ArchState:
    """Architectural state for a single-context processor.

    Holds the general register file, program counter, condition flags
    (used as NZCV by the ARM-like target and as CR0 LT/GT/EQ by the
    PowerPC-like target), special registers (LR/CTR for PPC), memory and
    the syscall handler.  The halt latch is set by the exit syscall.
    """

    def __init__(self, n_regs: int, memory: Optional[MainMemory] = None, syscalls=None):
        self.regs = RegisterFile(n_regs)
        self.pc = 0
        self.flag_n = 0
        self.flag_z = 0
        self.flag_c = 0
        self.flag_v = 0
        #: PPC special registers (unused by the ARM target)
        self.lr = 0
        self.ctr = 0
        self.memory = memory if memory is not None else MainMemory()
        self.syscalls = syscalls
        self.halted = False
        self.exit_code = 0
        self.instret = 0

    def read_reg(self, reg: int) -> int:
        return self.regs.read(reg)

    def write_reg(self, reg: int, value: int) -> None:
        self.regs.write(reg, value)

    @property
    def flags_word(self) -> int:
        """NZCV packed into bits 31..28 (CPSR-style view, for tests)."""
        return (self.flag_n << 31) | (self.flag_z << 30) | (self.flag_c << 29) | (self.flag_v << 28)

    def halt(self, code: int = 0) -> None:
        self.halted = True
        self.exit_code = code & 0xFF

    def __repr__(self) -> str:  # pragma: no cover
        return f"ArchState(pc={self.pc:#x}, halted={self.halted})"


# -- taint-instrumented shadow state ----------------------------------------
#
# The ISA auditor (repro.analysis.audit.hazards) executes each instruction
# class against a shadow of ArchState that records every architectural
# read and write, then compares the observed traffic against the decoder's
# declared hazard metadata.  The shadow intercepts at the *state* level,
# below the semantics functions, so it sees exactly what the pipeline
# models' hazard machinery must account for.


class ShadowRegisterFile(RegisterFile):
    """Register file recording which registers were read and written."""

    __slots__ = ("reads", "writes")

    def __init__(self, n_regs: int):
        super().__init__(n_regs)
        self.reads = set()
        self.writes = set()

    def read(self, reg: int) -> int:
        self.reads.add(reg)
        return super().read(reg)

    def write(self, reg: int, value: int) -> None:
        self.writes.add(reg)
        super().write(reg, value)


class ShadowMemory:
    """Wrapper around a memory object recording loads and stores."""

    def __init__(self, memory: MainMemory):
        self._memory = memory
        self.loads: List[tuple] = []
        self.stores: List[tuple] = []

    def read_word(self, addr: int) -> int:
        self.loads.append(("word", addr))
        return self._memory.read_word(addr)

    def read_half(self, addr: int) -> int:
        self.loads.append(("half", addr))
        return self._memory.read_half(addr)

    def read_byte(self, addr: int) -> int:
        self.loads.append(("byte", addr))
        return self._memory.read_byte(addr)

    def read_block(self, addr: int, length: int) -> bytes:
        self.loads.append(("block", addr))
        return self._memory.read_block(addr, length)

    def write_word(self, addr: int, value: int) -> None:
        self.stores.append(("word", addr, value))
        self._memory.write_word(addr, value)

    def write_half(self, addr: int, value: int) -> None:
        self.stores.append(("half", addr, value))
        self._memory.write_half(addr, value)

    def write_byte(self, addr: int, value: int) -> None:
        self.stores.append(("byte", addr, value))
        self._memory.write_byte(addr, value)

    def write_block(self, addr: int, data: bytes) -> None:
        self.stores.append(("block", addr, bytes(data)))
        self._memory.write_block(addr, data)

    def __getattr__(self, name):
        return getattr(self._memory, name)


class ShadowArchState(ArchState):
    """ArchState recording all register, flag, SPR and memory traffic.

    Flags are recorded as single letters ('n'/'z'/'c'/'v') in
    ``flag_reads``/``flag_writes``; special registers as 'lr'/'ctr' in
    ``spr_reads``/``spr_writes``.  Register traffic lives on the
    :class:`ShadowRegisterFile` (``state.regs.reads`` / ``.writes``) and
    memory traffic on the :class:`ShadowMemory` (``state.memory.loads`` /
    ``.stores``).  ``clear_traffic()`` resets everything between
    instructions.
    """

    def __init__(self, n_regs: int, memory: Optional[MainMemory] = None, syscalls=None):
        self._armed = False
        self.flag_reads = set()
        self.flag_writes = set()
        self.spr_reads = set()
        self.spr_writes = set()
        super().__init__(n_regs, memory=memory, syscalls=syscalls)
        self.regs = ShadowRegisterFile(n_regs)
        self.memory = ShadowMemory(self.memory)
        self._armed = True

    def clear_traffic(self) -> None:
        self.regs.reads.clear()
        self.regs.writes.clear()
        self.memory.loads.clear()
        self.memory.stores.clear()
        self.flag_reads.clear()
        self.flag_writes.clear()
        self.spr_reads.clear()
        self.spr_writes.clear()


def _shadow_flag(letter: str):
    attr = "_flag_" + letter

    def fget(self):
        if self._armed:
            self.flag_reads.add(letter)
        return getattr(self, attr)

    def fset(self, value):
        if self._armed:
            self.flag_writes.add(letter)
        object.__setattr__(self, attr, value)

    return property(fget, fset)


def _shadow_spr(name: str):
    attr = "_spr_" + name

    def fget(self):
        if self._armed:
            self.spr_reads.add(name)
        return getattr(self, attr)

    def fset(self, value):
        if self._armed:
            self.spr_writes.add(name)
        object.__setattr__(self, attr, value)

    return property(fget, fset)


for _letter in "nzcv":
    setattr(ShadowArchState, "flag_" + _letter, _shadow_flag(_letter))
for _name in ("lr", "ctr"):
    setattr(ShadowArchState, _name, _shadow_spr(_name))
del _letter, _name
