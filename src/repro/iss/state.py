"""Architectural state shared by the instruction-set simulators."""

from __future__ import annotations

from typing import List, Optional

from ..memory.mainmem import MainMemory


class RegisterFile:
    """A flat integer register file (32-bit values)."""

    __slots__ = ("values",)

    def __init__(self, n_regs: int):
        self.values: List[int] = [0] * n_regs

    def read(self, reg: int) -> int:
        return self.values[reg]

    def write(self, reg: int, value: int) -> None:
        self.values[reg] = value & 0xFFFFFFFF

    def __len__(self) -> int:
        return len(self.values)


class ArchState:
    """Architectural state for a single-context processor.

    Holds the general register file, program counter, condition flags
    (used as NZCV by the ARM-like target and as CR0 LT/GT/EQ by the
    PowerPC-like target), special registers (LR/CTR for PPC), memory and
    the syscall handler.  The halt latch is set by the exit syscall.
    """

    def __init__(self, n_regs: int, memory: Optional[MainMemory] = None, syscalls=None):
        self.regs = RegisterFile(n_regs)
        self.pc = 0
        self.flag_n = 0
        self.flag_z = 0
        self.flag_c = 0
        self.flag_v = 0
        #: PPC special registers (unused by the ARM target)
        self.lr = 0
        self.ctr = 0
        self.memory = memory if memory is not None else MainMemory()
        self.syscalls = syscalls
        self.halted = False
        self.exit_code = 0
        self.instret = 0

    def read_reg(self, reg: int) -> int:
        return self.regs.read(reg)

    def write_reg(self, reg: int, value: int) -> None:
        self.regs.write(reg, value)

    @property
    def flags_word(self) -> int:
        """NZCV packed into bits 31..28 (CPSR-style view, for tests)."""
        return (self.flag_n << 31) | (self.flag_z << 30) | (self.flag_c << 29) | (self.flag_v << 28)

    def halt(self, code: int = 0) -> None:
        self.halted = True
        self.exit_code = code & 0xFF

    def __repr__(self) -> str:  # pragma: no cover
        return f"ArchState(pc={self.pc:#x}, halted={self.halted})"
