"""Minimal syscall emulation.

The paper bases its models on ISSs "capable of simulating user-level ELF
binaries"; the interesting system-call surface for kernels and benchmarks
is tiny, so we implement exactly what the workloads need:

====  ==========  ========================================================
 #    name        behaviour
====  ==========  ========================================================
 0    exit        halt with exit code in arg0
 1    putc        append chr(arg0) to the output buffer
 2    write       append memory[arg0 .. arg0+arg1) to the output buffer
 3    getc        return next byte of the input buffer, or -1
 4    cycles      return the retired-instruction count (a fast clock)
====  ==========  ========================================================

Both targets share the handler; the ISA adapter supplies the argument /
return register mapping (ARM: r0..r2 / r0; PPC: r3..r5 / r3).
"""

from __future__ import annotations

from typing import Sequence

SYS_EXIT = 0
SYS_PUTC = 1
SYS_WRITE = 2
SYS_GETC = 3
SYS_CYCLES = 4


class SyscallError(Exception):
    """Raised for unknown syscall numbers."""


class SyscallHandler:
    """Syscall implementation over an :class:`~repro.iss.state.ArchState`.

    Parameters
    ----------
    arg_regs:
        Register numbers carrying arguments (e.g. ``(0, 1, 2)`` for ARM).
    ret_reg:
        Register receiving the return value.
    stdin:
        Optional input bytes served by ``getc``.
    """

    def __init__(self, arg_regs: Sequence[int] = (0, 1, 2), ret_reg: int = 0, stdin: bytes = b""):
        self.arg_regs = tuple(arg_regs)
        self.ret_reg = ret_reg
        self.output = bytearray()
        self._stdin = bytes(stdin)
        self._stdin_pos = 0
        self.calls = 0

    @property
    def output_text(self) -> str:
        return self.output.decode("latin-1")

    def handle(self, state, number: int) -> None:
        self.calls += 1
        args = [state.read_reg(r) for r in self.arg_regs]
        if number == SYS_EXIT:
            state.halt(args[0])
        elif number == SYS_PUTC:
            self.output.append(args[0] & 0xFF)
        elif number == SYS_WRITE:
            self.output.extend(state.memory.read_block(args[0], args[1]))
        elif number == SYS_GETC:
            if self._stdin_pos < len(self._stdin):
                value = self._stdin[self._stdin_pos]
                self._stdin_pos += 1
            else:
                value = 0xFFFFFFFF  # -1
            state.write_reg(self.ret_reg, value)
        elif number == SYS_CYCLES:
            state.write_reg(self.ret_reg, state.instret & 0xFFFFFFFF)
        else:
            raise SyscallError(f"unknown syscall number {number}")
