"""Shared decoded-operation cache with write invalidation.

The ISS interpreters and the OSM-layer timing models both decode
instructions from main memory, and both memoise the result by address —
decoding is by far the most expensive part of a fetch.  The seed
implementation kept a bare per-interpreter dict that was *never
invalidated*: a program that stores over its own text kept executing the
stale decode.

:class:`DecodeCache` fixes that contract and extends it to *basic
blocks*.  The per-instruction layer is keyed by address and shared
between the functional interpreter and the fetch units of the timing
models (they all decode through :meth:`BaseInterpreter.fetch_decode`).
On top of it, :meth:`fetch_block` discovers basic-block boundaries at
fetch time: starting from an entry address it decodes forward until a
control transfer (``is_branch`` / ``writes_pc``) or a system instruction
ends the block, and memoises the resulting :class:`DecodedBlock`.  The
run loops of the interpreted and dynamically-compiled ISSs execute whole
blocks between cache probes, and the per-ISA execgen binds specialised
executor closures to a block's instructions when it is first built.

Both layers honor the write-invalidation contract.  A write hook on the
backing :class:`MainMemory` consults a 256-byte *page map* — page index
-> cached entry addresses / blocks spanning the page — so a store costs
O(pages touched) when nothing is cached nearby, instead of the previous
O(write length) per-byte scan; wide block writes (``write_block``) no
longer walk every byte of their span.  A store that overlaps a cached
instruction drops the entry *and* every block containing it; dropped
blocks are flagged ``valid = False`` so a run loop mid-way through one
stops at the next instruction boundary and re-fetches.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from ..memory.mainmem import MainMemory

#: instruction width in bytes (both targets are fixed-width 32-bit ISAs)
INSTR_BYTES = 4

#: page granularity of the invalidation index (2**8 = 256 bytes)
PAGE_SHIFT = 8

#: longest basic block discovered at fetch time (matches the compiled
#: ISS's translation limit; longer straight-line runs chain blocks)
MAX_BLOCK_LEN = 64


def _default_ends_block(instr) -> bool:
    """ISA-generic block-ender predicate over the hazard metadata.

    Control transfers end blocks (``is_branch`` covers branches,
    ``writes_pc`` covers ALU/load writes to the PC), and so do system
    instructions (ARM ``swi``/``udf`` are unit ``"system"``, PPC
    ``sc``/``mtspr``/``mfspr`` are unit ``"sru"``) — a syscall can halt
    the machine or rewrite memory under the block.
    """
    return instr.is_branch or instr.writes_pc or instr.unit in ("system", "sru")


class DecodedBlock:
    """A decoded basic block: ``instrs[i]`` is at ``entry + 4*i``.

    ``valid`` flips to False when a store overlaps ``[entry, end)``; run
    loops check it at instruction boundaries so self-modifying code
    re-fetches mid-block.  ``compiled`` caches the dynamically-compiled
    translation of the block (see :mod:`repro.iss.compiled`); it dies
    with the block, which is what ties block translations to the
    write-invalidation contract.
    """

    __slots__ = ("entry", "end", "instrs", "valid", "compiled")

    def __init__(self, entry: int, instrs: List[Any]):
        self.entry = entry
        self.end = entry + INSTR_BYTES * len(instrs)
        self.instrs = instrs
        self.valid = True
        self.compiled: Optional[Callable] = None

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "valid" if self.valid else "invalidated"
        return f"DecodedBlock({self.entry:#x}..{self.end:#x}, {len(self.instrs)} instrs, {state})"


class DecodeCache:
    """Address-keyed decoded-instruction and basic-block cache.

    Parameters
    ----------
    memory:
        The backing main memory; a write hook is registered so stores
        that overlap a cached instruction invalidate it (and any block
        containing it).
    decode:
        ``decode(addr, word) -> instr`` — the ISA decoder.
    ends_block:
        Predicate deciding where fetch-time block discovery stops; the
        default works for both targets from the hazard metadata alone.
    bind_block:
        Optional ``bind_block(instrs) -> None`` hook, called once per
        newly-built block — the per-ISA execgen uses it to attach
        specialised ``exec_fn`` closures to the block's instructions.
    """

    __slots__ = ("entries", "blocks", "_decode", "_read_word", "_ends_block",
                 "_bind_block", "_pages", "_block_pages", "invalidations",
                 "block_hits", "block_misses", "block_invalidations")

    def __init__(self, memory: MainMemory, decode: Callable[[int, int], Any],
                 ends_block: Optional[Callable[[Any], bool]] = None,
                 bind_block: Optional[Callable[[List[Any]], None]] = None):
        #: addr -> decoded instruction (exposed so the hot fetch path can
        #: do the dict probe without an extra call; see fetch_decode)
        self.entries: Dict[int, Any] = {}
        #: entry addr -> DecodedBlock
        self.blocks: Dict[int, DecodedBlock] = {}
        self._decode = decode
        self._read_word = memory.read_word
        self._ends_block = ends_block or _default_ends_block
        self._bind_block = bind_block
        #: page index -> addresses of cached entries on that page
        self._pages: Dict[int, Set[int]] = {}
        #: page index -> blocks overlapping that page
        self._block_pages: Dict[int, Set[DecodedBlock]] = {}
        #: number of cached entries dropped by overlapping writes
        self.invalidations = 0
        self.block_hits = 0
        self.block_misses = 0
        #: number of cached blocks dropped by overlapping writes
        self.block_invalidations = 0
        memory.add_write_hook(self._on_write)

    # -- per-instruction layer ----------------------------------------------

    def fetch(self, addr: int):
        """The decoded instruction at *addr* (decoding on first use)."""
        instr = self.entries.get(addr)
        if instr is None:
            instr = self._decode(addr, self._read_word(addr))
            self.entries[addr] = instr
            self._pages.setdefault(addr >> PAGE_SHIFT, set()).add(addr)
        return instr

    # -- basic-block layer ---------------------------------------------------

    def fetch_block(self, addr: int) -> DecodedBlock:
        """The basic block entered at *addr* (built on first use)."""
        block = self.blocks.get(addr)
        if block is not None:
            self.block_hits += 1
            return block
        self.block_misses += 1
        return self._build_block(addr)

    def _build_block(self, entry: int) -> DecodedBlock:
        instrs = [self.fetch(entry)]
        ends_block = self._ends_block
        addr = entry
        while not ends_block(instrs[-1]) and len(instrs) < MAX_BLOCK_LEN:
            addr = (addr + INSTR_BYTES) & 0xFFFFFFFF
            try:
                instrs.append(self.fetch(addr))
            except Exception:
                # decoding ran off mapped memory: the block ends here and
                # the (unreachable unless buggy) next fetch will fault in
                # the run loop instead, exactly as the per-instruction
                # interpreter would
                break
        block = DecodedBlock(entry, instrs)
        self.blocks[entry] = block
        for page in range(entry >> PAGE_SHIFT,
                          ((block.end - 1) >> PAGE_SHIFT) + 1):
            self._block_pages.setdefault(page, set()).add(block)
        if self._bind_block is not None:
            self._bind_block(instrs)
        return block

    # -- invalidation ---------------------------------------------------------

    def _on_write(self, address: int, length: int) -> None:
        """Drop every cached instruction and block the write overlaps.

        An instruction cached at address X covers ``[X, X+4)``; a write
        of *length* bytes at *address* overlaps X in
        ``[address-3, address+length-1]``.  Only the pages spanned by
        that interval are consulted, so a wide ``write_block`` costs one
        probe per 256-byte page rather than one per byte.
        """
        lo = address - INSTR_BYTES + 1
        hi = address + length
        first_page = lo >> PAGE_SHIFT
        last_page = (hi - 1) >> PAGE_SHIFT
        pages = self._pages
        block_pages = self._block_pages
        if first_page == last_page:
            # fast path: data stores almost never share a page with code
            if first_page not in pages and first_page not in block_pages:
                return
        entries = self.entries
        for page in range(first_page, last_page + 1):
            addrs = pages.get(page)
            if addrs:
                dead = [a for a in addrs if lo <= a < hi]
                for a in dead:
                    addrs.discard(a)
                    del entries[a]
                self.invalidations += len(dead)
                if not addrs:
                    del pages[page]
            blocks_here = block_pages.get(page)
            if blocks_here:
                dead_blocks = [b for b in blocks_here
                               if address < b.end and hi > b.entry]
                for block in dead_blocks:
                    self._drop_block(block)
                self.block_invalidations += len(dead_blocks)

    def _drop_block(self, block: DecodedBlock) -> None:
        block.valid = False
        block.compiled = None
        if self.blocks.get(block.entry) is block:
            del self.blocks[block.entry]
        block_pages = self._block_pages
        for page in range(block.entry >> PAGE_SHIFT,
                          ((block.end - 1) >> PAGE_SHIFT) + 1):
            blocks_here = block_pages.get(page)
            if blocks_here is not None:
                blocks_here.discard(block)
                if not blocks_here:
                    del block_pages[page]

    def clear(self) -> None:
        self.entries.clear()
        for block in list(self.blocks.values()):
            block.valid = False
            block.compiled = None
        self.blocks.clear()
        self._pages.clear()
        self._block_pages.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DecodeCache({len(self.entries)} entries, {len(self.blocks)} blocks, "
                f"{self.invalidations}+{self.block_invalidations} invalidated)")
