"""Shared decoded-operation cache with write invalidation.

The ISS interpreters and the OSM-layer timing models both decode
instructions from main memory, and both memoise the result by address —
decoding is by far the most expensive part of a fetch.  The seed
implementation kept a bare per-interpreter dict that was *never
invalidated*: a program that stores over its own text kept executing the
stale decode.

:class:`DecodeCache` fixes that contract.  It is keyed by address, shared
between the functional interpreter and the fetch units of the timing
models (they all decode through :meth:`BaseInterpreter.fetch_decode`),
and registers a write hook on the backing :class:`MainMemory` so any
store overlapping a cached instruction's bytes drops exactly the stale
entries.  Invalidation is O(span) per write and the hook costs one list
check per write when nothing is cached near the store.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..memory.mainmem import MainMemory

#: instruction width in bytes (both targets are fixed-width 32-bit ISAs)
INSTR_BYTES = 4


class DecodeCache:
    """Address-keyed decoded-instruction cache, invalidated by writes.

    Parameters
    ----------
    memory:
        The backing main memory; a write hook is registered so stores
        that overlap a cached instruction invalidate it.
    decode:
        ``decode(addr, word) -> instr`` — the ISA decoder.
    """

    __slots__ = ("entries", "_decode", "_read_word", "invalidations")

    def __init__(self, memory: MainMemory, decode: Callable[[int, int], Any]):
        #: addr -> decoded instruction (exposed so the hot fetch path can
        #: do the dict probe without an extra call; see fetch_decode)
        self.entries: Dict[int, Any] = {}
        self._decode = decode
        self._read_word = memory.read_word
        #: number of cached entries dropped by overlapping writes
        self.invalidations = 0
        memory.add_write_hook(self._on_write)

    def fetch(self, addr: int):
        """The decoded instruction at *addr* (decoding on first use)."""
        instr = self.entries.get(addr)
        if instr is None:
            instr = self._decode(addr, self._read_word(addr))
            self.entries[addr] = instr
        return instr

    def _on_write(self, address: int, length: int) -> None:
        """Drop every cached instruction whose bytes overlap the write.

        An instruction cached at address X covers ``[X, X+4)``; a write
        of *length* bytes at *address* overlaps X in
        ``[address-3, address+length-1]``.  Entries are keyed at their
        start address (any alignment), so the whole span is probed.
        """
        entries = self.entries
        if not entries:
            return
        pop = entries.pop
        for addr in range(address - INSTR_BYTES + 1, address + length):
            if pop(addr & 0xFFFFFFFF, None) is not None:
                self.invalidations += 1

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecodeCache({len(self.entries)} entries, {self.invalidations} invalidated)"
