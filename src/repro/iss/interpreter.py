"""Interpreted instruction-set simulators.

One interpreter class per target ISA, sharing the decode-cache + step()
organisation.  These are the "existing ISSs" of Section 5 that the
micro-architecture models are based on: they own architectural state and
functional execution, while the OSM models own the timing.
"""

from __future__ import annotations

from ..isa.program import Program
from ..memory.mainmem import MainMemory
from .decode_cache import DecodeCache
from .state import ArchState
from .syscalls import SyscallHandler


class IssError(Exception):
    """Raised when functional execution cannot continue."""


class BaseInterpreter:
    """Shared machinery: decode cache, run loop, instruction budget.

    With ``specialize`` (the default), instruction fetches that miss the
    decode cache build whole basic blocks, and the per-ISA execgen binds
    a specialised executor closure to every supported instruction
    (``instr.exec_fn``); :meth:`run` executes block-at-a-time and both
    :meth:`step` and the timing models dispatch through ``exec_fn`` when
    present.  ``specialize=False`` keeps the pure per-instruction
    interpreter — the reference the specialised path is differentially
    tested against.
    """

    #: subclasses set: ISA hooks
    n_regs = 16

    def __init__(self, program: Program, stdin: bytes = b"", stack_top: int = 0x80000,
                 specialize: bool = True):
        self.program = program
        memory = MainMemory()
        program.load_into(memory)
        self.syscalls = self._make_syscalls(stdin)
        self.state = ArchState(self.n_regs, memory, self.syscalls)
        self.state.pc = program.entry
        self._init_state(stack_top)
        self.specialize = specialize
        #: shared decoded-operation cache: the timing models fetch through
        #: :meth:`fetch_decode` too, so functional and timing layers see
        #: one consistent, write-invalidated view of the text
        self.decode_cache = DecodeCache(
            memory, self._decode,
            bind_block=self._bind_block if specialize else None,
        )
        self.steps = 0

    # -- ISA hooks ------------------------------------------------------------

    def _make_syscalls(self, stdin: bytes) -> SyscallHandler:
        raise NotImplementedError

    def _init_state(self, stack_top: int) -> None:
        """Set up the ABI environment (stack pointer etc.)."""

    def _decode(self, addr: int, word: int):
        raise NotImplementedError

    def _execute(self, instr):
        raise NotImplementedError

    def _bind_block(self, instrs) -> None:
        """Attach specialised executors to a new block (per-ISA execgen)."""
        raise NotImplementedError

    # -- execution --------------------------------------------------------------

    def fetch_decode(self, addr: int):
        """Decode (with caching) the instruction at *addr*.

        The cache is shared with the timing models and invalidated on
        memory writes, so self-modifying code re-decodes (see
        :mod:`repro.iss.decode_cache`).  When specialising, the block
        layer is probed first — a fetch at a block entry counts as block
        reuse (``block_hits``) even though the per-instruction layer
        could also satisfy it, and a miss builds the whole basic block —
        so the timing models' fetch units transparently pick up
        ``exec_fn`` executors *and* are attributed in the block-reuse
        accounting.  Mid-block addresses fall through to the
        per-instruction layer.
        """
        cache = self.decode_cache
        if self.specialize:
            block = cache.blocks.get(addr)
            if block is not None:
                cache.block_hits += 1
                return block.instrs[0]
        instr = cache.entries.get(addr)
        if instr is not None:
            return instr
        if self.specialize:
            return cache.fetch_block(addr).instrs[0]
        return cache.fetch(addr)

    def step(self):
        """Execute one instruction; returns (instr, exec_info)."""
        if self.state.halted:
            raise IssError("stepping a halted machine")
        pc = self.state.pc
        instr = self.fetch_decode(pc)
        fn = instr.exec_fn
        info = fn(self.state) if fn is not None else self._execute(instr)
        self.state.instret += 1
        self.steps += 1
        return instr, info

    def run(self, max_steps: int = 50_000_000) -> int:
        """Run to the exit syscall; returns the exit code."""
        state = self.state
        if not self.specialize:
            while not state.halted:
                if self.steps >= max_steps:
                    raise IssError(f"program exceeded {max_steps} instructions")
                self.step()
            return state.exit_code
        # Block-at-a-time loop: one cache probe per basic block, then the
        # pre-bound executors back to back.  ``block.valid`` is checked at
        # every instruction boundary so a store into the *currently
        # executing* block stops before the next stale instruction.
        fetch_block = self.decode_cache.fetch_block
        execute = self._execute
        steps = self.steps
        try:
            while not state.halted:
                block = fetch_block(state.pc)
                for instr in block.instrs:
                    if not block.valid:
                        break
                    if steps >= max_steps:
                        raise IssError(
                            f"program exceeded {max_steps} instructions")
                    fn = instr.exec_fn
                    if fn is not None:
                        fn(state)
                    else:
                        execute(instr)
                    state.instret += 1
                    steps += 1
                    if state.halted:
                        break
        finally:
            self.steps = steps
        return state.exit_code


class ArmInterpreter(BaseInterpreter):
    """ISS for the ARM-like target."""

    n_regs = 16

    def _make_syscalls(self, stdin: bytes) -> SyscallHandler:
        return SyscallHandler(arg_regs=(0, 1, 2), ret_reg=0, stdin=stdin)

    def _init_state(self, stack_top: int) -> None:
        from ..isa.arm.isa import SP

        self.state.write_reg(SP, stack_top)

    def _decode(self, addr: int, word: int):
        from ..isa.arm.decode import decode

        return decode(addr, word)

    def _execute(self, instr):
        from ..isa.arm.semantics import execute

        return execute(self.state, instr)

    def _bind_block(self, instrs) -> None:
        from ..isa.arm.execgen import bind_block

        bind_block(instrs)


class PpcInterpreter(BaseInterpreter):
    """ISS for the PowerPC-like target."""

    n_regs = 32

    def _make_syscalls(self, stdin: bytes) -> SyscallHandler:
        return SyscallHandler(arg_regs=(3, 4, 5), ret_reg=3, stdin=stdin)

    def _init_state(self, stack_top: int) -> None:
        self.state.write_reg(1, stack_top)  # r1 is the PPC stack pointer

    def _decode(self, addr: int, word: int):
        from ..isa.ppc.decode import decode

        return decode(addr, word)

    def _execute(self, instr):
        from ..isa.ppc.semantics import execute

        return execute(self.state, instr)

    def _bind_block(self, instrs) -> None:
        from ..isa.ppc.execgen import bind_block

        bind_block(instrs)
