"""Interpreted instruction-set simulators.

One interpreter class per target ISA, sharing the decode-cache + step()
organisation.  These are the "existing ISSs" of Section 5 that the
micro-architecture models are based on: they own architectural state and
functional execution, while the OSM models own the timing.
"""

from __future__ import annotations

from ..isa.program import Program
from ..memory.mainmem import MainMemory
from .decode_cache import DecodeCache
from .state import ArchState
from .syscalls import SyscallHandler


class IssError(Exception):
    """Raised when functional execution cannot continue."""


class BaseInterpreter:
    """Shared machinery: decode cache, run loop, instruction budget."""

    #: subclasses set: ISA hooks
    n_regs = 16

    def __init__(self, program: Program, stdin: bytes = b"", stack_top: int = 0x80000):
        self.program = program
        memory = MainMemory()
        program.load_into(memory)
        self.syscalls = self._make_syscalls(stdin)
        self.state = ArchState(self.n_regs, memory, self.syscalls)
        self.state.pc = program.entry
        self._init_state(stack_top)
        #: shared decoded-operation cache: the timing models fetch through
        #: :meth:`fetch_decode` too, so functional and timing layers see
        #: one consistent, write-invalidated view of the text
        self.decode_cache = DecodeCache(memory, self._decode)
        self.steps = 0

    # -- ISA hooks ------------------------------------------------------------

    def _make_syscalls(self, stdin: bytes) -> SyscallHandler:
        raise NotImplementedError

    def _init_state(self, stack_top: int) -> None:
        """Set up the ABI environment (stack pointer etc.)."""

    def _decode(self, addr: int, word: int):
        raise NotImplementedError

    def _execute(self, instr):
        raise NotImplementedError

    # -- execution --------------------------------------------------------------

    def fetch_decode(self, addr: int):
        """Decode (with caching) the instruction at *addr*.

        The cache is shared with the timing models and invalidated on
        memory writes, so self-modifying code re-decodes (see
        :mod:`repro.iss.decode_cache`).
        """
        cache = self.decode_cache
        instr = cache.entries.get(addr)
        if instr is None:
            return cache.fetch(addr)
        return instr

    def step(self):
        """Execute one instruction; returns (instr, exec_info)."""
        if self.state.halted:
            raise IssError("stepping a halted machine")
        pc = self.state.pc
        instr = self.fetch_decode(pc)
        info = self._execute(instr)
        self.state.instret += 1
        self.steps += 1
        return instr, info

    def run(self, max_steps: int = 50_000_000) -> int:
        """Run to the exit syscall; returns the exit code."""
        state = self.state
        while not state.halted:
            if self.steps >= max_steps:
                raise IssError(f"program exceeded {max_steps} instructions")
            self.step()
        return state.exit_code


class ArmInterpreter(BaseInterpreter):
    """ISS for the ARM-like target."""

    n_regs = 16

    def _make_syscalls(self, stdin: bytes) -> SyscallHandler:
        return SyscallHandler(arg_regs=(0, 1, 2), ret_reg=0, stdin=stdin)

    def _init_state(self, stack_top: int) -> None:
        from ..isa.arm.isa import SP

        self.state.write_reg(SP, stack_top)

    def _decode(self, addr: int, word: int):
        from ..isa.arm.decode import decode

        return decode(addr, word)

    def _execute(self, instr):
        from ..isa.arm.semantics import execute

        return execute(self.state, instr)


class PpcInterpreter(BaseInterpreter):
    """ISS for the PowerPC-like target."""

    n_regs = 32

    def _make_syscalls(self, stdin: bytes) -> SyscallHandler:
        return SyscallHandler(arg_regs=(3, 4, 5), ret_reg=3, stdin=stdin)

    def _init_state(self, stack_top: int) -> None:
        self.state.write_reg(1, stack_top)  # r1 is the PPC stack pointer

    def _decode(self, addr: int, word: int):
        from ..isa.ppc.decode import decode

        return decode(addr, word)

    def _execute(self, instr):
        from ..isa.ppc.semantics import execute

        return execute(self.state, instr)
