"""Instruction-set simulators (interpreted and dynamically compiled) and
the functional oracle."""

from .compiled import (CompiledArmInterpreter, CompiledInterpreter,
                       CompiledPpcInterpreter)
from .decode_cache import DecodeCache, DecodedBlock
from .interpreter import ArmInterpreter, BaseInterpreter, IssError, PpcInterpreter
from .oracle import ExecRecord, Oracle
from .state import ArchState, RegisterFile
from .syscalls import SyscallError, SyscallHandler

__all__ = [
    "ArchState",
    "ArmInterpreter",
    "CompiledArmInterpreter",
    "CompiledInterpreter",
    "CompiledPpcInterpreter",
    "DecodeCache",
    "DecodedBlock",
    "BaseInterpreter",
    "ExecRecord",
    "IssError",
    "Oracle",
    "PpcInterpreter",
    "RegisterFile",
    "SyscallError",
    "SyscallHandler",
]
