"""The functional oracle: in-order execution records for timing models.

The micro-architecture models are *functional-first*: the ISS executes the
program in architectural order and the timing model consumes the resulting
:class:`ExecRecord` stream — the classic organisation for cycle simulators
built "on top of ISSs" (paper Section 1).  Control speculation is still
modelled faithfully: the fetch machinery compares its (possibly predicted)
fetch PC against the oracle's next correct-path record, creates *wrong
path* operations for mismatches by decoding straight from program memory,
and kills them through the reset manager when the branch resolves, exactly
as Section 4 describes.
"""

from __future__ import annotations

from typing import List, Optional

from .interpreter import BaseInterpreter


class ExecRecord:
    """One architecturally-executed instruction."""

    __slots__ = ("index", "instr", "pc", "next_pc", "executed", "taken", "mem_addr",
                 "mem_is_store", "mul_operand")

    def __init__(self, index: int, instr, info):
        self.index = index
        self.instr = instr
        self.pc = instr.addr
        self.next_pc = info.next_pc
        #: False when a conditional instruction's condition failed
        self.executed = info.executed
        self.taken = getattr(info, "taken", False)
        self.mem_addr = getattr(info, "mem_addr", None)
        self.mem_is_store = getattr(info, "mem_is_store", False)
        self.mul_operand = getattr(info, "mul_operand", None)

    @property
    def is_control_transfer(self) -> bool:
        return self.next_pc != ((self.pc + 4) & 0xFFFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ExecRecord({self.index}: {self.instr.text} -> {self.next_pc:#x})"


class Oracle:
    """Lazily-extended trace of correct-path execution.

    ``record(i)`` runs the ISS forward as needed and returns the i-th
    record; ``length`` is the total number of instructions once the
    program has exited (None while unknown).  The oracle also exposes the
    underlying interpreter for syscall output and final state checks.
    """

    def __init__(self, interpreter: BaseInterpreter, max_steps: int = 50_000_000):
        self.interpreter = interpreter
        self.max_steps = max_steps
        self._records: List[ExecRecord] = []
        self.length: Optional[int] = None

    @property
    def exit_code(self) -> int:
        return self.interpreter.state.exit_code

    def record(self, index: int) -> Optional[ExecRecord]:
        """The *index*-th correct-path record, or None past program exit."""
        while len(self._records) <= index:
            if self.interpreter.state.halted:
                self.length = len(self._records)
                return None
            if self.interpreter.steps >= self.max_steps:
                raise RuntimeError(f"oracle exceeded {self.max_steps} instructions")
            instr, info = self.interpreter.step()
            self._records.append(ExecRecord(len(self._records), instr, info))
            if self.interpreter.state.halted:
                self.length = len(self._records)
        return self._records[index]

    def run_to_completion(self) -> int:
        """Force full execution; returns the instruction count."""
        index = 0
        while self.record(index) is not None:
            index += 1
        assert self.length is not None
        return self.length

    def decode_at(self, addr: int):
        """Decode the static instruction at *addr* (for wrong-path fetch)."""
        return self.interpreter.fetch_decode(addr)
