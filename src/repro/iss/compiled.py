"""Dynamically-compiled instruction-set simulation.

Section 1 of the paper classifies fast ISS techniques: interpreted
simulation, statically-compiled simulation [Pees et al.] and
dynamically-compiled simulation [Shade].  :class:`CompiledInterpreter`
implements the dynamic variant over the shared decode cache's basic-block
layer: the first time control reaches an address, the block starting
there is bound to a specialised function and cached on the
:class:`~repro.iss.decode_cache.DecodedBlock`; subsequent visits run the
function directly, eliminating per-instruction decode and dispatch, and
a store over translated code invalidates decode and translation together.

The ARM target translates whole blocks to Python source
(:class:`BlockTranslator`): register numbers, immediates, shift amounts
and condition tests become literals, and NZCV flags live in local
variables across the block, spilling only at block exit.  The PPC target
chains the per-instruction executors bound by
:mod:`repro.isa.ppc.execgen`.  Blocks end at control transfers
(branches, mov-to-pc, swi/sc) or after ``MAX_BLOCK_LEN`` instructions.

Both compiled ISSs are drop-in compatible with their interpreters (same
architectural state, same syscalls) and are differentially tested
against them; the speed ratio is reported by
``benchmarks/bench_compiled_iss.py``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..isa.arm.decode import ArmInstruction
from ..isa.arm.isa import PC
from ..isa.program import Program
from .interpreter import ArmInterpreter, IssError, PpcInterpreter

MAX_BLOCK_LEN = 64

#: condition-code test expressions over the local flag variables n,z,c,v
_COND_EXPR = {
    0x0: "z == 1",
    0x1: "z == 0",
    0x2: "c == 1",
    0x3: "c == 0",
    0x4: "n == 1",
    0x5: "n == 0",
    0x6: "v == 1",
    0x7: "v == 0",
    0x8: "c == 1 and z == 0",
    0x9: "c == 0 or z == 1",
    0xA: "n == v",
    0xB: "n != v",
    0xC: "z == 0 and n == v",
    0xD: "z == 1 or n != v",
}

_LOGICAL = frozenset(("and", "eor", "tst", "teq", "orr", "mov", "bic", "mvn"))


class BlockTranslator:
    """Translates one basic block to a Python function."""

    def __init__(self):
        self._lines: List[str] = []
        self._indent = 1
        #: instructions translated so far; block enders consult it when
        #: emitting early returns (the footer's accounting must not be
        #: skipped)
        self.instr_count = 0

    def emit_early_return(self, expression: str) -> None:
        self.emit("state.flag_n, state.flag_z, state.flag_c, state.flag_v = n, z, c, v")
        self.emit(f"state.instret += {self.instr_count}")
        self.emit(f"return {expression}")

    def emit(self, text: str) -> None:
        self._lines.append("    " * self._indent + text)

    # -- operand expressions ---------------------------------------------------

    def _reg(self, reg: int, addr: int) -> str:
        if reg == PC:
            return f"{(addr + 8) & 0xFFFFFFFF}"
        return f"r[{reg}]"

    def _shifter(self, instr: ArmInstruction, want_carry: bool) -> Tuple[str, Optional[str]]:
        """(operand2 expression, carry-out expression or None=unchanged)."""
        if instr.has_imm:
            if instr.imm > 0xFF:
                return str(instr.imm), str((instr.imm >> 31) & 1)
            return str(instr.imm), None
        value = self._reg(instr.rm, instr.addr)
        amount = instr.shift_amount
        kind = instr.shift_type
        if kind == 0:  # LSL
            if amount == 0:
                return value, None
            return (f"(({value} << {amount}) & 0xFFFFFFFF)",
                    f"(({value} >> {32 - amount}) & 1)")
        if kind == 1:  # LSR (0 encodes 32)
            amount = amount or 32
            if amount == 32:
                return "0", f"(({value} >> 31) & 1)"
            return f"({value} >> {amount})", f"(({value} >> {amount - 1}) & 1)"
        if kind == 2:  # ASR (0 encodes 32)
            amount = amount or 32
            signed = f"({value} - 0x100000000 if {value} & 0x80000000 else {value})"
            return (f"(({signed} >> {min(amount, 31)}) & 0xFFFFFFFF)",
                    f"(({signed} >> {min(amount - 1, 31)}) & 1)")
        # ROR (0 encodes RRX)
        if amount == 0:
            return f"(((c << 31) | ({value} >> 1)) & 0xFFFFFFFF)", f"({value} & 1)"
        rotated = f"((({value} >> {amount}) | ({value} << {32 - amount})) & 0xFFFFFFFF)"
        return rotated, f"(({rotated} >> 31) & 1)"

    # -- per-instruction translation -----------------------------------------------

    def emit_store_guard(self, instr: ArmInstruction) -> None:
        """After a store: bail out if the store hit this very block.

        The decode cache flips ``valid`` on the block object when a write
        overlaps it, so self-modifying code stops at the next instruction
        boundary and the dispatch loop re-fetches — the same contract the
        interpreted block loop honors.  ``_b`` is bound to the block at
        translation time.
        """
        self.emit("if not _b.valid:")
        self._indent += 1
        self.emit_early_return(str((instr.addr + 4) & 0xFFFFFFFF))
        self._indent -= 1

    def translate(self, instr: ArmInstruction) -> Optional[str]:
        """Emit statements for *instr*; returns a 'return' expression when
        the instruction ends the block (control transfer), else None."""
        guard = _COND_EXPR.get(instr.cond)
        if guard is not None and instr.kind in ("branch", "bx", "swi"):
            # conditional block-enders handled by their emitters
            pass
        elif guard is not None:
            self.emit(f"if {guard}:")
            self._indent += 1
            self._emit_body(instr)
            self._indent -= 1
            if instr.is_store:
                self.emit_store_guard(instr)
            return None
        if instr.kind == "ldm" and instr.writes_pc:
            if guard:
                # the whole transfer is conditional, not just the jump
                self.emit(f"if {guard}:")
                self._indent += 1
                self._emit_block_transfer(instr, load_pc=True)
                self.emit_early_return("_t & 0xFFFFFFFC")
                self._indent -= 1
                return str((instr.addr + 4) & 0xFFFFFFFF)
            self._emit_block_transfer(instr, load_pc=True)
            return "_t & 0xFFFFFFFC"
        if instr.kind in ("branch", "bx", "swi") or (
            instr.kind in ("dp", "ldst") and instr.writes_pc
        ):
            return self._emit_block_ender(instr, guard)
        self._emit_body(instr)
        if instr.is_store:
            self.emit_store_guard(instr)
        return None

    def _emit_body(self, instr: ArmInstruction) -> None:
        kind = instr.kind
        if kind == "dp":
            self._emit_dp(instr)
        elif kind == "mul":
            self._emit_mul(instr)
        elif kind == "mull":
            self._emit_mull(instr)
        elif kind == "ldst":
            self._emit_ldst(instr)
        elif kind == "ldm":
            self._emit_block_transfer(instr, load_pc=False)
        else:
            raise IssError(f"cannot compile {instr.text!r} at {instr.addr:#x}")

    def _emit_dp(self, instr: ArmInstruction) -> None:
        mnemonic = instr.mnemonic
        operand2, shifter_carry = self._shifter(instr, instr.sets_flags)
        rn = self._reg(instr.rn, instr.addr)
        arith = None  # (expression producing (res, c, v))
        if mnemonic in ("and", "tst"):
            result = f"({rn} & {operand2})"
        elif mnemonic in ("eor", "teq"):
            result = f"({rn} ^ {operand2})"
        elif mnemonic in ("sub", "cmp"):
            arith = f"_sub({rn}, {operand2})"
        elif mnemonic == "rsb":
            arith = f"_sub({operand2}, {rn})"
        elif mnemonic in ("add", "cmn"):
            arith = f"_add({rn}, {operand2})"
        elif mnemonic == "adc":
            arith = f"_add({rn}, {operand2}, c)"
        elif mnemonic == "sbc":
            arith = f"_sub({rn}, {operand2}, c)"
        elif mnemonic == "rsc":
            arith = f"_sub({operand2}, {rn}, c)"
        elif mnemonic == "orr":
            result = f"({rn} | {operand2})"
        elif mnemonic == "mov":
            result = f"{operand2}"
        elif mnemonic == "bic":
            result = f"({rn} & ~{operand2} & 0xFFFFFFFF)"
        else:  # mvn
            result = f"(~{operand2} & 0xFFFFFFFF)"

        has_dest = instr.mnemonic not in ("tst", "teq", "cmp", "cmn")
        if arith is not None:
            if instr.sets_flags:
                self.emit(f"_t, c, v = {arith}")
            else:
                self.emit(f"_t = {arith}[0]")
            value = "_t"
        else:
            self.emit(f"_t = {result} & 0xFFFFFFFF")
            value = "_t"
            if instr.sets_flags and shifter_carry is not None:
                self.emit(f"c = {shifter_carry}")
        if instr.sets_flags:
            self.emit(f"n = ({value} >> 31) & 1")
            self.emit(f"z = 1 if {value} == 0 else 0")
        if has_dest:
            self.emit(f"r[{instr.rd}] = {value}")

    def _emit_mul(self, instr: ArmInstruction) -> None:
        rm = self._reg(instr.rm, instr.addr)
        rs = self._reg(instr.rs, instr.addr)
        expression = f"({rm} * {rs}"
        if instr.accumulate:
            expression += f" + {self._reg(instr.rn, instr.addr)}"
        expression += ") & 0xFFFFFFFF"
        self.emit(f"_t = {expression}")
        self.emit(f"r[{instr.rd}] = _t")
        if instr.s:
            self.emit("n = (_t >> 31) & 1")
            self.emit("z = 1 if _t == 0 else 0")

    def _emit_mull(self, instr: ArmInstruction) -> None:
        rm = self._reg(instr.rm, instr.addr)
        rs = self._reg(instr.rs, instr.addr)
        if instr.signed_mul:
            a = f"({rm} - 0x100000000 if {rm} & 0x80000000 else {rm})"
            b = f"({rs} - 0x100000000 if {rs} & 0x80000000 else {rs})"
        else:
            a, b = rm, rs
        self.emit(f"_p = {a} * {b}")
        if instr.accumulate:
            self.emit(f"_p += (r[{instr.rdhi}] << 32) | r[{instr.rdlo}]")
        self.emit("_p &= 0xFFFFFFFFFFFFFFFF")
        self.emit(f"r[{instr.rdlo}] = _p & 0xFFFFFFFF")
        self.emit(f"r[{instr.rdhi}] = (_p >> 32) & 0xFFFFFFFF")
        if instr.s:
            self.emit("n = (_p >> 63) & 1")
            self.emit("z = 1 if _p == 0 else 0")

    def _emit_ldst(self, instr: ArmInstruction) -> None:
        base = self._reg(instr.rn, instr.addr)
        if instr.has_imm:
            offset = str(instr.imm)
        else:
            value, _ = self._shifter_mem(instr)
            offset = value if instr.up else f"-({value})"
        self.emit(f"_a = ({base} + {offset}) & 0xFFFFFFFF")
        if instr.is_load:
            if instr.byte:
                self.emit(f"r[{instr.rd}] = memory.read_byte(_a)")
            else:
                self.emit(f"r[{instr.rd}] = memory.read_word(_a & 0xFFFFFFFC)")
        else:
            source = self._reg(instr.rd, instr.addr)
            if instr.byte:
                self.emit(f"memory.write_byte(_a, {source} & 0xFF)")
            else:
                self.emit(f"memory.write_word(_a & 0xFFFFFFFC, {source})")

    def _emit_block_transfer(self, instr: ArmInstruction, load_pc: bool) -> None:
        """LDM/STM unrolled at translation time (the register list and
        addressing mode are static)."""
        registers = [r for r in range(16) if instr.reglist & (1 << r)]
        count = len(registers)
        base = self._reg(instr.rn, instr.addr)
        if instr.up:
            start_off = 4 if instr.pre_index else 0
            wb = f"(({base} + {4 * count}) & 0xFFFFFFFF)"
        else:
            start_off = -4 * count + (0 if instr.pre_index else 4)
            wb = f"(({base} - {4 * count}) & 0xFFFFFFFF)"
        self.emit(f"_a = ({base} + {start_off}) & 0xFFFFFFFC")
        if instr.is_load:
            wb_line = None
            if instr.writeback and not (instr.reglist & (1 << instr.rn)):
                wb_line = f"r[{instr.rn}] = {wb}"
            loads = []
            for i, reg in enumerate(registers):
                if reg == PC:
                    loads.append(f"_t = memory.read_word((_a + {4 * i}) & 0xFFFFFFFF)")
                else:
                    loads.append(f"r[{reg}] = memory.read_word((_a + {4 * i}) & 0xFFFFFFFF)")
            for line in loads:
                self.emit(line)
            if wb_line:
                self.emit(wb_line)
        else:
            for i, reg in enumerate(registers):
                self.emit(
                    f"memory.write_word((_a + {4 * i}) & 0xFFFFFFFF, "
                    f"{self._reg(reg, instr.addr)})"
                )
            if instr.writeback:
                self.emit(f"r[{instr.rn}] = {wb}")

    def _shifter_mem(self, instr: ArmInstruction) -> Tuple[str, None]:
        value = self._reg(instr.rm, instr.addr)
        amount = instr.shift_amount
        kind = instr.shift_type
        if kind == 0 and amount == 0:
            return value, None
        if kind == 0:
            return f"(({value} << {amount}) & 0xFFFFFFFF)", None
        if kind == 1:
            return f"({value} >> {amount or 32})", None
        if kind == 2:
            amount = min(amount or 32, 31)
            return (f"((({value} - 0x100000000 if {value} & 0x80000000 else {value})"
                    f" >> {amount}) & 0xFFFFFFFF)"), None
        return f"((({value} >> {amount}) | ({value} << {32 - amount})) & 0xFFFFFFFF)", None

    def _emit_block_ender(self, instr: ArmInstruction, guard: Optional[str]) -> str:
        sequential = (instr.addr + 4) & 0xFFFFFFFF
        if instr.kind == "branch":
            target = (instr.addr + 8 + instr.imm) & 0xFFFFFFFF
            if instr.link:
                if guard:
                    self.emit(f"if {guard}:")
                    self._indent += 1
                    self.emit(f"r[14] = {sequential}")
                    self.emit_early_return(str(target))
                    self._indent -= 1
                    return str(sequential)
                self.emit(f"r[14] = {sequential}")
                return str(target)
            if guard:
                return f"{target} if {guard} else {sequential}"
            return str(target)
        if instr.kind == "bx":
            expression = f"{self._reg(instr.rm, instr.addr)} & 0xFFFFFFFE"
            if guard:
                return f"({expression}) if {guard} else {sequential}"
            return expression
        if instr.kind == "swi":
            # spill flags, call the handler, re-enter the dispatch loop
            self.emit("state.flag_n, state.flag_z, state.flag_c, state.flag_v = n, z, c, v")
            call = f"syscalls.handle(state, {instr.swi_number})"
            if guard:
                self.emit(f"if {guard}:")
                self.emit(f"    {call}")
            else:
                self.emit(call)
            self.emit("n, z, c, v = state.flag_n, state.flag_z, state.flag_c, state.flag_v")
            return str(sequential)
        # dp/ldst writing the PC
        if instr.kind == "ldst":
            self._emit_ldst_to_pc(instr)
            expression = "_t & 0xFFFFFFFC"
        else:
            operand2, _ = self._shifter(instr, False)
            if instr.mnemonic == "mov":
                expression = f"{operand2} & 0xFFFFFFFC"
            else:
                rn = self._reg(instr.rn, instr.addr)
                expression = f"(({rn} + {operand2}) & 0xFFFFFFFC)"
        if guard:
            return f"({expression}) if {guard} else {sequential}"
        return expression

    def _emit_ldst_to_pc(self, instr: ArmInstruction) -> None:
        base = self._reg(instr.rn, instr.addr)
        offset = str(instr.imm) if instr.has_imm else self._shifter_mem(instr)[0]
        self.emit(f"_t = memory.read_word(({base} + {offset}) & 0xFFFFFFFC)")

    # -- assembly of the function -------------------------------------------------

    def build(self, entry: int, n_instrs: int, return_expr: str) -> str:
        header = [
            f"def _block_{entry:x}(state, syscalls):",
            "    r = state.regs.values",
            "    memory = state.memory",
            "    n = state.flag_n; z = state.flag_z; c = state.flag_c; v = state.flag_v",
        ]
        footer = [
            "    state.flag_n, state.flag_z, state.flag_c, state.flag_v = n, z, c, v",
            f"    state.instret += {n_instrs}",
            f"    return {return_expr}",
        ]
        return "\n".join(header + self._lines + footer)


def _add(a: int, b: int, carry: int = 0):
    total = a + b + carry
    result = total & 0xFFFFFFFF
    carry_out = 1 if total > 0xFFFFFFFF else 0
    overflow = 1 if ((a ^ result) & (b ^ result)) >> 31 & 1 else 0
    return result, carry_out, overflow


def _sub(a: int, b: int, carry: int = 1):
    return _add(a, (~b) & 0xFFFFFFFF, carry)


class CompiledInterpreter:
    """Shade-style dynamically-compiling ISS, generic over the target.

    Basic blocks come from the shared :class:`~repro.iss.decode_cache.
    DecodeCache` (discovered at fetch time, invalidated by overlapping
    writes), and each block's translation is cached *on the block
    object* — so a store over translated code drops the stale
    translation together with the stale decode, fixing the seed
    organisation where the compiled ISS kept a private, never-invalidated
    block table.

    The generic translation chains the per-instruction ``exec_fn``
    executors the ISA's execgen bound when the block was built (how the
    PPC target benefits from the block machinery); the ARM subclass
    overrides it with whole-block translation via :class:`BlockTranslator`,
    which additionally caches registers and flags in locals across the
    block.
    """

    #: the interpreter supplying state/syscalls/decode (subclasses set)
    fallback_class: type = None  # type: ignore[assignment]
    #: whether the fallback should bind per-instruction executors (the
    #: whole-block ARM translator makes them redundant work)
    fallback_specialize = True

    def __init__(self, program: Program, stdin: bytes = b"", stack_top: int = 0x80000):
        # reuse the interpreter's state/syscall construction
        self._fallback = self.fallback_class(
            program, stdin=stdin, stack_top=stack_top,
            specialize=self.fallback_specialize,
        )
        self.state = self._fallback.state
        self.syscalls = self._fallback.syscalls
        self.decode_cache = self._fallback.decode_cache
        self.program = program
        self.blocks_compiled = 0
        self.block_runs = 0

    # -- translation -----------------------------------------------------------

    def _translate_block(self, block) -> Callable:
        """``fn(state, syscalls) -> next_pc`` chaining the block's
        pre-bound executors (interpreter fallback per instruction)."""
        execute = self._fallback._execute
        instrs = block.instrs

        def run_block(state, syscalls, instrs=instrs, block=block, execute=execute):
            for instr in instrs:
                if not block.valid:
                    break  # self-modified under our feet: re-fetch
                fn = instr.exec_fn
                if fn is not None:
                    fn(state)
                else:
                    execute(instr)
                state.instret += 1
                if state.halted:
                    break
            return state.pc

        return run_block

    # -- execution ----------------------------------------------------------------

    def run(self, max_blocks: int = 10_000_000) -> int:
        """Run to the exit syscall; returns the exit code."""
        state = self.state
        syscalls = self.syscalls
        fetch_block = self.decode_cache.fetch_block
        while not state.halted:
            if self.block_runs >= max_blocks:
                raise IssError(f"program exceeded {max_blocks} blocks")
            block = fetch_block(state.pc)
            fn = block.compiled
            if fn is None:
                fn = self._translate_block(block)
                block.compiled = fn
                self.blocks_compiled += 1
            state.pc = fn(state, syscalls)
            self.block_runs += 1
        return state.exit_code

    @property
    def steps(self) -> int:
        return self.state.instret


class CompiledArmInterpreter(CompiledInterpreter):
    """Dynamically-compiling ISS for the ARM-like target: whole-block
    translation to Python source with registers and flags in locals."""

    fallback_class = ArmInterpreter
    fallback_specialize = False

    def _translate_block(self, block) -> Callable:
        translator = BlockTranslator()
        count = 0
        return_expr: Optional[str] = None
        for instr in block.instrs:
            if instr.kind == "udf":
                raise IssError(
                    f"undefined instruction at {instr.addr:#x}: {instr.word:#010x}")
            count += 1
            translator.instr_count = count
            return_expr = translator.translate(instr)
        if return_expr is None:
            # block-length limit (or decode ran off memory): continue at
            # the next sequential address
            return_expr = str(block.end & 0xFFFFFFFF)
        entry = block.entry
        source = translator.build(entry, count, return_expr)
        namespace = {"_add": _add, "_sub": _sub, "_b": block}
        exec(compile(source, f"<block {entry:#x}>", "exec"), namespace)
        fn = namespace[f"_block_{entry:x}"]
        fn.__block_source__ = source  # transcheck introspection (TRV005)
        return fn


class CompiledPpcInterpreter(CompiledInterpreter):
    """Dynamically-compiling ISS for the PowerPC-like target, running the
    execgen-specialised executor chain block at a time."""

    fallback_class = PpcInterpreter
