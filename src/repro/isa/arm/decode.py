"""ARM-like instruction decoder.

Produces :class:`ArmInstruction` objects carrying both the raw fields and
the hazard metadata consumed by the micro-architecture models.  The models
pre-decode the whole text section once (a decode cache), so decode speed
matters less than decode *completeness* — every implemented encoding must
round-trip through :mod:`repro.isa.arm.encode`.
"""

from __future__ import annotations

from typing import Optional

from ..bits import bit, bits, sign_extend
from ..instruction import Instruction
from . import isa
from .isa import COND_NAMES, DP_NAMES, FLAGS_REG, PC, SHIFT_NAMES


class ArmInstruction(Instruction):
    """A decoded ARM-like instruction."""

    __slots__ = (
        "cond",
        "kind",
        "opcode",
        "s",
        "rn",
        "rd",
        "rm",
        "rs",
        "rdlo",
        "rdhi",
        "imm",
        "has_imm",
        "shift_type",
        "shift_amount",
        "byte",
        "up",
        "link",
        "signed_mul",
        "accumulate",
        "swi_number",
        "reads_flags",
        "sets_flags",
        "reglist",
        "pre_index",
        "writeback",
    )

    def __init__(self, addr: int, word: int):
        super().__init__(addr, word)
        self.cond = isa.COND_AL
        self.kind = "udf"
        self.opcode = 0
        self.s = 0
        self.rn = 0
        self.rd = 0
        self.rm = 0
        self.rs = 0
        self.rdlo = 0
        self.rdhi = 0
        self.imm = 0
        self.has_imm = False
        self.shift_type = 0
        self.shift_amount = 0
        self.byte = 0
        self.up = 1
        self.link = 0
        self.signed_mul = 0
        self.accumulate = 0
        self.swi_number = 0
        self.reads_flags = False
        self.sets_flags = False
        self.reglist = 0
        self.pre_index = 0
        self.writeback = 0

    @property
    def is_conditional(self) -> bool:
        return self.cond != isa.COND_AL


def decode(addr: int, word: int) -> ArmInstruction:
    """Decode one 32-bit instruction word."""
    instr = ArmInstruction(addr, word)
    instr.cond = bits(word, 31, 28)
    if instr.cond == 0xF:
        _finish_udf(instr)
        return instr

    top = bits(word, 27, 25)
    if top == 0b000 and bits(word, 7, 4) == 0b1001:
        if bits(word, 27, 23) == 0b00001:
            _decode_multiply_long(instr)
        elif bits(word, 27, 22) == 0:
            _decode_multiply(instr)
        else:
            _finish_udf(instr)
    elif (word & 0x0FFFFFF0) == 0x012FFF10:
        _decode_branch_exchange(instr)
    elif top in (0b000, 0b001):
        _decode_data_processing(instr)
    elif top in (0b010, 0b011):
        _decode_load_store(instr)
    elif top == 0b100:
        _decode_block_transfer(instr)
    elif top == 0b101:
        _decode_branch(instr)
    elif bits(word, 27, 24) == 0b1111:
        _decode_swi(instr)
    else:
        _finish_udf(instr)
    _attach_condition_metadata(instr)
    return instr


def _attach_condition_metadata(instr: ArmInstruction) -> None:
    if instr.is_conditional:
        instr.reads_flags = True
    if instr.reads_flags:
        instr.src_regs = instr.src_regs + (FLAGS_REG,)
    if instr.sets_flags:
        instr.dst_regs = instr.dst_regs + (FLAGS_REG,)


def _cond_suffix(instr: ArmInstruction) -> str:
    return COND_NAMES[instr.cond] if instr.is_conditional else ""


def _finish_udf(instr: ArmInstruction) -> None:
    instr.kind = "udf"
    instr.mnemonic = "udf"
    instr.text = f"udf {instr.word:#010x}"
    instr.unit = "system"


def _decode_data_processing(instr: ArmInstruction) -> None:
    word = instr.word
    instr.kind = "dp"
    instr.opcode = bits(word, 24, 21)
    instr.mnemonic = DP_NAMES[instr.opcode]
    instr.s = bit(word, 20)
    instr.rn = bits(word, 19, 16)
    instr.rd = bits(word, 15, 12)
    instr.has_imm = bool(bit(word, 25))
    sources = []
    if instr.mnemonic not in isa.DP_NO_RN:
        sources.append(instr.rn)
    if instr.has_imm:
        rotate = bits(word, 11, 8)
        imm8 = bits(word, 7, 0)
        from ..bits import ror32

        instr.imm = ror32(imm8, 2 * rotate)
        operand2 = f"#{instr.imm}"
    else:
        instr.rm = bits(word, 3, 0)
        instr.shift_type = bits(word, 6, 5)
        instr.shift_amount = bits(word, 11, 7)
        sources.append(instr.rm)
        operand2 = f"r{instr.rm}"
        if instr.shift_amount or instr.shift_type:
            operand2 += f", {SHIFT_NAMES[instr.shift_type]} #{instr.shift_amount}"
    no_dest = instr.mnemonic in isa.DP_NO_DEST
    instr.sets_flags = bool(instr.s) or no_dest
    # ADC/SBC/RSC consume the carry flag even when unconditional.
    if instr.mnemonic in ("adc", "sbc", "rsc"):
        instr.reads_flags = True
    # RRX (register form, ROR #0) shifts the incoming carry into bit 31.
    if not instr.has_imm and instr.shift_type == 3 and instr.shift_amount == 0:
        instr.reads_flags = True
    # Flag-setting logical ops take C from the barrel shifter, which for
    # rotate-0 immediates and LSL #0 passes the *incoming* carry through.
    if instr.mnemonic in isa.DP_LOGICAL and instr.sets_flags and (
        (instr.has_imm and instr.imm <= 0xFF)
        or (not instr.has_imm and instr.shift_type == 0 and instr.shift_amount == 0)
    ):
        instr.reads_flags = True
    if not no_dest:
        instr.dst_regs = (instr.rd,)
        if instr.rd == PC:
            instr.writes_pc = True
            instr.is_branch = True
            instr.unit = "branch"
    instr.src_regs = tuple(sources)
    suffix = _cond_suffix(instr) + ("s" if instr.s and not no_dest else "")
    if no_dest:
        instr.text = f"{instr.mnemonic}{suffix} r{instr.rn}, {operand2}"
    elif instr.mnemonic in isa.DP_NO_RN:
        instr.text = f"{instr.mnemonic}{suffix} r{instr.rd}, {operand2}"
    else:
        instr.text = f"{instr.mnemonic}{suffix} r{instr.rd}, r{instr.rn}, {operand2}"


def _decode_multiply(instr: ArmInstruction) -> None:
    word = instr.word
    instr.kind = "mul"
    instr.unit = "mul"
    instr.accumulate = bit(word, 21)
    instr.s = bit(word, 20)
    instr.rd = bits(word, 19, 16)
    instr.rn = bits(word, 15, 12)
    instr.rs = bits(word, 11, 8)
    instr.rm = bits(word, 3, 0)
    instr.mnemonic = "mla" if instr.accumulate else "mul"
    instr.sets_flags = bool(instr.s)
    sources = [instr.rm, instr.rs]
    if instr.accumulate:
        sources.append(instr.rn)
    instr.src_regs = tuple(sources)
    instr.dst_regs = (instr.rd,)
    suffix = _cond_suffix(instr) + ("s" if instr.s else "")
    if instr.accumulate:
        instr.text = f"mla{suffix} r{instr.rd}, r{instr.rm}, r{instr.rs}, r{instr.rn}"
    else:
        instr.text = f"mul{suffix} r{instr.rd}, r{instr.rm}, r{instr.rs}"


def _decode_multiply_long(instr: ArmInstruction) -> None:
    word = instr.word
    instr.kind = "mull"
    instr.unit = "mul"
    instr.signed_mul = bit(word, 22)
    instr.accumulate = bit(word, 21)
    instr.s = bit(word, 20)
    instr.rdhi = bits(word, 19, 16)
    instr.rdlo = bits(word, 15, 12)
    instr.rs = bits(word, 11, 8)
    instr.rm = bits(word, 3, 0)
    base = "smull" if instr.signed_mul else "umull"
    if instr.accumulate:
        base = "smlal" if instr.signed_mul else "umlal"
    instr.mnemonic = base
    instr.sets_flags = bool(instr.s)
    sources = [instr.rm, instr.rs]
    if instr.accumulate:
        sources.extend((instr.rdlo, instr.rdhi))
    instr.src_regs = tuple(sources)
    instr.dst_regs = (instr.rdlo, instr.rdhi)
    suffix = _cond_suffix(instr) + ("s" if instr.s else "")
    instr.text = f"{base}{suffix} r{instr.rdlo}, r{instr.rdhi}, r{instr.rm}, r{instr.rs}"


def _decode_load_store(instr: ArmInstruction) -> None:
    word = instr.word
    instr.kind = "ldst"
    instr.unit = "mem"
    load = bit(word, 20)
    instr.byte = bit(word, 22)
    instr.up = bit(word, 23)
    instr.rn = bits(word, 19, 16)
    instr.rd = bits(word, 15, 12)
    instr.is_load = bool(load)
    instr.is_store = not load
    base = ("ldr" if load else "str") + ("b" if instr.byte else "")
    instr.mnemonic = base
    sources = [instr.rn]
    if bit(word, 25):
        instr.has_imm = False
        instr.rm = bits(word, 3, 0)
        instr.shift_type = bits(word, 6, 5)
        instr.shift_amount = bits(word, 11, 7)
        sources.append(instr.rm)
        offset_text = f"r{instr.rm}"
        if instr.shift_amount:
            offset_text += f", {SHIFT_NAMES[instr.shift_type]} #{instr.shift_amount}"
    else:
        instr.has_imm = True
        magnitude = bits(word, 11, 0)
        instr.imm = magnitude if instr.up else -magnitude
        offset_text = f"#{instr.imm}" if instr.imm else ""
    if load:
        instr.dst_regs = (instr.rd,)
        if instr.rd == PC:
            instr.writes_pc = True
            instr.is_branch = True
    else:
        sources.append(instr.rd)
    instr.src_regs = tuple(sources)
    suffix = _cond_suffix(instr)
    address = f"[r{instr.rn}, {offset_text}]" if offset_text else f"[r{instr.rn}]"
    instr.text = f"{base}{suffix} r{instr.rd}, {address}"


def _decode_block_transfer(instr: ArmInstruction) -> None:
    word = instr.word
    instr.kind = "ldm"
    instr.unit = "mem"
    load = bit(word, 20)
    instr.pre_index = bit(word, 24)
    instr.up = bit(word, 23)
    instr.writeback = bit(word, 21)
    instr.rn = bits(word, 19, 16)
    instr.reglist = bits(word, 15, 0)
    registers = [r for r in range(16) if instr.reglist & (1 << r)]
    instr.is_load = bool(load)
    instr.is_store = not load
    instr.mnemonic = "ldm" if load else "stm"
    sources = [instr.rn]
    if load:
        dests = list(registers)
        if PC in registers:
            instr.writes_pc = True
            instr.is_branch = True
    else:
        dests = []
        sources.extend(registers)
    if instr.writeback:
        dests.append(instr.rn)
    instr.src_regs = tuple(sources)
    instr.dst_regs = tuple(dict.fromkeys(dests))
    mode = {(1, 1): "ib", (0, 1): "ia", (1, 0): "db", (0, 0): "da"}[
        (instr.pre_index, instr.up)
    ]
    reg_names = ", ".join(f"r{r}" for r in registers)
    bang = "!" if instr.writeback else ""
    instr.text = (
        f"{instr.mnemonic}{mode}{_cond_suffix(instr)} r{instr.rn}{bang}, "
        f"{{{reg_names}}}"
    )


def _decode_branch(instr: ArmInstruction) -> None:
    word = instr.word
    instr.kind = "branch"
    instr.unit = "branch"
    instr.link = bit(word, 24)
    instr.imm = sign_extend(bits(word, 23, 0), 24) << 2
    instr.mnemonic = "bl" if instr.link else "b"
    instr.is_branch = True
    instr.writes_pc = True
    if instr.link:
        instr.dst_regs = (isa.LR,)
    target = instr.addr + 8 + instr.imm
    instr.text = f"{instr.mnemonic}{_cond_suffix(instr)} {target:#x}"

    instr.src_regs = ()


def _decode_branch_exchange(instr: ArmInstruction) -> None:
    word = instr.word
    instr.kind = "bx"
    instr.unit = "branch"
    instr.rm = bits(word, 3, 0)
    instr.mnemonic = "bx"
    instr.is_branch = True
    instr.writes_pc = True
    instr.src_regs = (instr.rm,)
    instr.text = f"bx{_cond_suffix(instr)} r{instr.rm}"


def _decode_swi(instr: ArmInstruction) -> None:
    word = instr.word
    instr.kind = "swi"
    instr.unit = "system"
    instr.swi_number = bits(word, 23, 0)
    instr.mnemonic = "swi"
    # The syscall convention passes arguments in r0..r2 and returns in r0.
    instr.src_regs = (0, 1, 2)
    instr.dst_regs = (0,)
    instr.text = f"swi{_cond_suffix(instr)} #{instr.swi_number}"


def branch_target(instr: ArmInstruction) -> Optional[int]:
    """Static branch target for direct branches, None for indirect."""
    if instr.kind == "branch":
        return (instr.addr + 8 + instr.imm) & 0xFFFFFFFF
    return None
