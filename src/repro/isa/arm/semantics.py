"""ARM-like instruction semantics.

:func:`execute` applies one decoded instruction to an architectural state
and returns an :class:`ExecInfo` describing what happened — the record the
functional oracle hands to micro-architecture timing models (next PC,
condition outcome, memory address, multiplier operand magnitude).
"""

from __future__ import annotations

from typing import Optional

from ..bits import (
    add_carries,
    asr32,
    lsl32,
    lsr32,
    ror32,
    s32,
    sub_borrows,
    u32,
)
from .decode import ArmInstruction
from .isa import DP_LOGICAL, LR, PC


class ExecInfo:
    """Outcome of executing one instruction.

    The rarely-populated fields live as class-level defaults so the
    constructor — on the hot path of every executed instruction, both
    interpreted and compiled (:mod:`repro.isa.arm.execgen`) — stores only
    the two fields that always vary; writers override the rest when the
    instruction actually produces them.
    """

    #: effective address for loads/stores (None otherwise)
    mem_addr: Optional[int] = None
    #: every address touched (block transfers; None for single access)
    mem_addrs = None
    mem_is_store = False
    #: multiplier Rs operand magnitude (early-termination latency model)
    mul_operand: Optional[int] = None
    #: True when a branch actually redirected control flow
    taken = False

    def __init__(self, executed: bool, next_pc: int):
        self.executed = executed
        self.next_pc = next_pc


def condition_passed(cond: int, n: int, z: int, c: int, v: int) -> bool:
    """Evaluate an ARM condition code against the NZCV flags."""
    if cond == 0x0:
        return z == 1
    if cond == 0x1:
        return z == 0
    if cond == 0x2:
        return c == 1
    if cond == 0x3:
        return c == 0
    if cond == 0x4:
        return n == 1
    if cond == 0x5:
        return n == 0
    if cond == 0x6:
        return v == 1
    if cond == 0x7:
        return v == 0
    if cond == 0x8:
        return c == 1 and z == 0
    if cond == 0x9:
        return c == 0 or z == 1
    if cond == 0xA:
        return n == v
    if cond == 0xB:
        return n != v
    if cond == 0xC:
        return z == 0 and n == v
    if cond == 0xD:
        return z == 1 or n != v
    return True  # AL


def _read_reg(state, instr: ArmInstruction, reg: int) -> int:
    """Register read with the ARM convention that PC reads as addr+8."""
    if reg == PC:
        return u32(instr.addr + 8)
    return state.read_reg(reg)


def _shifter_operand(state, instr: ArmInstruction):
    """Compute the data-processing operand2 and the shifter carry-out."""
    if instr.has_imm:
        value = instr.imm
        # Immediate with nonzero rotate sets carry to bit 31 of the value;
        # zero rotate leaves carry unchanged.
        carry = (value >> 31) & 1 if value > 0xFF else state.flag_c
        return value, carry
    value = _read_reg(state, instr, instr.rm)
    amount = instr.shift_amount
    shift_type = instr.shift_type
    if shift_type == 0:  # LSL
        if amount == 0:
            return value, state.flag_c
        return lsl32(value, amount), (value >> (32 - amount)) & 1
    if shift_type == 1:  # LSR (amount 0 encodes 32)
        amount = amount or 32
        carry = (value >> (amount - 1)) & 1 if amount <= 32 else 0
        return lsr32(value, amount), carry
    if shift_type == 2:  # ASR (amount 0 encodes 32)
        amount = amount or 32
        carry = (s32(value) >> min(amount - 1, 31)) & 1
        return asr32(value, amount), carry
    # ROR (amount 0 encodes RRX)
    if amount == 0:
        carry_in = state.flag_c
        return u32((carry_in << 31) | (u32(value) >> 1)), value & 1
    rotated = ror32(value, amount)
    return rotated, (rotated >> 31) & 1


def execute(state, instr: ArmInstruction) -> ExecInfo:
    """Apply *instr* to *state*; returns the :class:`ExecInfo` record."""
    sequential = u32(instr.addr + 4)
    if not condition_passed(instr.cond, state.flag_n, state.flag_z, state.flag_c, state.flag_v):
        state.pc = sequential
        return ExecInfo(False, sequential)

    info = ExecInfo(True, sequential)
    kind = instr.kind
    if kind == "dp":
        _execute_dp(state, instr, info)
    elif kind == "mul":
        _execute_mul(state, instr, info)
    elif kind == "mull":
        _execute_mull(state, instr, info)
    elif kind == "ldst":
        _execute_ldst(state, instr, info)
    elif kind == "ldm":
        _execute_block_transfer(state, instr, info)
    elif kind == "branch":
        if instr.link:
            state.write_reg(LR, sequential)
        info.next_pc = u32(instr.addr + 8 + instr.imm)
        info.taken = True
    elif kind == "bx":
        info.next_pc = _read_reg(state, instr, instr.rm) & ~1
        info.taken = True
    elif kind == "swi":
        state.syscalls.handle(state, instr.swi_number)
    else:
        raise ValueError(f"undefined instruction at {instr.addr:#x}: {instr.word:#010x}")
    state.pc = info.next_pc
    return info


_LOGICAL_OPS = DP_LOGICAL


def _execute_dp(state, instr: ArmInstruction, info: ExecInfo) -> None:
    mnemonic = instr.mnemonic
    operand2, shifter_carry = _shifter_operand(state, instr)
    rn_value = _read_reg(state, instr, instr.rn)
    carry_flags = None  # (carry, overflow) for arithmetic results

    if mnemonic in ("and", "tst"):
        result = rn_value & operand2
    elif mnemonic in ("eor", "teq"):
        result = rn_value ^ operand2
    elif mnemonic in ("sub", "cmp"):
        result, carry, overflow = sub_borrows(rn_value, operand2)
        carry_flags = (carry, overflow)
    elif mnemonic == "rsb":
        result, carry, overflow = sub_borrows(operand2, rn_value)
        carry_flags = (carry, overflow)
    elif mnemonic in ("add", "cmn"):
        result, carry, overflow = add_carries(rn_value, operand2)
        carry_flags = (carry, overflow)
    elif mnemonic == "adc":
        result, carry, overflow = add_carries(rn_value, operand2, state.flag_c)
        carry_flags = (carry, overflow)
    elif mnemonic == "sbc":
        result, carry, overflow = sub_borrows(rn_value, operand2, state.flag_c)
        carry_flags = (carry, overflow)
    elif mnemonic == "rsc":
        result, carry, overflow = sub_borrows(operand2, rn_value, state.flag_c)
        carry_flags = (carry, overflow)
    elif mnemonic == "orr":
        result = rn_value | operand2
    elif mnemonic == "mov":
        result = operand2
    elif mnemonic == "bic":
        result = rn_value & ~operand2 & 0xFFFFFFFF
    else:  # mvn
        result = ~operand2 & 0xFFFFFFFF

    result = u32(result)
    if instr.sets_flags:
        state.flag_n = (result >> 31) & 1
        state.flag_z = 1 if result == 0 else 0
        if carry_flags is not None:
            state.flag_c, state.flag_v = carry_flags
        elif mnemonic in _LOGICAL_OPS:
            state.flag_c = shifter_carry
    if instr.dst_regs and instr.dst_regs[0] != 16:
        dest = instr.rd
        if dest == PC:
            info.next_pc = result & ~3
            info.taken = True
        else:
            state.write_reg(dest, result)


def _execute_mul(state, instr: ArmInstruction, info: ExecInfo) -> None:
    rm_value = _read_reg(state, instr, instr.rm)
    rs_value = _read_reg(state, instr, instr.rs)
    info.mul_operand = rs_value
    result = rm_value * rs_value
    if instr.accumulate:
        result += _read_reg(state, instr, instr.rn)
    result = u32(result)
    state.write_reg(instr.rd, result)
    if instr.s:
        state.flag_n = (result >> 31) & 1
        state.flag_z = 1 if result == 0 else 0


def _execute_mull(state, instr: ArmInstruction, info: ExecInfo) -> None:
    rm_value = _read_reg(state, instr, instr.rm)
    rs_value = _read_reg(state, instr, instr.rs)
    info.mul_operand = rs_value
    if instr.signed_mul:
        product = s32(rm_value) * s32(rs_value)
    else:
        product = u32(rm_value) * u32(rs_value)
    if instr.accumulate:
        acc = (state.read_reg(instr.rdhi) << 32) | state.read_reg(instr.rdlo)
        if instr.signed_mul:
            acc = acc - (1 << 64) if acc & (1 << 63) else acc
        product += acc
    product &= (1 << 64) - 1
    state.write_reg(instr.rdlo, product & 0xFFFFFFFF)
    state.write_reg(instr.rdhi, (product >> 32) & 0xFFFFFFFF)
    if instr.s:
        state.flag_n = (product >> 63) & 1
        state.flag_z = 1 if product == 0 else 0


def _execute_block_transfer(state, instr: ArmInstruction, info: ExecInfo) -> None:
    """LDM/STM: lowest register at the lowest address (ARM ARM A5.4)."""
    registers = [r for r in range(16) if instr.reglist & (1 << r)]
    count = len(registers)
    base = _read_reg(state, instr, instr.rn)
    if instr.up:
        start = base + 4 if instr.pre_index else base
        new_base = u32(base + 4 * count)
    else:
        start = base - 4 * count + (0 if instr.pre_index else 4)
        new_base = u32(base - 4 * count)
    addresses = [u32(start + 4 * i) for i in range(count)]
    info.mem_addr = addresses[0] if addresses else None
    info.mem_addrs = addresses
    info.mem_is_store = instr.is_store
    if instr.is_load:
        loaded_pc = None
        for reg, address in zip(registers, addresses):
            value = state.memory.read_word(address & ~3)
            if reg == PC:
                loaded_pc = value & ~3
            else:
                state.write_reg(reg, value)
        if instr.writeback and not (instr.reglist & (1 << instr.rn)):
            state.write_reg(instr.rn, new_base)
        if loaded_pc is not None:
            info.next_pc = loaded_pc
            info.taken = True
    else:
        for reg, address in zip(registers, addresses):
            state.memory.write_word(address & ~3, _read_reg(state, instr, reg))
        if instr.writeback:
            state.write_reg(instr.rn, new_base)


def _execute_ldst(state, instr: ArmInstruction, info: ExecInfo) -> None:
    base = _read_reg(state, instr, instr.rn)
    if instr.has_imm:
        offset = instr.imm
    else:
        value = _read_reg(state, instr, instr.rm)
        amount = instr.shift_amount
        shift_type = instr.shift_type
        if shift_type == 0:
            value = lsl32(value, amount)
        elif shift_type == 1:
            value = lsr32(value, amount or 32)
        elif shift_type == 2:
            value = asr32(value, amount or 32)
        else:
            value = ror32(value, amount)
        offset = value if instr.up else -value
    address = u32(base + offset)
    info.mem_addr = address
    info.mem_is_store = instr.is_store
    if instr.is_load:
        if instr.byte:
            value = state.memory.read_byte(address)
        else:
            value = state.memory.read_word(address & ~3)
        if instr.rd == PC:
            info.next_pc = value & ~3
            info.taken = True
        else:
            state.write_reg(instr.rd, value)
    else:
        value = _read_reg(state, instr, instr.rd)
        if instr.byte:
            state.memory.write_byte(address, value & 0xFF)
        else:
            state.memory.write_word(address & ~3, value)
