"""ARM-like subset ISA (the StrongARM case-study target)."""

from .decode import ArmInstruction, branch_target, decode
from .isa import CONDITIONS, COND_AL, FLAGS_REG, LR, N_HAZARD_REGS, N_REGS, PC, SP
from .semantics import ExecInfo, condition_passed, execute
from .syntax import ArmSyntax, parse_mnemonic

__all__ = [
    "ArmInstruction",
    "ArmSyntax",
    "CONDITIONS",
    "COND_AL",
    "ExecInfo",
    "FLAGS_REG",
    "LR",
    "N_HAZARD_REGS",
    "N_REGS",
    "PC",
    "SP",
    "assemble",
    "branch_target",
    "condition_passed",
    "decode",
    "execute",
    "parse_mnemonic",
]


def assemble(source: str, **kwargs):
    """Assemble ARM-like source text into a :class:`~repro.isa.program.Program`."""
    from ..assembler import Assembler

    return Assembler(ArmSyntax(), **kwargs).assemble(source)
