"""ARM-like instruction word builders (used by the assembler).

Field layouts follow the ARM ARM for the implemented classes:

* data processing: ``cond 00 I opcode S Rn Rd shifter_operand``
* multiply:        ``cond 000000 A S Rd Rn Rs 1001 Rm``
* multiply long:   ``cond 00001 U A S RdHi RdLo Rs 1001 Rm``
* load/store:      ``cond 01 I P U B W L Rn Rd offset12``
* branch:          ``cond 101 L offset24``
* branch exchange: ``cond 00010010 1111 1111 1111 0001 Rm``
* swi:             ``cond 1111 imm24``
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..bits import ror32, u32


def _check_reg(name: str, value: int) -> int:
    if not 0 <= value < 16:
        raise ValueError(f"{name} register r{value} out of range (r0..r15)")
    return value


def _check_cond(cond: int) -> int:
    # 0xF is the reserved NV space: it would silently decode as udf.
    if not 0 <= cond <= 0xE:
        raise ValueError(f"condition code {cond:#x} out of range (0x0..0xE)")
    return cond


def _check_field(name: str, value: int, width: int) -> int:
    if not 0 <= value < (1 << width):
        raise ValueError(f"{name} {value} out of {width}-bit range")
    return value


def encode_rotated_immediate(value: int) -> Optional[Tuple[int, int]]:
    """Find (rotate, imm8) such that ``ror32(imm8, 2*rotate) == value``.

    Returns ``None`` when the 32-bit value is not expressible as an 8-bit
    immediate rotated right by an even amount (the ARM immediate form).
    """
    value = u32(value)
    for rotate in range(16):
        imm8 = ror32(value, 32 - 2 * rotate) if rotate else value
        # ror left by 2*rotate == ror right by (32 - 2*rotate)
        if imm8 < 0x100:
            return rotate, imm8
    return None


def dp_immediate(cond: int, opcode: int, s: int, rn: int, rd: int, value: int) -> int:
    _check_cond(cond)
    _check_field("opcode", opcode, 4)
    _check_field("s", s, 1)
    _check_reg("rn", rn)
    _check_reg("rd", rd)
    encoded = encode_rotated_immediate(value)
    if encoded is None:
        raise ValueError(f"immediate {value:#x} not encodable as rotated 8-bit")
    rotate, imm8 = encoded
    return (
        (cond << 28)
        | (1 << 25)
        | (opcode << 21)
        | (s << 20)
        | (rn << 16)
        | (rd << 12)
        | (rotate << 8)
        | imm8
    )


def dp_register(
    cond: int,
    opcode: int,
    s: int,
    rn: int,
    rd: int,
    rm: int,
    shift_type: int = 0,
    shift_amount: int = 0,
) -> int:
    _check_cond(cond)
    _check_field("opcode", opcode, 4)
    _check_field("s", s, 1)
    _check_reg("rn", rn)
    _check_reg("rd", rd)
    _check_reg("rm", rm)
    _check_field("shift type", shift_type, 2)
    if not 0 <= shift_amount < 32:
        raise ValueError(f"shift amount {shift_amount} out of range")
    return (
        (cond << 28)
        | (opcode << 21)
        | (s << 20)
        | (rn << 16)
        | (rd << 12)
        | (shift_amount << 7)
        | (shift_type << 5)
        | rm
    )


def multiply(cond: int, accumulate: int, s: int, rd: int, rn: int, rs: int, rm: int) -> int:
    _check_cond(cond)
    _check_field("accumulate", accumulate, 1)
    _check_field("s", s, 1)
    for name, reg in (("rd", rd), ("rn", rn), ("rs", rs), ("rm", rm)):
        _check_reg(name, reg)
    return (
        (cond << 28)
        | (accumulate << 21)
        | (s << 20)
        | (rd << 16)
        | (rn << 12)
        | (rs << 8)
        | (0b1001 << 4)
        | rm
    )


def multiply_long(
    cond: int, signed: int, accumulate: int, s: int, rdhi: int, rdlo: int, rs: int, rm: int
) -> int:
    _check_cond(cond)
    _check_field("signed", signed, 1)
    _check_field("accumulate", accumulate, 1)
    _check_field("s", s, 1)
    for name, reg in (("rdhi", rdhi), ("rdlo", rdlo), ("rs", rs), ("rm", rm)):
        _check_reg(name, reg)
    return (
        (cond << 28)
        | (0b00001 << 23)
        | (signed << 22)
        | (accumulate << 21)
        | (s << 20)
        | (rdhi << 16)
        | (rdlo << 12)
        | (rs << 8)
        | (0b1001 << 4)
        | rm
    )


def load_store_immediate(
    cond: int, load: int, byte: int, rn: int, rd: int, offset: int
) -> int:
    _check_cond(cond)
    _check_field("load", load, 1)
    _check_field("byte", byte, 1)
    _check_reg("rn", rn)
    _check_reg("rd", rd)
    up = 1 if offset >= 0 else 0
    magnitude = abs(offset)
    if magnitude >= 1 << 12:
        raise ValueError(f"load/store offset {offset} out of 12-bit range")
    return (
        (cond << 28)
        | (0b01 << 26)
        | (1 << 24)  # P: pre-indexed (offset addressing, no writeback)
        | (up << 23)
        | (byte << 22)
        | (load << 20)
        | (rn << 16)
        | (rd << 12)
        | magnitude
    )


def load_store_register(
    cond: int,
    load: int,
    byte: int,
    rn: int,
    rd: int,
    rm: int,
    shift_type: int = 0,
    shift_amount: int = 0,
    up: int = 1,
) -> int:
    _check_cond(cond)
    _check_field("load", load, 1)
    _check_field("byte", byte, 1)
    _check_field("up", up, 1)
    _check_reg("rn", rn)
    _check_reg("rd", rd)
    _check_reg("rm", rm)
    _check_field("shift type", shift_type, 2)
    if not 0 <= shift_amount < 32:
        raise ValueError(f"shift amount {shift_amount} out of range")
    return (
        (cond << 28)
        | (0b01 << 26)
        | (1 << 25)  # I: register offset
        | (1 << 24)
        | (up << 23)
        | (byte << 22)
        | (load << 20)
        | (rn << 16)
        | (rd << 12)
        | (shift_amount << 7)
        | (shift_type << 5)
        | rm
    )


def branch(cond: int, link: int, offset_words: int) -> int:
    _check_cond(cond)
    _check_field("link", link, 1)
    if not -(1 << 23) <= offset_words < (1 << 23):
        raise ValueError(f"branch offset {offset_words} out of 24-bit range")
    return (cond << 28) | (0b101 << 25) | (link << 24) | (offset_words & 0xFFFFFF)


def branch_exchange(cond: int, rm: int) -> int:
    # An out-of-range rm would bleed into bit 4 and decode as something else.
    _check_cond(cond)
    _check_reg("rm", rm)
    return (cond << 28) | 0x012FFF10 | rm


def software_interrupt(cond: int, number: int) -> int:
    _check_cond(cond)
    if not 0 <= number < (1 << 24):
        raise ValueError(f"swi number {number} out of 24-bit range")
    return (cond << 28) | (0xF << 24) | number


def block_transfer(
    cond: int, load: int, rn: int, reglist: int,
    pre: int, up: int, writeback: int,
) -> int:
    """LDM/STM: ``cond 100 P U 0 W L Rn register_list``."""
    _check_cond(cond)
    _check_field("load", load, 1)
    _check_field("pre", pre, 1)
    _check_field("up", up, 1)
    _check_field("writeback", writeback, 1)
    _check_reg("rn", rn)
    if not 0 < reglist < (1 << 16):
        raise ValueError(f"register list {reglist:#x} out of range")
    return (
        (cond << 28)
        | (0b100 << 25)
        | (pre << 24)
        | (up << 23)
        | (writeback << 21)
        | (load << 20)
        | (rn << 16)
        | reglist
    )
