"""ARM-like assembler syntax plugin.

Accepts the conventional ``op{cond}{s}`` mnemonic grammar (``addeqs``,
``blt``, ``movs``, ...), register aliases (``sp``/``lr``/``pc``/...),
immediate ``#expr`` operands, barrel-shifter operands
(``r1, lsl #2``), and ``[rn, #off]`` / ``[rn, rm]`` addressing.

Pseudo-instructions::

    nop                      -> mov r0, r0
    li  rd, expr             -> 4-word mov/orr sequence loading any 32-bit value
    ldr rd, =expr            -> alias for li (GNU-style constant load)
    b   label  (and friends) -> branch with assembler-computed offset
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..assembler import AsmContext, AssemblyError, IsaSyntax, split_operands
from . import encode
from .isa import CONDITIONS, COND_AL, DP_NO_DEST, DP_NO_RN, DP_OPCODES, REGISTER_ALIASES, SHIFT_TYPES

_DP_BASES = set(DP_OPCODES)
_MUL_BASES = {"mul", "mla", "umull", "smull", "umlal", "smlal"}
_LDST_BASES = {"ldr", "str", "ldrb", "strb"}
_BLOCK_BASES = {
    # mnemonic: (load, pre, up)
    "ldmia": (1, 0, 1), "ldmib": (1, 1, 1), "ldmda": (1, 0, 0), "ldmdb": (1, 1, 0),
    "stmia": (0, 0, 1), "stmib": (0, 1, 1), "stmda": (0, 0, 0), "stmdb": (0, 1, 0),
    # stack aliases (full-descending, the ARM convention)
    "ldmfd": (1, 0, 1), "stmfd": (0, 1, 0),
}
_BRANCH_BASES = {"b", "bl"}
_OTHER_BASES = {"bx", "swi", "nop", "li", "push", "pop"}
_ALL_BASES = sorted(
    _DP_BASES | _MUL_BASES | _LDST_BASES | _BRANCH_BASES | _OTHER_BASES
    | set(_BLOCK_BASES),
    key=len,
    reverse=True,
)
_S_ALLOWED = _DP_BASES | _MUL_BASES


def parse_mnemonic(mnemonic: str) -> Optional[Tuple[str, int, int]]:
    """Split ``op{cond}{s}`` into (base, cond, s); None if unparseable.

    Longest-base-first with backtracking resolves the classic ambiguities:
    ``blt`` is ``b``+``lt`` (because ``t`` is not a suffix of ``bl``) while
    ``bllt`` is ``bl``+``lt``, and ``bls`` is ``b``+``ls`` (branches take
    no S bit).
    """
    for base in _ALL_BASES:
        if not mnemonic.startswith(base):
            continue
        rest = mnemonic[len(base) :]
        if rest.endswith("s") and base in _S_ALLOWED:
            candidate = rest[:-1]
            if candidate == "" or candidate in CONDITIONS:
                cond = CONDITIONS.get(candidate, COND_AL)
                return base, cond, 1
        if rest == "":
            return base, COND_AL, 0
        if rest in CONDITIONS:
            return base, CONDITIONS[rest], 0
    return None


def parse_register(text: str, ctx: AsmContext) -> int:
    name = text.strip().lower()
    if name in REGISTER_ALIASES:
        return REGISTER_ALIASES[name]
    raise ctx.error(f"expected register, got {text!r}")


def _parse_shift(parts: List[str], ctx: AsmContext) -> Tuple[int, int]:
    """Parse trailing ``lsl #n`` style shift operand parts."""
    if not parts:
        return 0, 0
    if len(parts) != 1:
        raise ctx.error(f"too many shift operands: {parts!r}")
    tokens = parts[0].split()
    if len(tokens) != 2 or tokens[0].lower() not in SHIFT_TYPES:
        raise ctx.error(f"bad shift operand {parts[0]!r}")
    shift_type = SHIFT_TYPES[tokens[0].lower()]
    amount_text = tokens[1]
    if not amount_text.startswith("#"):
        raise ctx.error("shift amount must be an immediate (#n)")
    amount = ctx.eval(amount_text[1:])
    if not 0 <= amount < 32:
        raise ctx.error(f"shift amount {amount} out of range 0..31")
    return shift_type, amount


class ArmSyntax(IsaSyntax):
    """Assembler plugin for the ARM-like target."""

    word_size = 4

    def statement_size(self, mnemonic: str, operands: str) -> int:
        parsed = parse_mnemonic(mnemonic)
        if parsed is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
        base = parsed[0]
        if base == "li":
            return 16
        if base == "ldr" and "=" in operands:
            return 16
        return 4

    def encode_statement(self, mnemonic: str, operands: str, ctx: AsmContext) -> bytes:
        parsed = parse_mnemonic(mnemonic)
        if parsed is None:
            raise ctx.error(f"unknown mnemonic {mnemonic!r}")
        base, cond, s = parsed
        ops = split_operands(operands) if operands else []
        if base == "nop":
            words = [encode.dp_register(cond, DP_OPCODES["mov"], 0, 0, 0, 0)]
        elif base == "li" or (base == "ldr" and len(ops) == 2 and ops[1].startswith("=")):
            words = self._encode_li(base, cond, ops, ctx)
        elif base in _DP_BASES:
            words = [self._encode_dp(base, cond, s, ops, ctx)]
        elif base in _MUL_BASES:
            words = [self._encode_mul(base, cond, s, ops, ctx)]
        elif base in _LDST_BASES:
            words = [self._encode_ldst(base, cond, ops, ctx)]
        elif base in _BLOCK_BASES or base in ("push", "pop"):
            words = [self._encode_block(base, cond, operands, ctx)]
        elif base in _BRANCH_BASES:
            words = [self._encode_branch(base, cond, ops, ctx)]
        elif base == "bx":
            words = [encode.branch_exchange(cond, parse_register(ops[0], ctx))]
        elif base == "swi":
            number = ctx.eval(ops[0].lstrip("#")) if ops else 0
            words = [encode.software_interrupt(cond, number)]
        else:  # pragma: no cover - bases exhausted above
            raise ctx.error(f"unhandled mnemonic {mnemonic!r}")
        return b"".join(struct.pack("<I", w) for w in words)

    # -- per-class encoders ---------------------------------------------------

    def _encode_li(self, base: str, cond: int, ops: List[str], ctx: AsmContext) -> List[int]:
        if len(ops) != 2:
            raise ctx.error("li needs 2 operands: rd, expr")
        rd = parse_register(ops[0], ctx)
        expr = ops[1].lstrip("=").lstrip("#")
        value = ctx.eval(expr) & 0xFFFFFFFF
        mov_op = DP_OPCODES["mov"]
        orr_op = DP_OPCODES["orr"]
        return [
            encode.dp_immediate(cond, mov_op, 0, 0, rd, value & 0xFF),
            encode.dp_immediate(cond, orr_op, 0, rd, rd, value & 0xFF00),
            encode.dp_immediate(cond, orr_op, 0, rd, rd, value & 0xFF0000),
            encode.dp_immediate(cond, orr_op, 0, rd, rd, value & 0xFF000000),
        ]

    def _encode_dp(self, base: str, cond: int, s: int, ops: List[str], ctx: AsmContext) -> int:
        opcode = DP_OPCODES[base]
        if base in DP_NO_DEST:
            if len(ops) < 2:
                raise ctx.error(f"{base} needs 2 operands")
            rd, rn = 0, parse_register(ops[0], ctx)
            operand2 = ops[1]
            shift_parts = ops[2:]
            s = 1
        elif base in DP_NO_RN:
            if len(ops) < 2:
                raise ctx.error(f"{base} needs 2 operands")
            rd, rn = parse_register(ops[0], ctx), 0
            operand2 = ops[1]
            shift_parts = ops[2:]
        else:
            if len(ops) < 3:
                raise ctx.error(f"{base} needs 3 operands")
            rd = parse_register(ops[0], ctx)
            rn = parse_register(ops[1], ctx)
            operand2 = ops[2]
            shift_parts = ops[3:]
        if operand2.startswith("#"):
            if shift_parts:
                raise ctx.error("immediate operand cannot be shifted")
            value = ctx.eval(operand2[1:]) & 0xFFFFFFFF
            if encode.encode_rotated_immediate(value) is None:
                # canonical trick: flip MOV<->MVN / AND<->BIC / CMP<->CMN etc.
                flipped = self._flip_immediate(base, value)
                if flipped is None:
                    raise ctx.error(
                        f"immediate {value:#x} not encodable; use li/ldr ="
                    )
                opcode, value = flipped
            return encode.dp_immediate(cond, opcode, s, rn, rd, value)
        rm = parse_register(operand2, ctx)
        shift_type, shift_amount = _parse_shift(shift_parts, ctx)
        return encode.dp_register(cond, opcode, s, rn, rd, rm, shift_type, shift_amount)

    @staticmethod
    def _flip_immediate(base: str, value: int) -> Optional[Tuple[int, int]]:
        complements = {
            "mov": ("mvn", ~value & 0xFFFFFFFF),
            "mvn": ("mov", ~value & 0xFFFFFFFF),
            "and": ("bic", ~value & 0xFFFFFFFF),
            "bic": ("and", ~value & 0xFFFFFFFF),
            "add": ("sub", -value & 0xFFFFFFFF),
            "sub": ("add", -value & 0xFFFFFFFF),
            "cmp": ("cmn", -value & 0xFFFFFFFF),
            "cmn": ("cmp", -value & 0xFFFFFFFF),
        }
        if base not in complements:
            return None
        other, new_value = complements[base]
        if encode.encode_rotated_immediate(new_value) is None:
            return None
        return DP_OPCODES[other], new_value

    def _encode_mul(self, base: str, cond: int, s: int, ops: List[str], ctx: AsmContext) -> int:
        regs = [parse_register(op, ctx) for op in ops]
        if base == "mul":
            if len(regs) != 3:
                raise ctx.error("mul needs rd, rm, rs")
            return encode.multiply(cond, 0, s, regs[0], 0, regs[2], regs[1])
        if base == "mla":
            if len(regs) != 4:
                raise ctx.error("mla needs rd, rm, rs, rn")
            return encode.multiply(cond, 1, s, regs[0], regs[3], regs[2], regs[1])
        if len(regs) != 4:
            raise ctx.error(f"{base} needs rdlo, rdhi, rm, rs")
        signed = 1 if base.startswith("s") else 0
        accumulate = 1 if base.endswith("lal") else 0
        rdlo, rdhi, rm, rs = regs
        return encode.multiply_long(cond, signed, accumulate, s, rdhi, rdlo, rs, rm)

    def _encode_ldst(self, base: str, cond: int, ops: List[str], ctx: AsmContext) -> int:
        load = 1 if base.startswith("ldr") else 0
        byte = 1 if base.endswith("b") else 0
        if len(ops) != 2:
            raise ctx.error(f"{base} needs rd, [address]")
        rd = parse_register(ops[0], ctx)
        address = ops[1].strip()
        if not (address.startswith("[") and address.endswith("]")):
            raise ctx.error(f"bad address operand {address!r}")
        inner = split_operands(address[1:-1])
        rn = parse_register(inner[0], ctx)
        if len(inner) == 1:
            return encode.load_store_immediate(cond, load, byte, rn, rd, 0)
        offset = inner[1].strip()
        if offset.startswith("#"):
            value = ctx.eval(offset[1:])
            if len(inner) > 2:
                raise ctx.error("immediate offset cannot be shifted")
            return encode.load_store_immediate(cond, load, byte, rn, rd, value)
        up = 1
        if offset.startswith("-"):
            up = 0
            offset = offset[1:]
        rm = parse_register(offset, ctx)
        shift_type, shift_amount = _parse_shift(inner[2:], ctx)
        return encode.load_store_register(
            cond, load, byte, rn, rd, rm, shift_type, shift_amount, up
        )

    def _encode_block(self, base: str, cond: int, operands: str, ctx: AsmContext) -> int:
        """ldm/stm families plus the push/pop stack aliases."""
        if base == "push":
            reglist = self._parse_reglist(operands, ctx)
            return encode.block_transfer(cond, 0, 13, reglist, pre=1, up=0, writeback=1)
        if base == "pop":
            reglist = self._parse_reglist(operands, ctx)
            return encode.block_transfer(cond, 1, 13, reglist, pre=0, up=1, writeback=1)
        load, pre, up = _BLOCK_BASES[base]
        ops = split_operands(operands)
        if len(ops) < 2:
            raise ctx.error(f"{base} needs a base register and a register list")
        base_text = ops[0].strip()
        writeback = 1 if base_text.endswith("!") else 0
        rn = parse_register(base_text.rstrip("!"), ctx)
        reglist = self._parse_reglist(", ".join(ops[1:]), ctx)
        return encode.block_transfer(cond, load, rn, reglist, pre, up, writeback)

    def _parse_reglist(self, text: str, ctx: AsmContext) -> int:
        text = text.strip()
        if not (text.startswith("{") and text.endswith("}")):
            raise ctx.error(f"expected register list in braces, got {text!r}")
        reglist = 0
        for part in split_operands(text[1:-1]):
            part = part.strip()
            if "-" in part:
                lo_text, hi_text = part.split("-", 1)
                lo = parse_register(lo_text, ctx)
                hi = parse_register(hi_text, ctx)
                if hi < lo:
                    raise ctx.error(f"bad register range {part!r}")
                for reg in range(lo, hi + 1):
                    reglist |= 1 << reg
            elif part:
                reglist |= 1 << parse_register(part, ctx)
        if reglist == 0:
            raise ctx.error("empty register list")
        return reglist

    def _encode_branch(self, base: str, cond: int, ops: List[str], ctx: AsmContext) -> int:
        if len(ops) != 1:
            raise ctx.error(f"{base} needs a target")
        target = ctx.eval(ops[0])
        delta = target - (ctx.address + 8)
        if delta % 4:
            raise ctx.error(f"branch target {target:#x} not word aligned")
        link = 1 if base == "bl" else 0
        return encode.branch(cond, link, delta >> 2)
