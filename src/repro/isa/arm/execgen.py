"""Specialised per-instruction executors for the ARM-like target.

:func:`bind_block` is the decode cache's block-bind hook: given the
instructions of a freshly-discovered basic block, it translates each one
to a dedicated Python function ``fn(state) -> ExecInfo`` — register
numbers, immediates, shift amounts, condition tests and the sequential
PC become literals — compiles the whole block's functions as *one*
compile unit (amortising ``compile()`` over the block), and attaches
them as ``instr.exec_fn``.

Each executor mirrors :func:`repro.isa.arm.semantics.execute` exactly,
including the ExecInfo protocol (``next_pc``/``taken``/``mem_addr``/
``mem_addrs``/``mem_is_store``/``mul_operand``) the timing models
consume, so callers may use ``instr.exec_fn or semantics.execute``
interchangeably; the semantics module stays the executable reference and
the differential tests lock the two together.  Instructions the
translator does not cover (``udf``) keep ``exec_fn = None`` and fall
back to the interpreter.

Unlike the whole-block translator in :mod:`repro.iss.compiled`, these
executors are position-independent (one instruction, flags in
architectural state), so an instruction shared by two overlapping blocks
binds once and both blocks reuse it.
"""

from __future__ import annotations

from typing import List, Optional

from ..bits import add_carries, sub_borrows
from .decode import ArmInstruction
from .isa import PC
from .semantics import ExecInfo

#: condition-code tests over the architectural flags (AL/NV omitted)
_COND_EXPR = {
    0x0: "state.flag_z == 1",
    0x1: "state.flag_z == 0",
    0x2: "state.flag_c == 1",
    0x3: "state.flag_c == 0",
    0x4: "state.flag_n == 1",
    0x5: "state.flag_n == 0",
    0x6: "state.flag_v == 1",
    0x7: "state.flag_v == 0",
    0x8: "state.flag_c == 1 and state.flag_z == 0",
    0x9: "state.flag_c == 0 or state.flag_z == 1",
    0xA: "state.flag_n == state.flag_v",
    0xB: "state.flag_n != state.flag_v",
    0xC: "state.flag_z == 0 and state.flag_n == state.flag_v",
    0xD: "state.flag_z == 1 or state.flag_n != state.flag_v",
}

_LOGICAL = frozenset(("and", "eor", "tst", "teq", "orr", "mov", "bic", "mvn"))


def ends_block(instr) -> bool:
    """Block-ender predicate (re-exported for API symmetry; the decode
    cache's generic metadata predicate makes the same decision)."""
    return instr.is_branch or instr.writes_pc or instr.unit == "system"


class _Emitter:
    """Accumulates the source of one executor function."""

    def __init__(self, name: str, instr: ArmInstruction):
        self.instr = instr
        self.seq = (instr.addr + 4) & 0xFFFFFFFF
        self._lines: List[str] = [f"def {name}(state):", "    r = state.regs.values"]
        self._indent = 1
        #: True when the instruction computes next_pc at run time
        self.dynamic_pc = False

    def emit(self, text: str) -> None:
        self._lines.append("    " * self._indent + text)

    def reg(self, reg: int) -> str:
        """Register-read expression (PC reads as addr+8)."""
        if reg == PC:
            return str((self.instr.addr + 8) & 0xFFFFFFFF)
        return f"r[{reg}]"

    def source(self) -> str:
        if self.dynamic_pc:
            self.emit("state.pc = info.next_pc")
        self.emit("return info")
        return "\n".join(self._lines)


def _translate(instr: ArmInstruction, name: str) -> Optional[str]:
    """Source of the executor for *instr*, or None when unsupported."""
    kind = instr.kind
    if kind == "udf":
        return None
    e = _Emitter(name, instr)
    guard = _COND_EXPR.get(instr.cond)
    if guard is not None:
        e.emit(f"if not ({guard}):")
        e.emit(f"    state.pc = {e.seq}")
        e.emit(f"    return ExecInfo(False, {e.seq})")
    e.emit(f"info = ExecInfo(True, {e.seq})")
    if kind == "dp":
        _emit_dp(e, instr)
    elif kind == "mul":
        _emit_mul(e, instr)
    elif kind == "mull":
        _emit_mull(e, instr)
    elif kind == "ldst":
        _emit_ldst(e, instr)
    elif kind == "ldm":
        _emit_block_transfer(e, instr)
    elif kind == "branch":
        if instr.link:
            e.emit(f"r[14] = {e.seq}")
        target = (instr.addr + 8 + instr.imm) & 0xFFFFFFFF
        e.emit(f"info.next_pc = {target}")
        e.emit("info.taken = True")
        e.emit(f"state.pc = {target}")
    elif kind == "bx":
        e.emit(f"_t = {e.reg(instr.rm)} & 0xFFFFFFFE")
        e.emit("info.next_pc = _t")
        e.emit("info.taken = True")
        e.emit("state.pc = _t")
    elif kind == "swi":
        e.emit(f"state.syscalls.handle(state, {instr.swi_number})")
        e.emit(f"state.pc = {e.seq}")
    else:
        return None
    if kind in ("dp", "mul", "mull", "ldst", "ldm"):
        if not e.dynamic_pc:
            e.emit(f"state.pc = {e.seq}")
    return e.source()


def _shifter(e: _Emitter, instr: ArmInstruction):
    """Emit operand2 into ``_o``; returns the carry-out expression
    (mirrors ``semantics._shifter_operand``)."""
    if instr.has_imm:
        e.emit(f"_o = {instr.imm}")
        if instr.imm > 0xFF:
            return str((instr.imm >> 31) & 1)
        return "state.flag_c"
    e.emit(f"_m = {e.reg(instr.rm)}")
    amount = instr.shift_amount
    shift_type = instr.shift_type
    if shift_type == 0:  # LSL
        if amount == 0:
            e.emit("_o = _m")
            return "state.flag_c"
        e.emit(f"_o = (_m << {amount}) & 0xFFFFFFFF")
        return f"(_m >> {32 - amount}) & 1"
    if shift_type == 1:  # LSR (amount 0 encodes 32)
        amount = amount or 32
        if amount == 32:
            e.emit("_o = 0")
        else:
            e.emit(f"_o = _m >> {amount}")
        return f"(_m >> {amount - 1}) & 1"
    if shift_type == 2:  # ASR (amount 0 encodes 32)
        amount = amount or 32
        e.emit("_sm = _m - 0x100000000 if _m & 0x80000000 else _m")
        if amount >= 32:
            e.emit("_o = 0xFFFFFFFF if _m & 0x80000000 else 0")
        else:
            e.emit(f"_o = (_sm >> {amount}) & 0xFFFFFFFF")
        return f"(_sm >> {min(amount - 1, 31)}) & 1"
    # ROR (amount 0 encodes RRX)
    if amount == 0:
        e.emit("_o = ((state.flag_c << 31) | (_m >> 1)) & 0xFFFFFFFF")
        return "_m & 1"
    e.emit(f"_o = ((_m >> {amount}) | (_m << {32 - amount})) & 0xFFFFFFFF")
    return "(_o >> 31) & 1"


def _emit_dp(e: _Emitter, instr: ArmInstruction) -> None:
    mnemonic = instr.mnemonic
    shifter_carry = _shifter(e, instr)
    rn = e.reg(instr.rn)
    arith = None
    if mnemonic in ("and", "tst"):
        result = f"{rn} & _o"
    elif mnemonic in ("eor", "teq"):
        result = f"{rn} ^ _o"
    elif mnemonic in ("sub", "cmp"):
        arith, plain = f"_sub({rn}, _o)", f"{rn} - _o"
    elif mnemonic == "rsb":
        arith, plain = f"_sub(_o, {rn})", f"_o - {rn}"
    elif mnemonic in ("add", "cmn"):
        arith, plain = f"_add({rn}, _o)", f"{rn} + _o"
    elif mnemonic == "adc":
        arith, plain = (f"_add({rn}, _o, state.flag_c)",
                        f"{rn} + _o + state.flag_c")
    elif mnemonic == "sbc":
        arith, plain = (f"_sub({rn}, _o, state.flag_c)",
                        f"{rn} - _o - 1 + state.flag_c")
    elif mnemonic == "rsc":
        arith, plain = (f"_sub(_o, {rn}, state.flag_c)",
                        f"_o - {rn} - 1 + state.flag_c")
    elif mnemonic == "orr":
        result = f"{rn} | _o"
    elif mnemonic == "mov":
        result = "_o"
    elif mnemonic == "bic":
        result = f"{rn} & ~_o"
    else:  # mvn
        result = "~_o"

    if arith is not None:
        if instr.sets_flags:
            e.emit(f"_t, _c, _v = {arith}")
        else:
            e.emit(f"_t = ({plain}) & 0xFFFFFFFF")
    else:
        e.emit(f"_t = ({result}) & 0xFFFFFFFF")
    if instr.sets_flags:
        e.emit("state.flag_n = (_t >> 31) & 1")
        e.emit("state.flag_z = 1 if _t == 0 else 0")
        if arith is not None:
            e.emit("state.flag_c = _c")
            e.emit("state.flag_v = _v")
        elif mnemonic in _LOGICAL and shifter_carry != "state.flag_c":
            e.emit(f"state.flag_c = {shifter_carry}")
    if instr.dst_regs and instr.dst_regs[0] != 16:
        if instr.rd == PC:
            e.emit("info.next_pc = _t & 0xFFFFFFFC")
            e.emit("info.taken = True")
            e.dynamic_pc = True
        else:
            e.emit(f"r[{instr.rd}] = _t")


def _emit_mul(e: _Emitter, instr: ArmInstruction) -> None:
    e.emit(f"_s = {e.reg(instr.rs)}")
    e.emit("info.mul_operand = _s")
    expr = f"{e.reg(instr.rm)} * _s"
    if instr.accumulate:
        expr += f" + {e.reg(instr.rn)}"
    e.emit(f"_t = ({expr}) & 0xFFFFFFFF")
    e.emit(f"r[{instr.rd}] = _t")
    if instr.s:
        e.emit("state.flag_n = (_t >> 31) & 1")
        e.emit("state.flag_z = 1 if _t == 0 else 0")


def _emit_mull(e: _Emitter, instr: ArmInstruction) -> None:
    e.emit(f"_m = {e.reg(instr.rm)}")
    e.emit(f"_s = {e.reg(instr.rs)}")
    e.emit("info.mul_operand = _s")
    if instr.signed_mul:
        e.emit("_p = ((_m - 0x100000000 if _m & 0x80000000 else _m)"
               " * (_s - 0x100000000 if _s & 0x80000000 else _s))")
    else:
        e.emit("_p = _m * _s")
    if instr.accumulate:
        e.emit(f"_acc = (r[{instr.rdhi}] << 32) | r[{instr.rdlo}]")
        if instr.signed_mul:
            e.emit("if _acc & 0x8000000000000000:")
            e.emit("    _acc -= 0x10000000000000000")
        e.emit("_p += _acc")
    e.emit("_p &= 0xFFFFFFFFFFFFFFFF")
    e.emit(f"r[{instr.rdlo}] = _p & 0xFFFFFFFF")
    e.emit(f"r[{instr.rdhi}] = (_p >> 32) & 0xFFFFFFFF")
    if instr.s:
        e.emit("state.flag_n = (_p >> 63) & 1")
        e.emit("state.flag_z = 1 if _p == 0 else 0")


def _mem_offset(e: _Emitter, instr: ArmInstruction) -> str:
    """Offset expression for single loads/stores (register form shifts by
    a constant amount; mirrors ``semantics._execute_ldst``)."""
    if instr.has_imm:
        return str(instr.imm)
    value = e.reg(instr.rm)
    amount = instr.shift_amount
    shift_type = instr.shift_type
    if shift_type == 0:
        expr = value if amount == 0 else f"(({value} << {amount}) & 0xFFFFFFFF)"
    elif shift_type == 1:
        amount = amount or 32
        expr = "0" if amount == 32 else f"({value} >> {amount})"
    elif shift_type == 2:
        amount = amount or 32
        if amount >= 32:
            expr = f"(0xFFFFFFFF if {value} & 0x80000000 else 0)"
        else:
            expr = (f"((({value} - 0x100000000 if {value} & 0x80000000"
                    f" else {value}) >> {amount}) & 0xFFFFFFFF)")
    else:
        amount = instr.shift_amount & 31
        if amount == 0:
            expr = value
        else:
            expr = (f"((({value} >> {amount}) | ({value} << {32 - amount}))"
                    " & 0xFFFFFFFF)")
    return expr if instr.up else f"-{expr}"


def _emit_ldst(e: _Emitter, instr: ArmInstruction) -> None:
    e.emit(f"_a = ({e.reg(instr.rn)} + {_mem_offset(e, instr)}) & 0xFFFFFFFF")
    e.emit("info.mem_addr = _a")
    if instr.is_load:
        if instr.byte:
            e.emit("_t = state.memory.read_byte(_a)")
        else:
            e.emit("_t = state.memory.read_word(_a & 0xFFFFFFFC)")
        if instr.rd == PC:
            e.emit("info.next_pc = _t & 0xFFFFFFFC")
            e.emit("info.taken = True")
            e.dynamic_pc = True
        else:
            e.emit(f"r[{instr.rd}] = _t")
    else:
        e.emit("info.mem_is_store = True")
        value = e.reg(instr.rd)
        if instr.byte:
            e.emit(f"state.memory.write_byte(_a, {value} & 0xFF)")
        else:
            e.emit(f"state.memory.write_word(_a & 0xFFFFFFFC, {value})")


def _emit_block_transfer(e: _Emitter, instr: ArmInstruction) -> None:
    """LDM/STM unrolled at translation time (the register list and
    addressing mode are static); lowest register at the lowest address."""
    registers = [r for r in range(16) if instr.reglist & (1 << r)]
    count = len(registers)
    if count == 0:
        e.emit("info.mem_addrs = []")
        return
    e.emit(f"_b = {e.reg(instr.rn)}")
    if instr.up:
        start_off = 4 if instr.pre_index else 0
        new_base = f"(_b + {4 * count}) & 0xFFFFFFFF"
    else:
        start_off = -4 * count + (0 if instr.pre_index else 4)
        new_base = f"(_b - {4 * count}) & 0xFFFFFFFF"
    e.emit(f"_a = (_b + {start_off}) & 0xFFFFFFFF")
    addr_items = ", ".join(
        "_a" if i == 0 else f"(_a + {4 * i}) & 0xFFFFFFFF" for i in range(count)
    )
    e.emit(f"_addrs = [{addr_items}]")
    e.emit("info.mem_addr = _a")
    e.emit("info.mem_addrs = _addrs")
    e.emit("mem = state.memory")
    if instr.is_load:
        loads_pc = False
        for i, reg in enumerate(registers):
            source = f"mem.read_word(_addrs[{i}] & 0xFFFFFFFC)"
            if reg == PC:
                e.emit(f"_t = {source}")
                loads_pc = True
            else:
                e.emit(f"r[{reg}] = {source}")
        if instr.writeback and not (instr.reglist & (1 << instr.rn)):
            e.emit(f"r[{instr.rn}] = {new_base}")
        if loads_pc:
            e.emit("info.next_pc = _t & 0xFFFFFFFC")
            e.emit("info.taken = True")
            e.dynamic_pc = True
    else:
        e.emit("info.mem_is_store = True")
        for i, reg in enumerate(registers):
            e.emit(f"mem.write_word(_addrs[{i}] & 0xFFFFFFFC, {e.reg(reg)})")
        if instr.writeback:
            e.emit(f"r[{instr.rn}] = {new_base}")


def bind_block(instrs: List[ArmInstruction]) -> None:
    """Attach ``exec_fn`` executors to every supported instruction of a
    basic block, compiling the block's functions as one unit."""
    sources = []
    bound = []
    for index, instr in enumerate(instrs):
        if instr.exec_fn is not None:
            continue  # shared with a previously-built overlapping block
        name = f"_x{index}"
        source = _translate(instr, name)
        if source is None:
            continue
        sources.append(source)
        bound.append((instr, name))
    if not bound:
        return
    namespace = {"ExecInfo": ExecInfo, "_add": add_carries, "_sub": sub_borrows}
    code = compile("\n".join(sources),
                   f"<execgen arm block {instrs[0].addr:#x}>", "exec")
    exec(code, namespace)
    for instr, name in bound:
        instr.exec_fn = namespace[name]
