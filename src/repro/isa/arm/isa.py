"""ARM-like subset ISA: architectural constants and mnemonic tables.

The subset covers what the StrongARM case study exercises: the sixteen
data-processing operations with the barrel shifter, multiply and
multiply-accumulate (including 64-bit long forms, needed for the
early-terminating multiplier latency model), word/byte loads and stores
with immediate or register offsets, conditional branches with link, BX,
and SWI for the syscall interface.  Encodings follow the ARM ARM layouts
for these classes; unsupported classes (LDM/STM, coprocessor, PSR
transfer, halfword) decode to ``udf``.
"""

from __future__ import annotations

from typing import Dict

N_REGS = 16
PC = 15
LR = 14
SP = 13
#: pseudo-register number used for NZCV flag dependences in hazard tracking
FLAGS_REG = 16
#: total architectural name space seen by the hazard machinery
N_HAZARD_REGS = 17

#: condition field encodings (ARM ARM Table A3-1, minus reserved NV)
CONDITIONS: Dict[str, int] = {
    "eq": 0x0,
    "ne": 0x1,
    "cs": 0x2,
    "hs": 0x2,
    "cc": 0x3,
    "lo": 0x3,
    "mi": 0x4,
    "pl": 0x5,
    "vs": 0x6,
    "vc": 0x7,
    "hi": 0x8,
    "ls": 0x9,
    "ge": 0xA,
    "lt": 0xB,
    "gt": 0xC,
    "le": 0xD,
    "al": 0xE,
}
COND_AL = 0xE
COND_NAMES = {
    0x0: "eq", 0x1: "ne", 0x2: "cs", 0x3: "cc", 0x4: "mi", 0x5: "pl",
    0x6: "vs", 0x7: "vc", 0x8: "hi", 0x9: "ls", 0xA: "ge", 0xB: "lt",
    0xC: "gt", 0xD: "le", 0xE: "al",
}

#: data-processing opcode field values
DP_OPCODES: Dict[str, int] = {
    "and": 0x0, "eor": 0x1, "sub": 0x2, "rsb": 0x3,
    "add": 0x4, "adc": 0x5, "sbc": 0x6, "rsc": 0x7,
    "tst": 0x8, "teq": 0x9, "cmp": 0xA, "cmn": 0xB,
    "orr": 0xC, "mov": 0xD, "bic": 0xE, "mvn": 0xF,
}
DP_NAMES = {v: k for k, v in DP_OPCODES.items()}

#: opcodes that compare/test only (always set flags, no destination)
DP_NO_DEST = frozenset(("tst", "teq", "cmp", "cmn"))
#: opcodes with no first source register
DP_NO_RN = frozenset(("mov", "mvn"))
#: logical opcodes: when setting flags, C comes from the barrel shifter —
#: which falls back to the *incoming* carry for immediates with rotate 0
#: and for LSL #0 (ARM ARM A5.1), making those forms carry *readers*
DP_LOGICAL = frozenset(("and", "eor", "tst", "teq", "orr", "mov", "bic", "mvn"))

SHIFT_TYPES: Dict[str, int] = {"lsl": 0, "lsr": 1, "asr": 2, "ror": 3}
SHIFT_NAMES = {v: k for k, v in SHIFT_TYPES.items()}

REGISTER_ALIASES: Dict[str, int] = {
    **{f"r{i}": i for i in range(16)},
    "sl": 10,
    "fp": 11,
    "ip": 12,
    "sp": SP,
    "lr": LR,
    "pc": PC,
}

#: SWI numbers implemented by :mod:`repro.iss.syscalls`
SWI_EXIT = 0
SWI_PUTC = 1
SWI_WRITE = 2
SWI_GETC = 3
SWI_CYCLES = 4
