"""Program images: the ELF-lite container produced by the assembler.

The paper's case studies run "user-level ELF binaries" through existing
instruction-set simulators.  Our substitute is :class:`Program`, a minimal
relocatable image with ``.text``/``.data`` sections, a symbol table and an
entry point — everything the ISS and the micro-architecture models need,
without the ELF container format.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple


class Section:
    """A contiguous byte region at a fixed load address."""

    __slots__ = ("name", "base", "data")

    def __init__(self, name: str, base: int, data: bytes = b""):
        self.name = name
        self.base = base
        self.data = bytearray(data)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def words(self) -> List[int]:
        """The section contents as little-endian 32-bit words (zero-padded)."""
        padded = bytes(self.data) + b"\x00" * (-len(self.data) % 4)
        return list(struct.unpack(f"<{len(padded) // 4}I", padded))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Section({self.name!r}, base={self.base:#x}, size={self.size})"


class Program:
    """An assembled program: sections + symbols + entry point."""

    def __init__(self, entry: int = 0):
        self.entry = entry
        self.sections: Dict[str, Section] = {}
        self.symbols: Dict[str, int] = {}

    def add_section(self, name: str, base: int, data: bytes) -> Section:
        if name in self.sections:
            raise ValueError(f"duplicate section {name!r}")
        section = Section(name, base, data)
        self.sections[name] = section
        return section

    @property
    def text(self) -> Optional[Section]:
        return self.sections.get(".text")

    @property
    def data(self) -> Optional[Section]:
        return self.sections.get(".data")

    def load_into(self, memory) -> None:
        """Copy every section into *memory* (anything with write_block)."""
        for section in self.sections.values():
            memory.write_block(section.base, bytes(section.data))

    def text_words(self) -> List[Tuple[int, int]]:
        """(address, instruction word) pairs for the text section."""
        text = self.text
        if text is None:
            return []
        return [(text.base + 4 * i, w) for i, w in enumerate(text.words())]

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Program(entry={self.entry:#x}, sections="
            f"{sorted(self.sections)}, {len(self.symbols)} symbols)"
        )
