"""ISA substrates: bit utilities, program images, assembler, target ISAs."""

from .assembler import Assembler, AssemblyError, split_operands
from .instruction import Instruction
from .program import Program, Section

__all__ = [
    "Assembler",
    "AssemblyError",
    "Instruction",
    "Program",
    "Section",
    "split_operands",
]
