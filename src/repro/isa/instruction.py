"""Decoded-instruction protocol shared by both target ISAs.

Micro-architecture models (and the oracle ISS) consume decoded
instructions through this interface only — the OSM layer never looks at
encodings.  Per-ISA decoders subclass :class:`Instruction` and populate the
hazard metadata fields; everything a pipeline model needs to route an
operation (source/destination registers, flag traffic, unit class, memory
behaviour) is available without touching ISA specifics.
"""

from __future__ import annotations

from typing import Tuple


class Instruction:
    """A decoded machine instruction plus hazard metadata.

    Attributes
    ----------
    addr, word:
        Location and raw encoding.
    mnemonic:
        Canonical mnemonic (lower case, without condition suffixes).
    src_regs, dst_regs:
        Architectural register numbers read/written.  Condition/status
        registers are represented by the ISA's ``FLAGS_REG`` pseudo-number
        so flag dependences flow through the same hazard machinery.
    unit:
        Function-unit class: one of ``"alu"``, ``"mul"``, ``"div"``,
        ``"mem"``, ``"branch"``, ``"system"``.
    is_load / is_store / is_branch / writes_pc:
        Memory and control-flow classification.
    exec_fn:
        Optional specialised executor ``fn(state) -> ExecInfo`` bound by
        the per-ISA execgen when the instruction joins a decoded basic
        block; ``None`` falls back to the generic ``semantics.execute``.
    """

    __slots__ = (
        "addr",
        "word",
        "mnemonic",
        "text",
        "src_regs",
        "dst_regs",
        "unit",
        "is_load",
        "is_store",
        "is_branch",
        "writes_pc",
        "exec_fn",
    )

    def __init__(self, addr: int, word: int):
        self.addr = addr
        self.word = word
        self.mnemonic = "?"
        self.text = ""
        self.src_regs: Tuple[int, ...] = ()
        self.dst_regs: Tuple[int, ...] = ()
        self.unit = "alu"
        self.is_load = False
        self.is_store = False
        self.is_branch = False
        self.writes_pc = False
        self.exec_fn = None

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.addr:#x}: {self.text or self.mnemonic}>"
