"""Generic two-pass assembler core.

Both target ISAs share this driver: it handles source-line parsing, labels,
directives, the symbol table and expression evaluation; per-ISA syntax
plugins (:mod:`repro.isa.arm.syntax`, :mod:`repro.isa.ppc.syntax`) translate
individual instruction statements into machine words.

Supported directives::

    .text / .data          switch section
    .org ADDR              set location counter within the section
    .align N               pad to a 2**N boundary
    .word E [, E ...]      32-bit little-endian words
    .half E [, E ...]      16-bit values
    .byte E [, E ...]      8-bit values
    .space N [, FILL]      N fill bytes
    .ascii "S" / .asciz "S" string data (asciz adds a NUL)
    .equ NAME, E           define a symbol
    .globl NAME            accepted and ignored (ELF compatibility)

Comments start with ``;``, ``@`` or ``//``.  Labels are ``name:`` at the
start of a line.  Expressions support labels, ``.`` (the current address),
decimal/hex/binary/char literals and the operators ``+ - * / % << >> & | ^``
with parentheses and unary ``+ - ~``.
"""

from __future__ import annotations

import re
import struct
from typing import Dict, List, Optional, Tuple

from .program import Program

DEFAULT_TEXT_BASE = 0x8000
DEFAULT_DATA_BASE = 0x40000


class AssemblyError(Exception):
    """A source-level assembly error, annotated with file line number."""

    def __init__(self, message: str, lineno: Optional[int] = None, line: str = ""):
        self.lineno = lineno
        self.line = line
        prefix = f"line {lineno}: " if lineno is not None else ""
        suffix = f"\n    {line.strip()}" if line else ""
        super().__init__(f"{prefix}{message}{suffix}")


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)"
    r"|(?P<char>'(?:\\.|[^'])')"
    r"|(?P<name>[.A-Za-z_$][.\w$]*)"
    r"|(?P<op><<|>>|[-+*/%&|^~()])"
    r")"
)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"'}


def _tokenize_expr(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise AssemblyError(f"bad expression near {text[pos:]!r}")
        pos = match.end()
        for kind in ("num", "char", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class ExpressionEvaluator:
    """Recursive-descent evaluator over the symbol table."""

    _PRECEDENCE = [
        {"|"},
        {"^"},
        {"&"},
        {"<<", ">>"},
        {"+", "-"},
        {"*", "/", "%"},
    ]

    def __init__(self, symbols: Dict[str, int], here: int = 0):
        self.symbols = symbols
        self.here = here
        self._tokens: List[Tuple[str, str]] = []
        self._pos = 0

    def eval(self, text: str) -> int:
        self._tokens = _tokenize_expr(text)
        self._pos = 0
        if not self._tokens:
            raise AssemblyError(f"empty expression in {text!r}")
        value = self._binary(0)
        if self._pos != len(self._tokens):
            kind, tok = self._tokens[self._pos]
            raise AssemblyError(f"unexpected {tok!r} in expression {text!r}")
        return value

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise AssemblyError("unexpected end of expression")
        self._pos += 1
        return token

    def _binary(self, level: int) -> int:
        if level == len(self._PRECEDENCE):
            return self._unary()
        ops = self._PRECEDENCE[level]
        value = self._binary(level + 1)
        while True:
            token = self._peek()
            if token is None or token[0] != "op" or token[1] not in ops:
                return value
            op = self._next()[1]
            rhs = self._binary(level + 1)
            if op == "+":
                value += rhs
            elif op == "-":
                value -= rhs
            elif op == "*":
                value *= rhs
            elif op == "/":
                value = value // rhs
            elif op == "%":
                value = value % rhs
            elif op == "<<":
                value <<= rhs
            elif op == ">>":
                value >>= rhs
            elif op == "&":
                value &= rhs
            elif op == "^":
                value ^= rhs
            elif op == "|":
                value |= rhs

    def _unary(self) -> int:
        kind, token = self._next()
        if kind == "op":
            if token == "-":
                return -self._unary()
            if token == "+":
                return self._unary()
            if token == "~":
                return ~self._unary()
            if token == "(":
                value = self._binary(0)
                kind, token = self._next()
                if token != ")":
                    raise AssemblyError("missing ')' in expression")
                return value
            raise AssemblyError(f"unexpected operator {token!r}")
        if kind == "num":
            return int(token, 0)
        if kind == "char":
            body = token[1:-1]
            if body.startswith("\\"):
                return ord(_ESCAPES.get(body[1], body[1]))
            return ord(body)
        if kind == "name":
            if token == ".":
                return self.here
            if token not in self.symbols:
                raise AssemblyError(f"undefined symbol {token!r}")
            return self.symbols[token]
        raise AssemblyError(f"bad token {token!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# the assembler driver
# ---------------------------------------------------------------------------


def split_operands(text: str) -> List[str]:
    """Split an operand string on top-level commas (brackets/quotes nest)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    in_string: Optional[str] = None
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            current.append(ch)
            if ch == "\\":
                if i + 1 < len(text):
                    current.append(text[i + 1])
                    i += 1
            elif ch == in_string:
                in_string = None
        elif ch in "\"'":
            in_string = ch
            current.append(ch)
        elif ch in "([{":
            depth += 1
            current.append(ch)
        elif ch in ")]}":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail or parts:
        parts.append(tail)
    return parts


class Statement:
    """One parsed source statement (after label extraction)."""

    __slots__ = ("lineno", "line", "mnemonic", "operands", "section", "address", "size")

    def __init__(self, lineno: int, line: str, mnemonic: str, operands: str):
        self.lineno = lineno
        self.line = line
        self.mnemonic = mnemonic
        self.operands = operands
        self.section = ".text"
        self.address = 0
        self.size = 0


class IsaSyntax:
    """Per-ISA assembler plugin interface."""

    #: instruction width in bytes for fixed-width ISAs
    word_size = 4

    def statement_size(self, mnemonic: str, operands: str) -> int:
        """Byte size of the statement (pseudo-ops may expand to several
        words; must be computable without the symbol table)."""
        raise NotImplementedError

    def encode_statement(self, mnemonic: str, operands: str, ctx: "AsmContext") -> bytes:
        """Encode the statement to bytes; may consult ``ctx`` for symbols
        and the current address."""
        raise NotImplementedError


class AsmContext:
    """Evaluation context handed to syntax plugins during pass 2."""

    def __init__(self, symbols: Dict[str, int], address: int, lineno: int, line: str):
        self.symbols = symbols
        self.address = address
        self.lineno = lineno
        self.line = line

    def eval(self, expr: str) -> int:
        try:
            return ExpressionEvaluator(self.symbols, self.address).eval(expr)
        except AssemblyError as exc:
            raise AssemblyError(str(exc), self.lineno, self.line) from None

    def error(self, message: str) -> AssemblyError:
        return AssemblyError(message, self.lineno, self.line)


_LABEL_RE = re.compile(r"^([.A-Za-z_$][\w$.]*):\s*(.*)$")
_STRING_RE = re.compile(r'"((?:\\.|[^"\\])*)"')


def _unescape(text: str) -> bytes:
    out = bytearray()
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            out.append(ord(_ESCAPES.get(text[i + 1], text[i + 1])))
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


class Assembler:
    """The shared two-pass driver."""

    def __init__(
        self,
        syntax: IsaSyntax,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: int = DEFAULT_DATA_BASE,
    ):
        self.syntax = syntax
        self.bases = {".text": text_base, ".data": data_base}

    # -- public API -----------------------------------------------------------

    def assemble(self, source: str, entry_symbol: str = "_start") -> Program:
        """Assemble *source* and return a loadable :class:`Program`."""
        statements, symbols = self._pass1(source)
        images = self._pass2(statements, symbols)
        program = Program()
        for name, (base, blob) in images.items():
            if blob:
                program.add_section(name, base, bytes(blob))
        program.symbols = symbols
        program.entry = symbols.get(entry_symbol, self.bases[".text"])
        return program

    # -- pass 1: sizing and symbol collection ---------------------------------

    def _pass1(self, source: str):
        symbols: Dict[str, int] = {}
        counters = dict(self.bases)
        section = ".text"
        statements: List[Statement] = []

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            text = line.strip()
            while text:
                match = _LABEL_RE.match(text)
                if match is None:
                    break
                name = match.group(1)
                if name in symbols:
                    raise AssemblyError(f"duplicate label {name!r}", lineno, raw)
                symbols[name] = counters[section]
                text = match.group(2).strip()
            if not text:
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0].lower()
            operands = parts[1].strip() if len(parts) > 1 else ""
            stmt = Statement(lineno, raw, mnemonic, operands)

            if mnemonic in (".text", ".data"):
                section = mnemonic
                continue
            if mnemonic == ".globl" or mnemonic == ".global":
                continue
            if mnemonic == ".equ" or mnemonic == ".set":
                # evaluated immediately: .equ constants must precede use
                name, _, expr = operands.partition(",")
                try:
                    symbols[name.strip()] = ExpressionEvaluator(symbols).eval(expr.strip())
                except AssemblyError as exc:
                    raise AssemblyError(str(exc), lineno, raw) from None
                continue
            if mnemonic == ".org":
                value = ExpressionEvaluator(symbols, counters[section]).eval(operands)
                if value < counters[section] and value < self.bases[section]:
                    raise AssemblyError(".org moves backwards", lineno, raw)
                counters[section] = value
                stmt.mnemonic = ".org"
                stmt.size = 0
                stmt.section = section
                stmt.address = value
                statements.append(stmt)
                continue

            stmt.section = section
            stmt.address = counters[section]
            stmt.size = self._statement_size(stmt, counters[section], symbols)
            if mnemonic == ".align":
                # size depends on current address; recompute in pass 2 too
                pass
            counters[section] += stmt.size
            statements.append(stmt)

        return statements, symbols

    def _statement_size(self, stmt: Statement, address: int, symbols: Dict[str, int]) -> int:
        mnemonic, operands = stmt.mnemonic, stmt.operands
        if mnemonic == ".word":
            return 4 * len(split_operands(operands))
        if mnemonic == ".half":
            return 2 * len(split_operands(operands))
        if mnemonic == ".byte":
            return len(split_operands(operands))
        if mnemonic == ".space":
            parts = split_operands(operands)
            return int(ExpressionEvaluator(symbols).eval(parts[0]))
        if mnemonic in (".ascii", ".asciz"):
            match = _STRING_RE.search(operands)
            if match is None:
                raise AssemblyError("expected string literal", stmt.lineno, stmt.line)
            return len(_unescape(match.group(1))) + (1 if mnemonic == ".asciz" else 0)
        if mnemonic == ".align":
            power = int(ExpressionEvaluator({}).eval(operands or "2"))
            boundary = 1 << power
            return (-address) % boundary
        if mnemonic.startswith("."):
            raise AssemblyError(f"unknown directive {mnemonic!r}", stmt.lineno, stmt.line)
        try:
            return self.syntax.statement_size(mnemonic, operands)
        except AssemblyError as exc:
            raise AssemblyError(str(exc), stmt.lineno, stmt.line) from None

    # -- pass 2: encoding -----------------------------------------------------

    def _pass2(self, statements: List[Statement], symbols: Dict[str, int]):
        images: Dict[str, Tuple[int, bytearray]] = {
            name: (base, bytearray()) for name, base in self.bases.items()
        }

        def emit(section: str, address: int, blob: bytes) -> None:
            base, image = images[section]
            offset = address - base
            if offset < len(image):
                raise AssemblyError(f"overlapping emission at {address:#x}")
            image.extend(b"\x00" * (offset - len(image)))
            image.extend(blob)

        for stmt in statements:
            ctx = AsmContext(symbols, stmt.address, stmt.lineno, stmt.line)
            mnemonic, operands = stmt.mnemonic, stmt.operands
            if mnemonic == ".org":
                continue
            if mnemonic == ".word":
                blob = b"".join(
                    struct.pack("<I", ctx.eval(op) & 0xFFFFFFFF)
                    for op in split_operands(operands)
                )
            elif mnemonic == ".half":
                blob = b"".join(
                    struct.pack("<H", ctx.eval(op) & 0xFFFF)
                    for op in split_operands(operands)
                )
            elif mnemonic == ".byte":
                blob = bytes(ctx.eval(op) & 0xFF for op in split_operands(operands))
            elif mnemonic == ".space":
                parts = split_operands(operands)
                fill = ctx.eval(parts[1]) & 0xFF if len(parts) > 1 else 0
                blob = bytes([fill]) * stmt.size
            elif mnemonic in (".ascii", ".asciz"):
                match = _STRING_RE.search(operands)
                assert match is not None  # checked in pass 1
                blob = _unescape(match.group(1))
                if mnemonic == ".asciz":
                    blob += b"\x00"
            elif mnemonic == ".align":
                blob = b"\x00" * stmt.size
            else:
                try:
                    blob = self.syntax.encode_statement(mnemonic, operands, ctx)
                except AssemblyError:
                    raise
                except Exception as exc:
                    raise AssemblyError(str(exc), stmt.lineno, stmt.line) from exc
                if len(blob) != stmt.size:
                    raise AssemblyError(
                        f"size mismatch for {mnemonic!r}: pass1 said {stmt.size}, "
                        f"pass2 produced {len(blob)}",
                        stmt.lineno,
                        stmt.line,
                    )
            emit(stmt.section, stmt.address, blob)
        return images


def _strip_comment(line: str) -> str:
    in_string: Optional[str] = None
    i = 0
    while i < len(line):
        ch = line[i]
        if in_string:
            if ch == "\\":
                i += 1
            elif ch == in_string:
                in_string = None
        elif ch in "\"'":
            in_string = ch
        elif ch in ";@":
            return line[:i]
        elif ch == "/" and line[i : i + 2] == "//":
            return line[:i]
        i += 1
    return line
