"""Bit-field utilities shared by the encoders, decoders and semantics.

All values are Python ints constrained to 32-bit two's-complement views;
helpers here centralise masking so the ISA code reads like the reference
manuals.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF


def u32(value: int) -> int:
    """The unsigned 32-bit view of *value*."""
    return value & MASK32


def s32(value: int) -> int:
    """The signed 32-bit (two's-complement) view of *value*."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def bits(word: int, hi: int, lo: int) -> int:
    """Extract the inclusive bit-field ``word[hi:lo]``."""
    if hi < lo:
        raise ValueError(f"bad bit range [{hi}:{lo}]")
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def bit(word: int, index: int) -> int:
    """Extract the single bit ``word[index]``."""
    return (word >> index) & 1


def insert(word: int, hi: int, lo: int, value: int) -> int:
    """Return *word* with ``[hi:lo]`` replaced by *value* (must fit)."""
    width = hi - lo + 1
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value:#x} does not fit in [{hi}:{lo}]")
    mask = ((1 << width) - 1) << lo
    return (word & ~mask) | (value << lo)


def sign_extend(value: int, width: int) -> int:
    """Sign-extend a *width*-bit value to a Python int."""
    sign = 1 << (width - 1)
    return (value & (sign - 1)) - (value & sign)


def ror32(value: int, amount: int) -> int:
    """Rotate a 32-bit value right by *amount* (mod 32)."""
    amount &= 31
    value = u32(value)
    if amount == 0:
        return value
    return u32((value >> amount) | (value << (32 - amount)))


def lsl32(value: int, amount: int) -> int:
    if amount >= 32:
        return 0
    return u32(value << amount)


def lsr32(value: int, amount: int) -> int:
    if amount >= 32:
        return 0
    return u32(value) >> amount


def asr32(value: int, amount: int) -> int:
    if amount >= 32:
        amount = 31
        return MASK32 if u32(value) & 0x80000000 else 0
    return u32(s32(value) >> amount)


def add_carries(a: int, b: int, carry_in: int = 0):
    """32-bit addition returning (result, carry_out, overflow)."""
    a, b = u32(a), u32(b)
    total = a + b + carry_in
    result = total & MASK32
    carry = 1 if total > MASK32 else 0
    overflow = 1 if ((a ^ result) & (b ^ result)) >> 31 else 0
    return result, carry, overflow


def sub_borrows(a: int, b: int, carry_in: int = 1):
    """32-bit subtraction ``a - b - (1 - carry_in)`` in ARM style:
    returns (result, carry_out, overflow) where carry_out=1 means *no*
    borrow."""
    return add_carries(a, (~b) & MASK32, carry_in)


def popcount_significant_bytes(value: int) -> int:
    """Number of significant bytes in a 32-bit magnitude.

    Used by the StrongARM early-terminating multiplier latency model: the
    SA-110 multiplier retires 12 bits of the multiplier operand per cycle,
    which we approximate by significant-byte count (1..4).
    """
    value = u32(value)
    if value < 0x100:
        return 1
    if value < 0x10000:
        return 2
    if value < 0x1000000:
        return 3
    return 4
