"""PowerPC-like instruction word builders (used by the assembler)."""

from __future__ import annotations

from . import isa


def _check_reg(reg: int) -> int:
    if not 0 <= reg < 32:
        raise ValueError(f"register r{reg} out of range")
    return reg


def _simm16(value: int) -> int:
    if not -(1 << 15) <= value < (1 << 15):
        raise ValueError(f"immediate {value} out of signed 16-bit range")
    return value & 0xFFFF


def _uimm16(value: int) -> int:
    if not 0 <= value < (1 << 16):
        raise ValueError(f"immediate {value} out of unsigned 16-bit range")
    return value


def _check_field(name: str, value: int, width: int) -> int:
    if not 0 <= value < (1 << width):
        raise ValueError(f"{name} {value} out of {width}-bit range")
    return value


def d_form(opcd: int, rt: int, ra: int, imm: int, signed: bool = True) -> int:
    field = _simm16(imm) if signed else _uimm16(imm)
    return (opcd << 26) | (_check_reg(rt) << 21) | (_check_reg(ra) << 16) | field


def x_form(xo: int, rt: int, ra: int, rb: int, rc: int = 0) -> int:
    return (
        (isa.OP_X << 26)
        | (_check_reg(rt) << 21)
        | (_check_reg(ra) << 16)
        | (_check_reg(rb) << 11)
        | (xo << 1)
        | _check_field("Rc", rc, 1)
    )


def cmp_form(xo: int, ra: int, rb: int) -> int:
    # crfD = 0, L = 0
    return (isa.OP_X << 26) | (_check_reg(ra) << 16) | (_check_reg(rb) << 11) | (xo << 1)


def cmpi_form(opcd: int, ra: int, imm: int, signed: bool = True) -> int:
    field = _simm16(imm) if signed else _uimm16(imm)
    return (opcd << 26) | (_check_reg(ra) << 16) | field


def i_form(target_offset: int, aa: int = 0, lk: int = 0) -> int:
    if target_offset % 4:
        raise ValueError(f"branch offset {target_offset} not word aligned")
    if not -(1 << 25) <= target_offset < (1 << 25):
        raise ValueError(f"branch offset {target_offset} out of 26-bit range")
    _check_field("AA", aa, 1)
    _check_field("LK", lk, 1)
    return (isa.OP_B << 26) | (target_offset & 0x03FFFFFC) | (aa << 1) | lk


def b_form(bo: int, bi: int, target_offset: int, aa: int = 0, lk: int = 0) -> int:
    if target_offset % 4:
        raise ValueError(f"branch offset {target_offset} not word aligned")
    if not -(1 << 15) <= target_offset < (1 << 15):
        raise ValueError(f"conditional branch offset {target_offset} out of range")
    _check_field("BO", bo, 5)
    _check_field("BI", bi, 5)
    _check_field("AA", aa, 1)
    _check_field("LK", lk, 1)
    return (
        (isa.OP_BC << 26)
        | (bo << 21)
        | (bi << 16)
        | (target_offset & 0xFFFC)
        | (aa << 1)
        | lk
    )


def xl_form(xo: int, bo: int, bi: int, lk: int = 0) -> int:
    _check_field("BO", bo, 5)
    _check_field("BI", bi, 5)
    _check_field("LK", lk, 1)
    return (isa.OP_XL << 26) | (bo << 21) | (bi << 16) | (xo << 1) | lk


def rlwinm(rs: int, ra: int, sh: int, mb: int, me: int, rc: int = 0) -> int:
    for field, name in ((sh, "SH"), (mb, "MB"), (me, "ME")):
        if not 0 <= field < 32:
            raise ValueError(f"rlwinm {name} field {field} out of range")
    return (
        (isa.OP_RLWINM << 26)
        | (_check_reg(rs) << 21)
        | (_check_reg(ra) << 16)
        | (sh << 11)
        | (mb << 6)
        | (me << 1)
        | rc
    )


def srawi(rs: int, ra: int, sh: int, rc: int = 0) -> int:
    _check_field("SH", sh, 5)
    return (
        (isa.OP_X << 26)
        | (_check_reg(rs) << 21)
        | (_check_reg(ra) << 16)
        | (sh << 11)
        | (isa.XO_SRAWI << 1)
        | _check_field("Rc", rc, 1)
    )


def spr_move(xo: int, reg: int, spr: int) -> int:
    if spr not in (isa.SPR_LR, isa.SPR_CTR):
        raise ValueError(f"SPR {spr} not implemented (only LR={isa.SPR_LR}, CTR={isa.SPR_CTR})")
    spr_field = ((spr & 0x1F) << 5) | ((spr >> 5) & 0x1F)
    return (isa.OP_X << 26) | (_check_reg(reg) << 21) | (spr_field << 11) | (xo << 1)


def sc_form() -> int:
    return (isa.OP_SC << 26) | 2
