"""Specialised per-instruction executors for the PowerPC-like target.

The PPC counterpart of :mod:`repro.isa.arm.execgen`: :func:`bind_block`
translates each instruction of a freshly-discovered basic block into a
dedicated ``fn(state) -> ExecInfo`` function — register numbers,
immediates, shift/rotate amounts, BO/BI branch conditions and ``rlwinm``
masks become literals — compiles the block's functions as one unit, and
attaches them as ``instr.exec_fn``.  Every executor mirrors
:func:`repro.isa.ppc.semantics.execute` exactly (including the CTR
decrement side effect of branch conditions); ``illegal`` encodings keep
``exec_fn = None`` and fall back to the interpreter's error path.
"""

from __future__ import annotations

from typing import List, Optional

from .decode import PpcInstruction
from .isa import CR_EQ, CR_GT, CR_LT, SPR_LR
from .semantics import ExecInfo, _div_trunc, _mask, _rotl32

#: CR0 bit -> architectural flag attribute (LT/GT/EQ; SO reads as 0)
_CR0_ATTR = {CR_LT: "state.flag_n", CR_GT: "state.flag_c", CR_EQ: "state.flag_z"}


def ends_block(instr) -> bool:
    """Block-ender predicate (API symmetry with the ARM execgen)."""
    return instr.is_branch or instr.writes_pc or instr.unit == "sru"


class _Emitter:
    def __init__(self, name: str, instr: PpcInstruction):
        self.instr = instr
        self.seq = (instr.addr + 4) & 0xFFFFFFFF
        self._lines: List[str] = [f"def {name}(state):", "    r = state.regs.values"]
        self.dynamic_pc = False

    def emit(self, text: str) -> None:
        self._lines.append("    " + text)

    def source(self) -> str:
        if self.dynamic_pc:
            self.emit("state.pc = info.next_pc")
        else:
            self.emit(f"state.pc = {self.seq}")
        self.emit("return info")
        return "\n".join(self._lines)


def _emit_cr0(e: _Emitter, value: str) -> None:
    """Mirror of ``semantics._set_cr0`` over a masked 32-bit value."""
    e.emit(f"state.flag_n = ({value} >> 31) & 1")
    e.emit(f"state.flag_c = 1 if ({value} != 0 and not ({value} >> 31)) else 0")
    e.emit(f"state.flag_z = 1 if {value} == 0 else 0")


def _emit_branch_condition(e: _Emitter, instr: PpcInstruction) -> Optional[str]:
    """Emit the BO/BI evaluation (CTR side effect included); returns the
    guard expression, or None when the branch is unconditional."""
    bo = instr.bo
    parts = []
    if not (bo & 0b00100):  # decrement CTR, test against zero
        e.emit("state.ctr = (state.ctr - 1) & 0xFFFFFFFF")
        parts.append("state.ctr == 0" if bo & 0b00010 else "state.ctr != 0")
    if not (bo & 0b10000):
        attr = _CR0_ATTR.get(instr.bi)
        want = 1 if bo & 0b01000 else 0
        if attr is None:  # SO: reads as 0
            if want == 1:
                parts.append("False")
        else:
            parts.append(f"{attr} == {want}")
    if not parts:
        return None
    return " and ".join(parts)


def _emit_branch(e: _Emitter, instr: PpcInstruction) -> None:
    kind = instr.kind
    e.dynamic_pc = True
    if kind == "bclr":
        # the link-register target is latched before lk overwrites it
        e.emit("_t = state.lr & 0xFFFFFFFC")
    if instr.lk:
        e.emit(f"state.lr = {e.seq}")
    if kind == "b":
        target = instr.imm if instr.aa else instr.addr + instr.imm
        e.emit(f"info.next_pc = {target & 0xFFFFFFFF}")
        e.emit("info.taken = True")
        return
    guard = _emit_branch_condition(e, instr)
    if kind == "bc":
        target = instr.imm if instr.aa else instr.addr + instr.imm
        target_expr = str(target & 0xFFFFFFFF)
    elif kind == "bclr":
        target_expr = "_t"
    else:  # bcctr
        target_expr = "state.ctr & 0xFFFFFFFC"
    if guard is None:
        e.emit(f"info.next_pc = {target_expr}")
        e.emit("info.taken = True")
    else:
        e.emit(f"if {guard}:")
        e.emit(f"    info.next_pc = {target_expr}")
        e.emit("    info.taken = True")


def _emit_dalu(e: _Emitter, instr: PpcInstruction) -> None:
    mnemonic = instr.mnemonic
    if mnemonic in ("ori", "oris", "xori", "andi."):
        source = f"r[{instr.rt}]"
        imm = instr.imm
        if mnemonic == "ori":
            expr = f"{source} | {imm}"
        elif mnemonic == "oris":
            expr = f"{source} | {imm << 16}"
        elif mnemonic == "xori":
            expr = f"{source} ^ {imm}"
        else:
            expr = f"{source} & {imm}"
        e.emit(f"_t = ({expr}) & 0xFFFFFFFF")
        e.emit(f"r[{instr.ra}] = _t")
        if mnemonic == "andi.":
            _emit_cr0(e, "_t")
        return
    if instr.ra == 0 and mnemonic in ("addi", "addis"):
        base = "0"
    else:
        base = f"r[{instr.ra}]"
    if mnemonic in ("addi", "addic"):
        expr = f"{base} + {instr.imm}"
    elif mnemonic == "addis":
        expr = f"{base} + {instr.imm << 16}"
    elif mnemonic == "subfic":
        e.emit(f"_b = {base}")
        expr = f"{instr.imm} - (_b - 0x100000000 if _b & 0x80000000 else _b)"
    else:  # mulli
        e.emit(f"_b = {base}")
        expr = f"(_b - 0x100000000 if _b & 0x80000000 else _b) * {instr.imm}"
    e.emit(f"r[{instr.rt}] = ({expr}) & 0xFFFFFFFF")


def _emit_cmp(e: _Emitter, instr: PpcInstruction) -> None:
    e.emit(f"_a = r[{instr.ra}]")
    if instr.kind == "cmpi":
        signed = instr.mnemonic == "cmpwi"
        right = str(instr.imm if signed else instr.imm & 0xFFFF)
    else:
        signed = instr.mnemonic == "cmpw"
        e.emit(f"_b = r[{instr.rb}]")
        right = "(_b - 0x100000000 if _b & 0x80000000 else _b)" if signed else "_b"
    left = "(_a - 0x100000000 if _a & 0x80000000 else _a)" if signed else "_a"
    e.emit(f"_l = {left}")
    e.emit(f"_r = {right}")
    e.emit("state.flag_n = 1 if _l < _r else 0")
    e.emit("state.flag_c = 1 if _l > _r else 0")
    e.emit("state.flag_z = 1 if _l == _r else 0")


def _emit_mem(e: _Emitter, instr: PpcInstruction) -> None:
    base = "0" if instr.ra == 0 else f"r[{instr.ra}]"
    if instr.kind == "mem":
        e.emit(f"_a = ({base} + {instr.imm}) & 0xFFFFFFFF")
    else:
        e.emit(f"_a = ({base} + r[{instr.rb}]) & 0xFFFFFFFF")
    e.emit("info.mem_addr = _a")
    mnemonic = instr.mnemonic
    byte = mnemonic in ("lbz", "stb", "lbzx", "stbx")
    half = mnemonic in ("lhz", "lha", "sth")
    if instr.is_load:
        if byte:
            e.emit("_t = state.memory.read_byte(_a)")
        elif half:
            e.emit("_t = state.memory.read_half(_a & 0xFFFFFFFE)")
            if mnemonic == "lha":
                e.emit("if _t & 0x8000:")
                e.emit("    _t |= 0xFFFF0000")
        else:
            e.emit("_t = state.memory.read_word(_a & 0xFFFFFFFC)")
        e.emit(f"r[{instr.rt}] = _t")
    else:
        e.emit("info.mem_is_store = True")
        value = f"r[{instr.rt}]"
        if byte:
            e.emit(f"state.memory.write_byte(_a, {value} & 0xFF)")
        elif half:
            e.emit(f"state.memory.write_half(_a & 0xFFFFFFFE, {value} & 0xFFFF)")
        else:
            e.emit(f"state.memory.write_word(_a & 0xFFFFFFFC, {value})")


def _emit_xalu(e: _Emitter, instr: PpcInstruction) -> None:
    mnemonic = instr.mnemonic
    if mnemonic == "neg":
        e.emit(f"_a = r[{instr.ra}]")
        e.emit("_t = (-(_a - 0x100000000 if _a & 0x80000000 else _a)) & 0xFFFFFFFF")
        e.emit(f"r[{instr.rt}] = _t")
        if instr.rc:
            _emit_cr0(e, "_t")
        return
    if mnemonic in ("and", "or", "xor", "slw", "srw", "sraw"):
        e.emit(f"_s = r[{instr.rt}]")  # rS
        e.emit(f"_b = r[{instr.rb}]")
        if mnemonic == "and":
            e.emit("_t = _s & _b")
        elif mnemonic == "or":
            e.emit("_t = _s | _b")
        elif mnemonic == "xor":
            e.emit("_t = _s ^ _b")
        elif mnemonic == "slw":
            e.emit("_n = _b & 0x3F")
            e.emit("_t = 0 if _n > 31 else (_s << _n) & 0xFFFFFFFF")
        elif mnemonic == "srw":
            e.emit("_n = _b & 0x3F")
            e.emit("_t = 0 if _n > 31 else _s >> _n")
        else:  # sraw
            e.emit("_n = _b & 0x3F")
            e.emit("if _n > 31:")
            e.emit("    _n = 31")
            e.emit("_t = ((_s - 0x100000000 if _s & 0x80000000 else _s) >> _n)"
                   " & 0xFFFFFFFF")
        e.emit("_t &= 0xFFFFFFFF")
        e.emit(f"r[{instr.ra}] = _t")
        if instr.rc:
            _emit_cr0(e, "_t")
        return
    e.emit(f"_a = r[{instr.ra}]")
    e.emit(f"_b = r[{instr.rb}]")
    signed_a = "(_a - 0x100000000 if _a & 0x80000000 else _a)"
    signed_b = "(_b - 0x100000000 if _b & 0x80000000 else _b)"
    if mnemonic == "add":
        e.emit("_t = _a + _b")
    elif mnemonic in ("subf", "subfc"):
        e.emit("_t = _b - _a")
    elif mnemonic == "mullw":
        e.emit(f"_t = {signed_a} * {signed_b}")
        e.emit("info.mul_operand = _b")
    elif mnemonic == "mulhw":
        e.emit(f"_t = ({signed_a} * {signed_b}) >> 32")
        e.emit("info.mul_operand = _b")
    elif mnemonic == "divw":
        e.emit(f"_d = {signed_b}")
        e.emit(f"_t = 0 if _d == 0 else _div({signed_a}, _d)")
        e.emit("info.mul_operand = _b")
    else:  # divwu
        e.emit("_t = 0 if _b == 0 else _a // _b")
        e.emit("info.mul_operand = _b")
    e.emit("_t &= 0xFFFFFFFF")
    e.emit(f"r[{instr.rt}] = _t")
    if instr.rc:
        _emit_cr0(e, "_t")


def _translate(instr: PpcInstruction, name: str) -> Optional[str]:
    kind = instr.kind
    if kind == "illegal":
        return None
    e = _Emitter(name, instr)
    e.emit(f"info = ExecInfo(True, {e.seq})")
    if kind == "dalu":
        _emit_dalu(e, instr)
    elif kind in ("cmp", "cmpi"):
        _emit_cmp(e, instr)
    elif kind in ("mem", "memx"):
        _emit_mem(e, instr)
    elif kind == "xalu":
        _emit_xalu(e, instr)
    elif kind == "rlwinm":
        # rotate amount and MB..ME mask are static: precompute the mask
        mask = _mask(instr.mb, instr.me)
        sh = instr.sh & 31
        if sh == 0:
            e.emit(f"_t = r[{instr.rt}] & {mask:#x}")
        else:
            e.emit(f"_s = r[{instr.rt}]")
            e.emit(f"_t = (((_s << {sh}) | (_s >> {32 - sh})) & 0xFFFFFFFF)"
                   f" & {mask:#x}")
        e.emit(f"r[{instr.ra}] = _t")
        if instr.rc:
            _emit_cr0(e, "_t")
    elif kind == "srawi":
        e.emit(f"_s = r[{instr.rt}]")
        e.emit(f"_t = ((_s - 0x100000000 if _s & 0x80000000 else _s)"
               f" >> {instr.sh}) & 0xFFFFFFFF")
        e.emit(f"r[{instr.ra}] = _t")
        if instr.rc:
            _emit_cr0(e, "_t")
    elif kind == "xunary":
        e.emit(f"_s = r[{instr.rt}]")
        if instr.mnemonic == "extsb":
            e.emit("_t = (_s & 0xFF) | (0xFFFFFF00 if _s & 0x80 else 0)")
        elif instr.mnemonic == "extsh":
            e.emit("_t = (_s & 0xFFFF) | (0xFFFF0000 if _s & 0x8000 else 0)")
        else:  # cntlzw
            e.emit("_t = 32 - _s.bit_length() if _s else 32")
        e.emit(f"r[{instr.ra}] = _t & 0xFFFFFFFF")
        if instr.rc:
            _emit_cr0(e, "(_t & 0xFFFFFFFF)")
    elif kind in ("b", "bc", "bclr", "bcctr"):
        _emit_branch(e, instr)
    elif kind == "mtspr":
        if instr.spr == SPR_LR:
            e.emit(f"state.lr = r[{instr.rt}]")
        else:
            e.emit(f"state.ctr = r[{instr.rt}]")
    elif kind == "mfspr":
        source = "state.lr" if instr.spr == SPR_LR else "state.ctr"
        e.emit(f"r[{instr.rt}] = {source} & 0xFFFFFFFF")
    elif kind == "sc":
        e.emit("state.syscalls.handle(state, r[0])")
    else:
        return None
    return e.source()


def bind_block(instrs: List[PpcInstruction]) -> None:
    """Attach ``exec_fn`` executors to every supported instruction of a
    basic block, compiling the block's functions as one unit."""
    sources = []
    bound = []
    for index, instr in enumerate(instrs):
        if instr.exec_fn is not None:
            continue
        name = f"_x{index}"
        source = _translate(instr, name)
        if source is None:
            continue
        sources.append(source)
        bound.append((instr, name))
    if not bound:
        return
    namespace = {"ExecInfo": ExecInfo, "_div": _div_trunc}
    code = compile("\n".join(sources),
                   f"<execgen ppc block {instrs[0].addr:#x}>", "exec")
    exec(code, namespace)
    for instr, name in bound:
        instr.exec_fn = namespace[name]
