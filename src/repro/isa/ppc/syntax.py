"""PowerPC-like assembler syntax plugin.

Accepts conventional PowerPC assembly for the implemented subset,
including the usual simplified mnemonics::

    li   r3, 5            -> addi r3, r0(0), 5
    lis  r3, 2            -> addis r3, 0, 2
    li32 r3, expr         -> lis + ori pair loading any 32-bit value
    mr   r3, r4           -> or r3, r4, r4
    nop                   -> ori r0, r0, 0
    sub  r3, r4, r5       -> subf r3, r5, r4
    slwi/srwi ra, rs, n   -> rlwinm forms
    beq/bne/blt/bgt/ble/bge/bdnz/bdz label
    mtlr/mflr/mtctr/mfctr rN

A trailing ``.`` on arithmetic/logical mnemonics sets the record (Rc)
bit, e.g. ``add.``; compares may name ``cr0`` explicitly or omit it.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from ..assembler import AsmContext, AssemblyError, IsaSyntax, split_operands
from . import encode, isa

_D_ALU = {"addi": isa.OP_ADDI, "addic": isa.OP_ADDIC, "addis": isa.OP_ADDIS,
          "mulli": isa.OP_MULLI, "subfic": isa.OP_SUBFIC}
_D_LOGICAL = {"ori": isa.OP_ORI, "oris": isa.OP_ORIS, "xori": isa.OP_XORI, "andi.": isa.OP_ANDI}
_XO_ALU = {
    "add": isa.XO_ADD,
    "subf": isa.XO_SUBF,
    "subfc": isa.XO_SUBFC,
    "mullw": isa.XO_MULLW,
    "mulhw": isa.XO_MULHW,
    "divw": isa.XO_DIVW,
    "divwu": isa.XO_DIVWU,
}
_X_LOGICAL = {
    "and": isa.XO_AND,
    "or": isa.XO_OR,
    "xor": isa.XO_XOR,
    "slw": isa.XO_SLW,
    "srw": isa.XO_SRW,
    "sraw": isa.XO_SRAW,
}
_D_MEM = {"lwz": isa.OP_LWZ, "lbz": isa.OP_LBZ, "stw": isa.OP_STW, "stb": isa.OP_STB,
          "lhz": isa.OP_LHZ, "lha": isa.OP_LHA, "sth": isa.OP_STH}
_X_MEM = {"lwzx": isa.XO_LWZX, "lbzx": isa.XO_LBZX, "stwx": isa.XO_STWX, "stbx": isa.XO_STBX}
_SPR_MOVES = {
    "mtlr": (isa.XO_MTSPR, isa.SPR_LR),
    "mflr": (isa.XO_MFSPR, isa.SPR_LR),
    "mtctr": (isa.XO_MTSPR, isa.SPR_CTR),
    "mfctr": (isa.XO_MFSPR, isa.SPR_CTR),
}

_KNOWN = (
    set(_D_ALU) | set(_D_LOGICAL) | set(_XO_ALU) | set(_X_LOGICAL) | set(_D_MEM)
    | set(_X_MEM) | set(_SPR_MOVES) | set(isa.BRANCH_CONDITIONS)
    | {"li", "lis", "li32", "mr", "nop", "sub", "neg", "slwi", "srwi", "srawi",
       "rlwinm", "cmpw", "cmpwi", "cmplw", "cmplwi", "b", "bl", "blr", "bctr",
       "bctrl", "sc", "extsb", "extsh", "cntlzw"}
)


def parse_register(text: str, ctx: AsmContext) -> int:
    name = text.strip().lower()
    if name.startswith("r") and name[1:].isdigit():
        reg = int(name[1:])
        if 0 <= reg < 32:
            return reg
    if name == "sp":
        return 1
    raise ctx.error(f"expected register, got {text!r}")


def _split_mem_operand(text: str, ctx: AsmContext) -> Tuple[str, str]:
    """Parse ``D(rA)`` into (displacement expression, register text)."""
    text = text.strip()
    if not text.endswith(")"):
        raise ctx.error(f"bad memory operand {text!r}")
    open_paren = text.rindex("(")
    return text[:open_paren].strip() or "0", text[open_paren + 1 : -1]


class PpcSyntax(IsaSyntax):
    """Assembler plugin for the PowerPC-like target."""

    word_size = 4

    def statement_size(self, mnemonic: str, operands: str) -> int:
        base = mnemonic.rstrip(".") if mnemonic != "andi." else mnemonic
        if base not in _KNOWN and mnemonic not in _KNOWN:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
        return 8 if mnemonic == "li32" else 4

    def encode_statement(self, mnemonic: str, operands: str, ctx: AsmContext) -> bytes:
        ops = split_operands(operands) if operands else []
        rc = 0
        base = mnemonic
        if mnemonic.endswith(".") and mnemonic != "andi.":
            base = mnemonic[:-1]
            rc = 1
        words = self._encode(base, rc, ops, ctx)
        return b"".join(struct.pack("<I", w) for w in words)

    # -- encoding dispatch ------------------------------------------------------

    def _encode(self, base: str, rc: int, ops: List[str], ctx: AsmContext) -> List[int]:
        if base == "nop":
            return [encode.d_form(isa.OP_ORI, 0, 0, 0, signed=False)]
        if base == "li":
            return [encode.d_form(isa.OP_ADDI, parse_register(ops[0], ctx), 0, ctx.eval(ops[1]))]
        if base == "lis":
            return [encode.d_form(isa.OP_ADDIS, parse_register(ops[0], ctx), 0, ctx.eval(ops[1]))]
        if base == "li32":
            rd = parse_register(ops[0], ctx)
            value = ctx.eval(ops[1]) & 0xFFFFFFFF
            high = (value >> 16) & 0xFFFF
            low = value & 0xFFFF
            high_signed = high - 0x10000 if high & 0x8000 else high
            return [
                encode.d_form(isa.OP_ADDIS, rd, 0, high_signed),
                encode.d_form(isa.OP_ORI, rd, rd, low, signed=False),
            ]
        if base == "mr":
            rd = parse_register(ops[0], ctx)
            rs = parse_register(ops[1], ctx)
            return [encode.x_form(isa.XO_OR, rs, rd, rs, rc)]
        if base in _D_ALU:
            rd = parse_register(ops[0], ctx)
            ra = parse_register(ops[1], ctx)
            return [encode.d_form(_D_ALU[base], rd, ra, ctx.eval(ops[2]))]
        if base in _D_LOGICAL or base == "andi":
            opcd = _D_LOGICAL.get(base, isa.OP_ANDI)
            ra = parse_register(ops[0], ctx)
            rs = parse_register(ops[1], ctx)
            return [encode.d_form(opcd, rs, ra, ctx.eval(ops[2]), signed=False)]
        if base in _XO_ALU:
            rd = parse_register(ops[0], ctx)
            ra = parse_register(ops[1], ctx)
            rb = parse_register(ops[2], ctx)
            return [encode.x_form(_XO_ALU[base], rd, ra, rb, rc)]
        if base == "sub":
            rd = parse_register(ops[0], ctx)
            ra = parse_register(ops[1], ctx)
            rb = parse_register(ops[2], ctx)
            return [encode.x_form(isa.XO_SUBF, rd, rb, ra, rc)]
        if base == "neg":
            rd = parse_register(ops[0], ctx)
            ra = parse_register(ops[1], ctx)
            return [encode.x_form(isa.XO_NEG, rd, ra, 0, rc)]
        if base in _X_LOGICAL:
            ra = parse_register(ops[0], ctx)
            rs = parse_register(ops[1], ctx)
            rb = parse_register(ops[2], ctx)
            return [encode.x_form(_X_LOGICAL[base], rs, ra, rb, rc)]
        if base in ("extsb", "extsh", "cntlzw"):
            xo = {"extsb": isa.XO_EXTSB, "extsh": isa.XO_EXTSH,
                  "cntlzw": isa.XO_CNTLZW}[base]
            ra = parse_register(ops[0], ctx)
            rs = parse_register(ops[1], ctx)
            return [encode.x_form(xo, rs, ra, 0, rc)]
        if base == "srawi":
            ra = parse_register(ops[0], ctx)
            rs = parse_register(ops[1], ctx)
            return [encode.srawi(rs, ra, ctx.eval(ops[2]), rc)]
        if base == "slwi":
            ra = parse_register(ops[0], ctx)
            rs = parse_register(ops[1], ctx)
            n = ctx.eval(ops[2])
            return [encode.rlwinm(rs, ra, n, 0, 31 - n, rc)]
        if base == "srwi":
            ra = parse_register(ops[0], ctx)
            rs = parse_register(ops[1], ctx)
            n = ctx.eval(ops[2])
            return [encode.rlwinm(rs, ra, (32 - n) & 31, n, 31, rc)]
        if base == "rlwinm":
            ra = parse_register(ops[0], ctx)
            rs = parse_register(ops[1], ctx)
            sh, mb, me = (ctx.eval(op) for op in ops[2:5])
            return [encode.rlwinm(rs, ra, sh, mb, me, rc)]
        if base in ("cmpw", "cmplw", "cmpwi", "cmplwi"):
            if ops and ops[0].strip().lower() == "cr0":
                ops = ops[1:]
            ra = parse_register(ops[0], ctx)
            if base == "cmpw":
                return [encode.cmp_form(isa.XO_CMPW, ra, parse_register(ops[1], ctx))]
            if base == "cmplw":
                return [encode.cmp_form(isa.XO_CMPLW, ra, parse_register(ops[1], ctx))]
            opcd = isa.OP_CMPWI if base == "cmpwi" else isa.OP_CMPLWI
            return [encode.cmpi_form(opcd, ra, ctx.eval(ops[1]), signed=base == "cmpwi")]
        if base in _D_MEM:
            rt = parse_register(ops[0], ctx)
            disp_text, reg_text = _split_mem_operand(ops[1], ctx)
            ra = parse_register(reg_text, ctx)
            return [encode.d_form(_D_MEM[base], rt, ra, ctx.eval(disp_text))]
        if base in _X_MEM:
            rt = parse_register(ops[0], ctx)
            ra = parse_register(ops[1], ctx)
            rb = parse_register(ops[2], ctx)
            return [encode.x_form(_X_MEM[base], rt, ra, rb)]
        if base in ("b", "bl"):
            offset = ctx.eval(ops[0]) - ctx.address
            return [encode.i_form(offset, lk=1 if base == "bl" else 0)]
        if base in isa.BRANCH_CONDITIONS:
            bo, bi = isa.BRANCH_CONDITIONS[base]
            offset = ctx.eval(ops[0]) - ctx.address
            return [encode.b_form(bo, bi, offset)]
        if base == "blr":
            return [encode.xl_form(isa.XL_BCLR, isa.BO_ALWAYS, 0)]
        if base in ("bctr", "bctrl"):
            return [encode.xl_form(isa.XL_BCCTR, isa.BO_ALWAYS, 0, lk=1 if base == "bctrl" else 0)]
        if base in _SPR_MOVES:
            xo, spr = _SPR_MOVES[base]
            return [encode.spr_move(xo, parse_register(ops[0], ctx), spr)]
        if base == "sc":
            return [encode.sc_form()]
        raise ctx.error(f"unknown mnemonic {base!r}")
