"""PowerPC-like subset ISA: architectural constants and opcode tables.

The subset covers what the PPC-750 case study exercises: D-form integer
arithmetic/logic, XO-form register arithmetic including multiply/divide,
X-form logic and shifts, ``rlwinm``, word/byte loads and stores in D-form
and indexed X-form, compares writing CR0, the full conditional-branch
family including the CTR-decrementing forms, LR/CTR moves, and ``sc`` for
syscalls.  Encodings follow the PowerPC UISA field layouts for these
classes.

CR handling is simplified to CR0 only (``crfD = 0`` compares), which is
what compiler-generated integer code overwhelmingly uses.
"""

from __future__ import annotations

from typing import Dict

N_REGS = 32
#: pseudo-register numbers for hazard tracking
CR0_REG = 32
LR_REG = 33
CTR_REG = 34
N_HAZARD_REGS = 35

#: primary opcodes (bits 31:26 of the word, PowerPC "OPCD")
OP_MULLI = 7
OP_CMPLWI = 10
OP_CMPWI = 11
OP_ADDIC = 12
OP_ADDI = 14
OP_ADDIS = 15
OP_BC = 16
OP_SC = 17
OP_B = 18
OP_XL = 19
OP_RLWINM = 21
OP_ORI = 24
OP_ORIS = 25
OP_XORI = 26
OP_ANDI = 28
OP_X = 31
OP_LWZ = 32
OP_LBZ = 34
OP_STW = 36
OP_STB = 38
OP_LHZ = 40
OP_LHA = 42
OP_STH = 44
OP_SUBFIC = 8

#: extended opcodes under primary 31 (bits 10:1)
XO_CMPW = 0
XO_SUBFC = 8
XO_LWZX = 23
XO_SLW = 24
XO_AND = 28
XO_CMPLW = 32
XO_SUBF = 40
XO_MULHW = 75
XO_LBZX = 87
XO_NEG = 104
XO_STWX = 151
XO_STBX = 215
XO_MULLW = 235
XO_ADD = 266
XO_XOR = 316
XO_MFSPR = 339
XO_MTSPR = 467
XO_DIVWU = 459
XO_DIVW = 491
XO_OR = 444
XO_SRW = 536
XO_SRAW = 792
XO_SRAWI = 824
XO_EXTSB = 954
XO_EXTSH = 922
XO_CNTLZW = 26

#: extended opcodes under primary 19 (XL-form)
XL_BCLR = 16
XL_BCCTR = 528

#: SPR numbers
SPR_LR = 8
SPR_CTR = 9

#: BO field values (simplified: the forms compilers emit)
BO_ALWAYS = 0b10100  # branch always
BO_TRUE = 0b01100    # branch if CR bit true
BO_FALSE = 0b00100   # branch if CR bit false
BO_DNZ = 0b10000     # decrement CTR, branch if CTR != 0
BO_DZ = 0b10010      # decrement CTR, branch if CTR == 0

#: CR0 bit indices (BI field)
CR_LT = 0
CR_GT = 1
CR_EQ = 2
CR_SO = 3

#: conditional-branch mnemonics -> (BO, BI)
BRANCH_CONDITIONS: Dict[str, tuple] = {
    "blt": (BO_TRUE, CR_LT),
    "bgt": (BO_TRUE, CR_GT),
    "beq": (BO_TRUE, CR_EQ),
    "bge": (BO_FALSE, CR_LT),
    "ble": (BO_FALSE, CR_GT),
    "bne": (BO_FALSE, CR_EQ),
    "bdnz": (BO_DNZ, 0),
    "bdz": (BO_DZ, 0),
}

#: function-unit classes of the MPC750 (Section 5.2: "6 function units")
UNIT_IU1 = "iu1"   # integer unit 1: all integer including mul/div
UNIT_IU2 = "iu2"   # integer unit 2: all except mul/div
UNIT_SRU = "sru"   # system register unit
UNIT_LSU = "lsu"   # load/store unit
UNIT_FPU = "fpu"   # floating point (present for structure; unused by the subset)
UNIT_BPU = "bpu"   # branch processing unit
