"""PowerPC-like instruction decoder."""

from __future__ import annotations

from ..bits import bits, bit, sign_extend
from ..instruction import Instruction
from . import isa
from .isa import (
    CR0_REG,
    CTR_REG,
    LR_REG,
    SPR_LR,
    UNIT_BPU,
    UNIT_IU1,
    UNIT_IU2,
    UNIT_LSU,
    UNIT_SRU,
)


class PpcInstruction(Instruction):
    """A decoded PowerPC-like instruction."""

    __slots__ = (
        "kind",
        "rt",
        "ra",
        "rb",
        "imm",
        "bo",
        "bi",
        "lk",
        "aa",
        "sh",
        "mb",
        "me",
        "rc",
        "spr",
        "xo",
        "reads_cr",
        "sets_cr",
        "reads_ctr",
        "writes_ctr",
    )

    def __init__(self, addr: int, word: int):
        super().__init__(addr, word)
        self.kind = "illegal"
        self.rt = 0
        self.ra = 0
        self.rb = 0
        self.imm = 0
        self.bo = 0
        self.bi = 0
        self.lk = 0
        self.aa = 0
        self.sh = 0
        self.mb = 0
        self.me = 0
        self.rc = 0
        self.spr = 0
        self.xo = 0
        self.reads_cr = False
        self.sets_cr = False
        self.reads_ctr = False
        self.writes_ctr = False


#: D-form ALU: opcd -> (kind, signed immediate?, reads rA even when 0?)
_D_ALU = {
    isa.OP_MULLI: ("mulli", True),
    isa.OP_SUBFIC: ("subfic", True),
    isa.OP_ADDIC: ("addic", True),
    isa.OP_ADDI: ("addi", True),
    isa.OP_ADDIS: ("addis", True),
    isa.OP_ORI: ("ori", False),
    isa.OP_ORIS: ("oris", False),
    isa.OP_XORI: ("xori", False),
    isa.OP_ANDI: ("andi.", False),
}

_D_MEM = {
    isa.OP_LWZ: ("lwz", True, False),
    isa.OP_LBZ: ("lbz", True, True),
    isa.OP_STW: ("stw", False, False),
    isa.OP_STB: ("stb", False, True),
    isa.OP_LHZ: ("lhz", True, False),
    isa.OP_LHA: ("lha", True, False),
    isa.OP_STH: ("sth", False, False),
}

#: X/XO-form: xo -> (mnemonic, kind)
_X_ALU = {
    isa.XO_ADD: "add",
    isa.XO_SUBF: "subf",
    isa.XO_SUBFC: "subfc",
    isa.XO_NEG: "neg",
    isa.XO_MULLW: "mullw",
    isa.XO_MULHW: "mulhw",
    isa.XO_DIVW: "divw",
    isa.XO_DIVWU: "divwu",
    isa.XO_AND: "and",
    isa.XO_OR: "or",
    isa.XO_XOR: "xor",
    isa.XO_SLW: "slw",
    isa.XO_SRW: "srw",
    isa.XO_SRAW: "sraw",
}
_X_LOGICAL = {isa.XO_AND, isa.XO_OR, isa.XO_XOR, isa.XO_SLW, isa.XO_SRW, isa.XO_SRAW}
_X_MULDIV = {isa.XO_MULLW, isa.XO_MULHW, isa.XO_DIVW, isa.XO_DIVWU}
_X_MEM = {
    isa.XO_LWZX: ("lwzx", True, False),
    isa.XO_LBZX: ("lbzx", True, True),
    isa.XO_STWX: ("stwx", False, False),
    isa.XO_STBX: ("stbx", False, True),
}


def decode(addr: int, word: int) -> PpcInstruction:
    """Decode one 32-bit instruction word."""
    instr = PpcInstruction(addr, word)
    opcd = bits(word, 31, 26)
    if opcd in _D_ALU:
        _decode_d_alu(instr, opcd)
    elif opcd in (isa.OP_CMPWI, isa.OP_CMPLWI):
        _decode_cmpi(instr, opcd)
    elif opcd in _D_MEM:
        _decode_d_mem(instr, opcd)
    elif opcd == isa.OP_B:
        _decode_b(instr)
    elif opcd == isa.OP_BC:
        _decode_bc(instr)
    elif opcd == isa.OP_XL:
        _decode_xl(instr)
    elif opcd == isa.OP_RLWINM:
        _decode_rlwinm(instr)
    elif opcd == isa.OP_SC:
        _decode_sc(instr)
    elif opcd == isa.OP_X:
        _decode_x(instr)
    else:
        instr.mnemonic = "illegal"
        instr.text = f".word {word:#010x}"
    return instr


def _finish_cr(instr: PpcInstruction) -> None:
    if instr.sets_cr:
        instr.dst_regs = instr.dst_regs + (CR0_REG,)
    if instr.reads_cr:
        instr.src_regs = instr.src_regs + (CR0_REG,)
    if instr.writes_ctr:
        instr.dst_regs = instr.dst_regs + (CTR_REG,)
    if instr.reads_ctr:
        instr.src_regs = instr.src_regs + (CTR_REG,)


def _decode_d_alu(instr: PpcInstruction, opcd: int) -> None:
    mnemonic, signed = _D_ALU[opcd]
    instr.kind = "dalu"
    instr.mnemonic = mnemonic
    instr.rt = bits(instr.word, 25, 21)
    instr.ra = bits(instr.word, 20, 16)
    raw = bits(instr.word, 15, 0)
    instr.imm = sign_extend(raw, 16) if signed else raw
    instr.unit = UNIT_IU2 if mnemonic != "mulli" else UNIT_IU1
    sources = []
    # For the logical D-forms the source register is rS (the rt field) and
    # the destination is rA (PowerPC's backwards logical layout).
    if mnemonic in ("ori", "oris", "xori", "andi."):
        sources.append(instr.rt)
        instr.dst_regs = (instr.ra,)
        instr.text = f"{mnemonic} r{instr.ra}, r{instr.rt}, {instr.imm}"
    else:
        if not (mnemonic in ("addi", "addis") and instr.ra == 0):
            sources.append(instr.ra)
        instr.dst_regs = (instr.rt,)
        instr.text = f"{mnemonic} r{instr.rt}, r{instr.ra}, {instr.imm}"
    if mnemonic == "andi.":
        instr.sets_cr = True
    instr.src_regs = tuple(sources)
    _finish_cr(instr)


def _decode_cmpi(instr: PpcInstruction, opcd: int) -> None:
    instr.kind = "cmpi"
    instr.mnemonic = "cmpwi" if opcd == isa.OP_CMPWI else "cmplwi"
    instr.ra = bits(instr.word, 20, 16)
    raw = bits(instr.word, 15, 0)
    instr.imm = sign_extend(raw, 16) if opcd == isa.OP_CMPWI else raw
    instr.unit = UNIT_IU2
    instr.sets_cr = True
    instr.src_regs = (instr.ra,)
    instr.text = f"{instr.mnemonic} r{instr.ra}, {instr.imm}"
    _finish_cr(instr)


def _decode_d_mem(instr: PpcInstruction, opcd: int) -> None:
    mnemonic, is_load, _byte = _D_MEM[opcd]
    instr.kind = "mem"
    instr.mnemonic = mnemonic
    instr.rt = bits(instr.word, 25, 21)
    instr.ra = bits(instr.word, 20, 16)
    instr.imm = sign_extend(bits(instr.word, 15, 0), 16)
    instr.unit = UNIT_LSU
    instr.is_load = is_load
    instr.is_store = not is_load
    sources = []
    if instr.ra != 0:
        sources.append(instr.ra)
    if is_load:
        instr.dst_regs = (instr.rt,)
    else:
        sources.append(instr.rt)
    instr.src_regs = tuple(sources)
    instr.text = f"{mnemonic} r{instr.rt}, {instr.imm}(r{instr.ra})"
    _finish_cr(instr)


def _decode_b(instr: PpcInstruction) -> None:
    instr.kind = "b"
    instr.aa = bit(instr.word, 1)
    instr.lk = bit(instr.word, 0)
    instr.imm = sign_extend(bits(instr.word, 25, 2) << 2, 26)
    instr.mnemonic = "bl" if instr.lk else "b"
    instr.unit = UNIT_BPU
    instr.is_branch = True
    instr.writes_pc = True
    if instr.lk:
        instr.dst_regs = (LR_REG,)
    target = instr.imm if instr.aa else instr.addr + instr.imm
    instr.text = f"{instr.mnemonic} {target & 0xFFFFFFFF:#x}"
    _finish_cr(instr)


def _decode_bc(instr: PpcInstruction) -> None:
    instr.kind = "bc"
    instr.bo = bits(instr.word, 25, 21)
    instr.bi = bits(instr.word, 20, 16)
    instr.aa = bit(instr.word, 1)
    instr.lk = bit(instr.word, 0)
    instr.imm = sign_extend(bits(instr.word, 15, 2) << 2, 16)
    instr.mnemonic = "bc"
    instr.unit = UNIT_BPU
    instr.is_branch = True
    instr.writes_pc = True
    if not (instr.bo & 0b10000):  # condition matters
        instr.reads_cr = True
    if not (instr.bo & 0b00100):  # CTR decrement (any bo with bit 2 clear)
        instr.reads_ctr = True
        instr.writes_ctr = True
    if instr.lk:
        instr.dst_regs = (LR_REG,)
    target = instr.imm if instr.aa else instr.addr + instr.imm
    instr.text = f"bc {instr.bo}, {instr.bi}, {target & 0xFFFFFFFF:#x}"
    _finish_cr(instr)


def _decode_xl(instr: PpcInstruction) -> None:
    xo = bits(instr.word, 10, 1)
    instr.bo = bits(instr.word, 25, 21)
    instr.bi = bits(instr.word, 20, 16)
    instr.lk = bit(instr.word, 0)
    instr.unit = UNIT_BPU
    instr.is_branch = True
    instr.writes_pc = True
    if xo == isa.XL_BCLR:
        instr.kind = "bclr"
        instr.mnemonic = "blr"
        instr.src_regs = (LR_REG,)
    elif xo == isa.XL_BCCTR:
        instr.kind = "bcctr"
        instr.mnemonic = "bctr"
        instr.src_regs = (CTR_REG,)
    else:
        instr.kind = "illegal"
        instr.mnemonic = "illegal"
        instr.is_branch = False
        instr.writes_pc = False
        return
    if not (instr.bo & 0b10000):
        instr.reads_cr = True
    if not (instr.bo & 0b00100):  # CTR decrement, same rule as bc
        instr.writes_ctr = True
        if instr.kind == "bclr":  # bcctr already lists CTR as a source
            instr.reads_ctr = True
    if instr.lk:
        instr.dst_regs = (LR_REG,)
    instr.text = instr.mnemonic
    _finish_cr(instr)


def _decode_rlwinm(instr: PpcInstruction) -> None:
    instr.kind = "rlwinm"
    instr.mnemonic = "rlwinm"
    instr.rt = bits(instr.word, 25, 21)  # rS
    instr.ra = bits(instr.word, 20, 16)
    instr.sh = bits(instr.word, 15, 11)
    instr.mb = bits(instr.word, 10, 6)
    instr.me = bits(instr.word, 5, 1)
    instr.rc = bit(instr.word, 0)
    instr.unit = UNIT_IU2
    instr.src_regs = (instr.rt,)
    instr.dst_regs = (instr.ra,)
    instr.sets_cr = bool(instr.rc)
    instr.text = f"rlwinm r{instr.ra}, r{instr.rt}, {instr.sh}, {instr.mb}, {instr.me}"
    _finish_cr(instr)


def _decode_sc(instr: PpcInstruction) -> None:
    instr.kind = "sc"
    instr.mnemonic = "sc"
    instr.unit = UNIT_SRU
    # syscall convention: number in r0, args r3..r5, result r3
    instr.src_regs = (0, 3, 4, 5)
    instr.dst_regs = (3,)
    instr.text = "sc"
    _finish_cr(instr)


def _decode_x(instr: PpcInstruction) -> None:
    word = instr.word
    xo = bits(word, 10, 1)
    instr.xo = xo
    instr.rc = bit(word, 0)
    if xo in (isa.XO_CMPW, isa.XO_CMPLW):
        instr.kind = "cmp"
        instr.mnemonic = "cmpw" if xo == isa.XO_CMPW else "cmplw"
        instr.ra = bits(word, 20, 16)
        instr.rb = bits(word, 15, 11)
        instr.unit = UNIT_IU2
        instr.sets_cr = True
        instr.src_regs = (instr.ra, instr.rb)
        instr.text = f"{instr.mnemonic} r{instr.ra}, r{instr.rb}"
    elif xo in _X_MEM:
        mnemonic, is_load, _byte = _X_MEM[xo]
        instr.kind = "memx"
        instr.mnemonic = mnemonic
        instr.rt = bits(word, 25, 21)
        instr.ra = bits(word, 20, 16)
        instr.rb = bits(word, 15, 11)
        instr.unit = UNIT_LSU
        instr.is_load = is_load
        instr.is_store = not is_load
        sources = [instr.rb]
        if instr.ra != 0:
            sources.append(instr.ra)
        if is_load:
            instr.dst_regs = (instr.rt,)
        else:
            sources.append(instr.rt)
        instr.src_regs = tuple(sources)
        instr.text = f"{mnemonic} r{instr.rt}, r{instr.ra}, r{instr.rb}"
    elif xo in (isa.XO_EXTSB, isa.XO_EXTSH, isa.XO_CNTLZW):
        names = {isa.XO_EXTSB: "extsb", isa.XO_EXTSH: "extsh", isa.XO_CNTLZW: "cntlzw"}
        instr.kind = "xunary"
        instr.mnemonic = names[xo]
        instr.rt = bits(word, 25, 21)  # rS
        instr.ra = bits(word, 20, 16)
        instr.unit = UNIT_IU2
        instr.src_regs = (instr.rt,)
        instr.dst_regs = (instr.ra,)
        instr.sets_cr = bool(instr.rc)
        instr.text = f"{instr.mnemonic} r{instr.ra}, r{instr.rt}"
    elif xo == isa.XO_SRAWI:
        instr.kind = "srawi"
        instr.mnemonic = "srawi"
        instr.rt = bits(word, 25, 21)  # rS
        instr.ra = bits(word, 20, 16)
        instr.sh = bits(word, 15, 11)
        instr.unit = UNIT_IU2
        instr.src_regs = (instr.rt,)
        instr.dst_regs = (instr.ra,)
        instr.sets_cr = bool(instr.rc)
        instr.text = f"srawi r{instr.ra}, r{instr.rt}, {instr.sh}"
    elif xo == isa.XO_MTSPR or xo == isa.XO_MFSPR:
        spr_field = bits(word, 20, 11)
        spr = ((spr_field >> 5) & 0x1F) | ((spr_field & 0x1F) << 5)
        instr.spr = spr
        instr.rt = bits(word, 25, 21)
        instr.unit = UNIT_SRU
        spr_reg = LR_REG if spr == SPR_LR else CTR_REG
        spr_name = "lr" if spr == SPR_LR else "ctr"
        if xo == isa.XO_MTSPR:
            instr.kind = "mtspr"
            instr.mnemonic = f"mt{spr_name}"
            instr.src_regs = (instr.rt,)
            # spr_reg lands in dst_regs directly; _finish_cr must not add
            # it a second time via the ctr flag (a duplicate destination
            # would demand two rename buffers from a one-entry pool).
            instr.dst_regs = (spr_reg,)
            instr.text = f"mt{spr_name} r{instr.rt}"
        else:
            instr.kind = "mfspr"
            instr.mnemonic = f"mf{spr_name}"
            instr.src_regs = (spr_reg,)
            instr.dst_regs = (instr.rt,)
            instr.text = f"mf{spr_name} r{instr.rt}"
    elif xo in _X_ALU:
        mnemonic = _X_ALU[xo]
        instr.kind = "xalu"
        instr.mnemonic = mnemonic
        instr.rt = bits(word, 25, 21)
        instr.ra = bits(word, 20, 16)
        instr.rb = bits(word, 15, 11)
        instr.sets_cr = bool(instr.rc)
        if xo in _X_MULDIV:
            instr.unit = UNIT_IU1
        else:
            instr.unit = UNIT_IU2
        if xo in _X_LOGICAL:
            # X-form logical: rA <- rS op rB (rt field is the source rS)
            instr.src_regs = (instr.rt, instr.rb)
            instr.dst_regs = (instr.ra,)
            instr.text = f"{mnemonic} r{instr.ra}, r{instr.rt}, r{instr.rb}"
        elif mnemonic == "neg":
            instr.src_regs = (instr.ra,)
            instr.dst_regs = (instr.rt,)
            instr.text = f"neg r{instr.rt}, r{instr.ra}"
        else:
            instr.src_regs = (instr.ra, instr.rb)
            instr.dst_regs = (instr.rt,)
            instr.text = f"{mnemonic} r{instr.rt}, r{instr.ra}, r{instr.rb}"
    else:
        instr.mnemonic = "illegal"
        instr.text = f".word {word:#010x}"
        return
    _finish_cr(instr)
