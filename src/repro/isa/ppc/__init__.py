"""PowerPC-like subset ISA (the PPC-750 case-study target)."""

from .decode import PpcInstruction, decode
from .isa import (
    CR0_REG,
    CTR_REG,
    LR_REG,
    N_HAZARD_REGS,
    N_REGS,
    UNIT_BPU,
    UNIT_FPU,
    UNIT_IU1,
    UNIT_IU2,
    UNIT_LSU,
    UNIT_SRU,
)
from .semantics import ExecInfo, execute
from .syntax import PpcSyntax

__all__ = [
    "CR0_REG",
    "CTR_REG",
    "ExecInfo",
    "LR_REG",
    "N_HAZARD_REGS",
    "N_REGS",
    "PpcInstruction",
    "PpcSyntax",
    "UNIT_BPU",
    "UNIT_FPU",
    "UNIT_IU1",
    "UNIT_IU2",
    "UNIT_LSU",
    "UNIT_SRU",
    "assemble",
    "decode",
    "execute",
]


def assemble(source: str, **kwargs):
    """Assemble PowerPC-like source into a :class:`~repro.isa.program.Program`."""
    from ..assembler import Assembler

    return Assembler(PpcSyntax(), **kwargs).assemble(source)
