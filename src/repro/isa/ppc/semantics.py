"""PowerPC-like instruction semantics.

The CR0 field maps onto the shared :class:`~repro.iss.state.ArchState`
flags: ``flag_n`` = LT, ``flag_c`` = GT, ``flag_z`` = EQ (``flag_v`` is
unused by this target).
"""

from __future__ import annotations

from typing import Optional

from ..bits import s32, u32
from .decode import PpcInstruction
from .isa import CR_EQ, CR_GT, CR_LT, SPR_LR


class ExecInfo:
    """Outcome of executing one instruction (same shape as the ARM one).

    As on the ARM side, rarely-populated fields are class-level defaults
    so the per-instruction constructor stores only the two that always
    vary.
    """

    mem_addr: Optional[int] = None
    #: multi-beat accesses (unused by the PPC subset; API symmetry)
    mem_addrs = None
    mem_is_store = False
    mul_operand: Optional[int] = None
    taken = False

    def __init__(self, executed: bool, next_pc: int):
        self.executed = executed
        self.next_pc = next_pc


def _set_cr0(state, value: int) -> None:
    signed = s32(value)
    state.flag_n = 1 if signed < 0 else 0   # LT
    state.flag_c = 1 if signed > 0 else 0   # GT
    state.flag_z = 1 if signed == 0 else 0  # EQ


def _cr0_bit(state, bi: int) -> int:
    if bi == CR_LT:
        return state.flag_n
    if bi == CR_GT:
        return state.flag_c
    if bi == CR_EQ:
        return state.flag_z
    return 0  # SO unimplemented


def _branch_condition(state, bo: int, bi: int) -> bool:
    """Evaluate the BO/BI condition (CTR decrement included)."""
    ctr_ok = True
    if not (bo & 0b00100):  # decrement CTR
        state.ctr = u32(state.ctr - 1)
        ctr_zero = state.ctr == 0
        want_zero = bool(bo & 0b00010)
        ctr_ok = ctr_zero == want_zero
    cond_ok = True
    if not (bo & 0b10000):
        want_true = bool(bo & 0b01000)
        cond_ok = bool(_cr0_bit(state, bi)) == want_true
    return ctr_ok and cond_ok


def execute(state, instr: PpcInstruction) -> ExecInfo:
    """Apply *instr* to *state*; returns the :class:`ExecInfo` record."""
    sequential = u32(instr.addr + 4)
    info = ExecInfo(True, sequential)
    kind = instr.kind
    if kind == "dalu":
        _execute_dalu(state, instr)
    elif kind in ("cmp", "cmpi"):
        _execute_cmp(state, instr)
    elif kind in ("mem", "memx"):
        _execute_mem(state, instr, info)
    elif kind == "xalu":
        _execute_xalu(state, instr, info)
    elif kind == "rlwinm":
        _execute_rlwinm(state, instr)
    elif kind == "srawi":
        _execute_srawi(state, instr)
    elif kind == "xunary":
        _execute_xunary(state, instr)
    elif kind == "b":
        if instr.lk:
            state.lr = sequential
        target = instr.imm if instr.aa else instr.addr + instr.imm
        info.next_pc = u32(target)
        info.taken = True
    elif kind == "bc":
        if instr.lk:
            state.lr = sequential
        if _branch_condition(state, instr.bo, instr.bi):
            target = instr.imm if instr.aa else instr.addr + instr.imm
            info.next_pc = u32(target)
            info.taken = True
    elif kind == "bclr":
        target = state.lr & ~3
        if instr.lk:
            state.lr = sequential
        if _branch_condition(state, instr.bo, instr.bi):
            info.next_pc = u32(target)
            info.taken = True
    elif kind == "bcctr":
        if instr.lk:
            state.lr = sequential
        if _branch_condition(state, instr.bo, instr.bi):
            info.next_pc = state.ctr & ~3
            info.taken = True
    elif kind == "mtspr":
        value = state.read_reg(instr.rt)
        if instr.spr == SPR_LR:
            state.lr = value
        else:
            state.ctr = value
    elif kind == "mfspr":
        value = state.lr if instr.spr == SPR_LR else state.ctr
        state.write_reg(instr.rt, value)
    elif kind == "sc":
        state.syscalls.handle(state, state.read_reg(0))
    else:
        raise ValueError(f"illegal instruction at {instr.addr:#x}: {instr.word:#010x}")
    state.pc = info.next_pc
    return info


def _execute_dalu(state, instr: PpcInstruction) -> None:
    mnemonic = instr.mnemonic
    if mnemonic in ("ori", "oris", "xori", "andi."):
        source = state.read_reg(instr.rt)
        imm = instr.imm
        if mnemonic == "ori":
            result = source | imm
        elif mnemonic == "oris":
            result = source | (imm << 16)
        elif mnemonic == "xori":
            result = source ^ imm
        else:  # andi.
            result = source & imm
        result = u32(result)
        state.write_reg(instr.ra, result)
        if mnemonic == "andi.":
            _set_cr0(state, result)
        return
    base = 0 if instr.ra == 0 and mnemonic in ("addi", "addis") else state.read_reg(instr.ra)
    if mnemonic == "addi" or mnemonic == "addic":
        result = base + instr.imm
    elif mnemonic == "addis":
        result = base + (instr.imm << 16)
    elif mnemonic == "subfic":
        result = instr.imm - s32(base)
    else:  # mulli
        result = s32(base) * instr.imm
    state.write_reg(instr.rt, u32(result))


def _execute_cmp(state, instr: PpcInstruction) -> None:
    a = state.read_reg(instr.ra)
    if instr.kind == "cmpi":
        b = instr.imm
        signed = instr.mnemonic == "cmpwi"
    else:
        b = state.read_reg(instr.rb)
        signed = instr.mnemonic == "cmpw"
    if signed:
        left = s32(a)
        right = s32(b) if instr.kind == "cmp" else instr.imm
    else:
        left = u32(a)
        right = u32(b) if instr.kind == "cmp" else (instr.imm & 0xFFFF)
    state.flag_n = 1 if left < right else 0
    state.flag_c = 1 if left > right else 0
    state.flag_z = 1 if left == right else 0


def _execute_mem(state, instr: PpcInstruction, info: ExecInfo) -> None:
    base = 0 if instr.ra == 0 else state.read_reg(instr.ra)
    if instr.kind == "mem":
        address = u32(base + instr.imm)
    else:
        address = u32(base + state.read_reg(instr.rb))
    info.mem_addr = address
    info.mem_is_store = instr.is_store
    mnemonic = instr.mnemonic
    byte = mnemonic in ("lbz", "stb", "lbzx", "stbx")
    half = mnemonic in ("lhz", "lha", "sth")
    if instr.is_load:
        if byte:
            value = state.memory.read_byte(address)
        elif half:
            value = state.memory.read_half(address & ~1)
            if mnemonic == "lha" and value & 0x8000:
                value |= 0xFFFF0000
        else:
            value = state.memory.read_word(address & ~3)
        state.write_reg(instr.rt, value)
    else:
        value = state.read_reg(instr.rt)
        if byte:
            state.memory.write_byte(address, value & 0xFF)
        elif half:
            state.memory.write_half(address & ~1, value & 0xFFFF)
        else:
            state.memory.write_word(address & ~3, value)


def _execute_xalu(state, instr: PpcInstruction, info: ExecInfo) -> None:
    mnemonic = instr.mnemonic
    if mnemonic == "neg":
        result = u32(-s32(state.read_reg(instr.ra)))
        state.write_reg(instr.rt, result)
        if instr.rc:
            _set_cr0(state, result)
        return
    if mnemonic in ("and", "or", "xor", "slw", "srw", "sraw"):
        source = state.read_reg(instr.rt)  # rS
        operand = state.read_reg(instr.rb)
        if mnemonic == "and":
            result = source & operand
        elif mnemonic == "or":
            result = source | operand
        elif mnemonic == "xor":
            result = source ^ operand
        elif mnemonic == "slw":
            amount = operand & 0x3F
            result = 0 if amount > 31 else u32(source << amount)
        elif mnemonic == "srw":
            amount = operand & 0x3F
            result = 0 if amount > 31 else u32(source) >> amount
        else:  # sraw
            amount = operand & 0x3F
            result = u32(s32(source) >> min(amount, 31))
        result = u32(result)
        state.write_reg(instr.ra, result)
        if instr.rc:
            _set_cr0(state, result)
        return
    a = state.read_reg(instr.ra)
    b = state.read_reg(instr.rb)
    if mnemonic == "add":
        result = a + b
    elif mnemonic in ("subf", "subfc"):
        result = b - a
    elif mnemonic == "mullw":
        result = s32(a) * s32(b)
        info.mul_operand = b
    elif mnemonic == "mulhw":
        result = (s32(a) * s32(b)) >> 32
        info.mul_operand = b
    elif mnemonic == "divw":
        divisor = s32(b)
        result = 0 if divisor == 0 else _div_trunc(s32(a), divisor)
        info.mul_operand = b
    else:  # divwu
        divisor = u32(b)
        result = 0 if divisor == 0 else u32(a) // divisor
        info.mul_operand = b
    result = u32(result)
    state.write_reg(instr.rt, result)
    if instr.rc:
        _set_cr0(state, result)


def _div_trunc(a: int, b: int) -> int:
    """Signed division truncating toward zero (PowerPC divw rounding)."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _rotl32(value: int, amount: int) -> int:
    amount &= 31
    value = u32(value)
    if amount == 0:
        return value
    return u32((value << amount) | (value >> (32 - amount)))


def _mask(mb: int, me: int) -> int:
    """PowerPC MB..ME mask (big-endian bit numbering).

    A wrapped mask (MB > ME) selects both ends; MB == ME + 1 selects all
    32 bits (the full-mask wrap case of the architecture).
    """
    if mb <= me:
        width = me - mb + 1
        return ((1 << width) - 1) << (31 - me)
    if mb == me + 1:
        return 0xFFFFFFFF
    return u32(~_mask(me + 1, mb - 1))


def _execute_rlwinm(state, instr: PpcInstruction) -> None:
    rotated = _rotl32(state.read_reg(instr.rt), instr.sh)
    result = rotated & _mask(instr.mb, instr.me)
    state.write_reg(instr.ra, result)
    if instr.rc:
        _set_cr0(state, result)


def _execute_xunary(state, instr: PpcInstruction) -> None:
    source = state.read_reg(instr.rt)
    if instr.mnemonic == "extsb":
        result = (source & 0xFF) | (0xFFFFFF00 if source & 0x80 else 0)
    elif instr.mnemonic == "extsh":
        result = (source & 0xFFFF) | (0xFFFF0000 if source & 0x8000 else 0)
    else:  # cntlzw
        value = u32(source)
        result = 32 - value.bit_length() if value else 32
    state.write_reg(instr.ra, u32(result))
    if instr.rc:
        _set_cr0(state, result)


def _execute_srawi(state, instr: PpcInstruction) -> None:
    result = u32(s32(state.read_reg(instr.rt)) >> instr.sh)
    state.write_reg(instr.ra, result)
    if instr.rc:
        _set_cr0(state, result)
