"""Workload generators: MediaBench-like, SPEC-like, diagnostic loops."""

from . import generator, kernels, mediabench, rng, speclike

__all__ = ["generator", "kernels", "mediabench", "rng", "speclike"]
