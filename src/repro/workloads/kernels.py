"""The 40 diagnostic kernel loops (paper Section 5.1).

"We used 40 small kernel loops to diagnose timing mismatches between the
model and the real processor."  Each loop isolates one timing behaviour —
dependence distances, forwarding paths, multiplier early termination,
branch penalties, memory patterns — so a cycle-count mismatch between two
simulators points directly at the divergent mechanism.

Loops are generated programmatically for the ARM target; `KERNEL_NAMES`
lists all 40.  Every kernel exits with a checksum for functional
cross-checking.
"""

from __future__ import annotations

from typing import Dict, List

_ITER = 64  # default trip count for every loop


def _wrap(name: str, body: str, data: str = "") -> str:
    data_section = f"    .data\n{data}" if data else ""
    return f"""
    ; kernel loop: {name}
    .text
_start:
    mov  r7, #0          ; checksum
    mov  r6, #0          ; loop counter
kloop:
{body}
    add  r6, r6, #1
    cmp  r6, #{_ITER}
    blt  kloop
    and  r0, r7, #255
    swi  #0
{data_section}
"""


def _alu_chain(dep: bool, length: int) -> str:
    """A chain of ALU ops, dependent (RAW each step) or independent."""
    lines = ["    mov  r0, r6"]
    for i in range(length):
        if dep:
            lines.append("    add  r0, r0, #1")
        else:
            lines.append(f"    add  r{1 + (i % 4)}, r6, #{i + 1}")
    if not dep:
        lines.append("    add  r0, r1, r2")
    lines.append("    add  r7, r7, r0")
    return "\n".join(lines)


def _mul_loop(operand: int, long: bool) -> str:
    load_op = f"    li   r1, {operand}"
    if long:
        return f"""{load_op}
    mov  r2, r6
    umull r3, r4, r2, r1
    add  r7, r7, r3
    add  r7, r7, r4"""
    return f"""{load_op}
    mov  r2, r6
    mul  r3, r2, r1
    add  r7, r7, r3"""


def _branch_loop(pattern: str) -> str:
    if pattern == "taken":
        return """    tst  r6, #0          ; always Z=1
    beq  ktgt
    add  r7, r7, #99     ; skipped
ktgt:
    add  r7, r7, #1"""
    if pattern == "nottaken":
        return """    tst  r6, #0
    bne  kskip           ; never taken
    add  r7, r7, #1
kskip:
    add  r7, r7, #2"""
    # alternate: taken on odd iterations
    return """    tst  r6, #1
    beq  keven
    add  r7, r7, #3
    b    kjoin
keven:
    add  r7, r7, #5
kjoin:
    add  r7, r7, #1"""


def _load_use(distance: int) -> str:
    fillers = "\n".join(f"    add  r{2 + i}, r6, #{i}" for i in range(distance))
    return f"""    li   r1, karr
    and  r0, r6, #15
    ldr  r3, [r1, r0, lsl #2]
{fillers}
    add  r7, r7, r3"""


def _store_load(same_addr: bool) -> str:
    offset = "r0" if same_addr else "r5"
    return f"""    li   r1, karr
    and  r0, r6, #15
    add  r5, r0, #16
    str  r6, [r1, r0, lsl #2]
    ldr  r3, [r1, {offset}, lsl #2]
    add  r7, r7, r3"""


def _flag_dep(distance: int) -> str:
    fillers = "\n".join(f"    add  r{2 + i}, r6, #{i}" for i in range(distance))
    return f"""    cmp  r6, #32
{fillers}
    addlt r7, r7, #1
    addge r7, r7, #2"""


def _cond_exec(density: int) -> str:
    body = ["    cmp  r6, #32"]
    for i in range(density):
        body.append(f"    addlt r7, r7, #{i + 1}")
        body.append(f"    subge r7, r7, #{i + 1}")
    return "\n".join(body)


def _mem_stride(stride_words: int) -> str:
    return f"""    li   r1, kbuf
    li   r2, {stride_words * 4}
    mul  r0, r6, r2
    and  r0, r0, #1020
    ldr  r3, [r1, r0]
    add  r7, r7, r3"""


def _mixed(weights: str) -> str:
    if weights == "alu_mem":
        return """    li   r1, karr
    and  r0, r6, #15
    ldr  r2, [r1, r0, lsl #2]
    add  r3, r2, r6
    str  r3, [r1, r0, lsl #2]
    add  r7, r7, r3"""
    if weights == "mul_mem":
        return """    li   r1, karr
    and  r0, r6, #15
    ldr  r2, [r1, r0, lsl #2]
    mul  r3, r2, r6
    add  r7, r7, r3"""
    return """    mov  r0, r6, lsl #3
    orr  r0, r0, r6, lsr #2
    eor  r7, r7, r0
    and  r7, r7, #255"""


_KARR = "karr:\n    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3\n    .space 64\n"
_KBUF = "kbuf:\n    .space 2112\n"


def _build_kernels() -> Dict[str, str]:
    kernels: Dict[str, str] = {}

    def add(name: str, body: str, data: str = "") -> None:
        kernels[name] = _wrap(name, body, data)

    # 1-8: ALU dependence chains of increasing length, dep vs indep
    for length in (1, 2, 4, 8):
        add(f"alu_dep{length}", _alu_chain(True, length))
        add(f"alu_ind{length}", _alu_chain(False, length))
    # 9-14: multiplier early termination (operand magnitudes) + long mul
    for operand, tag in ((5, "byte1"), (0x1234, "byte2"), (0x123456, "byte3"), (0x12345678, "byte4")):
        add(f"mul_{tag}", _mul_loop(operand, False))
    add("mull_small", _mul_loop(7, True))
    add("mull_large", _mul_loop(0x7FFFFFF1, True))
    # 15-17: branch patterns
    add("br_taken", _branch_loop("taken"))
    add("br_nottaken", _branch_loop("nottaken"))
    add("br_alternate", _branch_loop("alt"))
    # 18-22: load-use distances 0..4
    for distance in range(5):
        add(f"loaduse{distance}", _load_use(distance), _KARR)
    # 23-24: store-to-load
    add("stld_same", _store_load(True), _KARR)
    add("stld_diff", _store_load(False), _KARR)
    # 25-28: flag dependence distances
    for distance in range(4):
        add(f"flagdep{distance}", _flag_dep(distance))
    # 29-31: conditional execution density
    for density in (1, 3, 6):
        add(f"condexec{density}", _cond_exec(density))
    # 32-35: memory strides (cache behaviour)
    for stride in (1, 2, 8, 32):
        add(f"stride{stride}", _mem_stride(stride), _KBUF)
    # 36-38: mixed instruction classes
    add("mix_alu_mem", _mixed("alu_mem"), _KARR)
    add("mix_mul_mem", _mixed("mul_mem"), _KARR)
    add("mix_shift", _mixed("shift"))
    # 39-40: long dependent chain and pointer-ish chase
    add("alu_dep16", _alu_chain(True, 16))
    add(
        "chase",
        """    li   r1, karr
    and  r0, r6, #7
    ldr  r2, [r1, r0, lsl #2]
    and  r2, r2, #7
    ldr  r3, [r1, r2, lsl #2]
    and  r3, r3, #7
    ldr  r4, [r1, r3, lsl #2]
    add  r7, r7, r4""",
        _KARR,
    )
    return kernels


_KERNELS = _build_kernels()
KERNEL_NAMES: List[str] = sorted(_KERNELS)

assert len(KERNEL_NAMES) == 40, f"expected 40 kernel loops, built {len(KERNEL_NAMES)}"


def arm_source(name: str) -> str:
    """Assembly text of the named diagnostic loop (ARM target)."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel loop {name!r}") from None


def all_arm_sources() -> Dict[str, str]:
    return dict(_KERNELS)
