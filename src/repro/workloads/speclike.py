"""SPECint-like synthetic kernels (PPC target).

Section 5.2 validates the PPC-750 model on "a benchmark mix from
MediaBench and SPECint 2000".  These kernels play the SPECint role:
branchier, less MAC-structured code than the media kernels.

* ``lz_compress`` — gzip-like: hash-chain match search over a byte
  buffer (byte loads, shifts, unpredictable branches).
* ``pointer_chase`` — mcf-like: linked-list traversal with data-dependent
  next pointers (load-to-load dependence chains).
* ``parser_loop`` — parser-like: character-class dispatch over a text
  buffer (dense compare/branch ladders).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .rng import lcg_words

SPECLIKE_NAMES = ("lz_compress", "pointer_chase", "parser_loop")


def _byte_directive(values: List[int], per_line: int = 16) -> str:
    lines = []
    for i in range(0, len(values), per_line):
        chunk = ", ".join(str(v & 0xFF) for v in values[i : i + per_line])
        lines.append(f"    .byte {chunk}")
    return "\n".join(lines)


def _word_directive(values: List[int], per_line: int = 8) -> str:
    lines = []
    for i in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[i : i + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


def lz_compress_ppc(scale: int = 1) -> str:
    n = 256 * scale
    # Compressible-ish data: small alphabet with runs.
    data = []
    stream = lcg_words(seed=0x6464, count=n, lo=0, hi=255)
    for value in stream:
        data.append(value % 7 if value % 3 else value % 29)
    return f"""
    ; lz-like kernel: match-length search over a byte buffer
    .text
_start:
    li32  r8, buf
    li    r7, 0          ; emitted-token checksum
    li    r4, 4          ; position
scan:
    lbzx  r3, r8, r4     ; current byte
    ; look back 1..4 for a match start
    li    r5, 1
back:
    sub   r9, r4, r5
    lbzx  r10, r8, r9
    cmpw  r10, r3
    beq   match
    addi  r5, r5, 1
    cmpwi r5, 5
    blt   back
    ; literal
    add   r7, r7, r3
    addi  r4, r4, 1
    b     next
match:
    ; extend the match
    li    r11, 0
extend:
    add   r9, r4, r11
    cmpwi r9, {n}
    bge   ext_done
    sub   r12, r9, r5
    lbzx  r10, r8, r12
    lbzx  r13, r8, r9
    cmpw  r10, r13
    bne   ext_done
    addi  r11, r11, 1
    cmpwi r11, 16
    blt   extend
ext_done:
    ; emit (offset, length) token
    slwi  r12, r5, 4
    or    r12, r12, r11
    add   r7, r7, r12
    addi  r4, r4, 1
    add   r4, r4, r11
next:
    cmpwi r4, {n}
    blt   scan
    andi. r3, r7, 255
    li    r0, 0
    sc
    .data
buf:
{_byte_directive(data)}
"""


def pointer_chase_ppc(scale: int = 1) -> str:
    n_nodes = 64
    steps = 256 * scale
    # A permutation cycle: node i -> (i * 13 + 7) mod n
    nexts = [((i * 13 + 7) % n_nodes) * 8 for i in range(n_nodes)]
    payloads = lcg_words(seed=0x3C3C, count=n_nodes, lo=1, hi=1000)
    words: List[int] = []
    for nxt, payload in zip(nexts, payloads):
        words.extend((nxt, payload))
    return f"""
    ; mcf-like kernel: pointer chase through a linked structure
    .text
_start:
    li32  r8, nodes
    li    r7, 0          ; checksum
    li    r4, 0          ; current node offset
    li    r5, 0          ; step
chase:
    lwzx  r3, r8, r4     ; next offset
    addi  r6, r4, 4
    lwzx  r9, r8, r6     ; payload
    add   r7, r7, r9
    mr    r4, r3
    addi  r5, r5, 1
    cmpwi r5, {steps}
    blt   chase
    andi. r3, r7, 255
    li    r0, 0
    sc
    .data
nodes:
{_word_directive(words)}
"""


def parser_loop_ppc(scale: int = 1) -> str:
    n = 256 * scale
    text = []
    stream = lcg_words(seed=0x7A7A, count=n, lo=0, hi=99)
    for value in stream:
        if value < 55:
            text.append(ord("a") + value % 26)   # letters
        elif value < 75:
            text.append(ord("0") + value % 10)   # digits
        elif value < 90:
            text.append(ord(" "))                # whitespace
        else:
            text.append(ord("+") if value % 2 else ord("("))
    return f"""
    ; parser-like kernel: character-class dispatch ladder
    .text
_start:
    li32  r8, text
    li    r7, 0          ; class histogram checksum
    li    r20, 0         ; identifiers
    li    r21, 0         ; numbers
    li    r22, 0         ; spaces
    li    r23, 0         ; operators
    li    r4, 0
ploop:
    lbzx  r3, r8, r4
    cmpwi r3, 97         ; 'a'
    blt   not_letter
    cmpwi r3, 122        ; 'z'
    bgt   not_letter
    addi  r20, r20, 1
    b     classified
not_letter:
    cmpwi r3, 48         ; '0'
    blt   not_digit
    cmpwi r3, 57         ; '9'
    bgt   not_digit
    addi  r21, r21, 1
    b     classified
not_digit:
    cmpwi r3, 32         ; space
    bne   operator
    addi  r22, r22, 1
    b     classified
operator:
    addi  r23, r23, 1
classified:
    addi  r4, r4, 1
    cmpwi r4, {n}
    blt   ploop
    slwi  r7, r20, 3
    add   r7, r7, r21
    slwi  r22, r22, 1
    add   r7, r7, r22
    add   r7, r7, r23
    andi. r3, r7, 255
    li    r0, 0
    sc
    .data
text:
{_byte_directive(text)}
"""


_PPC_GENERATORS: Dict[str, Callable[[int], str]] = {
    "lz_compress": lz_compress_ppc,
    "pointer_chase": pointer_chase_ppc,
    "parser_loop": parser_loop_ppc,
}


def ppc_source(name: str, scale: int = 1) -> str:
    """Assembly text of the named SPEC-like kernel (PPC target)."""
    try:
        generator = _PPC_GENERATORS[name]
    except KeyError:
        raise KeyError(f"unknown spec-like kernel {name!r}; have {SPECLIKE_NAMES}") from None
    return generator(scale)


def all_ppc_sources(scale: int = 1) -> Dict[str, str]:
    return {name: ppc_source(name, scale) for name in SPECLIKE_NAMES}
