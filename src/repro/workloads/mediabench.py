"""MediaBench-like synthetic kernels.

Table 1 runs "the largest applications from the MediaBench benchmarks":
gsm, g721 and mpeg2, decode and encode.  The proprietary inputs and full
applications are substituted (see DESIGN.md) by kernels that reproduce the
characteristic inner loops — and therefore the instruction mix and hazard
structure — of each codec:

* ``gsm_dec`` — long-term-prediction synthesis filter (8-tap MAC loop).
* ``gsm_enc`` — LTP lag search (cross-correlation + running maximum).
* ``g721_dec`` — ADPCM reconstruction (table lookups, conditional
  add/sub, clamping).
* ``g721_enc`` — ADPCM quantisation (abs, segment search loop,
  predictor update).
* ``mpeg2_dec`` — 8-point butterfly IDCT rows + saturation to bytes.
* ``mpeg2_enc`` — DCT dot products against a coefficient table.

Each generator returns complete assembly for the requested ISA; the
program exits with a data-dependent checksum so functional equivalence
between ISS, OSM model and baselines can be asserted.  ``scale``
multiplies the outer iteration count.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .rng import lcg_words

MEDIABENCH_NAMES = ("gsm_dec", "gsm_enc", "g721_dec", "g721_enc", "mpeg2_dec", "mpeg2_enc")


def _words_directive(values: List[int], per_line: int = 8) -> str:
    lines = []
    for i in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[i : i + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# ARM variants
# ---------------------------------------------------------------------------


def gsm_dec_arm(scale: int = 1) -> str:
    n_out = 40 * scale
    samples = lcg_words(seed=0x1234, count=n_out + 8, lo=-4000, hi=4000)
    taps = lcg_words(seed=0x77, count=8, lo=-64, hi=64)
    return f"""
    ; gsm decode kernel: 8-tap LTP synthesis filter
    .text
_start:
    li   r8, x          ; excitation
    li   r9, h          ; filter taps
    li   r10, y         ; output
    mov  r7, #0         ; checksum
    mov  r4, #0         ; i
outer:
    mov  r0, #0         ; acc
    mov  r5, #0         ; k
inner:
    add  r1, r4, r5
    ldr  r2, [r8, r1, lsl #2]
    ldr  r3, [r9, r5, lsl #2]
    mla  r0, r2, r3, r0
    add  r5, r5, #1
    cmp  r5, #8
    blt  inner
    mov  r0, r0, asr #6
    str  r0, [r10, r4, lsl #2]
    add  r7, r7, r0
    add  r4, r4, #1
    cmp  r4, #{n_out}
    blt  outer
    and  r0, r7, #255
    swi  #0
    .data
x:
{_words_directive([v & 0xFFFFFFFF for v in samples])}
h:
{_words_directive([v & 0xFFFFFFFF for v in taps])}
y:
    .space {4 * n_out}
"""


def gsm_enc_arm(scale: int = 1) -> str:
    n_lags = 40 * scale
    window = lcg_words(seed=0xBEEF, count=16, lo=-2000, hi=2000)
    history = lcg_words(seed=0xCAFE, count=n_lags + 16, lo=-2000, hi=2000)
    return f"""
    ; gsm encode kernel: LTP lag search (cross-correlation maximum)
    .text
_start:
    li   r8, w          ; window
    li   r9, d          ; history
    mov  r10, #0        ; best score
    mov  r11, #0        ; best lag
    mov  r4, #0         ; lag
lag_loop:
    mov  r0, #0         ; acc
    mov  r5, #0         ; k
corr:
    ldr  r2, [r8, r5, lsl #2]
    add  r1, r4, r5
    ldr  r3, [r9, r1, lsl #2]
    mla  r0, r2, r3, r0
    add  r5, r5, #1
    cmp  r5, #16
    blt  corr
    cmp  r0, r10
    movgt r10, r0
    movgt r11, r4
    add  r4, r4, #1
    cmp  r4, #{n_lags}
    blt  lag_loop
    add  r0, r10, r11
    and  r0, r0, #255
    swi  #0
    .data
w:
{_words_directive([v & 0xFFFFFFFF for v in window])}
d:
{_words_directive([v & 0xFFFFFFFF for v in history])}
"""


def g721_dec_arm(scale: int = 1) -> str:
    n = 96 * scale
    codes = lcg_words(seed=0x5150, count=n, lo=0, hi=15)
    steps = [7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31]
    return f"""
    ; g721 decode kernel: ADPCM reconstruction with clamping
    .text
_start:
    li   r8, codes
    li   r9, steptab
    mov  r10, #0        ; predicted sample
    mov  r11, #4        ; step index
    mov  r7, #0         ; checksum
    mov  r4, #0         ; i
dec_loop:
    ldr  r0, [r8, r4, lsl #2]   ; code (0..15)
    ldr  r1, [r9, r11, lsl #2]  ; step
    ; delta = step * (code & 7) / 4 + step/8
    and  r2, r0, #7
    mul  r3, r1, r2
    mov  r3, r3, asr #2
    add  r3, r3, r1, lsr #3
    tst  r0, #8                 ; sign bit
    subne r10, r10, r3
    addeq r10, r10, r3
    ; clamp predicted sample to [-8192, 8191]
    li   r5, 8191
    cmp  r10, r5
    movgt r10, r5
    li   r5, 0 - 8192
    cmp  r10, r5
    movlt r10, r5
    ; step index update: +2 if code&7 >= 4 else -1, clamp [0, 15]
    and  r2, r0, #7
    cmp  r2, #4
    addge r11, r11, #2
    sublt r11, r11, #1
    cmp  r11, #0
    movlt r11, #0
    cmp  r11, #15
    movgt r11, #15
    add  r7, r7, r10
    add  r4, r4, #1
    cmp  r4, #{n}
    blt  dec_loop
    and  r0, r7, #255
    swi  #0
    .data
codes:
{_words_directive([v & 0xFFFFFFFF for v in codes])}
steptab:
{_words_directive(steps)}
"""


def g721_enc_arm(scale: int = 1) -> str:
    n = 96 * scale
    samples = lcg_words(seed=0xACE, count=n, lo=-8000, hi=8000)
    return f"""
    ; g721 encode kernel: ADPCM quantisation (abs + segment search)
    .text
_start:
    li   r8, pcm
    mov  r10, #0        ; predictor
    mov  r7, #0         ; checksum
    mov  r4, #0         ; i
enc_loop:
    ldr  r0, [r8, r4, lsl #2]
    sub  r1, r0, r10    ; diff
    ; absolute value + sign in r6
    mov  r6, #0
    cmp  r1, #0
    rsblt r1, r1, #0
    movlt r6, #8
    ; segment search: count shifts until diff < 16
    mov  r2, #0
seg:
    cmp  r1, #16
    movge r1, r1, lsr #1
    addge r2, r2, #1
    bge  seg
    orr  r3, r6, r2     ; code = sign | segment
    ; predictor update: pred += (diff>>3) with sign applied
    mov  r5, r1, lsl #1
    tst  r6, #8
    subne r10, r10, r5
    addeq r10, r10, r5
    add  r7, r7, r3
    add  r4, r4, #1
    cmp  r4, #{n}
    blt  enc_loop
    and  r0, r7, #255
    swi  #0
    .data
pcm:
{_words_directive([v & 0xFFFFFFFF for v in samples])}
"""


def mpeg2_dec_arm(scale: int = 1) -> str:
    n_blocks = 12 * scale
    coeffs = lcg_words(seed=0xD1CE, count=64, lo=-256, hi=256)
    return f"""
    ; mpeg2 decode kernel: butterfly IDCT rows + saturate to 0..255
    .text
_start:
    li   r8, blk
    li   r10, out
    mov  r7, #0         ; checksum
    mov  r6, #0         ; block counter
block_loop:
    mov  r4, #0         ; row
row_loop:
    mov  r5, r4, lsl #3 ; row * 8
    ; butterfly pass over 4 pairs
    mov  r3, #0         ; pair index
pair:
    add  r0, r5, r3
    ldr  r1, [r8, r0, lsl #2]       ; a = blk[row*8 + j]
    add  r0, r0, #4
    ldr  r2, [r8, r0, lsl #2]       ; b = blk[row*8 + j + 4]
    add  r0, r1, r2                 ; s = a + b
    sub  r1, r1, r2                 ; d = a - b
    ; saturate s to 0..255
    cmp  r0, #0
    movlt r0, #0
    cmp  r0, #255
    movgt r0, #255
    ; fold difference into checksum
    add  r7, r7, r0
    add  r7, r7, r1, asr #4
    add  r2, r5, r3
    str  r0, [r10, r2, lsl #2]
    add  r3, r3, #1
    cmp  r3, #4
    blt  pair
    add  r4, r4, #1
    cmp  r4, #8
    blt  row_loop
    add  r6, r6, #1
    cmp  r6, #{n_blocks}
    blt  block_loop
    and  r0, r7, #255
    swi  #0
    .data
blk:
{_words_directive([v & 0xFFFFFFFF for v in coeffs])}
out:
    .space 256
"""


def mpeg2_enc_arm(scale: int = 1) -> str:
    n_blocks = 6 * scale
    pixels = lcg_words(seed=0xFACE, count=64, lo=0, hi=255)
    basis = lcg_words(seed=0xB0B, count=64, lo=-181, hi=181)
    return f"""
    ; mpeg2 encode kernel: DCT dot products + quantise (mul heavy)
    .text
_start:
    li   r8, pix
    li   r9, basis
    mov  r7, #0         ; checksum
    mov  r6, #0         ; block counter
eblock:
    mov  r4, #0         ; coefficient index
coef:
    mov  r0, #0         ; acc
    mov  r5, #0         ; k
edot:
    ldr  r1, [r8, r5, lsl #2]
    add  r2, r5, r4
    and  r2, r2, #63
    ldr  r3, [r9, r2, lsl #2]
    mla  r0, r1, r3, r0
    add  r5, r5, #8
    cmp  r5, #64
    blt  edot
    mov  r0, r0, asr #7  ; quantise
    add  r7, r7, r0
    add  r4, r4, #1
    cmp  r4, #8
    blt  coef
    add  r6, r6, #1
    cmp  r6, #{n_blocks}
    blt  eblock
    and  r0, r7, #255
    swi  #0
    .data
pix:
{_words_directive([v & 0xFFFFFFFF for v in pixels])}
basis:
{_words_directive([v & 0xFFFFFFFF for v in basis])}
"""


_ARM_GENERATORS: Dict[str, Callable[[int], str]] = {
    "gsm_dec": gsm_dec_arm,
    "gsm_enc": gsm_enc_arm,
    "g721_dec": g721_dec_arm,
    "g721_enc": g721_enc_arm,
    "mpeg2_dec": mpeg2_dec_arm,
    "mpeg2_enc": mpeg2_enc_arm,
}


def arm_source(name: str, scale: int = 1) -> str:
    """Assembly text of the named MediaBench-like kernel (ARM target)."""
    try:
        generator = _ARM_GENERATORS[name]
    except KeyError:
        raise KeyError(f"unknown mediabench kernel {name!r}; have {MEDIABENCH_NAMES}") from None
    return generator(scale)


def all_arm_sources(scale: int = 1) -> Dict[str, str]:
    return {name: arm_source(name, scale) for name in MEDIABENCH_NAMES}


# ---------------------------------------------------------------------------
# PowerPC variants (same kernels, same data, PPC-750 target)
# ---------------------------------------------------------------------------


def gsm_dec_ppc(scale: int = 1) -> str:
    n_out = 40 * scale
    samples = lcg_words(seed=0x1234, count=n_out + 8, lo=-4000, hi=4000)
    taps = lcg_words(seed=0x77, count=8, lo=-64, hi=64)
    return f"""
    ; gsm decode kernel: 8-tap LTP synthesis filter (PPC)
    .text
_start:
    li32  r8, x
    li32  r9, h
    li32  r10, y
    li    r7, 0          ; checksum
    li    r4, 0          ; i
outer:
    li    r3, 0          ; acc
    li    r5, 0          ; k
inner:
    add   r0, r4, r5
    slwi  r0, r0, 2
    lwzx  r11, r8, r0
    slwi  r12, r5, 2
    lwzx  r13, r9, r12
    mullw r14, r11, r13
    add   r3, r3, r14
    addi  r5, r5, 1
    cmpwi r5, 8
    blt   inner
    srawi r3, r3, 6
    slwi  r0, r4, 2
    stwx  r3, r10, r0
    add   r7, r7, r3
    addi  r4, r4, 1
    cmpwi r4, {n_out}
    blt   outer
    andi. r3, r7, 255
    li    r0, 0
    sc
    .data
x:
{_words_directive([v & 0xFFFFFFFF for v in samples])}
h:
{_words_directive([v & 0xFFFFFFFF for v in taps])}
y:
    .space {4 * n_out}
"""


def gsm_enc_ppc(scale: int = 1) -> str:
    n_lags = 40 * scale
    window = lcg_words(seed=0xBEEF, count=16, lo=-2000, hi=2000)
    history = lcg_words(seed=0xCAFE, count=n_lags + 16, lo=-2000, hi=2000)
    return f"""
    ; gsm encode kernel: LTP lag search (PPC)
    .text
_start:
    li32  r8, w
    li32  r9, d
    li    r10, 0         ; best score
    li    r11, 0         ; best lag
    li    r4, 0          ; lag
lag_loop:
    li    r3, 0          ; acc
    li    r5, 0          ; k
corr:
    slwi  r0, r5, 2
    lwzx  r12, r8, r0
    add   r1, r4, r5
    slwi  r1, r1, 2
    lwzx  r13, r9, r1
    mullw r14, r12, r13
    add   r3, r3, r14
    addi  r5, r5, 1
    cmpwi r5, 16
    blt   corr
    cmpw  r3, r10
    ble   no_best
    mr    r10, r3
    mr    r11, r4
no_best:
    addi  r4, r4, 1
    cmpwi r4, {n_lags}
    blt   lag_loop
    add   r3, r10, r11
    andi. r3, r3, 255
    li    r0, 0
    sc
    .data
w:
{_words_directive([v & 0xFFFFFFFF for v in window])}
d:
{_words_directive([v & 0xFFFFFFFF for v in history])}
"""


def g721_dec_ppc(scale: int = 1) -> str:
    n = 96 * scale
    codes = lcg_words(seed=0x5150, count=n, lo=0, hi=15)
    steps = [7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31]
    return f"""
    ; g721 decode kernel: ADPCM reconstruction (PPC)
    .text
_start:
    li32  r8, codes
    li32  r9, steptab
    li    r10, 0         ; predicted sample
    li    r11, 4         ; step index
    li    r7, 0          ; checksum
    li    r4, 0          ; i
dec_loop:
    slwi  r0, r4, 2
    lwzx  r3, r8, r0     ; code
    slwi  r0, r11, 2
    lwzx  r5, r9, r0     ; step
    andi. r6, r3, 7
    mullw r12, r5, r6
    srawi r12, r12, 2
    srwi  r13, r5, 3
    add   r12, r12, r13  ; delta
    andi. r14, r3, 8     ; sign
    beq   pos
    sub   r10, r10, r12
    b     sgn_done
pos:
    add   r10, r10, r12
sgn_done:
    ; clamp to [-8192, 8191]
    li32  r15, 8191
    cmpw  r10, r15
    ble   not_hi
    mr    r10, r15
not_hi:
    li32  r15, 0 - 8192
    cmpw  r10, r15
    bge   not_lo
    mr    r10, r15
not_lo:
    ; step index update
    cmpwi r6, 4
    blt   dec_idx
    addi  r11, r11, 2
    b     idx_done
dec_idx:
    addi  r11, r11, -1
idx_done:
    cmpwi r11, 0
    bge   idx_ok_lo
    li    r11, 0
idx_ok_lo:
    cmpwi r11, 15
    ble   idx_ok_hi
    li    r11, 15
idx_ok_hi:
    add   r7, r7, r10
    addi  r4, r4, 1
    cmpwi r4, {n}
    blt   dec_loop
    andi. r3, r7, 255
    li    r0, 0
    sc
    .data
codes:
{_words_directive([v & 0xFFFFFFFF for v in codes])}
steptab:
{_words_directive(steps)}
"""


def g721_enc_ppc(scale: int = 1) -> str:
    n = 96 * scale
    samples = lcg_words(seed=0xACE, count=n, lo=-8000, hi=8000)
    return f"""
    ; g721 encode kernel: ADPCM quantisation (PPC)
    .text
_start:
    li32  r8, pcm
    li    r10, 0         ; predictor
    li    r7, 0          ; checksum
    li    r4, 0          ; i
enc_loop:
    slwi  r0, r4, 2
    lwzx  r3, r8, r0
    sub   r5, r3, r10    ; diff
    li    r6, 0
    cmpwi r5, 0
    bge   abs_done
    neg   r5, r5
    li    r6, 8
abs_done:
    li    r12, 0
seg:
    cmpwi r5, 16
    blt   seg_done
    srwi  r5, r5, 1
    addi  r12, r12, 1
    b     seg
seg_done:
    or    r13, r6, r12   ; code
    slwi  r14, r5, 1
    cmpwi r6, 8
    bne   enc_pos
    sub   r10, r10, r14
    b     enc_done
enc_pos:
    add   r10, r10, r14
enc_done:
    add   r7, r7, r13
    addi  r4, r4, 1
    cmpwi r4, {n}
    blt   enc_loop
    andi. r3, r7, 255
    li    r0, 0
    sc
    .data
pcm:
{_words_directive([v & 0xFFFFFFFF for v in samples])}
"""


def mpeg2_dec_ppc(scale: int = 1) -> str:
    n_blocks = 12 * scale
    coeffs = lcg_words(seed=0xD1CE, count=64, lo=-256, hi=256)
    return f"""
    ; mpeg2 decode kernel: butterfly IDCT rows + saturation (PPC)
    .text
_start:
    li32  r8, blk
    li32  r10, out
    li    r7, 0          ; checksum
    li    r6, 0          ; block
block_loop:
    li    r4, 0          ; row
row_loop:
    slwi  r5, r4, 3
    li    r3, 0          ; pair
pair:
    add   r0, r5, r3
    slwi  r0, r0, 2
    lwzx  r11, r8, r0
    addi  r0, r0, 16
    lwzx  r12, r8, r0
    add   r13, r11, r12  ; s
    sub   r14, r11, r12  ; d
    cmpwi r13, 0
    bge   sat_lo
    li    r13, 0
sat_lo:
    cmpwi r13, 255
    ble   sat_hi
    li    r13, 255
sat_hi:
    add   r7, r7, r13
    srawi r14, r14, 4
    add   r7, r7, r14
    add   r0, r5, r3
    slwi  r0, r0, 2
    stwx  r13, r10, r0
    addi  r3, r3, 1
    cmpwi r3, 4
    blt   pair
    addi  r4, r4, 1
    cmpwi r4, 8
    blt   row_loop
    addi  r6, r6, 1
    cmpwi r6, {n_blocks}
    blt   block_loop
    andi. r3, r7, 255
    li    r0, 0
    sc
    .data
blk:
{_words_directive([v & 0xFFFFFFFF for v in coeffs])}
out:
    .space 256
"""


def mpeg2_enc_ppc(scale: int = 1) -> str:
    n_blocks = 6 * scale
    pixels = lcg_words(seed=0xFACE, count=64, lo=0, hi=255)
    basis = lcg_words(seed=0xB0B, count=64, lo=-181, hi=181)
    return f"""
    ; mpeg2 encode kernel: DCT dot products (PPC, mul heavy)
    .text
_start:
    li32  r8, pix
    li32  r9, basis
    li    r7, 0          ; checksum
    li    r6, 0          ; block
eblock:
    li    r4, 0          ; coefficient
coef:
    li    r3, 0          ; acc
    li    r5, 0          ; k
edot:
    slwi  r0, r5, 2
    lwzx  r11, r8, r0
    add   r12, r5, r4
    andi. r12, r12, 63
    slwi  r12, r12, 2
    lwzx  r13, r9, r12
    mullw r14, r11, r13
    add   r3, r3, r14
    addi  r5, r5, 8
    cmpwi r5, 64
    blt   edot
    srawi r3, r3, 7
    add   r7, r7, r3
    addi  r4, r4, 1
    cmpwi r4, 8
    blt   coef
    addi  r6, r6, 1
    cmpwi r6, {n_blocks}
    blt   eblock
    andi. r3, r7, 255
    li    r0, 0
    sc
    .data
pix:
{_words_directive([v & 0xFFFFFFFF for v in pixels])}
basis:
{_words_directive([v & 0xFFFFFFFF for v in basis])}
"""


_PPC_GENERATORS: Dict[str, Callable[[int], str]] = {
    "gsm_dec": gsm_dec_ppc,
    "gsm_enc": gsm_enc_ppc,
    "g721_dec": g721_dec_ppc,
    "g721_enc": g721_enc_ppc,
    "mpeg2_dec": mpeg2_dec_ppc,
    "mpeg2_enc": mpeg2_enc_ppc,
}


def ppc_source(name: str, scale: int = 1) -> str:
    """Assembly text of the named MediaBench-like kernel (PPC target)."""
    try:
        generator = _PPC_GENERATORS[name]
    except KeyError:
        raise KeyError(f"unknown mediabench kernel {name!r}; have {MEDIABENCH_NAMES}") from None
    return generator(scale)


def all_ppc_sources(scale: int = 1) -> Dict[str, str]:
    return {name: ppc_source(name, scale) for name in MEDIABENCH_NAMES}
