"""Deterministic pseudo-random data for workload generation.

A small LCG so workload data is reproducible across runs and platforms
without depending on Python's ``random`` module state.
"""

from __future__ import annotations

from typing import List

_A = 1103515245
_C = 12345
_M = 1 << 31


def lcg_stream(seed: int):
    """Infinite generator of raw 31-bit LCG values."""
    state = seed & (_M - 1)
    while True:
        state = (_A * state + _C) % _M
        yield state


def lcg_words(seed: int, count: int, lo: int = 0, hi: int = 0xFFFFFFFF) -> List[int]:
    """*count* reproducible integers uniform in [lo, hi].

    Spans up to ``2**31`` draw one raw value; wider spans (the full
    32-bit default included) compose the *high 16 bits* of several
    consecutive draws and reduce with a multiply-shift.  A single draw
    cannot cover a span wider than the 31-bit LCG state: ``raw % span``
    would never produce values at or above ``lo + 2**31`` (the top bit
    of a "32-bit" word was simply never set) and the reachable half was
    modulo-biased.  The wide path avoids both ``% span`` and the draws'
    low bits deliberately — bit *k* of a power-of-two-modulus LCG has
    period ``2**(k+1)`` (bit 0 alternates every step), so composing raw
    draws or reducing modulo ``span`` pins output bits.  The
    multiply-shift ``(composed * span) >> bits`` over ≥28 guard bits is
    exactly uniform for power-of-two spans (the default included) and
    has residual bias below ``2**-28`` otherwise.  Narrow spans keep the
    historical single-draw streams bit-for-bit.
    """
    if hi < lo:
        raise ValueError(f"bad range [{lo}, {hi}]")
    span = hi - lo + 1
    stream = lcg_stream(seed)
    if span <= _M:
        return [lo + (next(stream) % span) for _ in range(count)]
    chunks = (span.bit_length() + 28 + 15) // 16  # 16 good bits per draw
    bits = 16 * chunks

    def wide() -> int:
        composed = 0
        for _ in range(chunks):
            composed = (composed << 16) | (next(stream) >> 15)
        return (composed * span) >> bits

    return [lo + wide() for _ in range(count)]
