"""Deterministic pseudo-random data for workload generation.

A small LCG so workload data is reproducible across runs and platforms
without depending on Python's ``random`` module state.
"""

from __future__ import annotations

from typing import List

_A = 1103515245
_C = 12345
_M = 1 << 31


def lcg_stream(seed: int):
    """Infinite generator of raw 31-bit LCG values."""
    state = seed & (_M - 1)
    while True:
        state = (_A * state + _C) % _M
        yield state


def lcg_words(seed: int, count: int, lo: int = 0, hi: int = 0xFFFFFFFF) -> List[int]:
    """*count* reproducible integers uniform in [lo, hi]."""
    if hi < lo:
        raise ValueError(f"bad range [{lo}, {hi}]")
    span = hi - lo + 1
    stream = lcg_stream(seed)
    return [lo + (next(stream) % span) for _ in range(count)]
