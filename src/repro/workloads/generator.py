"""Parameterised synthetic workload generation.

Produces seeded, terminating assembly programs with a configurable
instruction mix — the knob a design-space exploration sweeps when no
recorded benchmark has the desired characteristics (e.g. "60% ALU / 30%
memory / 10% multiply at 1 branch per 8 instructions").

Programs are generated for either target ISA from one abstract recipe, so
a mix can be compared across the StrongARM and PPC-750 models directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .rng import lcg_stream


@dataclass
class Mix:
    """Instruction-mix recipe (weights need not sum to anything)."""

    alu: float = 6.0
    mem: float = 2.0
    mul: float = 1.0
    #: instructions per loop body between the loop branches
    block_length: int = 16
    #: loop trip count
    iterations: int = 32
    #: working-set size in words (memory footprint of the loop)
    footprint_words: int = 64
    seed: int = 0xC0FFEE

    def validate(self) -> None:
        if min(self.alu, self.mem, self.mul) < 0:
            raise ValueError("mix weights must be non-negative")
        if self.alu + self.mem + self.mul <= 0:
            raise ValueError("mix needs at least one positive weight")
        if self.block_length < 1 or self.iterations < 1:
            raise ValueError("block length and iterations must be positive")
        if self.footprint_words < 1:
            raise ValueError("footprint must be at least one word")


def _choices(mix: Mix, count: int) -> List[str]:
    total = mix.alu + mix.mem + mix.mul
    stream = lcg_stream(mix.seed)
    picks = []
    for _ in range(count):
        point = (next(stream) / (1 << 31)) * total
        if point < mix.alu:
            picks.append("alu")
        elif point < mix.alu + mix.mem:
            picks.append("mem")
        else:
            picks.append("mul")
    return picks


def arm_source(mix: Mix) -> str:
    """ARM-like program for the recipe.

    Register convention: r6 = loop counter, r7 = checksum, r8 = buffer
    base, r1..r5 = rotating scratch registers.
    """
    mix.validate()
    stream = lcg_stream(mix.seed ^ 0x5A5A)
    body: List[str] = []
    scratch = 1
    for kind in _choices(mix, mix.block_length):
        dest = 1 + (scratch % 5)
        src = 1 + ((scratch + 2) % 5)
        scratch += 1
        if kind == "alu":
            op = ("add", "sub", "orr", "eor")[next(stream) % 4]
            body.append(f"    {op}  r{dest}, r{src}, #{next(stream) % 64}")
        elif kind == "mem":
            offset = (next(stream) % mix.footprint_words) * 4
            if next(stream) % 2:
                body.append(f"    ldr  r{dest}, [r8, #{offset}]")
            else:
                body.append(f"    str  r{src}, [r8, #{offset}]")
        else:
            # r9 holds a wide constant so the SA-110 early-terminating
            # multiplier pays its full latency
            body.append(f"    mul  r{dest}, r{src}, r9")
        body.append(f"    add  r7, r7, r{dest}")
    lines = "\n".join(body)
    return f"""
    ; generated workload: mix(alu={mix.alu}, mem={mix.mem}, mul={mix.mul})
    .text
_start:
    li   r8, wbuf
    li   r9, 0x12345678
    mov  r7, #0
    mov  r6, #0
    mov  r1, #1
    mov  r2, #2
    mov  r3, #3
    mov  r4, #4
    mov  r5, #5
genloop:
{lines}
    add  r6, r6, #1
    cmp  r6, #{mix.iterations}
    blt  genloop
    and  r0, r7, #255
    swi  #0
    .data
wbuf: .space {4 * mix.footprint_words}
"""


def ppc_source(mix: Mix) -> str:
    """PowerPC-like program for the same recipe.

    Register convention: r6 = loop counter, r7 = checksum, r8 = buffer
    base, r10..r14 = rotating scratch registers.
    """
    mix.validate()
    stream = lcg_stream(mix.seed ^ 0x5A5A)
    body: List[str] = []
    scratch = 0
    for kind in _choices(mix, mix.block_length):
        dest = 10 + (scratch % 5)
        src = 10 + ((scratch + 2) % 5)
        scratch += 1
        if kind == "alu":
            op = next(stream) % 4
            if op == 0:
                body.append(f"    addi r{dest}, r{src}, {next(stream) % 64}")
            elif op == 1:
                body.append(f"    sub  r{dest}, r{src}, r6")
            elif op == 2:
                body.append(f"    or   r{dest}, r{src}, r7")
            else:
                body.append(f"    xor  r{dest}, r{src}, r7")
        elif kind == "mem":
            offset = (next(stream) % mix.footprint_words) * 4
            if next(stream) % 2:
                body.append(f"    lwz  r{dest}, {offset}(r8)")
            else:
                body.append(f"    stw  r{src}, {offset}(r8)")
        else:
            body.append(f"    mullw r{dest}, r{src}, r6")
        body.append(f"    add  r7, r7, r{dest}")
    lines = "\n".join(body)
    return f"""
    ; generated workload: mix(alu={mix.alu}, mem={mix.mem}, mul={mix.mul})
    .text
_start:
    li32 r8, wbuf
    li   r7, 0
    li   r6, 0
    li   r10, 1
    li   r11, 2
    li   r12, 3
    li   r13, 4
    li   r14, 5
genloop:
{lines}
    addi r6, r6, 1
    cmpwi r6, {mix.iterations}
    blt  genloop
    andi. r3, r7, 255
    li   r0, 0
    sc
    .data
wbuf: .space {4 * mix.footprint_words}
"""
