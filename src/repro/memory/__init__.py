"""Memory subsystem: main memory, caches, TLBs and the bus."""

from .bus import MemoryBus
from .cache import Cache, CacheStats
from .mainmem import MainMemory
from .tlb import Tlb, TlbStats

__all__ = ["Cache", "CacheStats", "MainMemory", "MemoryBus", "Tlb", "TlbStats"]
