"""Set-associative cache timing model.

Lives purely in the hardware layer (the paper: "The caches, the TLBs and
the bus interface unit do not interact directly with operations and do not
need any TMI").  The cache is a *timing* model: it tracks tags and
replacement state and answers "how many cycles does this access take", but
data travel through the backing :class:`~repro.memory.mainmem.MainMemory`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class CacheStats:
    __slots__ = ("accesses", "hits", "misses", "writebacks")

    def __init__(self):
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class Cache:
    """A set-associative cache with true-LRU replacement.

    Parameters mirror the SA-1100 and MPC750 structures used by the case
    studies: the StrongARM model uses a 16 KB/32-way I-cache and a
    8 KB/32-way D-cache with 32-byte lines; the PPC-750 model uses
    32 KB/8-way unified parameters per side.

    ``access`` returns the access latency in cycles (``hit_latency`` or
    ``hit_latency + miss_penalty``).
    """

    def __init__(
        self,
        name: str,
        size: int = 16 * 1024,
        line_size: int = 32,
        assoc: int = 32,
        hit_latency: int = 1,
        miss_penalty: int = 22,
        write_back: bool = True,
        next_level: Optional["Cache"] = None,
    ):
        if size % (line_size * assoc) != 0:
            raise ValueError(f"{name}: size {size} not divisible by way size")
        if line_size & (line_size - 1) or line_size <= 0:
            raise ValueError(f"{name}: line size {line_size} must be a power of two")
        n_sets = size // (line_size * assoc)
        if n_sets & (n_sets - 1):
            raise ValueError(
                f"{name}: set count {n_sets} must be a power of two "
                "(index extraction uses bit masking)"
            )
        self.name = name
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = size // (line_size * assoc)
        self.hit_latency = hit_latency
        self.miss_penalty = miss_penalty
        self.write_back = write_back
        self.next_level = next_level
        self.stats = CacheStats()
        # sets[i] maps tag -> dirty in LRU order: the *last* key is the
        # MRU way, the first the eviction victim.  A dict keeps every
        # access O(1) (hit reorder is a pop + reinsert; eviction pops the
        # first key) where an LRU list pays a linear scan per access.
        self._sets: List[dict] = [{} for _ in range(self.n_sets)]
        self._offset_bits = line_size.bit_length() - 1
        self._index_mask = self.n_sets - 1
        self._index_bits = self.n_sets.bit_length() - 1

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address >> self._offset_bits
        return line & self._index_mask, line >> self._index_bits

    def probe(self, address: int) -> bool:
        """Non-mutating hit check (no replacement, no statistics).

        Used by delta-cycle hardware models whose combinational phase may
        re-evaluate: the probe answers "would this access hit" without
        perturbing LRU state; the committed :meth:`access` happens once,
        at the clock edge.
        """
        index, tag = self._locate(address)
        return tag in self._sets[index]

    def access(self, address: int, is_write: bool = False) -> int:
        """Simulate one access; returns its latency in cycles."""
        stats = self.stats
        stats.accesses += 1
        line = address >> self._offset_bits
        index = line & self._index_mask
        tag = line >> self._index_bits
        ways = self._sets[index]
        dirty = ways.pop(tag, None)
        if dirty is not None:
            stats.hits += 1
            # reinsertion moves the way to the MRU (last) position
            ways[tag] = dirty or (is_write and self.write_back)
            latency = self.hit_latency
            if is_write and not self.write_back:
                latency += self._write_through_latency(address)
            return latency
        # miss
        stats.misses += 1
        latency = self.hit_latency + self.miss_penalty
        if self.next_level is not None:
            latency = self.hit_latency + self.next_level.access(address, False)
        if len(ways) >= self.assoc:
            victim_dirty = ways.pop(next(iter(ways)))
            if victim_dirty:
                stats.writebacks += 1
                latency += self._writeback_latency()
        ways[tag] = is_write and self.write_back
        if is_write and not self.write_back:
            latency += self._write_through_latency(address)
        return latency

    def _write_through_latency(self, address: int) -> int:
        if self.next_level is not None:
            return self.next_level.access(address, True)
        return self.miss_penalty // 2

    def _writeback_latency(self) -> int:
        # Victim writebacks drain through a write buffer; charge a partial
        # penalty representing buffer pressure rather than a full round trip.
        return max(1, self.miss_penalty // 4)

    def flush(self) -> None:
        self._sets = [{} for _ in range(self.n_sets)]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Cache({self.name!r}, sets={self.n_sets}, assoc={self.assoc}, "
            f"line={self.line_size})"
        )
