"""Shared memory-bus contention model.

Used by the *reference* simulator (the Table-1 hardware stand-in): the OSM
StrongARM model deliberately omits bus contention — mirroring the paper's
"all details of the memory subsystem were not available ... the memory
modules may have also contributed to the differences" — so the reference
charging occasional extra cycles is what produces the small signed timing
deltas of Table 1.
"""

from __future__ import annotations


class BusStats:
    __slots__ = ("transactions", "contention_cycles")

    def __init__(self):
        self.transactions = 0
        self.contention_cycles = 0


class MemoryBus:
    """A single shared bus serialising cache-line refills.

    ``request(cycle, beats)`` returns the extra stall cycles a transaction
    issued at *cycle* suffers while the bus finishes earlier traffic.
    """

    def __init__(self, name: str = "membus", beat_cycles: int = 2, width_bytes: int = 4):
        self.name = name
        self.beat_cycles = beat_cycles
        self.width_bytes = width_bytes
        self.busy_until = 0
        self.stats = BusStats()

    def transfer_cycles(self, n_bytes: int) -> int:
        beats = (n_bytes + self.width_bytes - 1) // self.width_bytes
        return beats * self.beat_cycles

    def request(self, cycle: int, n_bytes: int) -> int:
        """Issue a transfer at *cycle*; returns contention delay cycles."""
        self.stats.transactions += 1
        delay = max(0, self.busy_until - cycle)
        self.stats.contention_cycles += delay
        start = cycle + delay
        self.busy_until = start + self.transfer_cycles(n_bytes)
        return delay

    def reset(self) -> None:
        self.busy_until = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"MemoryBus({self.name!r}, busy_until={self.busy_until})"
