"""Sparse flat main memory.

Backing store for both the ISS architectural state and the hardware-layer
memory modules.  Pages are allocated lazily so programs can scatter text,
data and stack across a 32-bit space without cost.  All accesses are
little-endian.

Write hooks: consumers that cache derived views of memory (the decode
caches — see :mod:`repro.iss.decode_cache`) register a callback via
:meth:`MainMemory.add_write_hook` and are told the ``(address, length)``
span of every mutation, so self-modifying code invalidates exactly the
stale entries.  Each write operation notifies once for its whole span.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class MainMemory:
    """Lazily-paged 32-bit byte-addressable memory."""

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}
        #: callbacks ``hook(address, length)`` fired after every write
        self._write_hooks: List[Callable[[int, int], None]] = []

    def add_write_hook(self, hook: Callable[[int, int], None]) -> None:
        """Register *hook(address, length)*, called after each write."""
        self._write_hooks.append(hook)

    def remove_write_hook(self, hook: Callable[[int, int], None]) -> None:
        self._write_hooks.remove(hook)

    def _page(self, address: int) -> bytearray:
        number = address >> PAGE_BITS
        page = self._pages.get(number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[number] = page
        return page

    # -- byte / word accessors ------------------------------------------------

    def read_byte(self, address: int) -> int:
        address &= 0xFFFFFFFF
        page = self._pages.get(address >> PAGE_BITS)
        if page is None:
            return 0
        return page[address & PAGE_MASK]

    def _write_byte_raw(self, address: int, value: int) -> None:
        self._page(address)[address & PAGE_MASK] = value & 0xFF

    def write_byte(self, address: int, value: int) -> None:
        address &= 0xFFFFFFFF
        self._page(address)[address & PAGE_MASK] = value & 0xFF
        hooks = self._write_hooks
        if hooks:
            for hook in hooks:
                hook(address, 1)

    def read_word(self, address: int) -> int:
        address &= 0xFFFFFFFF
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            page = self._pages.get(address >> PAGE_BITS)
            if page is None:
                return 0
            return struct.unpack_from("<I", page, offset)[0]
        return (
            self.read_byte(address)
            | (self.read_byte(address + 1) << 8)
            | (self.read_byte(address + 2) << 16)
            | (self.read_byte(address + 3) << 24)
        )

    def write_word(self, address: int, value: int) -> None:
        address &= 0xFFFFFFFF
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            struct.pack_into("<I", self._page(address), offset, value & 0xFFFFFFFF)
        else:
            for i in range(4):
                self._write_byte_raw((address + i) & 0xFFFFFFFF, (value >> (8 * i)) & 0xFF)
        hooks = self._write_hooks
        if hooks:
            for hook in hooks:
                hook(address, 4)

    def read_half(self, address: int) -> int:
        return self.read_byte(address) | (self.read_byte(address + 1) << 8)

    def write_half(self, address: int, value: int) -> None:
        address &= 0xFFFFFFFF
        self._write_byte_raw(address, value & 0xFF)
        self._write_byte_raw((address + 1) & 0xFFFFFFFF, (value >> 8) & 0xFF)
        hooks = self._write_hooks
        if hooks:
            for hook in hooks:
                hook(address, 2)

    # -- block accessors --------------------------------------------------------

    def write_block(self, address: int, data: bytes) -> None:
        address &= 0xFFFFFFFF
        for i, byte in enumerate(data):
            self._write_byte_raw((address + i) & 0xFFFFFFFF, byte)
        if data:
            hooks = self._write_hooks
            if hooks:
                for hook in hooks:
                    hook(address, len(data))

    def read_block(self, address: int, length: int) -> bytes:
        return bytes(self.read_byte(address + i) for i in range(length))

    @property
    def pages_allocated(self) -> int:
        return len(self._pages)
