"""Sparse flat main memory.

Backing store for both the ISS architectural state and the hardware-layer
memory modules.  Pages are allocated lazily so programs can scatter text,
data and stack across a 32-bit space without cost.  All accesses are
little-endian.
"""

from __future__ import annotations

import struct
from typing import Dict

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class MainMemory:
    """Lazily-paged 32-bit byte-addressable memory."""

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        number = address >> PAGE_BITS
        page = self._pages.get(number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[number] = page
        return page

    # -- byte / word accessors ------------------------------------------------

    def read_byte(self, address: int) -> int:
        address &= 0xFFFFFFFF
        page = self._pages.get(address >> PAGE_BITS)
        if page is None:
            return 0
        return page[address & PAGE_MASK]

    def write_byte(self, address: int, value: int) -> None:
        address &= 0xFFFFFFFF
        self._page(address)[address & PAGE_MASK] = value & 0xFF

    def read_word(self, address: int) -> int:
        address &= 0xFFFFFFFF
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            page = self._pages.get(address >> PAGE_BITS)
            if page is None:
                return 0
            return struct.unpack_from("<I", page, offset)[0]
        return (
            self.read_byte(address)
            | (self.read_byte(address + 1) << 8)
            | (self.read_byte(address + 2) << 16)
            | (self.read_byte(address + 3) << 24)
        )

    def write_word(self, address: int, value: int) -> None:
        address &= 0xFFFFFFFF
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            struct.pack_into("<I", self._page(address), offset, value & 0xFFFFFFFF)
            return
        for i in range(4):
            self.write_byte(address + i, (value >> (8 * i)) & 0xFF)

    def read_half(self, address: int) -> int:
        return self.read_byte(address) | (self.read_byte(address + 1) << 8)

    def write_half(self, address: int, value: int) -> None:
        self.write_byte(address, value & 0xFF)
        self.write_byte(address + 1, (value >> 8) & 0xFF)

    # -- block accessors --------------------------------------------------------

    def write_block(self, address: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.write_byte(address + i, byte)

    def read_block(self, address: int, length: int) -> bytes:
        return bytes(self.read_byte(address + i) for i in range(length))

    @property
    def pages_allocated(self) -> int:
        return len(self._pages)
