"""Translation lookaside buffer timing model.

The workloads run in a flat (identity-mapped) address space, so the TLB —
like the hardware TLBs behind the SA-1100's caches — only contributes
*timing*: a miss costs a table-walk penalty.  Fully-associative with
true-LRU replacement, matching the 32-entry SA-1100 I/D TLBs.
"""

from __future__ import annotations


class TlbStats:
    __slots__ = ("accesses", "hits", "misses")

    def __init__(self):
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Tlb:
    """A fully-associative TLB with LRU replacement."""

    def __init__(self, name: str, entries: int = 32, page_bits: int = 12, walk_penalty: int = 20):
        if entries <= 0:
            raise ValueError(f"{name}: TLB needs at least one entry")
        self.name = name
        self.entries = entries
        self.page_bits = page_bits
        self.walk_penalty = walk_penalty
        self.stats = TlbStats()
        # page -> True in LRU order: last key = MRU, first = victim.  The
        # dict keeps hits and replacement O(1) (a list pays a linear
        # ``index`` scan on every translation).
        self._lru: dict = {}

    def access(self, address: int) -> int:
        """Translate (identity map); returns the latency in cycles (0 on
        hit — translation overlaps the cache access — else the walk
        penalty)."""
        stats = self.stats
        stats.accesses += 1
        page = address >> self.page_bits
        lru = self._lru
        if lru.pop(page, False):
            stats.hits += 1
            lru[page] = True  # reinsert at the MRU (last) position
            return 0
        stats.misses += 1
        if len(lru) >= self.entries:
            del lru[next(iter(lru))]
        lru[page] = True
        return self.walk_penalty

    def flush(self) -> None:
        self._lru.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Tlb({self.name!r}, entries={self.entries})"
