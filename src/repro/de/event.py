"""Events and the event queue of the discrete-event hardware layer.

The hardware layer of an OSM model runs under the discrete-event model of
computation (Section 4); MIMOLA/HASE/SystemC-style baselines use the same
queue.  Events carry a timestamp and a run() callback; ties are broken by
insertion order, giving deterministic execution.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class Event:
    """A schedulable unit of hardware activity."""

    __slots__ = ("timestamp", "action", "label", "cancelled")

    def __init__(self, timestamp: int, action: Callable[[], None], label: str = ""):
        self.timestamp = timestamp
        self.action = action
        self.label = label
        self.cancelled = False

    def run(self) -> None:
        if not self.cancelled:
            self.action()

    def cancel(self) -> None:
        """Mark the event dead; the queue drops it on pop."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"Event(t={self.timestamp}, {self.label or self.action!r})"


class EventQueue:
    """A deterministic priority queue of events.

    Events with equal timestamps run in insertion order (a total order,
    unlike a bare heap on timestamps, which would be unstable).
    """

    def __init__(self):
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    def insert(self, event: Event) -> Event:
        heapq.heappush(self._heap, (event.timestamp, self._seq, event))
        self._seq += 1
        return event

    def schedule(self, timestamp: int, action: Callable[[], None], label: str = "") -> Event:
        """Convenience: create and insert an event."""
        return self.insert(Event(timestamp, action, label))

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the earliest live event, or None."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]
