"""Clock generation helpers for the DE hardware layer."""

from __future__ import annotations

class Clock:
    """A periodic clock described by its period and phase offsets.

    The OSM control step synchronises with clock edges (Section 4: the
    interval between two control steps corresponds to a clock cycle or a
    phase).  A clock with ``phases=2`` yields control steps on both the
    rising and the falling edge.
    """

    def __init__(self, period: int = 1, phases: int = 1, name: str = "clk"):
        if period <= 0:
            raise ValueError(f"clock period must be positive, got {period}")
        if phases not in (1, 2):
            raise ValueError(f"clock phases must be 1 or 2, got {phases}")
        self.period = period
        self.phases = phases
        self.name = name

    @property
    def edge_interval(self) -> float:
        """Time between successive control-step edges."""
        return self.period / self.phases

    def edges(self, start: int = 0):
        """Infinite generator of edge timestamps (integer timeline: a
        two-phase clock with period 2 yields 0, 1, 2, ...)."""
        step = self.period // self.phases if self.period % self.phases == 0 else None
        if step is None:
            raise ValueError(
                f"period {self.period} not divisible by phases {self.phases}"
            )
        t = start
        while True:
            yield t
            t += step

    def __repr__(self) -> str:  # pragma: no cover
        return f"Clock({self.name!r}, period={self.period}, phases={self.phases})"
