"""Discrete-event and delta-cycle schedulers for the hardware layer."""

from __future__ import annotations

from typing import Callable, List, Optional

from .event import Event, EventQueue
from .module import PortModule, Wire


class DiscreteEventScheduler:
    """A plain DE scheduler: pops events in timestamp order and runs them.

    The OSM simulation kernel (paper Fig. 4) embeds an OSM control step at
    every clock edge by consulting :meth:`run_until`; hardware modules
    schedule their own activity as events in between.
    """

    def __init__(self):
        self.queue = EventQueue()
        self.now = 0
        self.events_run = 0

    def schedule(self, delay: int, action: Callable[[], None], label: str = "") -> Event:
        """Schedule *action* to run *delay* time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.queue.schedule(self.now + delay, action, label)

    def schedule_at(self, timestamp: int, action: Callable[[], None], label: str = "") -> Event:
        if timestamp < self.now:
            raise ValueError(f"scheduling in the past: {timestamp} < {self.now}")
        return self.queue.schedule(timestamp, action, label)

    def run_until(self, timestamp: int) -> None:
        """Run every event with ``t < timestamp``; leaves ``now = timestamp``.

        The boundary is half-open: an event scheduled exactly at
        *timestamp* stays queued, so back-to-back ``run_until(t)`` /
        ``run_until(t + 1)`` calls partition time without double-running
        or dropping edge events.  :meth:`run_all` uses the same contract.
        """
        while True:
            t = self.queue.peek_time()
            if t is None or t >= timestamp:
                break
            event = self.queue.pop()
            self.now = event.timestamp
            event.run()
            self.events_run += 1
        self.now = timestamp

    def run_all(self, horizon: Optional[int] = None) -> None:
        """Drain the queue; with *horizon*, behave like ``run_until(horizon)``.

        Without a horizon, runs until the queue is empty (events may keep
        scheduling more) and ``now`` rests at the last event's timestamp.
        With a horizon, the boundary matches :meth:`run_until` exactly:
        events with ``t < horizon`` run, an event at ``t == horizon``
        stays queued, and ``now`` advances to *horizon* even when no
        event fired — so a subsequent relative :meth:`schedule` is
        anchored at the horizon, not at the last-run event.
        """
        while True:
            t = self.queue.peek_time()
            if t is None or (horizon is not None and t >= horizon):
                break
            event = self.queue.pop()
            self.now = event.timestamp
            event.run()
            self.events_run += 1
        if horizon is not None:
            self.now = horizon


class DeltaCycleSimulator:
    """SystemC-style evaluate/update simulator over port-based modules.

    Each clock cycle: run ``on_clock`` for every module, then iterate
    evaluate-all / update-all-wires delta cycles until no wire changes.
    This faithfully reproduces the overhead structure the paper attributes
    to hardware-centric models — every module is visited every delta cycle
    and every wire is checked for changes — and is the engine of the
    :mod:`repro.baselines.systemc_style` PPC-750 baseline.
    """

    def __init__(self, max_deltas: int = 64):
        self.modules: List[PortModule] = []
        self.wires: List[Wire] = []
        self.cycle = 0
        self.max_deltas = max_deltas
        self.delta_cycles_run = 0

    def add_module(self, module: PortModule) -> PortModule:
        self.modules.append(module)
        return module

    def wire(self, name: str, initial=0) -> Wire:
        w = Wire(name, initial)
        self.wires.append(w)
        return w

    def connect(self, wire: Wire, *ports) -> Wire:
        for port in ports:
            port.bind(wire)
        return wire

    def step(self) -> None:
        """Advance one clock cycle."""
        for module in self.modules:
            module.on_clock(self.cycle)
        for _ in range(self.max_deltas):
            for module in self.modules:
                module.evaluate(self.cycle)
            self.delta_cycles_run += 1
            changed = False
            for wire in self.wires:
                if wire.update():
                    changed = True
            if not changed:
                break
        else:
            raise RuntimeError(
                f"wires failed to settle after {self.max_deltas} delta cycles "
                f"at clock {self.cycle} (combinational loop?)"
            )
        self.cycle += 1

    def run(self, n_cycles: int) -> None:
        for _ in range(n_cycles):
            self.step()
