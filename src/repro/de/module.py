"""Hardware modules, ports and wires.

Two styles of hardware module coexist in this repository, mirroring the
paper's comparison:

* **OSM-style modules** (:class:`HardwareModule`) expose a token-manager
  interface to the operation layer and need *no* interconnection —
  Section 4: "modules such as the register file, the decode stage and the
  write back stage need no interconnection with others and contain no more
  code than their TMIs."  They receive ``begin_cycle``/``end_cycle`` hooks
  from the kernel.

* **Port-based modules** (:class:`PortModule` with :class:`Port` and
  :class:`Wire`) model the hardware-centric SystemC/HASE organisation the
  paper argues against: explicit port communication, delta-cycle signal
  update semantics, and per-connection overhead.  The
  :mod:`repro.baselines.systemc_style` PPC-750 model is built from these,
  providing the 4x-speed and complexity comparison of Section 5.2.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


def _noop() -> None:
    """Default notify callback (no director attached)."""


class HardwareModule:
    """Base class for OSM-style hardware modules.

    Subclasses override :meth:`begin_cycle` (runs before the OSM control
    step: advance internal pipelines, complete memory transactions, update
    hold-release flags) and/or :meth:`end_cycle` (runs after the control
    step: latch decisions taken by operations this cycle).
    """

    def __init__(self, name: str):
        self.name = name
        #: wake-up callback into the director's observable-state version;
        #: modules call it whenever they change state that an OSM edge
        #: condition can observe (hold expiry, redirect, budget refresh).
        #: The kernel binds it; it defaults to a no-op for standalone use.
        self.notify = _noop

    def begin_cycle(self, cycle: int) -> None:
        """Hardware activity before this cycle's OSM control step."""

    def end_cycle(self, cycle: int) -> None:
        """Hardware activity after this cycle's OSM control step."""

    def reset(self) -> None:
        """Return the module to its power-on state."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r})"


class Wire:
    """A signal with SystemC-style request/update semantics.

    Writes performed during a delta cycle become visible only after the
    update phase, so all port-based modules observe a consistent snapshot.
    """

    __slots__ = ("name", "value", "_next", "_dirty", "watchers")

    def __init__(self, name: str, initial: Any = 0):
        self.name = name
        self.value = initial
        self._next = initial
        self._dirty = False
        #: callbacks invoked when the committed value changes
        self.watchers: List[Callable[[Any], None]] = []

    def write(self, value: Any) -> None:
        self._next = value
        self._dirty = True

    def read(self) -> Any:
        return self.value

    def update(self) -> bool:
        """Commit the pending write; returns True if the value changed."""
        if not self._dirty:
            return False
        self._dirty = False
        changed = self._next != self.value
        self.value = self._next
        if changed:
            for watcher in self.watchers:
                watcher(self.value)
        return changed

    def __repr__(self) -> str:  # pragma: no cover
        return f"Wire({self.name!r}={self.value!r})"


class Port:
    """A typed endpoint binding a :class:`PortModule` to a :class:`Wire`."""

    __slots__ = ("name", "wire", "direction")

    def __init__(self, name: str, direction: str = "inout"):
        if direction not in ("in", "out", "inout"):
            raise ValueError(f"bad port direction {direction!r}")
        self.name = name
        self.direction = direction
        self.wire: Optional[Wire] = None

    def bind(self, wire: Wire) -> None:
        self.wire = wire

    def read(self) -> Any:
        # Output ports are readable too (as in SystemC's sc_out): modules
        # commonly latch against their own settled decision wires.
        if self.wire is None:
            raise ValueError(f"port {self.name!r} is unbound")
        return self.wire.read()

    def write(self, value: Any) -> None:
        if self.direction == "in":
            raise ValueError(f"writing input port {self.name!r}")
        if self.wire is None:
            raise ValueError(f"port {self.name!r} is unbound")
        self.wire.write(value)


class PortModule:
    """Base class for hardware-centric (SystemC-style) modules.

    Subclasses declare ports with :meth:`port` and implement
    :meth:`evaluate`, called once per delta cycle; the enclosing
    :class:`~repro.de.scheduler.DeltaCycleSimulator` repeats
    evaluate/update until the wires settle, then advances the clock.
    """

    def __init__(self, name: str):
        self.name = name
        self.ports: Dict[str, Port] = {}

    def port(self, name: str, direction: str = "inout") -> Port:
        p = Port(f"{self.name}.{name}", direction)
        self.ports[name] = p
        return p

    def evaluate(self, cycle: int) -> None:
        """Combinational + sequential behaviour for this delta cycle."""

    def on_clock(self, cycle: int) -> None:
        """Clock-edge behaviour (latch state)."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r}, {len(self.ports)} ports)"
