"""Discrete-event hardware layer substrate."""

from .event import Event, EventQueue
from .module import HardwareModule, Port, PortModule, Wire
from .scheduler import DeltaCycleSimulator, DiscreteEventScheduler
from .clock import Clock

__all__ = [
    "Clock",
    "DeltaCycleSimulator",
    "DiscreteEventScheduler",
    "Event",
    "EventQueue",
    "HardwareModule",
    "Port",
    "PortModule",
    "Wire",
]
