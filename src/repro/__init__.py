"""repro: the OSM retargetable microprocessor modeling framework.

A from-scratch reproduction of Qin & Malik, *Flexible and Formal Modeling
of Microprocessors with Application to Retargetable Simulation* (DATE
2003).  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.

Package map
-----------
``repro.core``
    The OSM formalism: tokens, managers, transaction primitives, the
    director and the simulation kernels.
``repro.de``
    Discrete-event hardware layer (events, scheduler, modules, ports).
``repro.isa`` / ``repro.iss`` / ``repro.memory``
    ISA substrates (ARM-like and PowerPC-like), instruction-set
    simulators, and the memory subsystem.
``repro.models``
    OSM micro-architecture models: the tutorial 5-stage pipeline, the
    StrongARM and PPC-750 case studies, VLIW and multithreaded variants.
``repro.baselines``
    Comparison simulators: SimpleScalar-style (ad-hoc sequential),
    SystemC-style (port-based hardware-centric), and the hardware
    reference used for Table 1.
``repro.adl``
    The declarative architecture description language and its OSM
    synthesiser (the paper's "next step", implemented).
``repro.analysis``
    Formal analysis (ASM export, reachability, deadlock) and compiler
    information extraction (operand latencies, reservation tables).
``repro.workloads``
    MediaBench-like kernels, SPEC-like kernels and the 40 diagnostic
    loops, for both target ISAs.
"""

__version__ = "1.0.0"
