"""Simulator synthesis from an ADL description.

``synthesize`` turns a parsed :class:`~repro.adl.ast.ProcessorDecl` into a
runnable in-order micro-architecture simulator over the ARM-like ISA: it
instantiates the declared token managers, builds the
:class:`~repro.core.MachineSpec` from the declared states and edges, and
binds the declarative description to the functional layer (the ISS) via a
fixed action vocabulary:

=========  ==============================================================
action     bound behaviour
=========  ==============================================================
fetch      decode the instruction at the fetch PC into the operation
execute    perform the operation's semantics; multi-cycle holds; branch
           redirect + kill
memory     charge D-cache latency in the current stage
publish    mark destination registers forwardable (forwarding regfiles)
publish_loads  mark loads' destinations forwardable
retire     count the retired instruction
killed     acknowledge the reset manager
=========  ==============================================================

This is exactly the paper's Table-2 observation made executable: "About
60% of the source code ... is dedicated to instruction decoding and OSM
initialization, which can be automatically synthesized through the use of
an architecture description language."  The synthesised pipeline5 and
StrongARM descriptions are validated cycle-for-cycle against the
hand-written models in ``tests/adl``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core import (
    Allocate,
    AllocateMany,
    Condition,
    CycleDrivenKernel,
    Director,
    Discard,
    Guard,
    Inquire,
    MachineSpec,
    OperationStateMachine,
    PoolManager,
    RegisterFileManager,
    Release,
    ReleaseMany,
    SimulationStats,
)
from ..core.director import operation_seq_rank
from ..isa.arm import semantics as arm_semantics
from ..isa.bits import popcount_significant_bytes
from ..isa.program import Program
from ..iss.interpreter import ArmInterpreter
from ..memory.cache import Cache
from ..memory.tlb import Tlb
from ..models.common import FetchUnit, Operation, ResetUnit, StageUnit, kill_younger
from ..models.strongarm.managers import ForwardingRegisterFileManager
from .ast import PrimitiveDecl, ProcessorDecl
from .parser import AdlError, parse


#: the fixed action vocabulary edges may bind to (the table above); the
#: description-level analyzer (ADL001) checks action names against this
#: set before synthesis is ever attempted
ACTION_NAMES = frozenset(
    ("fetch", "execute", "memory", "publish", "publish_loads", "retire", "killed")
)


class _Backing:
    def __init__(self, n_regs: int):
        self.values = [0] * n_regs

    def read(self, reg: int) -> int:
        return self.values[reg]

    def write(self, reg: int, value: int) -> None:
        self.values[reg] = value & 0xFFFFFFFF


def _sources(osm):
    return osm.operation.instr.src_regs


def _dests(osm):
    return osm.operation.instr.dst_regs


class SynthesizedModel:
    """An in-order processor model synthesised from an ADL description."""

    def __init__(
        self,
        processor: ProcessorDecl,
        program: Program,
        icache: Optional[Cache] = None,
        dcache: Optional[Cache] = None,
        itlb: Optional[Tlb] = None,
        dtlb: Optional[Tlb] = None,
        stdin: bytes = b"",
    ):
        self.processor = processor
        self.iss = ArmInterpreter(program, stdin=stdin)
        self.state = self.iss.state
        self.dcache = dcache
        self.dtlb = dtlb

        # -- hardware layer from manager declarations -----------------------
        self.fetch: Optional[FetchUnit] = None
        self.reset_unit: Optional[ResetUnit] = None
        self.managers: Dict[str, object] = {}
        self.stage_units: Dict[str, StageUnit] = {}
        self.regfiles: Dict[str, RegisterFileManager] = {}
        modules = []
        for decl in processor.managers:
            if decl.kind == "fetch":
                self.fetch = FetchUnit(self.iss.fetch_decode, program.entry, icache, itlb)
                self.fetch.manager.name = decl.name
                self.managers[decl.name] = self.fetch.manager
                modules.append(self.fetch)
            elif decl.kind == "stage":
                unit = StageUnit(decl.name)
                self.stage_units[decl.name] = unit
                self.managers[decl.name] = unit.manager
                modules.append(unit)
            elif decl.kind == "pool":
                size = decl.params.get("size", 1)
                self.managers[decl.name] = PoolManager(decl.name, size)
            elif decl.kind == "regfile":
                n_regs = decl.params.get("regs", 17)
                cls = ForwardingRegisterFileManager if decl.forwarding else RegisterFileManager
                regfile = cls(decl.name, n_regs, _Backing(n_regs))
                self.regfiles[decl.name] = regfile
                self.managers[decl.name] = regfile
            elif decl.kind == "reset":
                self.reset_unit = ResetUnit()
                self.reset_unit.manager.name = decl.name
                self.managers[decl.name] = self.reset_unit.manager
                modules.append(self.reset_unit)
            else:  # pragma: no cover - parser rejects unknown kinds
                raise AdlError(f"unsupported manager kind {decl.kind!r}")
        if self.fetch is None:
            raise AdlError(f"processor {processor.name!r} declares no fetch manager")
        if self.reset_unit is None:
            raise AdlError(f"processor {processor.name!r} declares no reset manager")

        #: the action vocabulary binding declarative edges to behaviour
        self.actions: Dict[str, Callable] = {
            "fetch": self.fetch.fetch_into,
            "execute": self._execute_op,
            "memory": self._memory_access,
            "publish": self._publish,
            "publish_loads": self._publish_loads,
            "retire": self._retire,
            "killed": self._killed,
        }

        # -- operation layer from the machine declaration ---------------------
        self.spec = self._build_spec()
        self.director = Director(rank_key=operation_seq_rank, restart=False)
        n_osms = processor.params.get("osms", len(processor.machine.states) + 2)
        self.osms = [OperationStateMachine(self.spec) for _ in range(n_osms)]
        self.director.add(*self.osms)
        self.kernel = CycleDrivenKernel(self.director, modules)
        self.kernel.stop_condition = self._finished
        self.retired = 0
        #: stage manager whose slot an executing operation occupies; used
        #: by the execute action's variable-latency hold
        self._execute_stage = self._find_execute_stage()

    # -- spec construction -------------------------------------------------------

    def _build_spec(self) -> MachineSpec:
        machine = self.processor.machine
        unit = self.processor.name
        spec = MachineSpec(machine.name)
        # provenance: every synthesized state/edge remembers the ADL line
        # it came from, so analysis diagnostics over the generated spec
        # can be remapped onto the description (see repro.analysis.adl)
        spec.source_unit = unit
        for state in machine.states:
            declared = spec.state(state.name, initial=state.initial)
            if state.lineno is not None:
                declared.source_span = (unit, state.lineno)
        for edge in machine.edges:
            primitives = [self._synth_primitive(p) for p in edge.primitives]
            if "execute" in edge.actions:
                # Execution-driven synthesis performs semantics at issue,
                # so issue must follow program order even when a pool-sized
                # stage would let a younger operation overtake an older
                # blocked one (which both corrupts architectural state and
                # can livelock the starved elder).
                primitives.insert(0, Guard(self._is_oldest_unexecuted, "in-order"))
            bound = []
            for name in edge.actions:
                if name not in self.actions:
                    raise AdlError(
                        f"unknown action {name!r} on edge {edge.src}->{edge.dst}",
                        edge.lineno,
                    )
                bound.append(self.actions[name])
            action = None
            if len(bound) == 1:
                action = bound[0]
            elif bound:
                def action(osm, _bound=tuple(bound)):
                    for callback in _bound:
                        callback(osm)
            declared = spec.edge(edge.src, edge.dst, Condition(primitives),
                                 priority=edge.priority, action=action)
            if edge.lineno is not None:
                declared.source_span = (unit, edge.lineno)
        spec.validate()
        return spec

    def _synth_primitive(self, decl: PrimitiveDecl):
        ident = {"sources": _sources, "dests": _dests, None: None}.get(decl.ident)
        if decl.op == "allocate":
            manager = self.managers[decl.manager]
            return Allocate(manager, slot=decl.slot or decl.manager)
        if decl.op == "allocate_many":
            manager = self.managers[decl.manager]
            if ident is None:
                raise AdlError(f"allocate_many {decl.manager} needs an identifier")
            return AllocateMany(manager, ident, slot=decl.slot or decl.manager)
        if decl.op == "inquire":
            manager = self.managers[decl.manager]
            return Inquire(manager, ident)
        if decl.op == "release":
            return Release(decl.manager)
        if decl.op == "release_many":
            return ReleaseMany(decl.manager)
        if decl.op == "discard":
            return Discard(decl.manager)
        raise AdlError(f"unknown primitive {decl.op!r}")  # pragma: no cover

    def _find_execute_stage(self) -> Optional[StageUnit]:
        """The stage holding executing operations: the target stage of the
        edge carrying the ``execute`` action."""
        machine = self.processor.machine
        for edge in machine.edges:
            if "execute" in edge.actions:
                for prim in edge.primitives:
                    if prim.op == "allocate" and prim.manager in self.stage_units:
                        return self.stage_units[prim.manager]
        return None

    # -- bound actions --------------------------------------------------------------

    def _is_oldest_unexecuted(self, osm) -> bool:
        """True when no older in-flight operation is still unexecuted."""
        seq = osm.operation.seq
        for other in self.osms:
            operation = other.operation
            if operation is None or other.in_initial or operation.info is not None:
                continue
            if operation.seq < seq:
                return False
        return True

    def _execute_op(self, osm) -> None:
        op: Operation = osm.operation
        info = arm_semantics.execute(self.state, op.instr)
        op.info = info
        self.state.instret += 1
        if op.instr.unit == "mul" and info.executed and self._execute_stage is not None:
            extra = popcount_significant_bytes(info.mul_operand or 0)
            if op.instr.kind == "mull":
                extra += 1
            if extra > 0:
                self._execute_stage.hold(extra)
        sequential = (op.pc + 4) & 0xFFFFFFFF
        if info.next_pc != sequential:
            self.fetch.redirect(info.next_pc)
            kill_younger(self.osms, op.seq, self.reset_unit)
        if self.state.halted:
            self.fetch.halt()
            kill_younger(self.osms, op.seq, self.reset_unit)

    def _memory_access(self, osm) -> None:
        from ..models.common import memory_latency

        op: Operation = osm.operation
        latency = memory_latency(op.info, self.dcache, self.dtlb)
        if latency > 1:
            # the hold applies to the stage the operation just entered
            for slot, token in osm.token_buffer.items():
                unit = self.stage_units.get(token.manager.name)
                if unit is not None and slot == token.manager.name:
                    unit.hold(latency - 1)
                    break

    def _publish(self, osm) -> None:
        op: Operation = osm.operation
        if op.instr.is_load:
            return
        for regfile in self.regfiles.values():
            if hasattr(regfile, "mark_ready"):
                for reg in op.instr.dst_regs:
                    regfile.mark_ready(reg, osm)

    def _publish_loads(self, osm) -> None:
        op: Operation = osm.operation
        if not op.instr.is_load:
            return
        for regfile in self.regfiles.values():
            if hasattr(regfile, "mark_ready"):
                for reg in op.instr.dst_regs:
                    regfile.mark_ready(reg, osm)

    def _retire(self, osm) -> None:
        self.retired += 1
        self.director.stats.instructions += 1

    def _killed(self, osm) -> None:
        self.reset_unit.acknowledge(osm)

    # -- running ------------------------------------------------------------------------

    def _finished(self) -> bool:
        return self.state.halted and all(osm.in_initial for osm in self.osms)

    def run(self, max_cycles: int = 10_000_000) -> SimulationStats:
        return self.kernel.run(max_cycles)

    @property
    def cycles(self) -> int:
        return self.kernel.stats.cycles

    @property
    def exit_code(self) -> int:
        return self.state.exit_code


def synthesize(description: str, program: Program, **kwargs) -> SynthesizedModel:
    """Parse *description* and synthesise a runnable simulator for
    *program* (ARM-like target)."""
    return SynthesizedModel(parse(description), program, **kwargs)


#: the Section-4 tutorial pipeline, as a description (used by tests and
#: the quickstart example; equivalent to models.pipeline5)
PIPELINE5_ADL = """
processor pipeline5 {
    param osms 7
    manager m_f kind fetch
    manager m_d kind stage
    manager m_e kind stage
    manager m_b kind stage
    manager m_w kind stage
    manager m_r kind regfile regs 17
    manager m_reset kind reset

    machine op {
        state I initial
        state F
        state D
        state E
        state B
        state W

        edge I -> F { allocate m_f } action fetch
        edge F -> D { allocate m_d; release m_f }
        edge D -> E { allocate m_e; inquire m_r sources;
                      allocate_many m_r dests as rupd; release m_d } action execute
        edge E -> B { allocate m_b; release m_e } action memory
        edge B -> W { allocate m_w; release m_b }
        edge W -> I { release m_w; release_many rupd } action retire
        edge F -> I priority 10 { inquire m_reset; discard } action killed
        edge D -> I priority 10 { inquire m_reset; discard } action killed
    }
}
"""

#: the StrongARM core (forwarding register file, multiplier modelled via
#: the execute-stage hold), equivalent to models.strongarm
STRONGARM_ADL = """
processor strongarm {
    param osms 7
    manager m_f kind fetch
    manager m_d kind stage
    manager m_e kind stage
    manager m_b kind stage
    manager m_w kind stage
    manager m_r kind regfile regs 17 forwarding
    manager m_reset kind reset

    machine op {
        state I initial
        state F
        state D
        state E
        state B
        state W

        edge I -> F { allocate m_f } action fetch
        edge F -> D { allocate m_d; release m_f }
        edge D -> E { allocate m_e; inquire m_r sources;
                      allocate_many m_r dests as rupd; release m_d } action execute
        edge E -> B { allocate m_b; release m_e } action memory action publish
        edge B -> W { allocate m_w; release m_b } action publish_loads
        edge W -> I { release m_w; release_many rupd } action retire
        edge F -> I priority 10 { inquire m_reset; discard } action killed
        edge D -> I priority 10 { inquire m_reset; discard } action killed
    }
}
"""
