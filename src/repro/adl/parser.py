"""Parser for the OSM architecture description language.

Grammar (see ``examples/adl_synthesis.py`` for a complete description)::

    processor  := "processor" NAME "{" item* "}"
    item       := manager | machine | param
    param      := "param" NAME INT
    manager    := "manager" NAME "kind" KIND (NAME INT | "forwarding")*
    machine    := "machine" NAME "{" (state | edge)* "}"
    state      := "state" NAME ["initial"]
    edge       := "edge" NAME "->" NAME ["priority" INT]
                  "{" prim (";" prim)* "}" ["action" NAME]
    prim       := OP [NAME] [IDENT] ["as" NAME]

Comments run from ``#`` to end of line.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import EdgeDecl, MachineDecl, ManagerDecl, PrimitiveDecl, ProcessorDecl, StateDecl


class AdlError(Exception):
    """Raised on a syntax or semantic error in a description."""

    def __init__(self, message: str, lineno: Optional[int] = None):
        prefix = f"line {lineno}: " if lineno is not None else ""
        super().__init__(prefix + message)
        self.lineno = lineno


_TOKEN_RE = re.compile(
    r"(?P<ws>\s+)|(?P<comment>#[^\n]*)|(?P<arrow>->)"
    r"|(?P<int>-?\d+)|(?P<name>[A-Za-z_][\w.]*)|(?P<sym>[{};])"
)

MANAGER_KINDS = frozenset(("fetch", "stage", "pool", "regfile", "reset"))
PRIMITIVE_OPS = frozenset(
    ("allocate", "allocate_many", "inquire", "release", "release_many", "discard")
)
IDENT_WORDS = frozenset(("sources", "dests"))


class _Tokens:
    def __init__(self, text: str):
        self.items: List[Tuple[str, str, int]] = []
        lineno = 1
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise AdlError(f"bad character {text[pos]!r}", lineno)
            pos = match.end()
            kind = match.lastgroup
            value = match.group(kind)
            lineno += value.count("\n")
            if kind in ("ws", "comment"):
                continue
            self.items.append((kind, value, lineno))
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str, int]]:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def next(self, expect_kind: Optional[str] = None, expect_value: Optional[str] = None):
        token = self.peek()
        if token is None:
            raise AdlError("unexpected end of description")
        kind, value, lineno = token
        if expect_kind is not None and kind != expect_kind:
            raise AdlError(f"expected {expect_kind}, got {value!r}", lineno)
        if expect_value is not None and value != expect_value:
            raise AdlError(f"expected {expect_value!r}, got {value!r}", lineno)
        self.index += 1
        return token

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.index += 1
            return True
        return False


def parse(text: str) -> ProcessorDecl:
    """Parse a processor description into its AST."""
    tokens = _Tokens(text)
    tokens.next("name", "processor")
    _, name, _ = tokens.next("name")
    tokens.next("sym", "{")
    processor = ProcessorDecl(name)
    while not tokens.accept("}"):
        kind, value, lineno = tokens.next("name")
        if value == "manager":
            processor.managers.append(_parse_manager(tokens))
        elif value == "machine":
            processor.machines.append(_parse_machine(tokens))
        elif value == "param":
            _, pname, _ = tokens.next("name")
            _, pvalue, _ = tokens.next("int")
            processor.params[pname] = int(pvalue)
        else:
            raise AdlError(f"expected manager/machine/param, got {value!r}", lineno)
    _validate(processor)
    return processor


def _parse_manager(tokens: _Tokens) -> ManagerDecl:
    _, name, _ = tokens.next("name")
    tokens.next("name", "kind")
    _, kind, lineno = tokens.next("name")
    if kind not in MANAGER_KINDS:
        raise AdlError(f"unknown manager kind {kind!r}", lineno)
    decl = ManagerDecl(name, kind)
    while True:
        token = tokens.peek()
        if token is None or token[1] in ("manager", "machine", "param", "}"):
            break
        _, key, key_line = tokens.next("name")
        if key == "forwarding":
            decl.forwarding = True
            continue
        value_token = tokens.next("int")
        decl.params[key] = int(value_token[1])
    return decl


def _parse_machine(tokens: _Tokens) -> MachineDecl:
    _, name, _ = tokens.next("name")
    tokens.next("sym", "{")
    machine = MachineDecl(name)
    while not tokens.accept("}"):
        _, keyword, lineno = tokens.next("name")
        if keyword == "state":
            _, state_name, _ = tokens.next("name")
            initial = tokens.accept("initial")
            machine.states.append(StateDecl(state_name, initial))
        elif keyword == "edge":
            machine.edges.append(_parse_edge(tokens))
        else:
            raise AdlError(f"expected state/edge, got {keyword!r}", lineno)
    return machine


def _parse_edge(tokens: _Tokens) -> EdgeDecl:
    _, src, _ = tokens.next("name")
    tokens.next("arrow")
    _, dst, _ = tokens.next("name")
    priority = 0
    if tokens.accept("priority"):
        priority = int(tokens.next("int")[1])
    tokens.next("sym", "{")
    primitives: List[PrimitiveDecl] = []
    while not tokens.accept("}"):
        primitives.append(_parse_primitive(tokens))
        tokens.accept(";")
    actions: List[str] = []
    while tokens.accept("action"):
        actions.append(tokens.next("name")[1])
    return EdgeDecl(src, dst, primitives, priority, actions)


def _parse_primitive(tokens: _Tokens) -> PrimitiveDecl:
    _, op, lineno = tokens.next("name")
    if op not in PRIMITIVE_OPS:
        raise AdlError(f"unknown primitive {op!r}", lineno)
    prim = PrimitiveDecl(op)
    token = tokens.peek()
    if token is not None and token[0] == "name" and token[1] not in (
        "action", "as", ";"
    ) and token[1] not in PRIMITIVE_OPS:
        prim.manager = tokens.next("name")[1]
    token = tokens.peek()
    if token is not None and token[1] in IDENT_WORDS:
        prim.ident = tokens.next("name")[1]
    if tokens.accept("as"):
        prim.slot = tokens.next("name")[1]
    return prim


def _validate(processor: ProcessorDecl) -> None:
    manager_names = {m.name for m in processor.managers}
    if len(manager_names) != len(processor.managers):
        raise AdlError(f"duplicate manager names in {processor.name!r}")
    for machine in processor.machines:
        state_names = {s.name for s in machine.states}
        if machine.initial_state is None:
            raise AdlError(f"machine {machine.name!r} has no initial state")
        for edge in machine.edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in state_names:
                    raise AdlError(
                        f"edge {edge.src}->{edge.dst} references unknown state"
                    )
            for prim in edge.primitives:
                needs_manager = prim.op in ("allocate", "allocate_many", "inquire")
                if needs_manager and (prim.manager not in manager_names):
                    raise AdlError(
                        f"primitive {prim.op} on edge {edge.src}->{edge.dst} "
                        f"references unknown manager {prim.manager!r}"
                    )
