"""Parser for the OSM architecture description language.

Grammar (see ``examples/adl_synthesis.py`` for a complete description)::

    processor  := "processor" NAME "{" item* "}"
    item       := manager | machine | param | allow
    param      := "param" NAME INT
    allow      := "allow" CODE              # suppress an adlcheck rule
    manager    := "manager" NAME "kind" KIND (NAME INT | "forwarding")*
    machine    := "machine" NAME "{" (state | edge)* "}"
    state      := "state" NAME ["initial"]
    edge       := "edge" NAME "->" NAME ["priority" INT]
                  "{" prim (";" prim)* "}" ("action" NAME | "allow" CODE)*
    prim       := OP [NAME] [IDENT] ["as" NAME]

Comments run from ``#`` to end of line.

Every declaration node records the source line it starts on, and every
:class:`AdlError` is located: syntax errors carry the offending token's
line, semantic errors the declaration's line, and an unexpected
end-of-description the line of the last token consumed — a truncated
file points at its own tail, not at nothing.

``parse(text)`` performs the semantic validation the synthesiser
depends on (undeclared managers, dangling edge endpoints, missing
initial states, unknown identifier words) and raises on the first
violation.  ``parse(text, validate=False)`` skips it, returning the raw
AST so the description-level analyzer (:mod:`repro.analysis.adl`) can
report *all* semantic defects as located diagnostics instead of
stopping at the first.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import EdgeDecl, MachineDecl, ManagerDecl, PrimitiveDecl, ProcessorDecl, StateDecl


class AdlError(Exception):
    """Raised on a syntax or semantic error in a description."""

    def __init__(self, message: str, lineno: Optional[int] = None):
        prefix = f"line {lineno}: " if lineno is not None else ""
        super().__init__(prefix + message)
        self.lineno = lineno


_TOKEN_RE = re.compile(
    r"(?P<ws>\s+)|(?P<comment>#[^\n]*)|(?P<arrow>->)"
    r"|(?P<int>-?\d+)|(?P<name>[A-Za-z_][\w.]*)|(?P<sym>[{};])"
)

MANAGER_KINDS = frozenset(("fetch", "stage", "pool", "regfile", "reset"))
PRIMITIVE_OPS = frozenset(
    ("allocate", "allocate_many", "inquire", "release", "release_many", "discard")
)
IDENT_WORDS = frozenset(("sources", "dests"))

#: keywords that terminate the optional NAME operands of a primitive
_PRIM_STOP_WORDS = frozenset(("action", "allow", "as"))


class _Tokens:
    def __init__(self, text: str):
        self.items: List[Tuple[str, str, int]] = []
        lineno = 1
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise AdlError(f"bad character {text[pos]!r}", lineno)
            pos = match.end()
            kind = match.lastgroup
            value = match.group(kind)
            lineno += value.count("\n")
            if kind in ("ws", "comment"):
                continue
            self.items.append((kind, value, lineno))
        self.index = 0
        #: line of the most recently consumed token, so running off the
        #: end of a truncated description still reports a location
        self.last_lineno: Optional[int] = self.items[-1][2] if self.items else None

    def peek(self) -> Optional[Tuple[str, str, int]]:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def next(self, expect_kind: Optional[str] = None, expect_value: Optional[str] = None):
        token = self.peek()
        if token is None:
            raise AdlError("unexpected end of description", self.last_lineno)
        kind, value, lineno = token
        if expect_kind is not None and kind != expect_kind:
            raise AdlError(f"expected {expect_kind}, got {value!r}", lineno)
        if expect_value is not None and value != expect_value:
            raise AdlError(f"expected {expect_value!r}, got {value!r}", lineno)
        self.index += 1
        return token

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.index += 1
            return True
        return False


def parse(text: str, validate: bool = True) -> ProcessorDecl:
    """Parse a processor description into its AST.

    With ``validate=False`` only syntax is checked; semantic validation
    (the checks the synthesiser depends on) is skipped so a checker can
    report every defect rather than the first.
    """
    tokens = _Tokens(text)
    _, _, proc_line = tokens.next("name", "processor")
    _, name, _ = tokens.next("name")
    tokens.next("sym", "{")
    processor = ProcessorDecl(name, lineno=proc_line)
    while not tokens.accept("}"):
        kind, value, lineno = tokens.next("name")
        if value == "manager":
            processor.managers.append(_parse_manager(tokens, lineno))
        elif value == "machine":
            processor.machines.append(_parse_machine(tokens, lineno))
        elif value == "param":
            _, pname, pline = tokens.next("name")
            _, pvalue, _ = tokens.next("int")
            processor.params[pname] = int(pvalue)
            processor.param_lines[pname] = pline
        elif value == "allow":
            processor.allow.append(tokens.next("name")[1])
        else:
            raise AdlError(
                f"expected manager/machine/param/allow, got {value!r}", lineno
            )
    if validate:
        _validate(processor)
    return processor


def _parse_manager(tokens: _Tokens, lineno: int) -> ManagerDecl:
    _, name, _ = tokens.next("name")
    tokens.next("name", "kind")
    _, kind, kind_line = tokens.next("name")
    if kind not in MANAGER_KINDS:
        raise AdlError(f"unknown manager kind {kind!r}", kind_line)
    decl = ManagerDecl(name, kind, lineno=lineno)
    while True:
        token = tokens.peek()
        if token is None or token[1] in ("manager", "machine", "param", "allow", "}"):
            break
        _, key, key_line = tokens.next("name")
        if key == "forwarding":
            decl.forwarding = True
            continue
        value_token = tokens.next("int")
        decl.params[key] = int(value_token[1])
    return decl


def _parse_machine(tokens: _Tokens, lineno: int) -> MachineDecl:
    _, name, _ = tokens.next("name")
    tokens.next("sym", "{")
    machine = MachineDecl(name, lineno=lineno)
    while not tokens.accept("}"):
        _, keyword, kw_line = tokens.next("name")
        if keyword == "state":
            _, state_name, _ = tokens.next("name")
            initial = tokens.accept("initial")
            machine.states.append(StateDecl(state_name, initial, lineno=kw_line))
        elif keyword == "edge":
            machine.edges.append(_parse_edge(tokens, kw_line))
        else:
            raise AdlError(f"expected state/edge, got {keyword!r}", kw_line)
    return machine


def _parse_edge(tokens: _Tokens, lineno: int) -> EdgeDecl:
    _, src, _ = tokens.next("name")
    tokens.next("arrow")
    _, dst, _ = tokens.next("name")
    priority = 0
    if tokens.accept("priority"):
        priority = int(tokens.next("int")[1])
    tokens.next("sym", "{")
    primitives: List[PrimitiveDecl] = []
    while not tokens.accept("}"):
        primitives.append(_parse_primitive(tokens))
        tokens.accept(";")
    edge = EdgeDecl(src, dst, primitives, priority, lineno=lineno)
    while True:
        if tokens.accept("action"):
            edge.actions.append(tokens.next("name")[1])
        elif tokens.accept("allow"):
            edge.allow.append(tokens.next("name")[1])
        else:
            break
    return edge


def _operand_follows(tokens: _Tokens) -> bool:
    """True when the next token can be a primitive NAME operand."""
    token = tokens.peek()
    return (
        token is not None
        and token[0] == "name"
        and token[1] not in _PRIM_STOP_WORDS
        and token[1] not in PRIMITIVE_OPS
    )


def _parse_primitive(tokens: _Tokens) -> PrimitiveDecl:
    _, op, lineno = tokens.next("name")
    if op not in PRIMITIVE_OPS:
        raise AdlError(f"unknown primitive {op!r}", lineno)
    prim = PrimitiveDecl(op, lineno=lineno)
    if _operand_follows(tokens) and tokens.peek()[1] not in IDENT_WORDS:
        prim.manager = tokens.next("name")[1]
    # the identifier position accepts any bare name so misspellings
    # ("srcs") survive parsing and surface as located ADL005 findings
    # instead of a confusing "unknown primitive" error one token later
    if _operand_follows(tokens):
        prim.ident = tokens.next("name")[1]
    if tokens.accept("as"):
        prim.slot = tokens.next("name")[1]
    return prim


def _validate(processor: ProcessorDecl) -> None:
    manager_names = {m.name for m in processor.managers}
    if len(manager_names) != len(processor.managers):
        raise AdlError(
            f"duplicate manager names in {processor.name!r}", processor.lineno
        )
    for machine in processor.machines:
        state_names = {s.name for s in machine.states}
        if machine.initial_state is None:
            raise AdlError(
                f"machine {machine.name!r} has no initial state", machine.lineno
            )
        for edge in machine.edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in state_names:
                    raise AdlError(
                        f"edge {edge.src}->{edge.dst} references unknown state",
                        edge.lineno,
                    )
            for prim in edge.primitives:
                needs_manager = prim.op in ("allocate", "allocate_many", "inquire")
                if needs_manager and (prim.manager not in manager_names):
                    raise AdlError(
                        f"primitive {prim.op} on edge {edge.src}->{edge.dst} "
                        f"references unknown manager {prim.manager!r}",
                        prim.lineno,
                    )
                if prim.ident is not None and prim.ident not in IDENT_WORDS:
                    raise AdlError(
                        f"unknown identifier word {prim.ident!r} on edge "
                        f"{edge.src}->{edge.dst} (expected one of "
                        f"{'/'.join(sorted(IDENT_WORDS))})",
                        prim.lineno,
                    )
