"""The OSM architecture description language (the paper's "next step")."""

from .ast import EdgeDecl, MachineDecl, ManagerDecl, PrimitiveDecl, ProcessorDecl, StateDecl
from .parser import AdlError, parse
from .synth import PIPELINE5_ADL, STRONGARM_ADL, SynthesizedModel, synthesize

__all__ = [
    "AdlError",
    "EdgeDecl",
    "MachineDecl",
    "ManagerDecl",
    "PIPELINE5_ADL",
    "PrimitiveDecl",
    "ProcessorDecl",
    "STRONGARM_ADL",
    "StateDecl",
    "SynthesizedModel",
    "parse",
    "synthesize",
]
