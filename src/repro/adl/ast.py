"""Abstract syntax of the OSM architecture description language.

The paper's conclusion: "The next step in our research is to devise an
architecture description language based on the OSM model and to implement
a retargetable microprocessor modeling framework."  This package is that
step, scoped to what the case studies need: a declarative description of
token managers, machine states and edges whose conditions are
conjunctions of the four primitives, from which a working simulator is
synthesised (:mod:`repro.adl.synth`).

Every declaration node carries the 1-based source line it was parsed
from (``lineno``; ``None`` for programmatically-built ASTs).  The
synthesiser threads these through to the :class:`~repro.core.MachineSpec`
it builds (``source_span`` on states and edges), which is what lets the
description-level analyzer (:mod:`repro.analysis.adl`) map *any*
downstream diagnostic — lint, model checking, effect analysis — back to
the ADL line the author wrote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ManagerDecl:
    """``manager NAME kind KIND [key value ...]``"""

    name: str
    kind: str  # fetch | stage | pool | regfile | reset
    params: Dict[str, int] = field(default_factory=dict)
    #: regfile variant: plain (stall-at-decode) or forwarding
    forwarding: bool = False
    #: 1-based source line of the declaration (None when built in code)
    lineno: Optional[int] = None


@dataclass
class PrimitiveDecl:
    """One primitive inside an edge's condition block.

    ``op`` is one of allocate / allocate_many / inquire / release /
    release_many / discard; ``manager`` names the target (slot name for
    release forms); ``ident`` is the identifier vocabulary word
    (``sources`` / ``dests`` / none); ``slot`` optionally renames the
    token-buffer slot.
    """

    op: str
    manager: Optional[str] = None
    ident: Optional[str] = None
    slot: Optional[str] = None
    lineno: Optional[int] = None


@dataclass
class EdgeDecl:
    src: str
    dst: str
    primitives: List[PrimitiveDecl] = field(default_factory=list)
    priority: int = 0
    #: action names applied in order on commit (the vocabulary is defined
    #: by the synthesiser)
    actions: List[str] = field(default_factory=list)
    #: adlcheck rule codes acknowledged as false positives on this edge
    #: (``allow ADL007`` after the action list)
    allow: List[str] = field(default_factory=list)
    lineno: Optional[int] = None

    @property
    def label(self) -> str:
        return f"{self.src}->{self.dst}"


@dataclass
class StateDecl:
    name: str
    initial: bool = False
    lineno: Optional[int] = None


@dataclass
class MachineDecl:
    name: str
    states: List[StateDecl] = field(default_factory=list)
    edges: List[EdgeDecl] = field(default_factory=list)
    lineno: Optional[int] = None

    @property
    def initial_state(self) -> Optional[str]:
        for state in self.states:
            if state.initial:
                return state.name
        return None


@dataclass
class ProcessorDecl:
    name: str
    managers: List[ManagerDecl] = field(default_factory=list)
    machines: List[MachineDecl] = field(default_factory=list)
    params: Dict[str, int] = field(default_factory=dict)
    #: adlcheck rule codes suppressed description-wide (``allow ADL009``
    #: at processor level)
    allow: List[str] = field(default_factory=list)
    #: source line of each ``param`` declaration (for diagnostics)
    param_lines: Dict[str, int] = field(default_factory=dict)
    lineno: Optional[int] = None

    def manager(self, name: str) -> ManagerDecl:
        for decl in self.managers:
            if decl.name == name:
                return decl
        raise KeyError(f"undeclared manager {name!r}")

    @property
    def machine(self) -> MachineDecl:
        if len(self.machines) != 1:
            raise ValueError(
                f"processor {self.name!r} declares {len(self.machines)} machines; "
                "the pipeline synthesiser expects exactly one"
            )
        return self.machines[0]
