"""Source-line counting for Table 2.

The paper reports source line counts of the two simulators, split into
modules with TMI / modules without TMI / decoding and OSM initialisation /
miscellaneous, excluding "the instruction semantics simulation portion,
comments and blank lines".  We apply the same rules to this repository's
sources: docstrings, comments and blank lines are excluded, and the
per-category file map below mirrors the paper's split.
"""

from __future__ import annotations

import io
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List


def count_code_lines(path: Path) -> int:
    """Count code lines: excludes blanks, comments and docstrings."""
    source = path.read_text()
    code_lines = set()
    previous_type = tokenize.INDENT
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        kind = token.type
        if kind in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                    tokenize.INDENT, tokenize.DEDENT, tokenize.ENCODING,
                    tokenize.ENDMARKER):
            previous_type = kind if kind != tokenize.NL else previous_type
            continue
        if kind == tokenize.STRING and previous_type in (
            tokenize.INDENT, tokenize.DEDENT, tokenize.NEWLINE
        ):
            previous_type = kind
            continue  # docstring
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)
        previous_type = kind
    return len(code_lines)


def repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def count_files(paths: Iterable[str]) -> int:
    root = repo_root()
    return sum(count_code_lines(root / p) for p in paths)


#: Table-2 category map for the two OSM case-study simulators.  The paper
#: excludes instruction-semantics simulation, so the ISA ``semantics`` and
#: interpreter files are omitted; ``decode`` counts toward "decoding and
#: OSM init." exactly as in the paper (where ~60% of lines were decoding
#: and OSM initialisation).
CATEGORY_FILES: Dict[str, Dict[str, List[str]]] = {
    "SA-1100": {
        "Modules with TMI": [
            "src/repro/models/strongarm/managers.py",
            "src/repro/models/common.py",
        ],
        "Modules without TMI": [
            "src/repro/memory/cache.py",
            "src/repro/memory/tlb.py",
        ],
        "Decoding and OSM init.": [
            "src/repro/isa/arm/decode.py",
            "src/repro/models/strongarm/model.py",
        ],
        "Miscellaneous": [
            "src/repro/models/strongarm/__init__.py",
            "src/repro/models/pipeline5/__init__.py",
        ],
    },
    "PPC-750": {
        "Modules with TMI": [
            "src/repro/models/ppc750/managers.py",
            "src/repro/models/common.py",
        ],
        "Modules without TMI": [
            "src/repro/models/ppc750/branch.py",
            "src/repro/memory/cache.py",
        ],
        "Decoding and OSM init.": [
            "src/repro/isa/ppc/decode.py",
            "src/repro/models/ppc750/model.py",
        ],
        "Miscellaneous": [
            "src/repro/models/ppc750/__init__.py",
        ],
    },
}

#: comparison simulators (the paper quotes SimpleScalar-ARM at 4,633 lines
#: of C and the SystemC PPC model at ~16,000 lines of C++)
BASELINE_FILES: Dict[str, List[str]] = {
    "SimpleScalar-style ARM": [
        "src/repro/baselines/simplescalar/sim.py",
        "src/repro/memory/cache.py",
        "src/repro/memory/tlb.py",
        "src/repro/isa/arm/decode.py",
    ],
    "SystemC-style PPC": [
        "src/repro/baselines/systemc_style/modules.py",
        "src/repro/baselines/systemc_style/sim.py",
        "src/repro/de/module.py",
        "src/repro/de/scheduler.py",
        "src/repro/models/ppc750/branch.py",
        "src/repro/memory/cache.py",
        "src/repro/isa/ppc/decode.py",
    ],
}


def table2_counts() -> Dict[str, Dict[str, int]]:
    """Line counts per category per target (the paper's Table 2)."""
    result: Dict[str, Dict[str, int]] = {}
    for target, categories in CATEGORY_FILES.items():
        counts = {name: count_files(files) for name, files in categories.items()}
        counts["Total"] = sum(counts.values())
        result[target] = counts
    return result


def baseline_counts() -> Dict[str, int]:
    return {name: count_files(files) for name, files in BASELINE_FILES.items()}
