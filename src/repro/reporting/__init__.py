"""Reporting helpers: paper-style tables and Table-2 line counting."""

from .loc import baseline_counts, count_code_lines, table2_counts
from .pipeview import PipelineTracer
from .tables import format_table, percent

__all__ = [
    "PipelineTracer",
    "baseline_counts",
    "count_code_lines",
    "format_table",
    "percent",
    "table2_counts",
]
