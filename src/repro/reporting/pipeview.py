"""Pipeline-trace visualisation.

Attach a :class:`PipelineTracer` to any OSM model and get the classic
per-operation timeline — one row per operation, one column per cycle,
letters for the state occupied that cycle:

    seq  pc      instruction          |0         10
      0  0x8000  mov r1, #1           |FDEBW
      1  0x8004  add r2, r1, #1       |.FDEBW
      2  0x8008  beq 0x8014           |..FDDDEBW
      3  0x800c  add r3, r3, #1       |...FDx        (killed)

The tracer hooks the director's trace callback (chaining with any
existing one), so it works with every model in this repository, including
the out-of-order PPC-750 where the rows make dispatch reordering visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

KILL_MARK = "x"
IDLE_MARK = "."


class _OpTimeline:
    __slots__ = ("seq", "pc", "text", "events", "killed", "done_cycle")

    def __init__(self, seq: int, pc: int, text: str):
        self.seq = seq
        self.pc = pc
        self.text = text
        #: (cycle, state letter) transition points
        self.events: List[Tuple[int, str]] = []
        self.killed = False
        self.done_cycle: Optional[int] = None


class PipelineTracer:
    """Records OSM transitions and renders a timeline chart."""

    def __init__(self, model, max_ops: int = 2000):
        self.model = model
        self.max_ops = max_ops
        self._ops: Dict[int, _OpTimeline] = {}
        #: the seq of the operation each OSM last carried (transitions that
        #: land in I clear osm.operation before the trace callback fires)
        self._osm_last_seq: Dict[int, int] = {}
        self._chained = model.director.trace
        model.director.trace = self._on_transition

    # -- collection -----------------------------------------------------------

    def _on_transition(self, clock: int, osm, edge) -> None:
        if self._chained is not None:
            self._chained(clock, osm, edge)
        operation = osm.operation
        if operation is None:
            # landing in I (retire or reset): attribute to the OSM's last op
            seq = self._osm_last_seq.get(id(osm))
            timeline = self._ops.get(seq) if seq is not None else None
            if timeline is not None:
                timeline.done_cycle = clock
                timeline.killed = edge.label.startswith("reset")
            return
        if operation.seq not in self._ops:
            if len(self._ops) >= self.max_ops:
                return
            instr = operation.instr
            self._ops[operation.seq] = _OpTimeline(
                operation.seq, operation.pc, instr.text
            )
        self._osm_last_seq[id(osm)] = operation.seq
        self._ops[operation.seq].events.append((clock, edge.dst.name))

    # -- rendering ----------------------------------------------------------------

    def render(self, first: int = 0, count: int = 40, width: int = 100) -> str:
        """Render operations [first, first+count) as a timeline chart."""
        rows = []
        ops = [self._ops[k] for k in sorted(self._ops)][first : first + count]
        if not ops:
            return "(no operations traced)"
        start_cycle = min(op.events[0][0] for op in ops if op.events)
        header = f"{'seq':>5}  {'pc':>10}  {'instruction':<28} |cycle {start_cycle}"
        rows.append(header)
        for op in ops:
            lane = self._lane(op, start_cycle, width)
            rows.append(f"{op.seq:>5}  {op.pc:>#10x}  {op.text[:28]:<28} |{lane}")
        return "\n".join(rows)

    def _lane(self, op: _OpTimeline, start_cycle: int, width: int) -> str:
        if not op.events:
            return ""
        chars: List[str] = []
        first_cycle = op.events[0][0]
        chars.extend(IDLE_MARK * max(0, first_cycle - start_cycle))
        end = op.done_cycle if op.done_cycle is not None else op.events[-1][0] + 1
        for index, (cycle, state) in enumerate(op.events):
            next_cycle = op.events[index + 1][0] if index + 1 < len(op.events) else end
            span = max(1, next_cycle - cycle)
            chars.extend(state[0] * span)
        if op.killed:
            chars.append(KILL_MARK)
        return "".join(chars)[:width]

    # -- summaries -------------------------------------------------------------------

    def occupancy(self) -> Dict[str, int]:
        """Total op-cycles spent per state (from the recorded spans)."""
        totals: Dict[str, int] = {}
        for op in self._ops.values():
            end = op.done_cycle if op.done_cycle is not None else None
            for index, (cycle, state) in enumerate(op.events):
                if index + 1 < len(op.events):
                    next_cycle = op.events[index + 1][0]
                elif end is not None:
                    next_cycle = end
                else:
                    continue
                totals[state] = totals.get(state, 0) + max(1, next_cycle - cycle)
        return totals

    def killed_count(self) -> int:
        return sum(1 for op in self._ops.values() if op.killed)
