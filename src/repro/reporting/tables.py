"""Aligned text tables in the paper's reporting style."""

from __future__ import annotations

from typing import Any, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    align: Optional[str] = None,
) -> str:
    """Render a fixed-width table.

    ``align`` is one character per column: ``l`` or ``r`` (default: first
    column left, the rest right — the layout of the paper's tables).
    """
    if align is None:
        align = "l" + "r" * (len(headers) - 1)
    if len(align) != len(headers):
        raise ValueError(f"align {align!r} does not match {len(headers)} columns")
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    for row_index, row in enumerate(cells):
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.ljust(widths[i]) if align[i] == "l" else cell.rjust(widths[i]))
        lines.append(" | ".join(parts))
        if row_index == 0:
            lines.append(rule)
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def percent(delta: float) -> str:
    """Signed percentage in the paper's Table-1 style."""
    return f"{delta:+.1f}%"
