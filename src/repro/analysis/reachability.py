"""State-reachability and liveness analysis of machine specifications.

Because OSM specifications are declarative, static properties fall out of
a graph walk (Section 6: "it is possible to extract model properties for
formal verification purposes"):

* every state must be reachable from the initial state (dead states in a
  processor description are specification bugs);
* every state must be co-reachable: some path must lead back to the
  initial state, otherwise operations can be permanently absorbed;
* edges out of unreachable states are dead;
* a state with no outgoing edges (other than I, which always has the
  fetch edge) traps operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..core.osm import MachineSpec


@dataclass
class ReachabilityReport:
    reachable: Set[str] = field(default_factory=set)
    unreachable: Set[str] = field(default_factory=set)
    #: states from which the initial state cannot be reached again
    non_returning: Set[str] = field(default_factory=set)
    trapping: Set[str] = field(default_factory=set)
    dead_edges: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.unreachable or self.non_returning or self.trapping)


def analyze(spec: MachineSpec) -> ReachabilityReport:
    """Run the full reachability/liveness analysis."""
    report = ReachabilityReport()
    if spec.initial is None:
        raise ValueError(f"{spec.name}: no initial state")

    # forward reachability
    frontier = [spec.initial]
    report.reachable = {spec.initial.name}
    while frontier:
        state = frontier.pop()
        for edge in state.out_edges:
            if edge.dst.name not in report.reachable:
                report.reachable.add(edge.dst.name)
                frontier.append(edge.dst)
    report.unreachable = set(spec.states) - report.reachable

    # co-reachability of the initial state (reverse walk)
    predecessors: Dict[str, Set[str]] = {name: set() for name in spec.states}
    for edge in spec.edges:
        predecessors[edge.dst.name].add(edge.src.name)
    returning = {spec.initial.name}
    frontier2 = [spec.initial.name]
    while frontier2:
        name = frontier2.pop()
        for pred in predecessors[name]:
            if pred not in returning:
                returning.add(pred)
                frontier2.append(pred)
    report.non_returning = report.reachable - returning

    # trapping states and dead edges
    for name, state in spec.states.items():
        if name in report.reachable and not state.out_edges:
            report.trapping.add(name)
    for edge in spec.edges:
        if edge.src.name in report.unreachable:
            report.dead_edges.append(edge.label)
    return report
