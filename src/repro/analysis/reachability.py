"""Deprecated shim: the reachability/liveness analysis moved to
:mod:`repro.analysis.lint.graph` (the lint/checker stack is the single
owner of spec-graph facts).

``ReachabilityReport`` is re-exported unchanged; :func:`analyze`
delegates to :func:`repro.analysis.lint.graph.analyze_reachability`
after emitting a :class:`DeprecationWarning`.  New code should import
from the lint package or run the OSM006 lint pass, which reports
reachability defects through the shared diagnostics schema.
"""

from __future__ import annotations

import warnings

from .lint.graph import ReachabilityReport, analyze_reachability

__all__ = ["ReachabilityReport", "analyze"]


def analyze(spec) -> ReachabilityReport:
    """Deprecated alias of :func:`repro.analysis.lint.graph.analyze_reachability`."""
    warnings.warn(
        "repro.analysis.reachability.analyze is deprecated; use "
        "repro.analysis.lint.graph.analyze_reachability (or the OSM006 lint pass)",
        DeprecationWarning,
        stacklevel=2,
    )
    return analyze_reachability(spec)
