"""Pure-token abstraction: make any registered spec model-checkable.

The bundled model specifications are *open* systems: their edges carry
side-effecting actions (decode, execute, redirect), guards over
simulator state, and transactions against stateful custom managers.
The checker needs a *closed* pure token system.  This pass produces one
from any :class:`~repro.core.MachineSpec`:

* every **state** is copied (same names, same initial), with ``on_enter``
  hooks dropped;
* every **edge** keeps its source, destination, priority, label and —
  crucially — its original declaration index, so counterexample traces
  name the real edges by their stable ``Edge.qualname``;
* edge **actions** are dropped;
* each **primitive** is translated by manager class:

  - :class:`~repro.core.manager.SlotManager` and
    :class:`~repro.core.manager.PoolManager` (and their model-specific
    subclasses) are *mirrored* as plain slot/pool managers of the same
    name and capacity — custom grant/release policies (in-order
    dispatch, budgets, fetch gating) are generalized away, which only
    adds behaviours;
  - :class:`~repro.core.manager.ResetManager` inquiries are statically
    false for normal operation, so edges guarded by one (the
    control-hazard reset edges) are dropped as infeasible;
  - managers without a static token capacity (register files, rename
    managers) and dynamic (callable-identifier) allocations are treated
    as *vacuous*: the primitive is dropped.  ``Release``/``ReleaseMany``
    of a never-filled slot already succeed vacuously, so the pairing
    stays consistent;
  - ``Release``/``ReleaseMany``/``Discard`` survive with their value
    callbacks stripped; ``Guard`` and unknown predicate primitives are
    dropped (treated as nondeterministically true — the abstraction
    keeps the edge and lets static priority arbitrate).

The result over-approximates the *token discipline* of the model (every
concrete token behaviour of the mirrored managers is a behaviour of the
abstraction) while under-approximating its *data* behaviour — see
``docs/formalism.md`` for exactly what a clean verdict certifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...core.manager import PoolManager, ResetManager, SlotManager, TokenManager
from ...core.osm import Edge, MachineSpec
from ...core.primitives import (
    Allocate,
    AllocateMany,
    Condition,
    Discard,
    Inquire,
    Primitive,
    Release,
    ReleaseMany,
)


@dataclass
class PureTokenSystem:
    """A closed, checkable abstraction of one machine specification."""

    spec: MachineSpec            #: the pure spec (edges keep original qualnames)
    managers: List[TokenManager]  #: the abstract manager mirrors
    source: str                  #: name of the abstracted specification
    n_edges_dropped: int = 0     #: infeasible edges removed (reset paths)
    n_primitives_dropped: int = 0  #: vacuous/opaque primitives removed
    #: original manager name -> mirror kind ("slot", "pool:<n>", "vacuous",
    #: "infeasible") — the abstraction's audit trail for reports and docs
    manager_map: Dict[str, str] = field(default_factory=dict)


class _Infeasible(Exception):
    """Internal marker: the edge's condition is statically unsatisfiable."""


def purify(spec: MachineSpec) -> PureTokenSystem:
    """Abstract *spec* into a closed pure token system."""
    if spec.initial is None:
        raise ValueError(f"{spec.name}: no initial state")
    pure = MachineSpec(f"{spec.name}#pure")
    for state in spec.states.values():
        pure.state(state.name, initial=state.is_initial)

    mirrors: Dict[int, Optional[TokenManager]] = {}
    managers: List[TokenManager] = []
    result = PureTokenSystem(spec=pure, managers=managers, source=spec.name)

    def mirror_of(manager) -> Optional[TokenManager]:
        """The abstract mirror, ``None`` for vacuous managers; raises
        :class:`_Infeasible` for reset managers."""
        if isinstance(manager, ResetManager):
            result.manager_map.setdefault(manager.name, "infeasible")
            raise _Infeasible
        key = id(manager)
        if key not in mirrors:
            if isinstance(manager, SlotManager):
                mirrors[key] = SlotManager(manager.name)
                result.manager_map.setdefault(manager.name, "slot")
            elif isinstance(manager, PoolManager):
                size = len(manager.tokens)
                mirrors[key] = PoolManager(manager.name, size)
                result.manager_map.setdefault(manager.name, f"pool:{size}")
            else:
                mirrors[key] = None
                result.manager_map.setdefault(manager.name, "vacuous")
            if mirrors[key] is not None:
                managers.append(mirrors[key])
        return mirrors[key]

    for edge in spec.edges:
        try:
            primitives = _translate(edge, mirror_of, result)
        except _Infeasible:
            result.n_edges_dropped += 1
            continue
        pure_edge = pure.edge(
            edge.src.name,
            edge.dst.name,
            Condition(primitives),
            priority=edge.priority,
            label=edge.label,
        )
        # Preserve the original declaration index: trace steps must name
        # the concrete spec's edges by their stable qualname.
        pure_edge.index = edge.index
    return result


def _translate(edge: Edge, mirror_of, result: PureTokenSystem) -> List[Primitive]:
    translated: List[Primitive] = []
    for primitive in edge.condition.primitives:
        if isinstance(primitive, AllocateMany):
            # Dynamic count (possibly zero): vacuous in the abstraction.
            result.n_primitives_dropped += 1
        elif isinstance(primitive, Allocate):
            mirror = mirror_of(primitive.manager)
            if mirror is None or callable(primitive.ident):
                result.n_primitives_dropped += 1
            else:
                translated.append(Allocate(mirror, slot=primitive.slot))
        elif isinstance(primitive, Inquire):
            mirror = mirror_of(primitive.manager)
            if mirror is None:
                result.n_primitives_dropped += 1
            else:
                translated.append(Inquire(mirror))
        elif isinstance(primitive, Release):
            translated.append(Release(primitive.slot))
        elif isinstance(primitive, ReleaseMany):
            translated.append(ReleaseMany(primitive.prefix))
        elif isinstance(primitive, Discard):
            translated.append(Discard(primitive.slot))
        else:
            # Guard and model-specific predicates: opaque, dropped.
            result.n_primitives_dropped += 1
    return translated
