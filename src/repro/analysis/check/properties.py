"""The property framework: what osmcheck verifies, under stable codes.

Each property has a stable ``CHK0xx`` code (mirroring osmlint's
``OSM0xx`` rule codes), a short rule slug, and a kind:

* **safety** properties are predicates over single system states,
  checked on every state the explorer visits; a violation yields a
  shortest counterexample trace to the offending state.

  - ``CHK001 exclusive-grant`` — a token is held by two OSMs at once;
  - ``CHK002 buffer-hygiene``  — an OSM sits in its initial state with a
    non-empty token buffer (the dynamic home invariant, which the OSM
    layer enforces with an exception at run time);
  - ``CHK003 capacity``        — a manager has more distinct tokens
    granted than its static capacity (catches buggy custom managers);
  - ``CHK006 lost-grant``      — a granted token is marked held but
    appears in no OSM's buffer (the signature of a double allocate into
    one slot overwriting the first grant).  This is a *transition*
    property: it is only observable right after a commit, before the
    ghost hold is erased by state restoration, so the explorer checks it
    at fire time rather than on stored states.

* **progress/liveness** properties are judged on the explored state
  graph after the fixpoint:

  - ``CHK004 deadlock``    — a reachable non-home state in which no OSM
    can fire any edge;
  - ``CHK005 home-return`` — a reachable state from which no home state
    (every OSM back in its initial state, all buffers empty) is
    reachable: the system can livelock, circulating tokens forever
    without ever draining.

Custom properties subclass :class:`StateProperty` and are passed to the
checker via its ``properties`` argument.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from .system import SystemState, TokenSystem, tokens_of


class Property:
    """Base class: identity and metadata of one checkable property."""

    #: stable property code, e.g. "CHK001"
    code: str = "CHK000"
    #: short rule slug, e.g. "exclusive-grant"
    rule: str = "abstract"
    #: "safety" (per-state predicate) or "liveness" (state-graph judgement)
    kind: str = "safety"

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.code})"


class StateProperty(Property):
    """A safety invariant checked on every visited system state."""

    def violation(self, system: TokenSystem, state: SystemState) -> Optional[str]:
        """A message describing the violation in *state*, or ``None``."""
        raise NotImplementedError


class ExclusiveGrant(StateProperty):
    """CHK001: no token is ever held by two OSMs simultaneously."""

    code = "CHK001"
    rule = "exclusive-grant"

    def violation(self, system: TokenSystem, state: SystemState) -> Optional[str]:
        holder: Dict[Tuple[int, str], int] = {}
        for index, (_, buffer) in enumerate(state):
            for _, manager_index, token_name in buffer:
                key = (manager_index, token_name)
                if key in holder:
                    manager = system.managers[manager_index].name
                    return (
                        f"token {token_name} of {manager} held by "
                        f"osm{holder[key]} and osm{index} simultaneously"
                    )
                holder[key] = index
        return None


class BufferHygiene(StateProperty):
    """CHK002: an OSM in its initial state holds no tokens."""

    code = "CHK002"
    rule = "buffer-hygiene"

    def violation(self, system: TokenSystem, state: SystemState) -> Optional[str]:
        initial = system.spec.initial.name
        for index, (state_name, buffer) in enumerate(state):
            if state_name == initial and buffer:
                names = sorted(token for _, _, token in buffer)
                return (
                    f"osm{index} is in initial state {initial} still holding "
                    f"{names} (token leak)"
                )
        return None


class Capacity(StateProperty):
    """CHK003: a manager never has more tokens out than its capacity."""

    code = "CHK003"
    rule = "capacity"

    def violation(self, system: TokenSystem, state: SystemState) -> Optional[str]:
        granted: Counter = Counter()
        for _, buffer in state:
            for _, manager_index, token_name in buffer:
                granted[manager_index] += 1
        for manager_index, count in granted.items():
            manager = system.managers[manager_index]
            capacity = getattr(manager, "capacity", None)
            if capacity is not None and count > capacity:
                return (
                    f"manager {manager.name} has {count} tokens granted, "
                    f"capacity {capacity}"
                )
        return None


class Deadlock(Property):
    """CHK004: every reachable non-home state has an enabled move."""

    code = "CHK004"
    rule = "deadlock"
    kind = "liveness"


class HomeReturn(Property):
    """CHK005: from every reachable state a home state is reachable —
    every OSM that leaves its initial state can eventually return."""

    code = "CHK005"
    rule = "home-return"
    kind = "liveness"


class LostGrant(Property):
    """CHK006: committed grants stay visible in some OSM buffer.

    Checked at fire time by :func:`lost_grant_violation`; a stored-state
    predicate cannot see the ghost hold (restoration rebuilds holders
    from buffers, erasing it)."""

    code = "CHK006"
    rule = "lost-grant"
    kind = "safety"


def lost_grant_violation(system: TokenSystem) -> Optional[str]:
    """Scan the *live* manager tokens right after a commit: any token
    marked held must sit in its holder's buffer."""
    for manager in system.managers:
        for token in tokens_of(manager):
            osm = token.holder
            if osm is not None and osm.slot_of(token) is None:
                return (
                    f"token {token.name} of {manager.name} is marked held by "
                    f"{osm.name} but is in no buffer slot (grant overwritten)"
                )
    return None


def default_properties() -> List[Property]:
    """Fresh instances of the bundled properties, in code order."""
    return [
        ExclusiveGrant(),
        BufferHygiene(),
        Capacity(),
        Deadlock(),
        HomeReturn(),
        LostGrant(),
    ]


#: code -> property class of the bundled properties
DEFAULT_PROPERTIES = {p.code: type(p) for p in default_properties()}
