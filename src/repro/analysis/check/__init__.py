"""osmcheck: explicit-state model checking of OSM token systems.

An explicit-state model checker over the product automaton of *n*
operation state machines sharing one set of token managers.  Verifies a
framework of safety and progress properties (stable ``CHK0xx`` codes)
and renders each violation as a shortest counterexample trace naming the
fired edges.  Symmetry canonicalization and partial-order reduction keep
the state space tractable; a pure-token abstraction pass makes every
registered model specification checkable.

Public API:

* :func:`check_model` / :func:`check_spec` / :func:`check_system` — the
  three entry points, from highest to lowest level;
* :func:`purify` — the abstraction pass on its own;
* :func:`default_properties` and :class:`StateProperty` — the property
  framework;
* :class:`CheckReport` / :class:`Finding` / :class:`Trace` — results.
"""

from .abstraction import PureTokenSystem, purify
from .explore import ExploreResult, SafetyHit, Step, Trace, explore, render_state
from .properties import (
    BufferHygiene,
    Capacity,
    Deadlock,
    ExclusiveGrant,
    HomeReturn,
    LostGrant,
    Property,
    StateProperty,
    default_properties,
)
from .report import CheckReport, Finding
from .runner import check_model, check_spec, check_system
from .system import FireOutcome, SystemState, TokenSystem

__all__ = [
    "BufferHygiene",
    "Capacity",
    "CheckReport",
    "Deadlock",
    "ExclusiveGrant",
    "ExploreResult",
    "Finding",
    "FireOutcome",
    "HomeReturn",
    "LostGrant",
    "Property",
    "PureTokenSystem",
    "SafetyHit",
    "StateProperty",
    "Step",
    "SystemState",
    "TokenSystem",
    "Trace",
    "check_model",
    "check_spec",
    "check_system",
    "default_properties",
    "explore",
    "purify",
    "render_state",
]
