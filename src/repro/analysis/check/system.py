"""Closed token systems: the product automaton the checker explores.

A :class:`TokenSystem` is *n* identical OSM instances over one pure
:class:`~repro.core.MachineSpec`, plus the token managers their edges
transact against.  The checker treats the whole ensemble as one product
automaton whose states are captured/restored as plain tuples:

``SystemState = ((state_name, ((slot, manager_index, token_name), ...)),
...)`` — one entry per OSM, buffer entries sorted, everything hashable
and totally ordered so states can be canonicalized under OSM symmetry.

Tokens are keyed by ``(manager index, token name)``, never by bare token
name: two managers may own identically-named tokens (two pools both
called ``p`` own a ``p[0]`` each), and a bare-name key would silently
restore the wrong manager's token into an OSM buffer.  Duplicate names
*within* one manager cannot be disambiguated and are rejected at
construction time.

The transition relation is the per-OSM scheduling rule of Section 5: at
each step one OSM fires its highest-priority satisfied edge (the edge
choice per OSM is deterministic — the director only chooses *which* OSM
moves, never which edge).  Exploring one OSM move per step covers every
director schedule: any control-step order is a sequence of such moves.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...core.errors import SpecError, TokenError
from ...core.osm import Edge, MachineSpec, OperationStateMachine

#: one OSM's local configuration: (state name, sorted buffer triples)
OsmConfig = Tuple[str, Tuple[Tuple[str, int, str], ...]]
#: the full product-automaton state
SystemState = Tuple[OsmConfig, ...]


class FireOutcome:
    """Result of firing one OSM from one system state."""

    __slots__ = ("edge", "state", "error")

    def __init__(self, edge: Edge, state: SystemState, error: Optional[str] = None):
        self.edge = edge          #: the edge that fired (Edge.qualname labels the trace)
        self.state = state        #: system state after the commit
        self.error = error        #: dynamic-invariant message (buffer at I), if any

    def __repr__(self) -> str:  # pragma: no cover
        return f"FireOutcome({self.edge.qualname}, error={self.error!r})"


class TokenSystem:
    """A closed system of *n* OSMs over a pure token specification."""

    def __init__(self, spec: MachineSpec, managers: Sequence, n_osms: int):
        if n_osms < 1:
            raise ValueError("a token system needs at least one OSM")
        self.spec = spec
        self.managers = list(managers)
        self.n_osms = n_osms
        self.osms = [OperationStateMachine(spec) for _ in range(n_osms)]
        self._manager_index: Dict[int, int] = {
            id(manager): index for index, manager in enumerate(self.managers)
        }
        #: (manager index, token name) -> token; names are unique per manager
        self._token_by_key: Dict[Tuple[int, str], object] = {}
        for index, manager in enumerate(self.managers):
            for token in tokens_of(manager):
                key = (index, token.name)
                if key in self._token_by_key:
                    raise SpecError(
                        f"{spec.name}: manager {manager.name!r} owns two tokens "
                        f"named {token.name!r}; states cannot be restored faithfully"
                    )
                self._token_by_key[key] = token
        self._footprints = _state_footprints(spec, self._manager_index)

    # -- abstract state ------------------------------------------------------

    def capture(self) -> SystemState:
        state = []
        for osm in self.osms:
            entries = []
            for slot, token in osm.token_buffer.items():
                index = self._manager_index.get(id(token.manager))
                if index is None:
                    raise SpecError(
                        f"{self.spec.name}: token {token.name!r} belongs to "
                        f"unregistered manager {token.manager.name!r}"
                    )
                entries.append((slot, index, token.name))
            state.append((osm.current.name, tuple(sorted(entries))))
        return tuple(state)

    def restore(self, state: SystemState) -> None:
        for token in self._token_by_key.values():
            token.holder = None
        for osm, (state_name, buffer) in zip(self.osms, state):
            osm.current = self.spec.states[state_name]
            osm.token_buffer = {}
            osm.blocked_on = None
            osm._fail_version = -1
            for slot, manager_index, token_name in buffer:
                token = self._token_by_key[(manager_index, token_name)]
                token.holder = osm
                osm.token_buffer[slot] = token
        for manager in self.managers:
            resync = getattr(manager, "resync_from_holders", None)
            if resync is not None:
                resync()

    def initial_state(self) -> SystemState:
        initial = self.spec.initial.name
        return tuple(((initial, ()),) * self.n_osms)

    def is_home(self, state: SystemState) -> bool:
        initial = self.spec.initial.name
        return all(name == initial and not buffer for name, buffer in state)

    @staticmethod
    def canonical(state: SystemState) -> SystemState:
        """The symmetry-reduced representative: OSMs of one spec are
        interchangeable, so permuted states are bisimilar — sorting the
        per-OSM configurations picks one member of each orbit."""
        return tuple(sorted(state))

    # -- transition relation -------------------------------------------------

    def fire(self, state: SystemState, osm_index: int) -> Optional[FireOutcome]:
        """Fire OSM *osm_index*'s enabled edge from *state*, if any.

        Returns ``None`` when the OSM has no satisfied edge.  A committed
        transition that trips the dynamic home invariant (returning to the
        initial state still holding tokens) is reported as an outcome with
        ``error`` set, not an exception — the checker turns it into a
        counterexample instead of dying.
        """
        self.restore(state)
        osm = self.osms[osm_index]
        try:
            edge = osm.try_transition(0)
        except TokenError as exc:
            return FireOutcome(osm.last_edge, self.capture(), error=str(exc))
        if edge is None:
            return None
        return FireOutcome(edge, self.capture())

    def enabled_moves(self, state: SystemState) -> List[Tuple[int, FireOutcome]]:
        """Every (osm index, outcome) pair enabled in *state*."""
        moves = []
        for index in range(self.n_osms):
            outcome = self.fire(state, index)
            if outcome is not None:
                moves.append((index, outcome))
        return moves

    # -- partial-order-reduction support -------------------------------------

    def touched_managers(self, state: SystemState, osm_index: int,
                         edge: Edge) -> Optional[FrozenSet[int]]:
        """Manager indexes the firing of *edge* by *osm_index* transacts
        against, or ``None`` when the edge carries a primitive the checker
        cannot attribute (contends with everything)."""
        held = {slot: manager_index for slot, manager_index, _ in state[osm_index][1]}
        touched = set()
        for primitive in edge.condition.primitives:
            kind = getattr(primitive, "kind", None)
            if kind in ("allocate", "inquire"):
                manager = getattr(primitive, "manager", None)
                index = self._manager_index.get(id(manager))
                if index is None:
                    return None
                touched.add(index)
            elif kind == "release":
                slot = getattr(primitive, "slot", None)
                if slot is not None:
                    if slot in held:
                        touched.add(held[slot])
                else:  # ReleaseMany: every held slot matching the prefix
                    prefix = getattr(primitive, "prefix", "")
                    touched.update(
                        index for slot, index in held.items() if slot.startswith(prefix)
                    )
            elif kind == "discard":
                slot = getattr(primitive, "slot", None)
                if slot is None:
                    touched.update(held.values())
                elif slot in held:
                    touched.add(held[slot])
            elif kind == "guard":
                return None  # opaque predicate: may read anything
            else:
                return None  # unknown primitive: be conservative
        return frozenset(touched)

    def probe_footprint(self, state: SystemState, osm_index: int) -> Optional[FrozenSet[int]]:
        """Manager indexes OSM *osm_index* could transact against from its
        current local state: the static footprint of the state's outgoing
        edges plus the managers of every token it holds (releases and
        discards target held tokens).  ``None`` means unbounded."""
        state_name, buffer = state[osm_index]
        static = self._footprints[state_name]
        if static is None:
            return None
        if not buffer:
            return static
        return static | frozenset(index for _, index, _ in buffer)


def tokens_of(manager) -> List:
    """All tokens a manager owns, across the known manager shapes."""
    if hasattr(manager, "tokens"):
        return list(manager.tokens)
    if hasattr(manager, "token"):
        return [manager.token]
    collected: List = []
    if hasattr(manager, "pools"):  # e.g. RegisterRenameManager
        for pool in manager.pools.values():
            collected.extend(pool)
    if hasattr(manager, "update_tokens"):  # RegisterFileManager
        for pool in manager.update_tokens.values():
            collected.extend(pool)
    return collected


def _state_footprints(
    spec: MachineSpec, manager_index: Dict[int, int]
) -> Dict[str, Optional[FrozenSet[int]]]:
    """Per state: manager indexes named by any primitive of any outgoing
    edge (``None`` when a primitive cannot be attributed statically).
    Release/Discard primitives carry no manager statically; their dynamic
    targets are covered by the held-token part of the probe footprint."""
    footprints: Dict[str, Optional[FrozenSet[int]]] = {}
    for state in spec.states.values():
        touched = set()
        unbounded = False
        for edge in state.out_edges:
            for primitive in edge.condition.primitives:
                kind = getattr(primitive, "kind", None)
                if kind in ("allocate", "inquire"):
                    index = manager_index.get(id(getattr(primitive, "manager", None)))
                    if index is None:
                        unbounded = True
                    else:
                        touched.add(index)
                elif kind in ("release", "discard"):
                    continue
                else:
                    unbounded = True
        footprints[state.name] = None if unbounded else frozenset(touched)
    return footprints
