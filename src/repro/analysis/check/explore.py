"""Explicit-state exploration of the OSM × token-manager product automaton.

Breadth-first search with parent pointers, so every violated property
yields a **shortest** counterexample trace (shortest in the explored
graph).  Two state-space reductions make exploration tractable:

* **Symmetry canonicalization** — the *n* OSMs share one spec and are
  interchangeable, so system states that differ only by a permutation of
  the OSMs are bisimilar.  Every discovered state is replaced by its
  canonical representative (per-OSM configurations sorted), collapsing
  each orbit of up to ``n!`` states into one.

* **Partial-order reduction** — from a state where some OSM's enabled
  transition cannot contend with any other OSM (the managers its edge
  transacts against are disjoint from every other OSM's probe footprint
  — the managers reachable from its current local state plus those of
  its held tokens), only that transition is explored: interleavings with
  independent moves commute and reach the same states.  A cycle proviso
  (fall back to full expansion when the single successor was already
  visited) keeps reduced exploration from ignoring the other OSMs
  forever.  Only interleavings that actually contend for a token are
  branched on — this replaces the factorial schedule-permutation sweep
  of the original prototype checker.

Both reductions preserve the verdicts of the bundled properties (which
are symmetric in the OSMs and insensitive to the order of independent
commits); ``reduction=False`` runs the naive full interleaving for
cross-checking, and the test suite verifies the verdicts agree.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...core.osm import Edge
from .system import SystemState, TokenSystem


@dataclass
class Step:
    """One fired transition, as recorded in the exploration graph."""

    osm_index: int
    edge: Edge
    source: SystemState
    target: SystemState


@dataclass
class Trace:
    """A counterexample: the shortest explored path to a bad state.

    With symmetry reduction on, each recorded state is the canonical
    representative of its orbit, so consecutive steps may silently
    renumber OSMs; the trace is still a genuine execution up to the
    (behaviour-preserving) renaming.
    """

    steps: List[Step] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def render(self, indent: str = "  ") -> str:
        if not self.steps:
            return f"{indent}(violated in the initial state)"
        lines = []
        for number, step in enumerate(self.steps, start=1):
            edge = step.edge
            lines.append(
                f"{indent}step {number}: osm{step.osm_index} fires {edge.qualname} "
                f"[{edge.src.name} -> {edge.dst.name}]  =>  {render_state(step.target)}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "length": len(self.steps),
            "steps": [
                {
                    "osm": step.osm_index,
                    "edge": step.edge.qualname,
                    "src": step.edge.src.name,
                    "dst": step.edge.dst.name,
                    "state_after": render_state(step.target),
                }
                for step in self.steps
            ],
        }


def render_state(state: SystemState) -> str:
    """Compact one-line rendering: ``osm0@F(m_f) osm1@I``."""
    parts = []
    for index, (state_name, buffer) in enumerate(state):
        held = ",".join(token for _, _, token in buffer)
        parts.append(f"osm{index}@{state_name}" + (f"({held})" if held else ""))
    return " ".join(parts)


@dataclass
class SafetyHit:
    """A safety-property violation found during exploration."""

    code: str
    message: str
    state: SystemState
    depth: int


@dataclass
class ExploreResult:
    """The explored (possibly reduced) state graph plus search metadata."""

    initial: SystemState
    #: state -> (parent state, osm index, edge) — BFS tree, shortest paths
    parents: Dict[SystemState, Optional[Tuple[SystemState, int, Edge]]] = field(
        default_factory=dict
    )
    depths: Dict[SystemState, int] = field(default_factory=dict)
    #: state -> outgoing (osm index, edge, successor)
    successors: Dict[SystemState, List[Tuple[int, Edge, SystemState]]] = field(
        default_factory=dict
    )
    hits: List[SafetyHit] = field(default_factory=list)
    n_states: int = 0
    n_transitions: int = 0
    #: transitions actually fired, including POR-pruned duplicates probes
    n_fired: int = 0
    #: states from which exploration was cut short by a safety violation
    truncated: bool = False

    def trace_to(self, state: SystemState) -> Trace:
        """Reconstruct the shortest explored path from the initial state."""
        steps: List[Step] = []
        cursor = state
        while True:
            parent = self.parents[cursor]
            if parent is None:
                break
            source, osm_index, edge = parent
            steps.append(Step(osm_index, edge, source, cursor))
            cursor = source
        steps.reverse()
        return Trace(steps)


def explore(
    system: TokenSystem,
    properties,
    reduction: bool = True,
    max_states: int = 200_000,
    symmetry: Optional[bool] = None,
    por: Optional[bool] = None,
) -> ExploreResult:
    """BFS over the product automaton, checking safety properties on every
    visited state.  *properties* is the list of
    :class:`~.properties.StateProperty` instances to evaluate; graph
    properties (deadlock, home-return) are judged by the caller on the
    returned graph.

    *reduction* switches both reductions together; *symmetry* / *por*
    override it individually.  Symmetry alone is an exact bisimulation
    quotient (preserves every property we check); POR additionally
    preserves the safety invariants and deadlock but not home-return,
    so the runner re-judges CHK005 suspects on a symmetry-only graph.
    """
    from .properties import lost_grant_violation

    symmetry = reduction if symmetry is None else symmetry
    por = reduction if por is None else por
    canonical = system.canonical if symmetry else (lambda state: state)
    initial = canonical(system.initial_state())
    result = ExploreResult(initial=initial)
    result.parents[initial] = None
    result.depths[initial] = 0

    for prop in properties:
        message = prop.violation(system, initial)
        if message is not None:
            result.hits.append(SafetyHit(prop.code, message, initial, 0))

    queue = deque([initial])
    while queue:
        state = queue.popleft()
        if len(result.parents) > max_states:
            result.truncated = True
            break
        depth = result.depths[state]

        moves = []
        for index in range(system.n_osms):
            outcome = system.fire(state, index)
            result.n_fired += 1
            if outcome is not None:
                # The ghost-grant check must run on the *live* managers
                # right after this commit: capture/restore rebuilds token
                # holders from the buffers and would erase the evidence.
                ghost = None if outcome.error is not None else lost_grant_violation(system)
                moves.append((index, outcome, ghost))

        if por and len(moves) > 1:
            moves = _ample(system, state, moves, result.parents, canonical)

        outgoing: List[Tuple[int, Edge, SystemState]] = []
        for index, outcome, ghost in moves:
            successor = canonical(outcome.state)
            outgoing.append((index, outcome.edge, successor))
            result.n_transitions += 1
            is_new = successor not in result.parents
            if is_new:
                result.parents[successor] = (state, index, outcome.edge)
                result.depths[successor] = depth + 1

            violated = False
            if outcome.error is not None:
                # The dynamic home invariant tripped mid-commit (CHK002).
                result.hits.append(
                    SafetyHit("CHK002", outcome.error, successor, depth + 1)
                )
                violated = True
            elif ghost is not None:
                result.hits.append(
                    SafetyHit("CHK006", ghost, successor, depth + 1)
                )
                violated = True
            if is_new and not violated:
                for prop in properties:
                    message = prop.violation(system, successor)
                    if message is not None:
                        result.hits.append(
                            SafetyHit(prop.code, message, successor, depth + 1)
                        )
                        violated = True
            if is_new and not violated:
                queue.append(successor)
            # Violating states are recorded (for the trace) but not
            # expanded: execution past a broken invariant is meaningless.
        result.successors[state] = outgoing

    result.n_states = len(result.parents)
    return result


def _ample(system, state, moves, seen, canonical):
    """Pick a singleton ample set when some enabled move is independent of
    every other OSM; otherwise return all *moves* (full expansion)."""
    for move in moves:
        index, outcome, ghost = move
        if outcome.error is not None or ghost is not None:
            continue  # violations must stay visible under every schedule
        touched = system.touched_managers(state, index, outcome.edge)
        if touched is None:
            continue
        independent = True
        for other in range(system.n_osms):
            if other == index:
                continue
            footprint = system.probe_footprint(state, other)
            if footprint is None or (touched & footprint):
                independent = False
                break
        if independent:
            # Cycle proviso: a reduced move that only leads back to an
            # already-visited state could starve the pruned OSMs forever;
            # expand fully in that case.
            if canonical(outcome.state) in seen:
                continue
            return [move]
    return moves
