"""High-level entry points: check a closed system, a spec, or a model.

* :func:`check_system` — verify a hand-built closed token system
  (spec + managers), the checker's ground-truth interface;
* :func:`check_spec` — abstract any :class:`~repro.core.MachineSpec`
  into a pure token system (:mod:`.abstraction`) and verify that;
* :func:`check_model` — look a spec up in the shared registry
  (:mod:`repro.analysis.registry`) by name, abstract, verify — the
  ``repro check <model>`` / CI path.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

from ...core.osm import MachineSpec
from ..diagnostics import Diagnostic, Severity
from .abstraction import purify
from .explore import ExploreResult, explore
from .properties import Property, StateProperty, default_properties
from .report import CheckReport, Finding
from .system import SystemState, TokenSystem


def check_system(
    spec: MachineSpec,
    managers: Sequence,
    n_osms: int = 2,
    properties: Optional[Sequence[Property]] = None,
    codes: Optional[Iterable[str]] = None,
    reduction: bool = True,
    max_states: int = 200_000,
) -> CheckReport:
    """Exhaustively verify the closed token system and report per-property
    verdicts with shortest counterexample traces."""
    if properties is None:
        properties = default_properties()
    if codes is not None:
        wanted = set(codes)
        unknown = wanted - {p.code for p in properties}
        if unknown:
            raise ValueError(f"unknown property code(s): {sorted(unknown)}")
        properties = [p for p in properties if p.code in wanted]

    system = TokenSystem(spec, managers, n_osms)
    state_props = [p for p in properties if isinstance(p, StateProperty)]
    prop_codes = [p.code for p in properties]

    result = explore(system, state_props, reduction=reduction, max_states=max_states)

    report = CheckReport(
        spec=spec.name,
        n_osms=n_osms,
        properties_checked=prop_codes,
        n_states=result.n_states,
        n_transitions=result.n_transitions,
        n_fired=result.n_fired,
        truncated=result.truncated,
        reduction=reduction,
    )

    # -- safety: first (shortest) hit per property code --------------------
    best: Dict[str, object] = {}
    for hit in result.hits:
        incumbent = best.get(hit.code)
        if incumbent is None or hit.depth < incumbent.depth:
            best[hit.code] = hit
    for code in sorted(best):
        hit = best[code]
        if code not in prop_codes:
            continue  # fire-time hits for properties the caller filtered out
        report.findings.append(
            _finding(spec.name, code, hit.message, result.trace_to(hit.state), hit.state)
        )

    # -- progress/liveness on the explored graph ---------------------------
    if not result.truncated:
        expanded = result.successors
        if "CHK004" in prop_codes:
            deadlocks = [
                state for state, outgoing in expanded.items()
                if not outgoing and not system.is_home(state)
            ]
            if deadlocks:
                state = min(deadlocks, key=lambda s: result.depths[s])
                report.findings.append(_finding(
                    spec.name, "CHK004",
                    "deadlock: no OSM can fire any edge in this state "
                    "under any schedule",
                    result.trace_to(state), state,
                ))
        if "CHK005" in prop_codes:
            stranded = _non_home_returning(system, result)
            graph = result
            if stranded and reduction:
                # POR preserves safety and deadlock but not home-return
                # (AG EF home is a branching property): a pruned
                # interleaving may be the only one draining the system.
                # Re-judge suspects exactly on the symmetry-only quotient,
                # which is a bisimulation of the full interleaving.
                graph = explore(system, [], symmetry=True, por=False,
                                max_states=max_states)
                if graph.truncated:
                    report.truncated = True
                    stranded = []
                else:
                    stranded = _non_home_returning(system, graph)
            if stranded:
                state = min(stranded, key=lambda s: graph.depths[s])
                report.findings.append(_finding(
                    spec.name, "CHK005",
                    "livelock: no home state (every OSM back in its initial "
                    "state) is reachable from this state",
                    graph.trace_to(state), state,
                ))
    return report


def check_spec(
    spec: MachineSpec,
    n_osms: int = 2,
    properties: Optional[Sequence[Property]] = None,
    codes: Optional[Iterable[str]] = None,
    reduction: bool = True,
    max_states: int = 200_000,
) -> CheckReport:
    """Abstract *spec* into a pure token system and verify it."""
    pure = purify(spec)
    report = check_system(
        pure.spec, pure.managers, n_osms=n_osms, properties=properties,
        codes=codes, reduction=reduction, max_states=max_states,
    )
    report.spec = spec.name
    for diagnostic in report.diagnostics:
        diagnostic.spec = spec.name
    report.abstraction = {
        "managers": dict(pure.manager_map),
        "edges_dropped": pure.n_edges_dropped,
        "primitives_dropped": pure.n_primitives_dropped,
    }
    return report


def check_model(
    name: str,
    n_osms: int = 2,
    properties: Optional[Sequence[Property]] = None,
    codes: Optional[Iterable[str]] = None,
    reduction: bool = True,
    max_states: int = 200_000,
) -> CheckReport:
    """Check a registered model specification by its registry name."""
    from ..registry import build_spec

    spec = build_spec(name)
    report = check_spec(
        spec, n_osms=n_osms, properties=properties, codes=codes,
        reduction=reduction, max_states=max_states,
    )
    # key the report by its registry name (spec.name may differ)
    report.spec = name
    for diagnostic in report.diagnostics:
        diagnostic.spec = name
    return report


def _finding(spec_name: str, code: str, message: str, trace, state) -> Finding:
    from .properties import DEFAULT_PROPERTIES

    prop = DEFAULT_PROPERTIES.get(code)
    rule = prop.rule if prop is not None else "custom"
    last_edge = trace.steps[-1].edge if trace.steps else None
    diagnostic = Diagnostic(
        code=code,
        rule=rule,
        severity=Severity.ERROR,
        spec=spec_name,
        message=message,
        state=last_edge.src.name if last_edge is not None else None,
        edge=last_edge.qualname if last_edge is not None else None,
    )
    finding = Finding(diagnostic=diagnostic, trace=trace)
    finding.state = state
    return finding


def _non_home_returning(system: TokenSystem, result: ExploreResult) -> List[SystemState]:
    """Expanded states from which no home state is reachable, excluding
    deadlocks (those are CHK004's to report)."""
    reverse: Dict[SystemState, List[SystemState]] = {}
    for state, outgoing in result.successors.items():
        for _, _, successor in outgoing:
            reverse.setdefault(successor, []).append(state)
    homes = [state for state in result.successors if system.is_home(state)]
    co_reachable = set(homes)
    queue = deque(homes)
    while queue:
        state = queue.popleft()
        for predecessor in reverse.get(state, ()):
            if predecessor not in co_reachable:
                co_reachable.add(predecessor)
                queue.append(predecessor)
    return [
        state for state, outgoing in result.successors.items()
        if state not in co_reachable and outgoing
    ]
