"""Check reports: property verdicts rendered like lint reports.

A :class:`CheckReport` reuses the shared
:class:`~repro.analysis.diagnostics.Diagnostic` machinery so that
``repro lint`` and ``repro check`` emit uniform findings — stable codes,
severities, ``spec:state:edge`` locations, text and JSON — with one
addition: every violated property carries a shortest counterexample
:class:`~.explore.Trace`, rendered step by step under the diagnostic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..diagnostics import SCHEMA_VERSION, Diagnostic, Severity
from .explore import Trace


@dataclass
class Finding:
    """One violated property: a diagnostic plus its counterexample."""

    diagnostic: Diagnostic
    trace: Optional[Trace] = None
    #: the violating system state (implementation detail; used by the
    #: legacy ``modelcheck`` compatibility shim)
    state: Optional[object] = None

    def render(self) -> str:
        lines = [self.diagnostic.render()]
        if self.trace is not None:
            lines.append(f"  counterexample ({len(self.trace)} steps):")
            lines.append(self.trace.render(indent="    "))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        payload = self.diagnostic.to_dict()
        payload["trace"] = self.trace.to_dict() if self.trace is not None else None
        return payload


@dataclass
class CheckReport:
    """All findings of one model-check run over one specification."""

    spec: str
    n_osms: int
    findings: List[Finding] = field(default_factory=list)
    #: property codes verified (even when nothing was found)
    properties_checked: List[str] = field(default_factory=list)
    n_states: int = 0
    n_transitions: int = 0
    #: transition firings performed (exploration work, before dedup)
    n_fired: int = 0
    truncated: bool = False
    reduction: bool = True
    #: audit trail of the pure-token abstraction, when one was applied
    abstraction: Dict[str, object] = field(default_factory=dict)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return [finding.diagnostic for finding in self.findings]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when every property held on the fully-explored system."""
        return not self.errors and not self.truncated

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.diagnostic.code == code]

    def trace_for(self, code: str) -> Optional[Trace]:
        for finding in self.by_code(code):
            if finding.trace is not None:
                return finding.trace
        return None

    # -- renderers ---------------------------------------------------------

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        mode = "por+symmetry" if self.reduction else "naive"
        verdict = "ok" if self.ok else ("TRUNCATED" if self.truncated and not self.errors
                                        else f"{len(self.errors)} violation(s)")
        lines.append(
            f"{self.spec}: {verdict} — {len(self.properties_checked)} properties, "
            f"{self.n_osms} OSMs, {self.n_states} states, "
            f"{self.n_transitions} transitions ({mode})"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "tool": "check",
            "schema_version": SCHEMA_VERSION,
            "spec": self.spec,
            "n_osms": self.n_osms,
            "ok": self.ok,
            "truncated": self.truncated,
            "reduction": self.reduction,
            "properties": list(self.properties_checked),
            "n_states": self.n_states,
            "n_transitions": self.n_transitions,
            "n_fired": self.n_fired,
            "abstraction": dict(self.abstraction),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
