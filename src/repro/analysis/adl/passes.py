"""The bundled adlcheck rules, ADL001–ADL009.

All nine rules operate purely on the parsed
:class:`~repro.adl.ast.ProcessorDecl` — no synthesis, no simulation, no
Python-level reflection — so they run in microseconds and their
diagnostics carry the exact source line of the offending declaration.
ADL010 (synthesis closure) lives in :mod:`.closure`.

====== ===================== ========================================
code   rule                  catches
====== ===================== ========================================
ADL001 undefined-reference   primitives naming undeclared managers;
                             actions outside the synthesiser vocabulary
ADL002 duplicate-declaration duplicate manager / state / machine names
ADL003 dangling-edge         edge endpoints naming undeclared states
ADL004 initial-state         missing or multiple initial states;
                             states unreachable from the initial
ADL005 identifier            unknown identifier words; allocate_many
                             without an identifier; identifiers the
                             synthesiser ignores
ADL006 capacity              allocate_many against capacity-1 managers;
                             nonpositive size/regs parameters
ADL007 token-balance         slots still held on return to the initial
                             state (allocate without release); release
                             of a slot no path allocates
ADL008 edge-priority         edges shadowed by an always-enabled
                             higher-priority sibling; same-priority
                             siblings with identical conditions
ADL009 unused-declaration    managers no primitive references; params
                             the synthesiser ignores
====== ===================== ========================================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ...adl.ast import EdgeDecl, MachineDecl, PrimitiveDecl
from ...adl.parser import IDENT_WORDS
from ...adl.synth import ACTION_NAMES
from ..diagnostics import Diagnostic, Severity
from .engine import AdlContext, AdlPass

#: primitive ops whose first operand must name a declared manager
_MANAGER_OPS = frozenset(("allocate", "allocate_many", "inquire"))
#: primitive ops whose first operand names a token-buffer slot
_SLOT_OPS = frozenset(("release", "release_many"))
#: ops for which an identifier word is meaningless (the synthesiser
#: silently drops it)
_IDENT_IGNORED_OPS = frozenset(
    ("allocate", "release", "release_many", "discard")
)

#: manager params the synthesiser consumes, per kind
_KNOWN_MANAGER_PARAMS = {
    "pool": frozenset(("size",)),
    "regfile": frozenset(("regs",)),
    "fetch": frozenset(),
    "stage": frozenset(),
    "reset": frozenset(),
}

#: processor-level params the synthesiser consumes
_KNOWN_PROCESSOR_PARAMS = frozenset(("osms",))


def _alloc_slot(prim: PrimitiveDecl) -> str:
    """The token-buffer slot an allocate-form primitive binds."""
    return prim.slot or (prim.manager or "?")


class UndefinedReferencePass(AdlPass):
    """ADL001: every manager a primitive names and every action word an
    edge binds must resolve — the synthesiser would otherwise fail with
    a Python-level error pointing at generated code."""

    code = "ADL001"
    rule = "undefined-reference"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        for machine in ctx.processor.machines:
            for edge in machine.edges:
                for prim in edge.primitives:
                    if prim.op not in _MANAGER_OPS:
                        continue
                    if prim.manager is None:
                        yield self.diag(
                            ctx,
                            f"primitive {prim.op} needs a manager operand",
                            edge=edge, lineno=prim.lineno,
                        )
                    elif prim.manager not in ctx.manager_names:
                        yield self.diag(
                            ctx,
                            f"primitive {prim.op} references undeclared "
                            f"manager {prim.manager!r}",
                            edge=edge, lineno=prim.lineno,
                        )
                for action in edge.actions:
                    if action not in ACTION_NAMES:
                        yield self.diag(
                            ctx,
                            f"unknown action {action!r} (vocabulary: "
                            f"{', '.join(sorted(ACTION_NAMES))})",
                            edge=edge,
                        )


class DuplicateDeclarationPass(AdlPass):
    """ADL002: duplicate manager, state or machine names.  Later
    declarations silently win in the synthesiser's name maps, so the
    author's first declaration becomes dead weight."""

    code = "ADL002"
    rule = "duplicate-declaration"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        seen: Dict[str, int] = {}
        for manager in ctx.processor.managers:
            if manager.name in seen:
                yield self.diag(
                    ctx,
                    f"duplicate manager {manager.name!r} "
                    f"(first declared at line {seen[manager.name]})",
                    lineno=manager.lineno,
                )
            elif manager.lineno is not None:
                seen[manager.name] = manager.lineno
        machines_seen: Dict[str, int] = {}
        for machine in ctx.processor.machines:
            if machine.name in machines_seen:
                yield self.diag(
                    ctx,
                    f"duplicate machine {machine.name!r} "
                    f"(first declared at line {machines_seen[machine.name]})",
                    lineno=machine.lineno,
                )
            elif machine.lineno is not None:
                machines_seen[machine.name] = machine.lineno
            states_seen: Dict[str, int] = {}
            for state in machine.states:
                if state.name in states_seen:
                    yield self.diag(
                        ctx,
                        f"duplicate state {state.name!r} in machine "
                        f"{machine.name!r} (first declared at line "
                        f"{states_seen[state.name]})",
                        state=state.name, lineno=state.lineno,
                    )
                elif state.lineno is not None:
                    states_seen[state.name] = state.lineno


class DanglingEdgePass(AdlPass):
    """ADL003: edge endpoints must name declared states of their own
    machine; a dangling endpoint is an edge into nothing."""

    code = "ADL003"
    rule = "dangling-edge"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        for machine in ctx.processor.machines:
            names = ctx.state_names[machine.name]
            for edge in machine.edges:
                for endpoint in (edge.src, edge.dst):
                    if endpoint not in names:
                        yield self.diag(
                            ctx,
                            f"edge {edge.src}->{edge.dst} references "
                            f"undeclared state {endpoint!r}",
                            edge=edge,
                        )


class InitialStatePass(AdlPass):
    """ADL004: exactly one initial state per machine, and every state
    reachable from it — the spec constructor enforces both with a raise,
    so catching them here keeps the error on the author's line."""

    code = "ADL004"
    rule = "initial-state"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        for machine in ctx.processor.machines:
            initials = [s for s in machine.states if s.initial]
            if not initials:
                yield self.diag(
                    ctx,
                    f"machine {machine.name!r} declares no initial state",
                    lineno=machine.lineno,
                )
                continue
            for extra in initials[1:]:
                yield self.diag(
                    ctx,
                    f"machine {machine.name!r} declares a second initial "
                    f"state {extra.name!r} (first: {initials[0].name!r})",
                    state=extra.name, lineno=extra.lineno,
                )
            names = ctx.state_names[machine.name]
            adjacency: Dict[str, Set[str]] = {}
            for edge in machine.edges:
                if edge.src in names and edge.dst in names:
                    adjacency.setdefault(edge.src, set()).add(edge.dst)
            reachable = {initials[0].name}
            frontier = [initials[0].name]
            while frontier:
                for successor in adjacency.get(frontier.pop(), ()):
                    if successor not in reachable:
                        reachable.add(successor)
                        frontier.append(successor)
            for state in machine.states:
                if state.name not in reachable and not state.initial:
                    yield self.diag(
                        ctx,
                        f"state {state.name!r} is unreachable from initial "
                        f"state {initials[0].name!r}",
                        state=state.name, lineno=state.lineno,
                    )


class IdentifierPass(AdlPass):
    """ADL005: identifier words must come from the fixed vocabulary,
    ``allocate_many`` must carry one (it has no meaning without), and an
    identifier on an op that ignores it is author confusion."""

    code = "ADL005"
    rule = "identifier"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        for machine in ctx.processor.machines:
            for edge in machine.edges:
                for prim in edge.primitives:
                    if prim.ident is not None and prim.ident not in IDENT_WORDS:
                        yield self.diag(
                            ctx,
                            f"unknown identifier word {prim.ident!r} "
                            f"(expected one of "
                            f"{'/'.join(sorted(IDENT_WORDS))})",
                            edge=edge, lineno=prim.lineno,
                        )
                    elif prim.op == "allocate_many" and prim.ident is None:
                        yield self.diag(
                            ctx,
                            f"allocate_many {prim.manager or ''} needs an "
                            f"identifier ({'/'.join(sorted(IDENT_WORDS))})",
                            edge=edge, lineno=prim.lineno,
                        )
                    elif prim.ident is not None and prim.op in _IDENT_IGNORED_OPS:
                        yield self.diag(
                            ctx,
                            f"identifier {prim.ident!r} on {prim.op} is "
                            f"ignored by the synthesiser",
                            severity=Severity.WARNING,
                            edge=edge, lineno=prim.lineno,
                        )


class CapacityPass(AdlPass):
    """ADL006: capacity contradictions.  ``allocate_many`` grants one
    token per identifier element; against a capacity-1 manager (stage,
    fetch, reset, or a pool smaller than 2) a multi-register operation
    can never issue — the machine wedges at runtime with no hint why."""

    code = "ADL006"
    rule = "capacity"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        for manager in ctx.processor.managers:
            size = manager.params.get("size")
            if manager.kind == "pool" and size is not None and size <= 0:
                yield self.diag(
                    ctx,
                    f"pool manager {manager.name!r} declares nonpositive "
                    f"size {size}",
                    lineno=manager.lineno,
                )
            regs = manager.params.get("regs")
            if manager.kind == "regfile" and regs is not None and regs <= 0:
                yield self.diag(
                    ctx,
                    f"regfile manager {manager.name!r} declares nonpositive "
                    f"regs {regs}",
                    lineno=manager.lineno,
                )
        for machine in ctx.processor.machines:
            for edge in machine.edges:
                for prim in edge.primitives:
                    if prim.op != "allocate_many" or prim.manager is None:
                        continue
                    manager = ctx.managers.get(prim.manager)
                    if manager is None:
                        continue  # ADL001's finding
                    if manager.kind in ("stage", "fetch", "reset"):
                        yield self.diag(
                            ctx,
                            f"allocate_many against capacity-1 "
                            f"{manager.kind} manager {manager.name!r} can "
                            f"never satisfy a multi-token identifier",
                            edge=edge, lineno=prim.lineno,
                        )
                    elif manager.kind == "pool" and manager.params.get("size", 1) < 2:
                        yield self.diag(
                            ctx,
                            f"allocate_many against pool manager "
                            f"{manager.name!r} of size "
                            f"{manager.params.get('size', 1)} contradicts "
                            f"its multi-token identifier",
                            edge=edge, lineno=prim.lineno,
                        )


class TokenBalancePass(AdlPass):
    """ADL007: abstract token balance per machine.

    Walks every acyclic-distinct slot-set flow from the initial state:
    allocate-forms bind a slot, release-forms drop one, ``discard``
    clears (one slot or all).  Two defects surface:

    * an edge returning to the initial state with slots still held —
      the OSM invariant "the token buffer is empty in the initial
      state" is violated, i.e. an allocate some path never releases (a
      source-level precursor of osmlint's OSM001 over the synthesized
      spec);
    * a release of a slot that no path into the edge ever allocated —
      at best dead, at worst a misspelt slot name.
    """

    code = "ADL007"
    rule = "token-balance"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        for machine in ctx.processor.machines:
            yield from self._run_machine(ctx, machine)

    def _run_machine(self, ctx: AdlContext, machine: MachineDecl) -> Iterator[Diagnostic]:
        initials = [s for s in machine.states if s.initial]
        names = ctx.state_names[machine.name]
        edges = [
            e for e in machine.edges if e.src in names and e.dst in names
        ]
        # a broken state graph already has ADL003/ADL004 findings;
        # running the flow over it would only cascade noise
        if len(initials) != 1 or len(edges) != len(machine.edges):
            return
        initial = initials[0].name
        out_edges: Dict[str, List[EdgeDecl]] = {}
        for edge in edges:
            out_edges.setdefault(edge.src, []).append(edge)

        held: Dict[str, Set[FrozenSet[str]]] = {initial: {frozenset()}}
        worklist: List[Tuple[str, FrozenSet[str]]] = [(initial, frozenset())]
        reported: Set[Tuple[str, str, FrozenSet[str]]] = set()
        while worklist:
            state, slots = worklist.pop()
            for edge in out_edges.get(state, ()):
                after = set(slots)
                for prim in edge.primitives:
                    if prim.op in ("allocate", "allocate_many"):
                        after.add(_alloc_slot(prim))
                    elif prim.op in _SLOT_OPS:
                        slot = prim.manager
                        if slot is None:
                            continue
                        if slot not in after:
                            key = ("release", self.qualname_of(ctx, edge), frozenset([slot]))
                            if key not in reported:
                                reported.add(key)
                                yield self.diag(
                                    ctx,
                                    f"{prim.op} of slot {slot!r} which no "
                                    f"path into this edge allocates",
                                    edge=edge, lineno=prim.lineno,
                                )
                        else:
                            after.discard(slot)
                    elif prim.op == "discard":
                        if prim.manager is None:
                            after.clear()
                        else:
                            after.discard(prim.manager)
                frozen = frozenset(after)
                if edge.dst == initial and frozen:
                    key = ("leak", self.qualname_of(ctx, edge), frozen)
                    if key not in reported:
                        reported.add(key)
                        held_list = ", ".join(sorted(frozen))
                        yield self.diag(
                            ctx,
                            f"returns to initial state {initial!r} with "
                            f"slot(s) {held_list} still held "
                            f"(allocate without release)",
                            edge=edge,
                        )
                seen = held.setdefault(edge.dst, set())
                if frozen not in seen:
                    seen.add(frozen)
                    worklist.append((edge.dst, frozen))

    @staticmethod
    def qualname_of(ctx: AdlContext, edge: EdgeDecl) -> str:
        return ctx.qualname(edge)


class EdgePriorityPass(AdlPass):
    """ADL008: shadowed and ambiguous sibling edges.

    Outgoing edges of a state fire highest-priority-first, declaration
    order breaking ties.  An *always-enabled* edge (no primitives — the
    guard is vacuously true) therefore shadows every sibling ranked
    after it: they can never fire.  And two siblings with identical
    priority *and* identical conditions are ambiguous — only the
    declaration order picks the winner, which is almost never what the
    author meant."""

    code = "ADL008"
    rule = "edge-priority"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        for machine in ctx.processor.machines:
            by_src: Dict[str, List[EdgeDecl]] = {}
            for edge in machine.edges:
                by_src.setdefault(edge.src, []).append(edge)
            for src, siblings in by_src.items():
                # effective firing order: priority desc, then declaration
                ranked = sorted(
                    siblings, key=lambda e: -e.priority
                )  # sort is stable: declaration order breaks ties
                blocker = None
                for edge in ranked:
                    if blocker is not None:
                        yield self.diag(
                            ctx,
                            f"unreachable: always-enabled edge "
                            f"{blocker.src}->{blocker.dst} (priority "
                            f"{blocker.priority}) fires first on every "
                            f"cycle",
                            severity=Severity.WARNING,
                            edge=edge,
                        )
                        continue
                    if not edge.primitives:
                        blocker = edge
                seen: Dict[Tuple, EdgeDecl] = {}
                for edge in siblings:
                    signature = (
                        edge.priority,
                        tuple(
                            (p.op, p.manager, p.ident, p.slot)
                            for p in edge.primitives
                        ),
                    )
                    first = seen.get(signature)
                    if first is not None and edge.primitives:
                        yield self.diag(
                            ctx,
                            f"ambiguous sibling of "
                            f"{first.src}->{first.dst}: identical "
                            f"condition and priority {edge.priority}; "
                            f"declaration order alone decides",
                            severity=Severity.WARNING,
                            edge=edge,
                        )
                    else:
                        seen.setdefault(signature, edge)


class UnusedDeclarationPass(AdlPass):
    """ADL009: declarations the synthesiser will silently ignore —
    managers no primitive references, processor params outside the
    ``osms`` vocabulary, manager params the kind does not consume, and
    ``forwarding`` on non-regfile managers."""

    code = "ADL009"
    rule = "unused-declaration"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        referenced: Set[str] = set()
        for machine in ctx.processor.machines:
            for edge in machine.edges:
                for prim in edge.primitives:
                    if prim.manager is not None:
                        referenced.add(prim.manager)
                    if prim.slot is not None:
                        referenced.add(prim.slot)
        for manager in ctx.processor.managers:
            if manager.name not in referenced:
                yield self.diag(
                    ctx,
                    f"manager {manager.name!r} is never referenced by any "
                    f"primitive",
                    severity=Severity.WARNING,
                    lineno=manager.lineno,
                )
            known = _KNOWN_MANAGER_PARAMS.get(manager.kind, frozenset())
            for key in manager.params:
                if key not in known:
                    yield self.diag(
                        ctx,
                        f"param {key!r} on {manager.kind} manager "
                        f"{manager.name!r} is ignored by the synthesiser",
                        severity=Severity.WARNING,
                        lineno=manager.lineno,
                    )
            if manager.forwarding and manager.kind != "regfile":
                yield self.diag(
                    ctx,
                    f"'forwarding' on {manager.kind} manager "
                    f"{manager.name!r} is ignored (regfile-only)",
                    severity=Severity.WARNING,
                    lineno=manager.lineno,
                )
        for name in ctx.processor.params:
            if name not in _KNOWN_PROCESSOR_PARAMS:
                yield self.diag(
                    ctx,
                    f"processor param {name!r} is ignored by the "
                    f"synthesiser (known: "
                    f"{', '.join(sorted(_KNOWN_PROCESSOR_PARAMS))})",
                    severity=Severity.WARNING,
                    lineno=ctx.processor.param_lines.get(name),
                )
