"""adlcheck engine: pass protocol, shared context, suppression, driver.

An ADL pass is a small object with a stable ``code`` (``ADL001``…), a
``rule`` slug and a :meth:`AdlPass.run` generator over one parsed
:class:`~repro.adl.ast.ProcessorDecl`.  Passes share an
:class:`AdlContext` that precomputes the facts most rules need (manager
maps, per-machine state sets, stable edge qualnames) and converts
declaration line numbers into :class:`~repro.analysis.diagnostics
.SourceSpan` provenance, so every finding points at the ADL line the
author wrote.

Suppression mirrors osmlint's: a finding anchored to an edge whose
``allow`` clause names the rule code — or a description whose
processor-level ``allow`` names it — is kept in the report but marked
``suppressed`` and excluded from the pass/fail verdict.

The drivers:

* :func:`adlcheck_processor` — analyze an already-parsed AST;
* :func:`adlcheck_source` — parse (syntax only) and analyze; a syntax
  error becomes a single located ``ADL000`` finding instead of an
  exception, so broken files still produce a report.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ...adl.ast import EdgeDecl, MachineDecl, ProcessorDecl
from ...adl.parser import AdlError, parse
from ..diagnostics import Diagnostic, Report, Severity, SourceSpan


class AdlContext:
    """Per-run shared facts over one parsed processor description."""

    def __init__(self, processor: ProcessorDecl, unit: Optional[str] = None):
        self.processor = processor
        #: name diagnostics are keyed by (file path or processor name)
        self.unit = unit or processor.name
        self.manager_names = {m.name for m in processor.managers}
        self.managers = {m.name: m for m in processor.managers}
        #: machine name -> declared state-name set
        self.state_names: Dict[str, set] = {
            m.name: {s.name for s in m.states} for m in processor.machines
        }
        #: id(edge) -> stable ``src->dst@index`` qualname (index within
        #: the machine's declaration order — matches the qualnames of the
        #: spec edges the synthesiser builds, so edge-level suppressions
        #: apply to remapped synth-closure findings too)
        self._qualnames: Dict[int, str] = {}
        #: qualname -> allow codes for suppression resolution
        self.edge_allow: Dict[str, List[str]] = {}
        for machine in processor.machines:
            for index, edge in enumerate(machine.edges):
                qualname = f"{edge.src}->{edge.dst}@{index}"
                self._qualnames[id(edge)] = qualname
                self.edge_allow[qualname] = list(edge.allow)

    def qualname(self, edge: EdgeDecl) -> str:
        return self._qualnames[id(edge)]

    def span(self, lineno: Optional[int]) -> Optional[SourceSpan]:
        if lineno is None:
            return None
        return SourceSpan(self.unit, lineno)


class AdlPass:
    """Base class of all adlcheck rules."""

    #: stable rule code, e.g. "ADL001"
    code: str = "ADL000"
    #: short rule slug, e.g. "undefined-reference"
    rule: str = "abstract"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    # -- diagnostic constructor -------------------------------------------

    def diag(
        self,
        ctx: AdlContext,
        message: str,
        severity: Severity = Severity.ERROR,
        state: Optional[str] = None,
        edge: Optional[EdgeDecl] = None,
        lineno: Optional[int] = None,
    ) -> Diagnostic:
        """Build a finding located in *ctx*'s description; an edge
        anchor implies its source-state location unless overridden."""
        if edge is not None and state is None:
            state = edge.src
        if lineno is None and edge is not None:
            lineno = edge.lineno
        return Diagnostic(
            code=self.code,
            rule=self.rule,
            severity=severity,
            spec=ctx.unit,
            message=message,
            state=state,
            edge=ctx.qualname(edge) if edge is not None else None,
            source_span=ctx.span(lineno),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.code})"


def default_passes(synth_closure: bool = True) -> List[AdlPass]:
    """Fresh instances of the bundled rules, in code order."""
    from .closure import SynthClosurePass
    from .passes import (
        CapacityPass,
        DanglingEdgePass,
        DuplicateDeclarationPass,
        EdgePriorityPass,
        IdentifierPass,
        InitialStatePass,
        TokenBalancePass,
        UndefinedReferencePass,
        UnusedDeclarationPass,
    )

    passes: List[AdlPass] = [
        UndefinedReferencePass(),
        DuplicateDeclarationPass(),
        DanglingEdgePass(),
        InitialStatePass(),
        IdentifierPass(),
        CapacityPass(),
        TokenBalancePass(),
        EdgePriorityPass(),
        UnusedDeclarationPass(),
    ]
    if synth_closure:
        passes.append(SynthClosurePass())
    return passes


#: cache behind the lazy ``DEFAULT_PASSES`` attribute below
_DEFAULT_PASSES_CACHE: Optional[Dict[str, type]] = None


def __getattr__(name: str):
    # DEFAULT_PASSES (code -> pass class, for --rules filters) is built
    # lazily: computing it imports .closure, which imports this module —
    # an eager module-level dict comprehension would be circular.
    if name == "DEFAULT_PASSES":
        global _DEFAULT_PASSES_CACHE
        if _DEFAULT_PASSES_CACHE is None:
            _DEFAULT_PASSES_CACHE = {p.code: type(p) for p in default_passes()}
        return _DEFAULT_PASSES_CACHE
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: rule code reserved for parse failures (reported, never run as a pass)
SYNTAX_CODE = "ADL000"


def adlcheck_processor(
    processor: ProcessorDecl,
    unit: Optional[str] = None,
    passes: Optional[Sequence[AdlPass]] = None,
    codes: Optional[Iterable[str]] = None,
    synth_closure: bool = True,
) -> Report:
    """Run the description-level rules over a parsed AST.

    Parameters
    ----------
    passes:
        Pass instances to run; defaults to the bundled ADL001–ADL010 set.
    codes:
        When given, restrict the default set to these rule codes.
    synth_closure:
        Include the ADL010 synthesis-closure pass (synthesizes the
        description and folds span-remapped downstream findings in).
        Ignored when explicit *passes* are given.
    """
    if passes is None:
        passes = default_passes(synth_closure=synth_closure)
    if codes is not None:
        wanted = set(codes)
        unknown = wanted - {p.code for p in passes}
        if unknown:
            raise ValueError(f"unknown adlcheck rule code(s): {sorted(unknown)}")
        passes = [p for p in passes if p.code in wanted]

    ctx = AdlContext(processor, unit=unit)
    report = Report(spec=ctx.unit, tool="adlcheck")
    spec_allow = set(processor.allow)
    for adl_pass in passes:
        report.passes_run.append(adl_pass.code)
        for diagnostic in adl_pass.run(ctx):
            if diagnostic.code in spec_allow:
                diagnostic.suppressed = True
            elif diagnostic.edge is not None and diagnostic.code in ctx.edge_allow.get(
                diagnostic.edge, ()
            ):
                diagnostic.suppressed = True
            report.diagnostics.append(diagnostic)
    report.sort()
    return report


def adlcheck_source(
    text: str,
    unit: Optional[str] = None,
    passes: Optional[Sequence[AdlPass]] = None,
    codes: Optional[Iterable[str]] = None,
    synth_closure: bool = True,
) -> Report:
    """Parse *text* (syntax only) and run the description-level rules.

    A syntax error does not raise: the report carries one located
    ``ADL000`` finding so CLI and CI consumers always get the shared
    schema back.
    """
    try:
        processor = parse(text, validate=False)
    except AdlError as exc:
        report = Report(spec=unit or "<adl>", tool="adlcheck")
        report.diagnostics.append(
            Diagnostic(
                code=SYNTAX_CODE,
                rule="syntax",
                severity=Severity.ERROR,
                spec=unit or "<adl>",
                message=str(exc),
                source_span=(
                    SourceSpan(unit or "<adl>", exc.lineno)
                    if exc.lineno is not None
                    else None
                ),
            )
        )
        return report
    return adlcheck_processor(
        processor,
        unit=unit,
        passes=passes,
        codes=codes,
        synth_closure=synth_closure,
    )
