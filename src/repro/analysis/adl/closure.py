"""ADL010: synthesis closure — the whole-toolchain rule.

The nine source-level rules reason about the description *as text*.
This pass closes the loop: it synthesizes the description into a
runnable model (over a two-instruction stub program — spec structure is
program-independent) and runs the existing OSM-layer pipeline over the
result:

* **osmlint** — token-flow dataflow rules OSM001–OSM008;
* **osmcheck** — explicit-state model checking (deadlock, livelock,
  capacity, buffer hygiene) with ``n_osms=2``;
* **effectcheck** — effect/purity contracts EFF001–EFF008 over the
  synthesized edge code.

Every active downstream finding is *remapped*: re-coded ``ADL010``
(rule ``synth-closure``), the original ``tool:CODE`` preserved in the
message, and — via the ``source_span`` provenance the synthesiser
stamps on generated states and edges — located at the ADL line of the
declaration it arose from.  An author who writes a deadlocking guard
sees ``mydesc.adl:14: error: ADL010 (synth-closure): [check:CHK001]
deadlock ... (at mydesc:14)``, not a trace into generated code.

A description that fails to synthesize at all (which the source-level
rules should have predicted, but defence in depth) yields one ADL010
finding carrying the synthesis error.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ...adl.ast import ProcessorDecl
from ..diagnostics import Diagnostic, Severity, SourceSpan
from .engine import AdlContext, AdlPass

#: bound on the model-check exploration inside the closure; generous for
#: two OSMs over the pipeline-sized machines descriptions declare
_MAX_STATES = 50_000


def _stub_program():
    """A minimal ARM program to instantiate the synthesized model over
    (the spec's structure is program-independent)."""
    from ...isa.arm import assemble

    return assemble("""
    .text
_start:
    mov r0, #0
    swi #0
""")


class SynthClosurePass(AdlPass):
    """ADL010: synthesize and run lint + check + effects, remapping
    every downstream finding back onto the description's source lines."""

    code = "ADL010"
    rule = "synth-closure"

    def run(self, ctx: AdlContext) -> Iterator[Diagnostic]:
        try:
            spec = self._synthesize(ctx.processor)
        except Exception as exc:  # noqa: BLE001 — any failure is the finding
            yield Diagnostic(
                code=self.code,
                rule=self.rule,
                severity=Severity.ERROR,
                spec=ctx.unit,
                message=f"description does not synthesize: {exc}",
                source_span=ctx.span(getattr(exc, "lineno", None)),
            )
            return

        spans = self._span_index(ctx, spec)
        yield from self._remap(ctx, "lint", self._lint(spec), spans)
        yield from self._remap(ctx, "check", self._check(spec), spans)
        yield from self._remap(ctx, "effects", self._effects(spec), spans)

    # -- synthesis ---------------------------------------------------------

    @staticmethod
    def _synthesize(processor: ProcessorDecl):
        from ...adl.synth import SynthesizedModel

        return SynthesizedModel(processor, _stub_program()).spec

    # -- downstream tools --------------------------------------------------

    @staticmethod
    def _lint(spec):
        from ..lint import lint_spec

        return lint_spec(spec).active

    @staticmethod
    def _check(spec):
        from ..check import check_spec

        report = check_spec(spec, n_osms=2, max_states=_MAX_STATES)
        return [d for d in report.diagnostics if not d.suppressed]

    @staticmethod
    def _effects(spec):
        from ..effects import effects_spec

        return effects_spec(spec).active

    # -- remapping ---------------------------------------------------------

    @staticmethod
    def _span_index(
        ctx: AdlContext, spec
    ) -> Tuple[Dict[str, SourceSpan], Dict[str, SourceSpan]]:
        """(edge qualname -> span, state name -> span) over *spec*,
        lifted from the provenance tuples the synthesiser stamped.

        Spans are re-keyed to *ctx*'s unit: the synthesiser stamps the
        processor name, but the author checked a file (or registry
        name) and that is where the line number points."""
        edge_spans: Dict[str, SourceSpan] = {}
        state_spans: Dict[str, SourceSpan] = {}
        for edge in spec.edges:
            span = SourceSpan.from_obj(getattr(edge, "source_span", None))
            if span is not None:
                edge_spans[edge.qualname] = SourceSpan(ctx.unit, span.line)
        for state in spec.states.values():
            span = SourceSpan.from_obj(getattr(state, "source_span", None))
            if span is not None:
                state_spans[state.name] = SourceSpan(ctx.unit, span.line)
        return edge_spans, state_spans

    def _remap(
        self, ctx: AdlContext, tool: str, diagnostics, spans
    ) -> Iterator[Diagnostic]:
        edge_spans, state_spans = spans
        for original in diagnostics:
            span: Optional[SourceSpan] = None
            if original.edge is not None:
                span = edge_spans.get(original.edge)
            if span is None and original.state is not None:
                span = state_spans.get(original.state)
            yield Diagnostic(
                code=self.code,
                rule=self.rule,
                severity=original.severity,
                spec=ctx.unit,
                message=f"[{tool}:{original.code}] {original.message}",
                state=original.state,
                edge=original.edge,
                source_span=span,
            )
