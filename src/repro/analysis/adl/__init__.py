"""adlcheck: source-level semantic analysis of ADL descriptions.

The sixth analysis front end.  Where osmlint, osmcheck, isaaudit,
effectcheck and transcheck analyze the *synthesized* artifacts (machine
specs, decoders, generated code), adlcheck analyzes the architecture
description **as the author wrote it** — the parsed
:class:`~repro.adl.ast.ProcessorDecl` AST, before synthesis — so every
finding lands on an ADL source line.

Rules ``ADL001``–``ADL009`` (:mod:`.passes`) are purely syntactic and
semantic over the AST: undefined references, duplicate declarations,
dangling edges, initial-state defects, identifier misuse, capacity
contradictions, abstract token balance, edge-priority shadowing and
unused declarations.  ``ADL010`` (:mod:`.closure`) is the synthesis
closure: it builds the model the description denotes and folds the
findings of the downstream OSM-layer tools back in, remapped via
source-span provenance onto the originating declarations.

Entry points:

>>> from repro.analysis.adl import adlcheck_source
>>> report = adlcheck_source(text, unit="mydesc.adl")
>>> report.ok
>>> print(report.render_text())

or from the command line: ``repro adlcheck <name|file> [--json]``.
"""

from .closure import SynthClosurePass
from .engine import (
    DEFAULT_PASSES,
    SYNTAX_CODE,
    AdlContext,
    AdlPass,
    adlcheck_processor,
    adlcheck_source,
    default_passes,
)
from .registry import (
    available_descriptions,
    description_source,
    register_description,
)

__all__ = [
    "AdlContext",
    "AdlPass",
    "DEFAULT_PASSES",
    "SYNTAX_CODE",
    "SynthClosurePass",
    "adlcheck_processor",
    "adlcheck_source",
    "available_descriptions",
    "default_passes",
    "description_source",
    "register_description",
]
