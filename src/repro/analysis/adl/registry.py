"""Registry of analyzable ADL description sources.

The spec registry (:mod:`repro.analysis.registry`) maps names to
*synthesized* specs; adlcheck needs the description **source text**
(line numbers and all), so it keeps its own parallel registry keyed by
the same ``adl-*`` names.  ``repro adlcheck <name>`` and the ``repro
analyze`` umbrella resolve names here first and fall back to treating
the argument as a file path.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = [
    "available_descriptions",
    "description_source",
    "register_description",
]

_DESCRIPTIONS: Dict[str, str] = {}


def register_description(name: str, text: str) -> None:
    """Register (or replace) a named ADL description source."""
    _DESCRIPTIONS[name] = text


def available_descriptions() -> List[str]:
    """Names of every registered ADL description."""
    return sorted(_DESCRIPTIONS)


def description_source(name: str) -> str:
    """Source text of the registered description *name*."""
    try:
        return _DESCRIPTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown description {name!r}; available: "
            f"{', '.join(available_descriptions())}"
        ) from None


def _register_bundled() -> None:
    from ...adl.synth import PIPELINE5_ADL, STRONGARM_ADL

    register_description("adl-pipeline5", PIPELINE5_ADL)
    register_description("adl-strongarm", STRONGARM_ADL)


_register_bundled()
