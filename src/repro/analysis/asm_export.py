"""Export OSM specifications as abstract state machines (Section 6).

"The OSM model is highly declarative.  The state machines in the model
can be expressed in the ASM [abstract state machine] formalism.  Thus it
is possible to extract model properties for formal verification
purposes."

:func:`export_asm` walks a :class:`~repro.core.MachineSpec` and produces
the guarded-update rule system: one rule per edge, whose guard is the
conjunction of the edge's token-transaction primitives and whose update
moves the control state and transforms the token buffer.  The output is
both a structured form (for the analysis passes in this package) and a
human-readable rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.osm import MachineSpec
from ..core.primitives import (
    Allocate,
    AllocateMany,
    Discard,
    Guard,
    Inquire,
    Release,
    ReleaseMany,
)


@dataclass
class AsmRule:
    """One guarded-update rule: ``if guard then update``."""

    name: str
    source: str
    target: str
    priority: int
    guards: List[str] = field(default_factory=list)
    updates: List[str] = field(default_factory=list)
    #: (kind, manager name or slot) pairs for machine analysis
    transactions: List[Tuple[str, str]] = field(default_factory=list)

    def render(self) -> str:
        guard_text = " and ".join(["state = " + self.source] + self.guards)
        update_lines = [f"    state := {self.target}"] + [
            f"    {u}" for u in self.updates
        ]
        return f"rule {self.name}:\n  if {guard_text} then\n" + "\n".join(update_lines)


def export_asm(spec: MachineSpec) -> List[AsmRule]:
    """The ASM rule system equivalent to *spec*."""
    rules = []
    for index, edge in enumerate(spec.edges):
        rule = AsmRule(
            name=edge.label or f"r{index}",
            source=edge.src.name,
            target=edge.dst.name,
            priority=edge.priority,
        )
        for primitive in edge.condition.primitives:
            if isinstance(primitive, (Allocate, AllocateMany)):
                manager = primitive.manager.name
                rule.guards.append(f"available({manager})")
                rule.updates.append(f"buffer[{primitive.slot}] := grant({manager})")
                rule.transactions.append(("allocate", manager))
            elif isinstance(primitive, Inquire):
                manager = primitive.manager.name
                rule.guards.append(f"inquire({manager})")
                rule.transactions.append(("inquire", manager))
            elif isinstance(primitive, Release):
                rule.guards.append(f"accepts_return({primitive.slot})")
                rule.updates.append(f"buffer[{primitive.slot}] := free")
                rule.transactions.append(("release", primitive.slot))
            elif isinstance(primitive, ReleaseMany):
                rule.guards.append(f"accepts_return({primitive.prefix}*)")
                rule.updates.append(f"buffer[{primitive.prefix}*] := free")
                rule.transactions.append(("release", primitive.prefix))
            elif isinstance(primitive, Discard):
                slot = primitive.slot or "*"
                rule.updates.append(f"buffer[{slot}] := free")
                rule.transactions.append(("discard", slot))
            elif isinstance(primitive, Guard):
                rule.guards.append(f"predicate({primitive.label})")
                rule.transactions.append(("guard", primitive.label))
            else:
                rule.guards.append(f"predicate({type(primitive).__name__})")
                rule.transactions.append(("guard", type(primitive).__name__))
        rules.append(rule)
    return rules


def render_asm(spec: MachineSpec) -> str:
    """Human-readable ASM rendering of the whole specification."""
    header = (
        f"asm {spec.name}\n"
        f"  control states: {', '.join(sorted(spec.states))}\n"
        f"  initial: {spec.initial.name if spec.initial else '?'}\n"
    )
    body = "\n\n".join(rule.render() for rule in export_asm(spec))
    return header + "\n" + body
