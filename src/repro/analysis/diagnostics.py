"""Diagnostics machinery shared by every analysis front end.

A :class:`Diagnostic` is one finding: a stable rule code (``OSM001``…,
``CHK001``…, ``ISA001``…), a severity, a location (for OSM-layer tools a
``spec:state:edge`` triple; for the ISA auditor a ``target:class:arm``
triple reusing the same slots) and a human-readable message.  A
:class:`Report` aggregates the findings of one run of one tool over one
analysis subject and renders them as text (one finding per line,
compiler style) or JSON (for CI and tooling).

Every tool — ``repro lint`` (osmlint), ``repro check`` (osmcheck),
``repro audit`` (isaaudit), ``repro effects`` (effectcheck),
``repro certify`` (transcheck) and ``repro adlcheck`` — emits this one
JSON schema.  Reports carry a ``tool`` name and a ``schema_version`` so
downstream consumers can dispatch without sniffing rule-code prefixes.

A finding over a *generated* artifact (a spec synthesized from an ADL
description) may additionally carry a :class:`SourceSpan` — the source
unit and line of the declaration it maps back to — rendered as a
``description.adl:12`` style suffix and serialized under
``source_span``.  Hand-written subjects leave it ``None``.

Suppression: a finding attached to an edge/arm whose allow set contains
the rule code — or whose subject-level allow set contains it — is marked
``suppressed``.  Suppressed findings stay visible in the JSON output but
do not count towards :attr:`Report.ok`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

#: version of the JSON finding/report schema emitted by every tool
#: (v3 added the optional per-finding ``source_span``)
SCHEMA_VERSION = 3


@dataclass(frozen=True)
class SourceSpan:
    """Provenance of a finding in a source description.

    ``unit`` names the description (the ADL processor name or a file
    path), ``line`` is the 1-based line of the originating declaration.
    The synthesiser stamps ``(unit, line)`` tuples onto the spec states
    and edges it builds; analysis front ends lift them into this type.
    """

    unit: str
    line: int

    def render(self) -> str:
        return f"{self.unit}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {"unit": self.unit, "line": self.line}

    @classmethod
    def from_obj(cls, obj) -> Optional["SourceSpan"]:
        """Lift a ``(unit, line)`` tuple / SourceSpan / None."""
        if obj is None or isinstance(obj, cls):
            return obj
        unit, line = obj
        return cls(str(unit), int(line))


class Severity(Enum):
    """Finding severity; ``ERROR`` findings gate the build."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: render/sort order: errors first
_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass
class Diagnostic:
    """One finding with a stable rule code and a subject location.

    The location slots are named after the OSM-layer tools (``spec``,
    ``state``, ``edge``); the ISA auditor maps its audit target, the
    instruction class and the decoder arm onto the same three slots so
    all tools share one schema.
    """

    code: str                      #: stable rule code, e.g. "OSM001"
    rule: str                      #: short rule name, e.g. "token-leak"
    severity: Severity
    spec: str                      #: analysis subject (spec or audit target)
    message: str
    state: Optional[str] = None    #: state / instruction class
    edge: Optional[str] = None     #: stable edge qualname / decoder arm
    suppressed: bool = False
    #: source-description provenance (ADL-synthesized subjects only)
    source_span: Optional[SourceSpan] = None

    @property
    def location(self) -> str:
        """``spec:state:edge`` with absent parts elided."""
        parts = [self.spec]
        if self.state is not None:
            parts.append(self.state)
        if self.edge is not None:
            parts.append(self.edge)
        return ":".join(parts)

    def render(self) -> str:
        tag = " [suppressed]" if self.suppressed else ""
        at = f" (at {self.source_span.render()})" if self.source_span else ""
        return (f"{self.location}: {self.severity}: {self.code} "
                f"({self.rule}): {self.message}{at}{tag}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "rule": self.rule,
            "severity": str(self.severity),
            "spec": self.spec,
            "state": self.state,
            "edge": self.edge,
            "message": self.message,
            "suppressed": self.suppressed,
            "source_span": (
                self.source_span.to_dict() if self.source_span else None
            ),
        }


@dataclass
class Report:
    """All findings of one tool run over one analysis subject."""

    spec: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: codes of the passes that ran (even when they found nothing)
    passes_run: List[str] = field(default_factory=list)
    #: emitting tool ("lint", "check", "audit")
    tool: str = "lint"

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def sort(self) -> None:
        self.diagnostics.sort(
            key=lambda d: (_SEVERITY_ORDER[d.severity], d.code, d.state or "", d.edge or "")
        )

    # -- queries -----------------------------------------------------------

    @property
    def active(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.active if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.active if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no unsuppressed error-severity finding exists."""
        return not self.errors

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def counts(self) -> Dict[str, int]:
        totals = {str(s): 0 for s in Severity}
        for diagnostic in self.active:
            totals[str(diagnostic.severity)] += 1
        return totals

    # -- renderers ---------------------------------------------------------

    def render_text(self, show_suppressed: bool = False) -> str:
        lines = [
            d.render()
            for d in self.diagnostics
            if show_suppressed or not d.suppressed
        ]
        counts = self.counts()
        n_suppressed = sum(1 for d in self.diagnostics if d.suppressed)
        summary = (
            f"{self.spec}: {counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info, {n_suppressed} suppressed "
            f"({len(self.passes_run)} passes)"
        )
        return "\n".join(lines + [summary])

    def to_dict(self) -> Dict[str, object]:
        return {
            "tool": self.tool,
            "schema_version": SCHEMA_VERSION,
            "spec": self.spec,
            "passes": list(self.passes_run),
            "counts": self.counts(),
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


#: historical name from the osmlint era; the class is tool-agnostic now
LintReport = Report
