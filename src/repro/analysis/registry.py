"""Registry of analyzable specifications.

Maps stable names to zero-argument builders returning a fresh
:class:`~repro.core.MachineSpec` — every bundled micro-architecture
model plus the ADL-synthesized variants, so ``repro lint <name>`` and
``repro check <name>`` (and CI) can analyze any of them without knowing
how each model is constructed.  Builders instantiate the model over a
minimal program: the specification's structure is program-independent,
only identifier *values* vary at run time.

The registry is shared by every static-analysis front end: the osmlint
passes (:mod:`repro.analysis.lint`) and the osmcheck model checker
(:mod:`repro.analysis.check`, via its pure-token abstraction of the
registered spec).  Downstream models register their own specs with
:func:`register_spec`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.osm import MachineSpec

__all__ = [
    "SpecBuilder",
    "available_specs",
    "build_spec",
    "register_spec",
    "spec_isa",
]

SpecBuilder = Callable[[], MachineSpec]

_REGISTRY: Dict[str, SpecBuilder] = {}
_ISA: Dict[str, str] = {}


def register_spec(name: str, builder: SpecBuilder, isa: str = "arm") -> None:
    """Register (or replace) a named spec builder.

    *isa* names the instruction set the model consumes ("arm" or
    "ppc") — the ISA auditor's routing cross-check (ISA008) uses it to
    probe the spec with that ISA's ``unit`` vocabulary.
    """
    _REGISTRY[name] = builder
    _ISA[name] = isa


def available_specs() -> List[str]:
    """Names of every registered lintable specification."""
    return sorted(_REGISTRY)


def spec_isa(name: str) -> str:
    """ISA name ("arm"/"ppc") the registered spec *name* consumes."""
    try:
        return _ISA[name]
    except KeyError:
        raise KeyError(
            f"unknown spec {name!r}; available: {', '.join(available_specs())}"
        ) from None


def build_spec(name: str) -> MachineSpec:
    """Build a fresh spec by registry name; raises ``KeyError`` with the
    known names when *name* is not registered."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown spec {name!r}; available: {', '.join(available_specs())}"
        ) from None
    return builder()


# -- bundled models ---------------------------------------------------------

def _arm_stub():
    from ..isa.arm import assemble

    return assemble("""
    .text
_start:
    mov r0, #0
    swi #0
""")


def _ppc_stub():
    from ..isa.ppc import assemble

    return assemble("""
    .text
_start:
    li r0, 0
    li r3, 0
    sc
""")


def _pipeline5() -> MachineSpec:
    from ..models.pipeline5 import Pipeline5Model

    return Pipeline5Model(_arm_stub()).spec


def _strongarm() -> MachineSpec:
    from ..models.strongarm import StrongArmModel

    return StrongArmModel(_arm_stub(), perfect_memory=True).spec


def _vliw() -> MachineSpec:
    from ..models.vliw import VliwModel

    return VliwModel(_arm_stub()).spec


def _multithread() -> MachineSpec:
    from ..models.multithread import MultithreadModel

    return MultithreadModel([_arm_stub(), _arm_stub()]).spec


def _ppc750() -> MachineSpec:
    from ..models.ppc750 import Ppc750Model

    return Ppc750Model(_ppc_stub(), perfect_memory=True).spec


def _adl_pipeline5() -> MachineSpec:
    from ..adl.synth import PIPELINE5_ADL, synthesize

    return synthesize(PIPELINE5_ADL, _arm_stub()).spec


def _adl_strongarm() -> MachineSpec:
    from ..adl.synth import STRONGARM_ADL, synthesize

    return synthesize(STRONGARM_ADL, _arm_stub()).spec


register_spec("pipeline5", _pipeline5)
register_spec("strongarm", _strongarm)
register_spec("vliw", _vliw)
register_spec("multithread", _multithread)
register_spec("ppc750", _ppc750, isa="ppc")
register_spec("adl-pipeline5", _adl_pipeline5)
register_spec("adl-strongarm", _adl_strongarm)
