"""Routing cross-check: ISA008 (rule ``unit-routing``).

The decoders tag every instruction with a function-``unit`` class and the
models route operations by guarding edges on that tag (directly via
``osm.operation.instr.unit``, or indirectly via a precomputed
``rs_unit``).  If a model has no resource path for some unit class, any
program containing such an instruction wedges the director: the
operation's OSM sits in a state with no satisfiable out-edge forever.

This pass checks, statically per registered model spec, that every unit
in the ISA's vocabulary can complete a pipeline traversal: starting from
the spec's initial state, following only edges whose *pure guards* accept
a probe operation of that unit, some reachable edge returns to the
initial state (operations recirculate I -> ... -> I per the paper's OSM
model).

Soundness caveat: only ``kind == "guard"`` primitives are evaluated —
token traffic (allocate/inquire/release) depends on run-time manager
state and is treated as satisfiable, and a guard that inspects machine
state the probe cannot fake (raising on the fake operation) is treated
as non-discriminating.  ISA008 can therefore miss a wedge caused by
token starvation, but never falsely blames a unit the guards admit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

from ..diagnostics import Diagnostic, Report, Severity
from ..registry import build_spec, spec_isa
from .targets import build_target

ROUTING_CODE = "ISA008"
ROUTING_RULE = "unit-routing"


class _ProbeInstr:
    """Minimal instruction-shaped object carrying only the unit tag."""

    def __init__(self, unit: str):
        self.unit = unit
        self.mnemonic = f"<probe:{unit}>"
        self.src_regs = ()
        self.dst_regs = ()
        self.is_load = False
        self.is_store = False
        self.is_branch = False
        self.writes_pc = False


class _ProbeOperation:
    def __init__(self, unit: str):
        self.instr = _ProbeInstr(unit)
        self.rs_unit = unit
        self.src_deps = ()
        self.seq = 0
        self.tag = 0


class _ProbeOsm:
    """Operation-state-machine stand-in handed to pure guards."""

    def __init__(self, unit: str):
        self.operation = _ProbeOperation(unit)
        self.tag = 0
        self.miss_cycles = 0


def _guards_admit(edge, unit: str) -> bool:
    """True when every pure guard on *edge* accepts a probe of *unit*.

    Guards that raise on the probe (they inspect live machine state the
    probe cannot fake) are non-discriminating: treated as satisfied.
    """
    osm = _ProbeOsm(unit)
    for primitive in edge.condition.primitives:
        if getattr(primitive, "kind", None) != "guard":
            continue  # token traffic: satisfiable by assumption
        try:
            if not primitive.probe(osm, None):
                return False
        except Exception:
            continue
    return True


def audit_routing(spec, units: Iterable[str],
                  spec_name: Optional[str] = None) -> Iterator[Diagnostic]:
    """Yield ISA008 diagnostics for *spec* against the unit vocabulary."""
    name = spec_name if spec_name is not None else spec.name
    if spec.initial is None:
        yield Diagnostic(
            code=ROUTING_CODE, rule=ROUTING_RULE, severity=Severity.ERROR,
            spec=name, message="spec has no initial state; no operation "
            "of any unit can be dispatched",
        )
        return
    for unit in sorted(units):
        compatible = [e for e in spec.edges if _guards_admit(e, unit)]
        reachable: Set[str] = {spec.initial.name}
        frontier: List[str] = [spec.initial.name]
        while frontier:
            src = frontier.pop()
            for edge in spec.states[src].out_edges:
                if edge not in compatible:
                    continue
                if edge.dst.name not in reachable:
                    reachable.add(edge.dst.name)
                    frontier.append(edge.dst.name)
        completes = any(
            e.src.name in reachable and e.dst is spec.initial
            for e in compatible
        )
        if not completes:
            stuck = sorted(reachable)
            yield Diagnostic(
                code=ROUTING_CODE, rule=ROUTING_RULE, severity=Severity.ERROR,
                spec=name,
                state=unit,
                message=(
                    f"operations of unit {unit!r} cannot complete a "
                    f"pipeline traversal: no guard-compatible path from "
                    f"{spec.initial.name!r} returns to it (reachable "
                    f"states: {stuck}) — such an instruction wedges the "
                    f"director"
                ),
            )


def audit_model(name: str,
                codes: Optional[Iterable[str]] = None) -> Report:
    """Run the routing cross-check over the registered model *name*.

    The unit vocabulary comes from the audit target of the ISA the spec
    is registered against (``register_spec(..., isa=...)``).
    """
    if codes is not None:
        wanted = set(codes)
        unknown = wanted - {ROUTING_CODE}
        if unknown:
            raise ValueError(f"unknown audit rule code(s): {sorted(unknown)}")
        if ROUTING_CODE not in wanted:
            return Report(spec=name, tool="audit")
    spec = build_spec(name)
    units = build_target(spec_isa(name)).units
    report = Report(spec=name, tool="audit")
    report.passes_run.append(ROUTING_CODE)
    for diagnostic in audit_routing(spec, units, spec_name=name):
        if diagnostic.code in spec.lint_allow:
            diagnostic.suppressed = True
        report.diagnostics.append(diagnostic)
    report.sort()
    return report
