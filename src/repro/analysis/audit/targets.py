"""Audit targets: the per-ISA ground truth the audit passes check against.

An :class:`AuditTarget` bundles everything ``isaaudit`` needs to know
about one instruction set:

* the **arm table** — the decoder's dispatch arms as (mask, value) cube
  patterns in priority order, for the encoding-space passes;
* the **encoding classes** — assembler-reachable instruction families,
  each with a small *field lattice* (the cartesian product of a few
  representative values per encoder field), an encoder, a re-encoder
  (decoded instruction back to a word) and an optional state-setup hook;
* the **overflow cases** — encoder calls with one field out of range
  that must raise ``ValueError``;
* the functional hooks (decode / execute / shadow-state factory) and the
  mapping from shadow-state traffic (flags, special registers) onto the
  hazard pseudo-register numbers the decoder declares.

Targets for the bundled ARM-like and PowerPC-like ISAs are registered
under ``"arm"`` and ``"ppc"``; tests register deliberately-broken toy
targets through the same :func:`register_target` hook.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence

__all__ = [
    "AuditTarget",
    "DecoderArm",
    "EncodingClass",
    "OverflowCase",
    "available_targets",
    "build_target",
    "register_target",
]


@dataclass
class DecoderArm:
    """One decoder dispatch arm as a cube pattern.

    *catch_all* marks the final default arm (its pattern is the whole
    word space; it is exempt from the overlap pass and its effective
    coverage is everything the other arms leave).  *overlaps_ok* names
    sibling arms this arm intentionally overlaps (earlier arms win by
    decode order); the wildcard ``"*"`` accepts any overlap.
    """

    name: str
    mask: int
    value: int
    kind: str
    catch_all: bool = False
    overlaps_ok: FrozenSet[str] = frozenset()
    allow: FrozenSet[str] = frozenset()

    def cube(self):
        return (self.mask & 0xFFFFFFFF, self.value & self.mask & 0xFFFFFFFF)


@dataclass
class EncodingClass:
    """An assembler-reachable instruction family with its field lattice."""

    name: str
    #: axis name -> representative values; the lattice is the product
    fields: Mapping[str, Sequence]
    #: point dict -> instruction word (may raise ValueError = encoder bug)
    encode: Callable[[Dict], int]
    #: decoded instruction -> word, for the ISA003 fixpoint (None: skip)
    reencode: Optional[Callable] = None
    #: optional hook seeding extra state (e.g. the syscall number register)
    setup: Optional[Callable] = None
    allow: FrozenSet[str] = frozenset()

    def points(self) -> Iterator[Dict]:
        names = list(self.fields)
        for combo in itertools.product(*(self.fields[n] for n in names)):
            yield dict(zip(names, combo))


@dataclass
class OverflowCase:
    """An encoder call with one field out of range: must raise ValueError."""

    name: str
    build: Callable[[], int]
    allow: FrozenSet[str] = frozenset()


@dataclass
class AuditTarget:
    """Everything the audit passes need to know about one ISA."""

    name: str
    decode: Callable[[int, int], object]
    execute: Callable[[object, object], object]
    #: factory for a fresh taint-instrumented ShadowArchState
    make_state: Callable[[], object]
    #: architectural PC register number carved out of hazard comparison
    #: (PC traffic is modeled via ``writes_pc`` / ``next_pc``), or None
    pc_reg: Optional[int]
    #: flag letter ('n'/'z'/'c'/'v') -> hazard pseudo-register
    flag_regs: Mapping[str, int]
    #: special register name ('lr'/'ctr') -> hazard pseudo-register
    spr_regs: Mapping[str, int]
    #: decoded ``kind`` values meaning "undefined/illegal"
    udf_kinds: FrozenSet[str]
    #: the ISA's ``unit`` vocabulary as emitted by its decoder
    units: FrozenSet[str]
    arms: List[DecoderArm] = field(default_factory=list)
    classes: List[EncodingClass] = field(default_factory=list)
    overflows: List[OverflowCase] = field(default_factory=list)
    #: rule codes suppressed target-wide
    allow: FrozenSet[str] = frozenset()


# -- registry ---------------------------------------------------------------

_TARGETS: Dict[str, Callable[[], AuditTarget]] = {}


def register_target(name: str, builder: Callable[[], AuditTarget]) -> None:
    """Register (or replace) a named audit-target builder."""
    _TARGETS[name] = builder


def available_targets() -> List[str]:
    return sorted(_TARGETS)


def build_target(name: str) -> AuditTarget:
    try:
        builder = _TARGETS[name]
    except KeyError:
        raise KeyError(
            f"unknown audit target {name!r}; available: {', '.join(available_targets())}"
        ) from None
    return builder()


# -- the ARM-like target ----------------------------------------------------

def _arm_target() -> AuditTarget:
    from ...isa.arm import encode as ae
    from ...isa.arm import isa as ai
    from ...isa.arm.decode import decode
    from ...isa.arm.semantics import execute
    from ...iss.state import ShadowArchState
    from ...iss.syscalls import SyscallHandler

    AL, EQ = ai.COND_AL, 0x0

    def make_state():
        return ShadowArchState(
            ai.N_REGS, syscalls=SyscallHandler(arg_regs=(0, 1, 2), ret_reg=0)
        )

    mul_group = frozenset({"mull", "mul", "mul-udf"})
    arms = [
        # decode order: cond==NV first, then the bit-7..4==1001 multiply
        # space, BX, the two-bit top-level dispatch, SWI, default udf.
        DecoderArm("udf-nv", 0xF0000000, 0xF0000000, "udf",
                   overlaps_ok=frozenset({"*"})),
        DecoderArm("mull", 0x0F8000F0, 0x00800090, "mull"),
        DecoderArm("mul", 0x0FC000F0, 0x00000090, "mul"),
        DecoderArm("mul-udf", 0x0E0000F0, 0x00000090, "udf",
                   overlaps_ok=frozenset({"mull", "mul"})),
        DecoderArm("bx", 0x0FFFFFF0, 0x012FFF10, "bx"),
        DecoderArm("dp", 0x0C000000, 0x00000000, "dp",
                   overlaps_ok=mul_group | {"bx"}),
        DecoderArm("ldst", 0x0C000000, 0x04000000, "ldst"),
        DecoderArm("ldm", 0x0E000000, 0x08000000, "ldm"),
        DecoderArm("branch", 0x0E000000, 0x0A000000, "branch"),
        DecoderArm("swi", 0x0F000000, 0x0F000000, "swi"),
        DecoderArm("udf-rest", 0x00000000, 0x00000000, "udf", catch_all=True),
    ]

    shifts = ((0, 0), (0, 4), (1, 4), (1, 0), (2, 4), (3, 4), (3, 0))
    classes = [
        EncodingClass(
            "dp-imm",
            {"cond": (AL, EQ), "opcode": tuple(range(16)), "s": (0, 1),
             "value": (0x55, 0x3FC)},
            lambda p: ae.dp_immediate(p["cond"], p["opcode"], p["s"], 1, 2, p["value"]),
            reencode=lambda i: ae.dp_immediate(i.cond, i.opcode, i.s, i.rn, i.rd, i.imm),
        ),
        EncodingClass(
            "dp-reg",
            {"opcode": tuple(range(16)), "s": (0, 1), "shift": shifts},
            lambda p: ae.dp_register(AL, p["opcode"], p["s"], 1, 2, 3,
                                     p["shift"][0], p["shift"][1]),
            reencode=lambda i: ae.dp_register(i.cond, i.opcode, i.s, i.rn, i.rd,
                                              i.rm, i.shift_type, i.shift_amount),
        ),
        EncodingClass(
            "mul",
            {"accumulate": (0, 1), "s": (0, 1)},
            lambda p: ae.multiply(AL, p["accumulate"], p["s"], 4, 5, 6, 7),
            reencode=lambda i: ae.multiply(i.cond, i.accumulate, i.s, i.rd,
                                           i.rn, i.rs, i.rm),
        ),
        EncodingClass(
            "mull",
            {"signed": (0, 1), "accumulate": (0, 1), "s": (0, 1)},
            lambda p: ae.multiply_long(AL, p["signed"], p["accumulate"], p["s"],
                                       8, 9, 2, 3),
            reencode=lambda i: ae.multiply_long(i.cond, i.signed_mul, i.accumulate,
                                                i.s, i.rdhi, i.rdlo, i.rs, i.rm),
        ),
        EncodingClass(
            "ldst-imm",
            {"load": (0, 1), "byte": (0, 1), "offset": (0, 8, -8)},
            lambda p: ae.load_store_immediate(AL, p["load"], p["byte"], 1, 2,
                                              p["offset"]),
            reencode=lambda i: ae.load_store_immediate(
                i.cond, 1 if i.is_load else 0, i.byte, i.rn, i.rd, i.imm),
        ),
        EncodingClass(
            "ldst-reg",
            {"load": (0, 1), "byte": (0, 1), "up": (0, 1), "shift": ((0, 0), (0, 2))},
            lambda p: ae.load_store_register(AL, p["load"], p["byte"], 1, 2, 3,
                                             p["shift"][0], p["shift"][1], p["up"]),
            reencode=lambda i: ae.load_store_register(
                i.cond, 1 if i.is_load else 0, i.byte, i.rn, i.rd, i.rm,
                i.shift_type, i.shift_amount, i.up),
        ),
        EncodingClass(
            "ldm",
            {"load": (0, 1), "pre": (0, 1), "up": (0, 1), "writeback": (0, 1),
             "reglist": (0x000C, 0x8004)},
            lambda p: ae.block_transfer(AL, p["load"], 1, p["reglist"],
                                        p["pre"], p["up"], p["writeback"]),
            reencode=lambda i: ae.block_transfer(
                i.cond, 1 if i.is_load else 0, i.rn, i.reglist, i.pre_index,
                i.up, i.writeback),
        ),
        EncodingClass(
            "branch",
            {"cond": (AL, EQ), "link": (0, 1), "offset_words": (-2, 4)},
            lambda p: ae.branch(p["cond"], p["link"], p["offset_words"]),
            reencode=lambda i: ae.branch(i.cond, i.link, i.imm >> 2),
        ),
        EncodingClass(
            "bx",
            {"rm": (3, 14)},
            lambda p: ae.branch_exchange(AL, p["rm"]),
            reencode=lambda i: ae.branch_exchange(i.cond, i.rm),
        ),
        EncodingClass(
            "swi",
            {"number": (0, 1, 4)},  # exit / putc / cycles
            lambda p: ae.software_interrupt(AL, p["number"]),
            reencode=lambda i: ae.software_interrupt(i.cond, i.swi_number),
        ),
    ]

    overflows = [
        OverflowCase("dp-imm-rn", lambda: ae.dp_immediate(AL, 4, 0, 16, 2, 1)),
        OverflowCase("dp-imm-rd", lambda: ae.dp_immediate(AL, 4, 0, 1, 16, 1)),
        OverflowCase("dp-imm-cond-nv", lambda: ae.dp_immediate(0xF, 4, 0, 1, 2, 1)),
        OverflowCase("dp-imm-opcode", lambda: ae.dp_immediate(AL, 16, 0, 1, 2, 1)),
        OverflowCase("dp-reg-rm", lambda: ae.dp_register(AL, 4, 0, 1, 2, 16)),
        OverflowCase("dp-reg-shift-type", lambda: ae.dp_register(AL, 4, 0, 1, 2, 3, 4, 1)),
        OverflowCase("mul-rd", lambda: ae.multiply(AL, 0, 0, 16, 5, 6, 7)),
        OverflowCase("mull-rdhi", lambda: ae.multiply_long(AL, 0, 0, 0, 16, 9, 2, 3)),
        OverflowCase("ldst-imm-rn", lambda: ae.load_store_immediate(AL, 1, 0, 16, 2, 0)),
        OverflowCase("ldst-reg-rm", lambda: ae.load_store_register(AL, 1, 0, 1, 2, 16)),
        OverflowCase("ldst-reg-up", lambda: ae.load_store_register(AL, 1, 0, 1, 2, 3, 0, 0, 2)),
        OverflowCase("branch-link", lambda: ae.branch(AL, 2, 0)),
        OverflowCase("bx-rm", lambda: ae.branch_exchange(AL, 16)),
        OverflowCase("ldm-rn", lambda: ae.block_transfer(AL, 1, 16, 0x0C, 0, 1, 0)),
    ]

    return AuditTarget(
        name="arm",
        decode=decode,
        execute=execute,
        make_state=make_state,
        pc_reg=ai.PC,
        flag_regs={"n": ai.FLAGS_REG, "z": ai.FLAGS_REG,
                   "c": ai.FLAGS_REG, "v": ai.FLAGS_REG},
        spr_regs={},
        udf_kinds=frozenset({"udf"}),
        units=frozenset({"alu", "mul", "mem", "branch", "system"}),
        arms=arms,
        classes=classes,
        overflows=overflows,
    )


# -- the PowerPC-like target ------------------------------------------------

def _ppc_target() -> AuditTarget:
    # the ppc package re-exports the decode *function*, which shadows the
    # submodule attribute — pull the dispatch tables out by name instead
    from ...isa.ppc.decode import _D_ALU, _D_MEM, _X_ALU, _X_MEM
    from ...isa.ppc import encode as pe
    from ...isa.ppc import isa as pi
    from ...isa.ppc.decode import decode
    from ...isa.ppc.semantics import execute
    from ...iss.state import ShadowArchState
    from ...iss.syscalls import SyscallHandler

    def make_state():
        return ShadowArchState(
            pi.N_REGS, syscalls=SyscallHandler(arg_regs=(3, 4, 5), ret_reg=3)
        )

    opcd_mask = 0xFC000000
    xo_mask = 0xFC0007FE  # primary opcode + 10-bit extended opcode

    # The arm table is generated from the decoder's own dispatch tables so
    # it cannot drift from the real opcode lists; the fidelity sampling in
    # ISA002 then cross-checks the *kinds* against actual decode results.
    arms: List[DecoderArm] = []
    for opcd, (mnemonic, _signed) in sorted(_D_ALU.items()):
        arms.append(DecoderArm(mnemonic, opcd_mask, opcd << 26, "dalu"))
    arms.append(DecoderArm("cmpwi", opcd_mask, pi.OP_CMPWI << 26, "cmpi"))
    arms.append(DecoderArm("cmplwi", opcd_mask, pi.OP_CMPLWI << 26, "cmpi"))
    for opcd, (mnemonic, _load, _byte) in sorted(_D_MEM.items()):
        arms.append(DecoderArm(mnemonic, opcd_mask, opcd << 26, "mem"))
    arms.append(DecoderArm("b", opcd_mask, pi.OP_B << 26, "b"))
    arms.append(DecoderArm("bc", opcd_mask, pi.OP_BC << 26, "bc"))
    xl_base = pi.OP_XL << 26
    arms.append(DecoderArm("bclr", xo_mask, xl_base | (pi.XL_BCLR << 1), "bclr"))
    arms.append(DecoderArm("bcctr", xo_mask, xl_base | (pi.XL_BCCTR << 1), "bcctr"))
    arms.append(DecoderArm("xl-illegal", opcd_mask, xl_base, "illegal",
                           overlaps_ok=frozenset({"bclr", "bcctr"})))
    arms.append(DecoderArm("rlwinm", opcd_mask, pi.OP_RLWINM << 26, "rlwinm"))
    arms.append(DecoderArm("sc", opcd_mask, pi.OP_SC << 26, "sc"))
    x_base = pi.OP_X << 26
    x_subarms: List[str] = []

    def x_arm(name: str, xo: int, kind: str) -> None:
        x_subarms.append(name)
        arms.append(DecoderArm(name, xo_mask, x_base | (xo << 1), kind))

    x_arm("cmpw", pi.XO_CMPW, "cmp")
    x_arm("cmplw", pi.XO_CMPLW, "cmp")
    for xo, (mnemonic, _load, _byte) in sorted(_X_MEM.items()):
        x_arm(mnemonic, xo, "memx")
    x_arm("extsb", pi.XO_EXTSB, "xunary")
    x_arm("extsh", pi.XO_EXTSH, "xunary")
    x_arm("cntlzw", pi.XO_CNTLZW, "xunary")
    x_arm("srawi", pi.XO_SRAWI, "srawi")
    x_arm("mtspr", pi.XO_MTSPR, "mtspr")
    x_arm("mfspr", pi.XO_MFSPR, "mfspr")
    for xo, mnemonic in sorted(_X_ALU.items()):
        x_arm(mnemonic, xo, "xalu")
    arms.append(DecoderArm("x-illegal", opcd_mask, x_base, "illegal",
                           overlaps_ok=frozenset(x_subarms)))
    arms.append(DecoderArm("illegal", 0, 0, "illegal", catch_all=True))

    d_alu = {mnemonic: (opcd, signed)
             for opcd, (mnemonic, signed) in _D_ALU.items()}
    d_mem = {mnemonic: opcd for opcd, (mnemonic, _l, _b) in _D_MEM.items()}
    x_alu = {mnemonic: xo for xo, mnemonic in _X_ALU.items()}
    x_mem = {mnemonic: xo for xo, (mnemonic, _l, _b) in _X_MEM.items()}
    x_unary = {"extsb": pi.XO_EXTSB, "extsh": pi.XO_EXTSH, "cntlzw": pi.XO_CNTLZW}

    def reencode_dalu(i):
        opcd, signed = d_alu[i.mnemonic]
        return pe.d_form(opcd, i.rt, i.ra, i.imm, signed=signed)

    def seed_sc(state, point):
        # syscall number in r0; keep the r3 argument harmless (exit code)
        state.regs.values[0] = point["sysno"]

    bo_lattice = (pi.BO_ALWAYS, pi.BO_TRUE, pi.BO_FALSE, pi.BO_DNZ, pi.BO_DZ,
                  0b00000, 0b00010)
    classes = [
        EncodingClass(
            "d-alu-signed",
            {"op": ("addi", "addis", "addic", "subfic", "mulli"),
             "ra": (0, 4), "imm": (-7, 5)},
            lambda p: pe.d_form(d_alu[p["op"]][0], 6, p["ra"], p["imm"]),
            reencode=reencode_dalu,
        ),
        EncodingClass(
            "d-alu-logical",
            {"op": ("ori", "oris", "xori", "andi."), "imm": (0, 0xBEEF)},
            lambda p: pe.d_form(d_alu[p["op"]][0], 6, 7, p["imm"], signed=False),
            reencode=reencode_dalu,
        ),
        EncodingClass(
            "cmpi",
            {"op": ("cmpwi", "cmplwi"), "imm": (0, 9)},
            lambda p: pe.cmpi_form(
                pi.OP_CMPWI if p["op"] == "cmpwi" else pi.OP_CMPLWI, 4, p["imm"],
                signed=p["op"] == "cmpwi"),
            reencode=lambda i: pe.cmpi_form(
                pi.OP_CMPWI if i.mnemonic == "cmpwi" else pi.OP_CMPLWI,
                i.ra, i.imm, signed=i.mnemonic == "cmpwi"),
        ),
        EncodingClass(
            "d-mem",
            {"op": tuple(sorted(d_mem)), "ra": (0, 4), "imm": (8, 16)},
            lambda p: pe.d_form(d_mem[p["op"]], 6, p["ra"], p["imm"]),
            reencode=lambda i: pe.d_form(d_mem[i.mnemonic], i.rt, i.ra, i.imm),
        ),
        EncodingClass(
            "b",
            {"aa": (0, 1), "lk": (0, 1), "offset": (8, -8)},
            lambda p: pe.i_form(p["offset"], p["aa"], p["lk"]),
            reencode=lambda i: pe.i_form(i.imm, i.aa, i.lk),
        ),
        EncodingClass(
            "bc",
            {"bo": bo_lattice, "bi": (pi.CR_EQ, pi.CR_LT), "lk": (0, 1)},
            lambda p: pe.b_form(p["bo"], p["bi"], 8, 0, p["lk"]),
            reencode=lambda i: pe.b_form(i.bo, i.bi, i.imm, i.aa, i.lk),
        ),
        EncodingClass(
            "xl",
            {"op": ("bclr", "bcctr"),
             "bo": (pi.BO_ALWAYS, pi.BO_TRUE, pi.BO_DNZ), "lk": (0, 1)},
            lambda p: pe.xl_form(
                pi.XL_BCLR if p["op"] == "bclr" else pi.XL_BCCTR,
                p["bo"], pi.CR_EQ, p["lk"]),
            reencode=lambda i: pe.xl_form(
                pi.XL_BCLR if i.kind == "bclr" else pi.XL_BCCTR,
                i.bo, i.bi, i.lk),
        ),
        EncodingClass(
            "rlwinm",
            {"sh": (0, 3), "mb": (0, 5), "rc": (0, 1)},
            lambda p: pe.rlwinm(6, 7, p["sh"], p["mb"], 31, p["rc"]),
            reencode=lambda i: pe.rlwinm(i.rt, i.ra, i.sh, i.mb, i.me, i.rc),
        ),
        EncodingClass(
            "x-alu",
            {"op": tuple(sorted(x_alu)), "rc": (0, 1)},
            lambda p: pe.x_form(x_alu[p["op"]], 6, 7, 8, p["rc"]),
            reencode=lambda i: pe.x_form(x_alu[i.mnemonic], i.rt, i.ra, i.rb, i.rc),
        ),
        EncodingClass(
            "x-cmp",
            {"op": ("cmpw", "cmplw")},
            lambda p: pe.cmp_form(
                pi.XO_CMPW if p["op"] == "cmpw" else pi.XO_CMPLW, 4, 5),
            reencode=lambda i: pe.cmp_form(
                pi.XO_CMPW if i.mnemonic == "cmpw" else pi.XO_CMPLW, i.ra, i.rb),
        ),
        EncodingClass(
            "x-mem",
            {"op": tuple(sorted(x_mem)), "ra": (0, 4)},
            lambda p: pe.x_form(x_mem[p["op"]], 6, p["ra"], 5),
            reencode=lambda i: pe.x_form(x_mem[i.mnemonic], i.rt, i.ra, i.rb),
        ),
        EncodingClass(
            "x-unary",
            {"op": ("extsb", "extsh", "cntlzw"), "rc": (0, 1)},
            lambda p: pe.x_form(x_unary[p["op"]], 6, 7, 0, p["rc"]),
            reencode=lambda i: pe.x_form(x_unary[i.mnemonic], i.rt, i.ra, 0, i.rc),
        ),
        EncodingClass(
            "srawi",
            {"sh": (0, 7), "rc": (0, 1)},
            lambda p: pe.srawi(6, 7, p["sh"], p["rc"]),
            reencode=lambda i: pe.srawi(i.rt, i.ra, i.sh, i.rc),
        ),
        EncodingClass(
            "spr",
            {"op": ("mtlr", "mtctr", "mflr", "mfctr")},
            lambda p: pe.spr_move(
                pi.XO_MTSPR if p["op"].startswith("mt") else pi.XO_MFSPR,
                6, pi.SPR_LR if p["op"].endswith("lr") else pi.SPR_CTR),
            reencode=lambda i: pe.spr_move(
                pi.XO_MTSPR if i.kind == "mtspr" else pi.XO_MFSPR, i.rt, i.spr),
        ),
        EncodingClass(
            "sc",
            {"sysno": (0, 1, 4)},  # exit / putc / cycles
            lambda p: pe.sc_form(),
            reencode=lambda i: pe.sc_form(),
            setup=seed_sc,
        ),
    ]

    overflows = [
        OverflowCase("d-form-rt", lambda: pe.d_form(pi.OP_ADDI, 32, 0, 0)),
        OverflowCase("b-form-bo", lambda: pe.b_form(32, 0, 8)),
        OverflowCase("b-form-bi", lambda: pe.b_form(pi.BO_ALWAYS, 32, 8)),
        OverflowCase("xl-form-bo", lambda: pe.xl_form(pi.XL_BCLR, 32, 0)),
        OverflowCase("xl-form-lk", lambda: pe.xl_form(pi.XL_BCLR, pi.BO_ALWAYS, 0, 2)),
        OverflowCase("i-form-aa", lambda: pe.i_form(8, 2, 0)),
        OverflowCase("srawi-sh", lambda: pe.srawi(6, 7, 32)),
        OverflowCase("spr-unknown", lambda: pe.spr_move(pi.XO_MTSPR, 6, 3)),
        OverflowCase("x-form-rc", lambda: pe.x_form(pi.XO_ADD, 6, 7, 8, 2)),
    ]

    return AuditTarget(
        name="ppc",
        decode=decode,
        execute=execute,
        make_state=make_state,
        pc_reg=None,
        flag_regs={"n": pi.CR0_REG, "z": pi.CR0_REG, "c": pi.CR0_REG},
        spr_regs={"lr": pi.LR_REG, "ctr": pi.CTR_REG},
        udf_kinds=frozenset({"illegal"}),
        units=frozenset({pi.UNIT_IU1, pi.UNIT_IU2, pi.UNIT_SRU,
                         pi.UNIT_LSU, pi.UNIT_BPU}),
        arms=arms,
        classes=classes,
        overflows=overflows,
    )


register_target("arm", _arm_target)
register_target("ppc", _ppc_target)
