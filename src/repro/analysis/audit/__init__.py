"""isaaudit: cross-layer consistency analyzer for ISA encodings, hazard
metadata, and model routing.

The paper's retargetable-simulation claim rests on three contracts that
live in *different* layers of this codebase and can silently drift:

1. the assembler's encoders and the ISS's decoders must agree on the
   bit-level instruction format (encoding-space + round-trip rules,
   ISA001–ISA003, ISA006, ISA007);
2. the decoder's hazard metadata must describe what the execute
   semantics actually do — the pipeline models forward and interlock on
   the metadata, not on the semantics (hazard audit, ISA004/ISA005);
3. every ``unit`` class the decoder can emit must have a resource path
   through every registered model, or the director wedges (routing
   cross-check, ISA008).

``repro audit <target|spec|all>`` runs these rules from the CLI; this
package is the library behind it.  See ``docs/static-analysis.md`` for
the rule table and suppression syntax.
"""

from .engine import (
    AUDIT_ADDR,
    AuditContext,
    AuditPass,
    DEFAULT_PASSES,
    audit_target,
    default_passes,
    run_point,
)
from .encoding import (
    EmittableUdfPass,
    EncoderOverflowPass,
    OverlapPass,
    ShadowedArmPass,
)
from .hazards import OverDeclaredPass, UnderDeclaredPass
from .roundtrip import RoundTripPass
from .routing import ROUTING_CODE, audit_model, audit_routing
from .targets import (
    AuditTarget,
    DecoderArm,
    EncodingClass,
    OverflowCase,
    available_targets,
    build_target,
    register_target,
)

__all__ = [
    "AUDIT_ADDR",
    "AuditContext",
    "AuditPass",
    "AuditTarget",
    "DEFAULT_PASSES",
    "DecoderArm",
    "EmittableUdfPass",
    "EncoderOverflowPass",
    "EncodingClass",
    "OverDeclaredPass",
    "OverflowCase",
    "OverlapPass",
    "ROUTING_CODE",
    "RoundTripPass",
    "ShadowedArmPass",
    "UnderDeclaredPass",
    "audit_isa",
    "audit_model",
    "audit_routing",
    "audit_target",
    "available_targets",
    "build_target",
    "default_passes",
    "register_target",
    "run_point",
]


def audit_isa(name: str, codes=None):
    """Audit the registered ISA *name* with the per-ISA rules
    (ISA001–ISA007) and return the :class:`~..diagnostics.Report`."""
    return audit_target(build_target(name), codes=codes)
