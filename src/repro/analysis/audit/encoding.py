"""Encoding-space audit rules: ISA001, ISA002, ISA006, ISA007.

========  ===================  =========================================
code      rule                 finds
========  ===================  =========================================
ISA001    overlapping-arms     decoder arms whose (mask, value) patterns
                               share words without declaring the overlap
ISA002    shadowed-arm         arms left empty by earlier arms under
                               decode order; arm-table/decoder mismatch
                               on sampled words (fidelity)
ISA006    emittable-udf        assembler-emittable words that decode to
                               the undefined/illegal class
ISA007    encoder-overflow     encoder calls with an out-of-range field
                               that silently produce a (mis)decodable
                               word instead of raising
========  ===================  =========================================
"""

from __future__ import annotations

from typing import Iterator, List

from ..diagnostics import Diagnostic
from .cubes import Cube, sample, subtract_all
from .engine import AUDIT_ADDR, AuditContext, AuditPass

#: fidelity spot-check samples per arm remainder
FIDELITY_SAMPLES = 16


class OverlapPass(AuditPass):
    """ISA001: two non-catch-all arms overlap without declaring it.

    An undeclared overlap means some words match both patterns and only
    decode order decides the winner — either the patterns are wrong or
    the precedence is accidental.  Declared overlaps (``overlaps_ok``)
    encode intentional carve-outs, e.g. the multiply space inside the
    ARM data-processing pattern.
    """

    code = "ISA001"
    rule = "overlapping-arms"

    def run(self, ctx: AuditContext) -> Iterator[Diagnostic]:
        from .cubes import overlaps

        arms = [arm for arm in ctx.target.arms if not arm.catch_all]
        for i, a in enumerate(arms):
            for b in arms[i + 1:]:
                if not overlaps(a.cube(), b.cube()):
                    continue
                if _overlap_ok(a, b) or _overlap_ok(b, a):
                    continue
                yield self.diag(
                    ctx,
                    f"arm {a.name!r} (mask {a.mask:#010x}, value "
                    f"{a.value:#010x}) overlaps arm {b.name!r} (mask "
                    f"{b.mask:#010x}, value {b.value:#010x}) without "
                    f"declaring it — decode order silently decides",
                    state=a.name,
                )


def _overlap_ok(a, b) -> bool:
    return "*" in a.overlaps_ok or b.name in a.overlaps_ok


class ShadowedArmPass(AuditPass):
    """ISA002: an arm is unreachable under decode order, or the arm
    table misdescribes the decoder.

    Decode order gives earlier arms precedence; an arm whose cube is
    fully covered by earlier cubes can never fire.  For live arms the
    pass additionally spot-checks fidelity: deterministic sample words
    from the arm's *effective* region (its cube minus all earlier arms)
    must decode to the arm's declared ``kind`` — otherwise every other
    encoding-space conclusion is built on a wrong table.
    """

    code = "ISA002"
    rule = "shadowed-arm"

    def run(self, ctx: AuditContext) -> Iterator[Diagnostic]:
        target = ctx.target
        earlier: List[Cube] = []
        for arm in target.arms:
            if arm.catch_all:
                # effective region = everything no arm claims
                remainder = subtract_all(
                    (0, 0), [a.cube() for a in target.arms if not a.catch_all])
            else:
                remainder = subtract_all(arm.cube(), earlier)
                earlier.append(arm.cube())
                if not remainder:
                    yield self.diag(
                        ctx,
                        f"arm {arm.name!r} is unreachable: every word "
                        f"matching (mask {arm.mask:#010x}, value "
                        f"{arm.value:#010x}) is claimed by an earlier arm",
                        state=arm.name,
                    )
                    continue
            for word in sample(remainder, FIDELITY_SAMPLES):
                decoded = target.decode(AUDIT_ADDR, word)
                if decoded.kind != arm.kind:
                    yield self.diag(
                        ctx,
                        f"arm table infidelity: word {word:#010x} lies in "
                        f"arm {arm.name!r}'s effective region but decodes "
                        f"to kind {decoded.kind!r} (table says "
                        f"{arm.kind!r})",
                        state=arm.name,
                        edge=f"{word:#010x}",
                    )
                    break


class EmittableUdfPass(AuditPass):
    """ISA006: the assembler's encoders can emit a word the decoder
    rejects as undefined/illegal — a program that assembles but cannot
    execute."""

    code = "ISA006"
    rule = "emittable-udf"

    def run(self, ctx: AuditContext) -> Iterator[Diagnostic]:
        for cls_name, runs in ctx.runs.items():
            for run in runs:
                if run.udf:
                    yield self.diag(
                        ctx,
                        f"encoder for class {cls_name!r} emits "
                        f"{run.word:#010x} at point {run.label}, which "
                        f"decodes to {run.instr.kind!r}",
                        state=cls_name,
                        edge=run.label,
                    )


class EncoderOverflowPass(AuditPass):
    """ISA007: an encoder accepts an out-of-range field value.

    An overflowing field bleeds into neighbouring bit fields, silently
    producing a *different* valid instruction — the worst kind of
    assembler bug.  Every registered overflow case must raise
    ``ValueError``.
    """

    code = "ISA007"
    rule = "encoder-overflow"

    def run(self, ctx: AuditContext) -> Iterator[Diagnostic]:
        for case in ctx.target.overflows:
            try:
                word = case.build()
            except ValueError:
                continue  # correctly rejected
            decoded = ctx.target.decode(AUDIT_ADDR, word & 0xFFFFFFFF)
            yield self.diag(
                ctx,
                f"overflow case {case.name!r}: encoder accepted an "
                f"out-of-range field and produced {word & 0xFFFFFFFF:#010x} "
                f"(decodes as {decoded.mnemonic!r}) instead of raising "
                f"ValueError",
                state=case.name,
            )
