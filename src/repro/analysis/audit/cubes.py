"""Cube algebra over (mask, value) encoding patterns.

A decoder arm is modeled as a *cube*: the set of instruction words ``w``
with ``w & mask == value``.  Bits set in ``mask`` are fixed to the
corresponding bit of ``value``; clear bits are free.  The encoding-space
passes (ISA001/ISA002) need three operations on cubes:

* :func:`overlaps` — do two cubes share any word?
* :func:`subtract` — the set difference ``cube \\ other`` as a list of
  disjoint cubes (the classic recursive cube-splitting algorithm);
* :func:`sample` — deterministic pseudo-random member words of a cube
  list, for decode-fidelity spot checks.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

#: a cube is (mask, value); value must satisfy value & ~mask == 0
Cube = Tuple[int, int]

WORD_MASK = 0xFFFFFFFF


def make_cube(mask: int, value: int) -> Cube:
    """Normalize (mask, value), dropping value bits outside the mask."""
    return mask & WORD_MASK, value & mask & WORD_MASK


def overlaps(a: Cube, b: Cube) -> bool:
    """True when some word matches both cubes: the fixed bits common to
    both masks must agree."""
    common = a[0] & b[0]
    return (a[1] ^ b[1]) & common == 0


def subtract(cube: Cube, other: Cube) -> List[Cube]:
    """``cube \\ other`` as disjoint cubes.

    If the cubes are disjoint the difference is *cube* itself.  Otherwise
    split *cube* on each bit fixed by *other* but free in *cube*: fixing
    that bit to the complement of *other*'s value peels off a sub-cube
    guaranteed outside *other*; continuing with the bit fixed to *other*'s
    value narrows toward the intersection.  When no free bits remain,
    *cube*'s fixed bits all agree with *other* and the remainder is empty.
    """
    if not overlaps(cube, other):
        return [cube]
    pieces: List[Cube] = []
    mask, value = cube
    for bit_index in range(32):
        bit = 1 << bit_index
        if other[0] & bit and not mask & bit:
            # peel: this bit fixed opposite to other's value
            pieces.append((mask | bit, value | (bit & ~other[1])))
            # continue inside: fixed to other's value
            mask |= bit
            value |= bit & other[1]
    # (mask, value) is now contained in other: dropped.
    return pieces


def subtract_all(cube: Cube, others: Iterable[Cube]) -> List[Cube]:
    """``cube`` minus every cube in *others* (disjoint cube list)."""
    remainder = [cube]
    for other in others:
        remainder = [piece for r in remainder for piece in subtract(r, other)]
    return remainder


def cube_size(cube: Cube) -> int:
    """Number of words in the cube (2 ** free bits)."""
    return 1 << (32 - bin(cube[0] & WORD_MASK).count("1"))


def sample(cubes: Sequence[Cube], k: int, seed: int = 0xC0FFEE) -> List[int]:
    """Up to *k* deterministic pseudo-random words from the cube list,
    spread round-robin across the cubes."""
    if not cubes:
        return []
    rng = random.Random(seed)
    words: List[int] = []
    for i in range(k):
        mask, value = cubes[i % len(cubes)]
        word = value
        free = ~mask & WORD_MASK
        word |= rng.getrandbits(32) & free
        words.append(word)
    return words
