"""Hazard-metadata audit: ISA004 (under-declared), ISA005 (over-declared).

The decoders annotate every instruction with the hazard metadata the
pipeline models schedule by: ``src_regs``/``dst_regs`` (with flag and
special-register traffic folded in as pseudo-registers), ``is_load`` /
``is_store`` and ``writes_pc``.  This pass family executes each encoding
class's field lattice against the taint-instrumented shadow state and
compares *observed* architectural traffic against the declaration:

* **ISA004 (error)** — traffic the metadata misses.  A missed write,
  memory access or control-flow redirect is a wrong simulation (the
  models forward and interlock on this metadata).  Missed *reads* are
  first confirmed differentially — the semantics may touch state
  speculatively (e.g. the ARM condition evaluator reads all four flags
  even for AL) — by perturbing the suspect register and re-running: only
  reads whose value actually influences the architectural outcome count.
* **ISA005 (warning)** — metadata never exercised anywhere on the
  lattice.  Aggregated per (class, register) across all points, so
  may-traffic (condition-failed points, conditional flag fallbacks,
  syscalls that only sometimes write the return register) does not fire
  as long as *some* audited point performs the declared access.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from ..diagnostics import Diagnostic, Severity
from .engine import AuditContext, AuditPass, PointRun, run_point
from .targets import AuditTarget


def _reg_name(target: AuditTarget, reg: int) -> str:
    for letter, number in target.flag_regs.items():
        if number == reg:
            return f"flags({reg})"
    for name, number in target.spr_regs.items():
        if number == reg:
            return f"{name}({reg})"
    return f"r{reg}"


def _declared(target: AuditTarget, instr) -> Tuple[Set[int], Set[int]]:
    src = set(instr.src_regs)
    dst = set(instr.dst_regs)
    if target.pc_reg is not None:
        src.discard(target.pc_reg)
        dst.discard(target.pc_reg)
    return src, dst


class UnderDeclaredPass(AuditPass):
    """ISA004: observed traffic the hazard metadata does not declare."""

    code = "ISA004"
    rule = "under-declared-hazard"

    def run(self, ctx: AuditContext) -> Iterator[Diagnostic]:
        target = ctx.target
        for cls in target.classes:
            reported: Set[Tuple[str, object]] = set()
            refuted: Set[int] = set()
            for run in ctx.runs[cls.name]:
                if run.udf:
                    continue
                if run.error is not None:
                    if ("exec-error", None) not in reported:
                        reported.add(("exec-error", None))
                        yield self.diag(
                            ctx,
                            f"semantics raised {type(run.error).__name__} "
                            f"for decodable {run.instr.text!r} at "
                            f"{run.label}: {run.error}",
                            state=cls.name,
                            edge=run.label,
                        )
                    continue
                instr = run.instr
                declared_src, declared_dst = _declared(target, instr)

                for reg in sorted(run.writes - declared_dst):
                    if ("write", reg) in reported:
                        continue
                    reported.add(("write", reg))
                    yield self.diag(
                        ctx,
                        f"{instr.text!r} writes {_reg_name(target, reg)} "
                        f"but dst_regs declares only "
                        f"{sorted(declared_dst)} (at {run.label})",
                        state=cls.name,
                        edge=run.label,
                    )
                for reg in sorted(run.reads - declared_src):
                    if ("read", reg) in reported or reg in refuted:
                        continue
                    if _confirm_read(target, cls, run, reg):
                        reported.add(("read", reg))
                        yield self.diag(
                            ctx,
                            f"{instr.text!r} reads {_reg_name(target, reg)} "
                            f"(architecturally observable) but src_regs "
                            f"declares only {sorted(declared_src)} "
                            f"(at {run.label})",
                            state=cls.name,
                            edge=run.label,
                        )
                    else:
                        refuted.add(reg)

                if run.state.memory.loads and not instr.is_load:
                    if ("load", None) not in reported:
                        reported.add(("load", None))
                        yield self.diag(
                            ctx,
                            f"{instr.text!r} performs memory loads but is "
                            f"not declared is_load (at {run.label})",
                            state=cls.name,
                            edge=run.label,
                        )
                if run.state.memory.stores and not instr.is_store:
                    if ("store", None) not in reported:
                        reported.add(("store", None))
                        yield self.diag(
                            ctx,
                            f"{instr.text!r} performs memory stores but is "
                            f"not declared is_store (at {run.label})",
                            state=cls.name,
                            edge=run.label,
                        )
                if run.redirected and not instr.writes_pc:
                    if ("redirect", None) not in reported:
                        reported.add(("redirect", None))
                        yield self.diag(
                            ctx,
                            f"{instr.text!r} redirects control flow to "
                            f"{run.info.next_pc:#x} but is not declared "
                            f"writes_pc (at {run.label})",
                            state=cls.name,
                            edge=run.label,
                        )
                if instr.unit not in target.units:
                    if ("unit", instr.unit) not in reported:
                        reported.add(("unit", instr.unit))
                        yield self.diag(
                            ctx,
                            f"{instr.text!r} declares unit "
                            f"{instr.unit!r}, outside the ISA's unit "
                            f"vocabulary {sorted(target.units)}",
                            state=cls.name,
                            edge=run.label,
                        )

    # Note: refuted reads are cached per class.  A register refuted at one
    # point could in principle be influential at another, but re-probing
    # every point costs a full lattice re-execution per register for a
    # case the two-stage design already treats as speculative; the
    # property round-trip tests cover the residue.


#: snapshot tuple slot of each flag letter / special register (see
#: :func:`repro.analysis.audit.engine._snapshot`)
_FLAG_SLOT = {"n": 1, "z": 2, "c": 3, "v": 4}
_SPR_SLOT = {"lr": 5, "ctr": 6}


def _confirm_read(target: AuditTarget, cls, base: PointRun, reg: int) -> bool:
    """Differential confirmation: does perturbing *reg* change the
    architectural outcome of this point?

    The perturbed location's own snapshot slot is masked out of the
    comparison — an untouched register trivially still holds the
    perturbed value afterwards, which is not a dependence.  A dependence
    observable *only* through that same register implies an undeclared
    write of it, which the write check reports separately.
    """
    tweaks = []
    for letter, number in target.flag_regs.items():
        if number == reg and letter in base.state.flag_reads:
            tweaks.append((_flip_flag(letter), _mask_slot(_FLAG_SLOT[letter])))
    for name, number in target.spr_regs.items():
        if number == reg and name in base.state.spr_reads:
            tweaks.append((_perturb_spr(name), _mask_slot(_SPR_SLOT[name])))
    if not tweaks and reg < len(base.state.regs.values):
        tweaks.append((_perturb_reg(reg), _mask_reg(reg)))
    for tweak, mask in tweaks:
        perturbed = run_point(target, cls, base.point, tweak=tweak)
        if mask(perturbed.snapshot) != mask(base.snapshot):
            return True
    return False


def _mask_slot(index: int):
    def mask(snapshot):
        return snapshot[:index] + (None,) + snapshot[index + 1:]

    return mask


def _mask_reg(reg: int):
    def mask(snapshot):
        regs = snapshot[0]
        return (regs[:reg] + (None,) + regs[reg + 1:],) + snapshot[1:]

    return mask


def _flip_flag(letter: str):
    attr = "_flag_" + letter

    def tweak(state):
        setattr(state, attr, 1 - getattr(state, attr))

    return tweak


def _perturb_spr(name: str):
    attr = "_spr_" + name

    def tweak(state):
        # keep word alignment: redirect targets are masked with ~3
        setattr(state, attr, getattr(state, attr) ^ 0x100)

    return tweak


def _perturb_reg(reg: int):
    def tweak(state):
        # aligned delta so address masking cannot hide the change
        state.regs.values[reg] ^= 0x2E0

    return tweak


class OverDeclaredPass(AuditPass):
    """ISA005: declared hazard metadata never exercised on the lattice.

    Over-declaration is not a correctness bug for the simulated program,
    but it serializes the pipeline on phantom dependences — and usually
    indicates the declaration was written for a different semantics than
    the one implemented.  Warning severity; aggregated per class so
    conditional may-traffic does not fire.
    """

    code = "ISA005"
    rule = "over-declared-hazard"

    def run(self, ctx: AuditContext) -> Iterator[Diagnostic]:
        target = ctx.target
        for cls in target.classes:
            runs = [r for r in ctx.runs[cls.name]
                    if not r.udf and r.error is None]
            if not runs:
                continue
            src_declared: Dict[int, int] = {}
            src_hit: Dict[int, int] = {}
            dst_declared: Dict[int, int] = {}
            dst_hit: Dict[int, int] = {}
            flags = {"load": [0, 0], "store": [0, 0], "redirect": [0, 0]}
            for run in runs:
                declared_src, declared_dst = _declared(target, run.instr)
                for reg in declared_src:
                    src_declared[reg] = src_declared.get(reg, 0) + 1
                    if reg in run.reads:
                        src_hit[reg] = src_hit.get(reg, 0) + 1
                for reg in declared_dst:
                    dst_declared[reg] = dst_declared.get(reg, 0) + 1
                    if reg in run.writes:
                        dst_hit[reg] = dst_hit.get(reg, 0) + 1
                if run.instr.is_load:
                    flags["load"][0] += 1
                    flags["load"][1] += bool(run.state.memory.loads)
                if run.instr.is_store:
                    flags["store"][0] += 1
                    flags["store"][1] += bool(run.state.memory.stores)
                if run.instr.writes_pc:
                    flags["redirect"][0] += 1
                    flags["redirect"][1] += run.redirected
            for reg in sorted(src_declared):
                if not src_hit.get(reg):
                    yield self.diag(
                        ctx,
                        f"src_regs declares {_reg_name(target, reg)} at "
                        f"{src_declared[reg]} audited point(s) but it is "
                        f"never read — phantom RAW dependence",
                        severity=Severity.WARNING,
                        state=cls.name,
                    )
            for reg in sorted(dst_declared):
                if not dst_hit.get(reg):
                    yield self.diag(
                        ctx,
                        f"dst_regs declares {_reg_name(target, reg)} at "
                        f"{dst_declared[reg]} audited point(s) but it is "
                        f"never written — phantom WAW/WAR dependence",
                        severity=Severity.WARNING,
                        state=cls.name,
                    )
            descriptions = {
                "load": "is_load is declared but no point ever loads",
                "store": "is_store is declared but no point ever stores",
                "redirect": "writes_pc is declared but no point ever "
                            "redirects control flow",
            }
            for key, (declared, hit) in flags.items():
                if declared and not hit:
                    yield self.diag(
                        ctx,
                        f"{descriptions[key]} ({declared} point(s))",
                        severity=Severity.WARNING,
                        state=cls.name,
                    )
