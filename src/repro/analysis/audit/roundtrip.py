"""Round-trip verification: ISA003 (rule ``roundtrip``).

For every lattice point of every encoding class: encode the fields to a
word, decode it, and re-encode the *decoded* instruction through the
class's ``reencode`` hook.  The result must be the original word — a
fixpoint.  A mismatch means encoder and decoder disagree about a field's
position, width or sign convention, which corrupts every program silently
(the decode cache hides it: the simulated program still runs, just not
the program the assembler was asked for).
"""

from __future__ import annotations

from typing import Iterator

from ..diagnostics import Diagnostic
from .engine import AuditContext, AuditPass


class RoundTripPass(AuditPass):
    """ISA003: encode -> decode -> re-encode must be a fixpoint."""

    code = "ISA003"
    rule = "roundtrip"

    def run(self, ctx: AuditContext) -> Iterator[Diagnostic]:
        for cls in ctx.target.classes:
            if cls.reencode is None:
                continue
            for run in ctx.runs[cls.name]:
                if run.udf:
                    continue  # ISA006's finding; nothing to round-trip
                try:
                    word = cls.reencode(run.instr) & 0xFFFFFFFF
                except ValueError as error:
                    yield self.diag(
                        ctx,
                        f"decoded {run.instr.text!r} ({run.word:#010x}) "
                        f"does not re-encode: {error}",
                        state=cls.name,
                        edge=run.label,
                    )
                    continue
                if word != run.word:
                    yield self.diag(
                        ctx,
                        f"round-trip fixpoint broken at {run.label}: "
                        f"{run.word:#010x} decodes to {run.instr.text!r} "
                        f"which re-encodes to {word:#010x}",
                        state=cls.name,
                        edge=run.label,
                    )
