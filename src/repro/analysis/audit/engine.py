"""Audit engine: pass protocol, shared lattice harness, suppression.

An audit pass mirrors the osmlint pass protocol — a stable ``code``
(``ISA001``…), a ``rule`` slug, and a :meth:`AuditPass.run` generator —
but runs over an :class:`~.targets.AuditTarget` (one ISA) instead of a
MachineSpec.  Passes share an :class:`AuditContext` that lazily executes
every encoding class's field lattice once against the taint-instrumented
:class:`~repro.iss.state.ShadowArchState`, so the round-trip, hazard and
udf-reachability passes all consume the same per-point records.

Suppression is allow-style, like lint: a rule code in ``target.allow``
suppresses target-wide; a code in an arm's or class's ``allow`` set
suppresses diagnostics anchored to that arm/class (the diagnostic's
``state`` slot carries the arm or class name).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..diagnostics import Diagnostic, Report, Severity
from .targets import AuditTarget, EncodingClass

#: address every audited instruction executes at
AUDIT_ADDR = 0x1000


class PointRun:
    """Outcome of executing one encoding-class lattice point."""

    __slots__ = ("cls", "point", "word", "instr", "udf", "state", "info",
                 "error", "snapshot", "reads", "writes")

    def __init__(self, cls, point, word, instr):
        self.cls = cls
        self.point = point
        self.word = word
        self.instr = instr
        self.udf = False
        self.state = None
        self.info = None
        self.error: Optional[BaseException] = None
        self.snapshot: Optional[Tuple] = None
        #: hazard-register traffic mapped through flag/spr pseudo-registers
        self.reads: frozenset = frozenset()
        self.writes: frozenset = frozenset()

    @property
    def label(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.point.items())
        return f"{self.cls.name}({inner})"

    @property
    def redirected(self) -> bool:
        return self.info is not None and self.info.next_pc != AUDIT_ADDR + 4


def seed_state(state) -> None:
    """Deterministic register/flag/SPR seeding for audit runs.

    Register i holds ``0x200 + 8*i`` — distinct, word-aligned, and small
    enough that loads/stores land in unmapped memory (which reads as 0).
    Z is seeded 1 so EQ-conditioned instructions execute; CTR is nonzero
    so decrementing branches are observable.
    """
    for i in range(len(state.regs.values)):
        state.regs.values[i] = (0x200 + 8 * i) & 0xFFFFFFFF
    state._flag_n = 0
    state._flag_z = 1
    state._flag_c = 0
    state._flag_v = 0
    state._spr_lr = 0x40
    state._spr_ctr = 2


def run_point(target: AuditTarget, cls: EncodingClass, point: Dict,
              tweak=None) -> PointRun:
    """Encode, decode and execute one lattice point on a fresh shadow
    state; *tweak* (state -> None) perturbs the seeded state first."""
    word = cls.encode(point) & 0xFFFFFFFF
    instr = target.decode(AUDIT_ADDR, word)
    run = PointRun(cls, point, word, instr)
    if instr.kind in target.udf_kinds:
        run.udf = True
        return run
    state = target.make_state()
    seed_state(state)
    if cls.setup is not None:
        cls.setup(state, point)
    if tweak is not None:
        tweak(state)
    state.pc = AUDIT_ADDR
    state.clear_traffic()
    try:
        run.info = target.execute(state, instr)
    except Exception as error:  # semantics reject: captured, compared
        run.error = error
    run.state = state
    run.snapshot = _snapshot(state, run.info, run.error)
    run.reads, run.writes = _traffic(target, state)
    return run


def _snapshot(state, info, error) -> Tuple:
    """Everything architecturally observable after one instruction."""
    return (
        tuple(state.regs.values),
        state._flag_n, state._flag_z, state._flag_c, state._flag_v,
        state._spr_lr, state._spr_ctr,
        tuple(state.memory.loads),
        tuple(state.memory.stores),
        info.next_pc if info is not None else None,
        state.halted,
        state.exit_code,
        bytes(state.syscalls.output) if state.syscalls is not None else b"",
        type(error).__name__ if error is not None else None,
    )


def _traffic(target: AuditTarget, state) -> Tuple[frozenset, frozenset]:
    """Observed traffic as hazard register numbers (PC carved out)."""
    reads = set(state.regs.reads)
    writes = set(state.regs.writes)
    for letter in state.flag_reads:
        if letter in target.flag_regs:
            reads.add(target.flag_regs[letter])
    for letter in state.flag_writes:
        if letter in target.flag_regs:
            writes.add(target.flag_regs[letter])
    for name in state.spr_reads:
        if name in target.spr_regs:
            reads.add(target.spr_regs[name])
    for name in state.spr_writes:
        if name in target.spr_regs:
            writes.add(target.spr_regs[name])
    if target.pc_reg is not None:
        reads.discard(target.pc_reg)
        writes.discard(target.pc_reg)
    return frozenset(reads), frozenset(writes)


class AuditContext:
    """Per-run shared facts: the executed lattices, computed once."""

    def __init__(self, target: AuditTarget):
        self.target = target
        self._runs: Optional[Dict[str, List[PointRun]]] = None

    @property
    def runs(self) -> Dict[str, List[PointRun]]:
        if self._runs is None:
            self._runs = {
                cls.name: [run_point(self.target, cls, point)
                           for point in cls.points()]
                for cls in self.target.classes
            }
        return self._runs


class AuditPass:
    """Base class of all audit rules."""

    code: str = "ISA000"
    rule: str = "abstract"

    def run(self, ctx: AuditContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        ctx: AuditContext,
        message: str,
        severity: Severity = Severity.ERROR,
        state: Optional[str] = None,
        edge: Optional[str] = None,
    ) -> Diagnostic:
        """Build a diagnostic located in *ctx*'s target; the ``state``
        slot carries the arm/class name, ``edge`` the lattice point."""
        return Diagnostic(
            code=self.code,
            rule=self.rule,
            severity=severity,
            spec=ctx.target.name,
            message=message,
            state=state,
            edge=edge,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.code})"


def default_passes() -> List[AuditPass]:
    """Fresh instances of the per-ISA rules ISA001–ISA007, in code order
    (ISA008 runs per model spec, see :mod:`.routing`)."""
    from .encoding import EmittableUdfPass, EncoderOverflowPass, OverlapPass, ShadowedArmPass
    from .hazards import OverDeclaredPass, UnderDeclaredPass
    from .roundtrip import RoundTripPass

    return [
        OverlapPass(),
        ShadowedArmPass(),
        RoundTripPass(),
        UnderDeclaredPass(),
        OverDeclaredPass(),
        EmittableUdfPass(),
        EncoderOverflowPass(),
    ]


#: code -> pass class mapping of the bundled per-ISA rules
DEFAULT_PASSES = {p.code: type(p) for p in default_passes()}


def audit_target(
    target: AuditTarget,
    passes: Optional[Sequence[AuditPass]] = None,
    codes: Optional[Iterable[str]] = None,
) -> Report:
    """Run the audit passes over *target* and return the report."""
    if passes is None:
        passes = default_passes()
    if codes is not None:
        wanted = set(codes)
        unknown = wanted - {p.code for p in passes}
        if unknown:
            raise ValueError(f"unknown audit rule code(s): {sorted(unknown)}")
        passes = [p for p in passes if p.code in wanted]

    ctx = AuditContext(target)
    report = Report(spec=target.name, tool="audit")
    anchor_allow = {arm.name: arm.allow for arm in target.arms}
    anchor_allow.update({cls.name: cls.allow for cls in target.classes})
    anchor_allow.update({case.name: case.allow for case in target.overflows})
    for audit_pass in passes:
        report.passes_run.append(audit_pass.code)
        for diagnostic in audit_pass.run(ctx):
            if diagnostic.code in target.allow:
                diagnostic.suppressed = True
            elif diagnostic.state is not None and diagnostic.code in anchor_allow.get(
                diagnostic.state, ()
            ):
                diagnostic.suppressed = True
            report.diagnostics.append(diagnostic)
    report.sort()
    return report
