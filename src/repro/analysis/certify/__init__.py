"""transcheck: translation validation of generated fast-path code.

The fifth analysis front end (after osmlint, osmcheck, isaaudit and
effectcheck): instead of trusting the code generators that power the
simulation fast path — fused per-state steppers
(:mod:`repro.core.fuse`), compiled edge probes
(:mod:`repro.core.edgecompile`), per-ISA ``exec_fn`` closures
(:mod:`repro.isa.arm.execgen` / :mod:`repro.isa.ppc.execgen`) and
whole-block ISS translations (:mod:`repro.iss.compiled`) — transcheck
statically validates each generated artifact against its *reference*
source and emits certificates through the shared diagnostics schema.

Rules
-----
TRV001  fused stepper ↔ per-edge plan equivalence (symbolic replay)
TRV002  ``__fuse_inline__`` expression/footprint agreement
TRV003  compiled edge probe ↔ interpreted plan agreement
TRV004  execgen closure write-set covers the semantics write-set
TRV005  compiled ISS blocks carry store guards at instruction bounds
TRV006  no block translation escapes the decode-cache page map
TRV007  fused-fallback consistency with the effectcheck verdict
TRV008  generator-version drift (stale fuse certificates)

TRV001–003 and TRV007–008 are per-spec; TRV004–006 are per-ISA.  The
same TRV001–003 checks also gate fusion at model-build time through
:func:`certify_fused_states`, consumed by
:func:`repro.core.fuse.enable_fusion` /
:func:`repro.core.edgecompile.apply_compilability`.
"""

from ..registry import available_specs, build_spec, spec_isa  # noqa: F401
from .engine import (  # noqa: F401
    DEFAULT_PASSES,
    ISA_CODES,
    SPEC_CODES,
    CertifyPass,
    IsaCertifyContext,
    SpecCertifyContext,
    certify_fused_states,
    certify_isa,
    certify_spec,
    default_isa_passes,
    default_spec_passes,
)
from .fingerprint import GENERATOR_MODULES, generator_fingerprint  # noqa: F401

__all__ = [
    "DEFAULT_PASSES",
    "GENERATOR_MODULES",
    "ISA_CODES",
    "SPEC_CODES",
    "CertifyPass",
    "IsaCertifyContext",
    "SpecCertifyContext",
    "available_specs",
    "build_spec",
    "spec_isa",
    "certify_fused_states",
    "certify_isa",
    "certify_spec",
    "default_isa_passes",
    "default_spec_passes",
    "generator_fingerprint",
]
