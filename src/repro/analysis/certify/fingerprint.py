"""Generator fingerprinting for transcheck certificates (TRV008).

A fuse certificate is only as good as the generator that produced the
code it certifies: if :mod:`repro.core.fuse` (or any of the other code
generators) changes after a certificate was stamped, the certificate is
*stale* — it vouches for code the current generator would no longer
emit.  :func:`generator_fingerprint` hashes the source text of every
generator module, and :func:`repro.core.fuse.enable_fusion` embeds the
hash in ``spec.fuse_certificate`` at build time; ``repro certify``
re-computes the hash and flags any mismatch (rule TRV008).

The hash covers source *text*, not bytecode — whitespace-only edits do
invalidate certificates, which is the conservative direction: a stale
certificate costs one re-certification, a trusted-but-wrong one costs a
silent miscompile.
"""

from __future__ import annotations

import hashlib
import importlib
from typing import Dict, Optional, Tuple

#: every module whose output transcheck certifies, in hash order
GENERATOR_MODULES: Tuple[str, ...] = (
    "repro.core.edgecompile",
    "repro.core.fuse",
    "repro.isa.arm.execgen",
    "repro.isa.ppc.execgen",
    "repro.iss.compiled",
)

_cached: Optional[str] = None


def generator_sources() -> Dict[str, str]:
    """``module name -> source text`` for every generator module."""
    sources: Dict[str, str] = {}
    for name in GENERATOR_MODULES:
        module = importlib.import_module(name)
        path = getattr(module, "__file__", None)
        if path is None:  # pragma: no cover - frozen/zipped installs
            sources[name] = ""
            continue
        with open(path, "r", encoding="utf-8") as handle:
            sources[name] = handle.read()
    return sources


def generator_fingerprint() -> str:
    """The sha256 hex digest over all generator module sources.

    Cached per process: the sources cannot change under a running
    interpreter without also invalidating the imported modules.
    """
    global _cached
    if _cached is None:
        digest = hashlib.sha256()
        for name, source in sorted(generator_sources().items()):
            digest.update(name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(source.encode("utf-8"))
            digest.update(b"\x00")
        _cached = digest.hexdigest()
    return _cached
