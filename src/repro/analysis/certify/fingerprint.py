"""Generator fingerprinting for transcheck certificates (TRV008).

A fuse certificate is only as good as the generator that produced the
code it certifies: if :mod:`repro.core.fuse` (or any of the other code
generators) changes after a certificate was stamped, the certificate is
*stale* — it vouches for code the current generator would no longer
emit.  :func:`generator_fingerprint` hashes the source text of every
generator module, and :func:`repro.core.fuse.enable_fusion` embeds the
hash in ``spec.fuse_certificate`` at build time; ``repro certify``
re-computes the hash and flags any mismatch (rule TRV008).

The hash covers source *text*, not bytecode — whitespace-only edits do
invalidate certificates, which is the conservative direction: a stale
certificate costs one re-certification, a trusted-but-wrong one costs a
silent miscompile.

The same machinery also backs the fleet layer's content-addressed
result cache (:mod:`repro.fleet`): :func:`package_fingerprint` hashes
every ``.py`` source under a package (or a single module's source), and
the fleet job key folds the fingerprints of a model's implementation
closure into the cache key — edit any file a model depends on and its
cached simulation results stop matching, which is exactly the staleness
contract cached results need.
"""

from __future__ import annotations

import hashlib
import importlib
import os
from typing import Dict, Iterable, Optional, Tuple

#: every module whose output transcheck certifies, in hash order
GENERATOR_MODULES: Tuple[str, ...] = (
    "repro.core.edgecompile",
    "repro.core.fuse",
    "repro.isa.arm.execgen",
    "repro.isa.ppc.execgen",
    "repro.iss.compiled",
)

_cached: Optional[str] = None

#: package/module name -> sha256, cached per process (see
#: :func:`generator_fingerprint` for why per-process caching is sound)
_package_cache: Dict[str, str] = {}


def generator_sources() -> Dict[str, str]:
    """``module name -> source text`` for every generator module."""
    sources: Dict[str, str] = {}
    for name in GENERATOR_MODULES:
        module = importlib.import_module(name)
        path = getattr(module, "__file__", None)
        if path is None:  # pragma: no cover - frozen/zipped installs
            sources[name] = ""
            continue
        with open(path, "r", encoding="utf-8") as handle:
            sources[name] = handle.read()
    return sources


def sources_fingerprint(sources: Dict[str, str]) -> str:
    """sha256 hex digest over a ``name -> source text`` mapping."""
    digest = hashlib.sha256()
    for name, source in sorted(sources.items()):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def generator_fingerprint() -> str:
    """The sha256 hex digest over all generator module sources.

    Cached per process: the sources cannot change under a running
    interpreter without also invalidating the imported modules.
    """
    global _cached
    if _cached is None:
        _cached = sources_fingerprint(generator_sources())
    return _cached


def package_fingerprint(name: str) -> str:
    """sha256 over every ``.py`` source file of package/module *name*.

    For a package, every ``.py`` under its directory tree is hashed
    (keyed by its path relative to the package root, so renames count as
    changes); for a plain module, just its own source.  The result is
    cached per process, like :func:`generator_fingerprint`.
    """
    cached = _package_cache.get(name)
    if cached is not None:
        return cached
    module = importlib.import_module(name)
    path = getattr(module, "__file__", None)
    sources: Dict[str, str] = {}
    if path is None:  # pragma: no cover - frozen/zipped installs
        sources[name] = ""
    elif os.path.basename(path) == "__init__.py":
        root = os.path.dirname(path)
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                rel = os.path.relpath(full, root)
                with open(full, "r", encoding="utf-8") as handle:
                    sources[rel] = handle.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            sources[os.path.basename(path)] = handle.read()
    fingerprint = sources_fingerprint(sources)
    _package_cache[name] = fingerprint
    return fingerprint


def combined_fingerprint(names: Iterable[str]) -> str:
    """One sha256 combining :func:`package_fingerprint` of each name."""
    digest = hashlib.sha256()
    for name in sorted(set(names)):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(package_fingerprint(name).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()
