"""Per-ISA transcheck helpers: execgen write-sets, block store guards,
page-map coverage (rules TRV004–TRV006).

The spec-side rules replay generated OSM code against the primitive
plan; the ISA-side rules validate the *other* two generators — the
per-instruction executor closures (``execgen``) and the whole-block ISS
translations (:mod:`repro.iss.compiled`) — against their references:

* TRV004 compares the **static may-write set** extracted from a
  generated executor's source against the traffic the reference
  semantics actually produced for the same instruction (the isaaudit
  shadow-state runs).  Soundness direction: observed ⊆ static — the
  generated code must account for every architectural write the
  reference performs; extra static writes are fine (a may-set).
* TRV005 checks that every memory store in a compiled ARM block is
  followed by the ``if not _b.valid:`` self-modification guard before
  any later instruction's memory access or control flow.
* TRV006 checks the decode cache's page index: every live block must be
  registered under every page its address range spans, else a store to
  a middle page would miss the invalidation.

TRV005/TRV006 need *artifacts*, so the ISA context runs a small driver
program under the compiling ISS and inspects the decode cache it leaves
behind.  The drivers exercise plain stores, conditional stores, a block
store (``stm``) and a straight-line run long enough to span a decode
page (256 bytes).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

__all__ = [
    "StaticWrites",
    "check_page_map",
    "check_store_guards",
    "run_arm_driver",
    "run_ppc_driver",
    "static_writes",
]


# -- TRV004: static write-set extraction ------------------------------------

class StaticWrites:
    """The may-write set of one generated executor."""

    __slots__ = ("regs", "flags", "sprs", "mem", "syscall")

    def __init__(self):
        self.regs: Set[int] = set()
        self.flags: Set[str] = set()   # 'n' / 'z' / 'c' / 'v'
        self.sprs: Set[str] = set()    # 'lr' / 'ctr'
        self.mem = False
        self.syscall = False


def static_writes(source: str) -> StaticWrites:
    """Extract the architectural may-write set from executor *source*.

    The execgen emitters write architectural state through a fixed
    vocabulary — ``r[<literal>] = …``, ``state.flag_<x> = …``,
    ``state.lr/ctr = …``, ``<obj>.write_<unit>(…)`` and
    ``state.syscalls.handle(…)`` — so a syntactic walk is exact.
    Writes to ``state.pc``, ``info.*`` and local temporaries are not
    architectural traffic and are ignored (the audit harness carves PC
    out of hazard comparison too).
    """
    out = StaticWrites()
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                _classify_write(target, out)
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute):
                if fn.attr.startswith("write_"):
                    out.mem = True
                elif fn.attr == "handle" and isinstance(fn.value, ast.Attribute) \
                        and fn.value.attr == "syscalls":
                    out.syscall = True
    return out


def _classify_write(target: ast.AST, out: StaticWrites) -> None:
    if isinstance(target, ast.Subscript):
        base = target.value
        if isinstance(base, ast.Name) and base.id == "r":
            try:
                index = ast.literal_eval(target.slice)
            except (ValueError, TypeError, SyntaxError):
                index = None
            if isinstance(index, int):
                out.regs.add(index)
            else:
                # non-literal register index: widen to "any register"
                out.regs.add(-1)
    elif isinstance(target, ast.Attribute):
        base = target.value
        if isinstance(base, ast.Name) and base.id == "state":
            attr = target.attr
            if attr.startswith("flag_"):
                out.flags.add(attr[len("flag_"):])
            elif attr in ("lr", "ctr"):
                out.sprs.add(attr)
    elif isinstance(target, ast.Tuple):
        for element in target.elts:
            _classify_write(element, out)


# -- TRV005: store guards in compiled ARM blocks ----------------------------

def _contains_store(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute) \
                and sub.func.attr.startswith("write_"):
            return True
    return False


def _contains_mem_read(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute) \
                and sub.func.attr.startswith("read_"):
            return True
    return False


def _is_valid_guard(stmt: ast.AST) -> bool:
    """``if not _b.valid:`` with a body ending in an early return."""
    if not isinstance(stmt, ast.If) or stmt.orelse:
        return False
    test = stmt.test
    if not (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)):
        return False
    inner = test.operand
    if not (isinstance(inner, ast.Attribute) and inner.attr == "valid"
            and isinstance(inner.value, ast.Name) and inner.value.id == "_b"):
        return False
    return bool(stmt.body) and isinstance(stmt.body[-1], ast.Return)


def _guard_problems(suite: List[ast.stmt], trailer: List[ast.stmt],
                    problems: List[str]) -> None:
    """Check *suite* (with the enclosing statements *trailer* following
    it) for the store→guard contract; recurse into nested suites."""
    for position, stmt in enumerate(suite):
        if isinstance(stmt, ast.If) and not _is_valid_guard(stmt):
            # a conditional instruction body: its guard, if any, sits
            # after the If at this level
            rest = suite[position + 1:] + trailer
            _guard_problems(stmt.body, rest, problems)
            _guard_problems(stmt.orelse, rest, problems)
            continue
        if not _contains_store(stmt) or _is_valid_guard(stmt):
            continue
        chain = suite[position + 1:] + trailer
        found = False
        for follower in chain:
            if _is_valid_guard(follower):
                found = True
                break
            if isinstance(follower, (ast.If, ast.For, ast.While, ast.Return)):
                problems.append(
                    "store not followed by a _b.valid guard before "
                    f"control flow ({ast.unparse(follower.test) if isinstance(follower, (ast.If, ast.While)) else type(follower).__name__})"
                )
                found = True
                break
            if _contains_mem_read(follower):
                problems.append(
                    "store not followed by a _b.valid guard before a "
                    "later memory access")
                found = True
                break
        if not found:
            problems.append("store without a trailing _b.valid guard")


def check_store_guards(source: str) -> List[str]:
    """TRV005 problems in one compiled ARM block's source, or []."""
    tree = ast.parse(source)
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        return ["block source is not a single function definition"]
    problems: List[str] = []
    _guard_problems(tree.body[0].body, [], problems)
    return problems


# -- TRV006: page-map coverage ----------------------------------------------

def check_page_map(decode_cache) -> List[str]:
    """Every live block must be indexed under every page it spans."""
    from ...iss.decode_cache import PAGE_SHIFT

    problems: List[str] = []
    pages = decode_cache._block_pages
    for entry, block in sorted(decode_cache.blocks.items()):
        for page in range(entry >> PAGE_SHIFT,
                          ((block.end - 1) >> PAGE_SHIFT) + 1):
            if block not in pages.get(page, ()):
                problems.append(
                    f"block {entry:#x}..{block.end:#x} missing from page "
                    f"index entry {page:#x}")
    return problems


# -- ISS drivers -------------------------------------------------------------

#: straight-line padding long enough to cross a 256-byte decode page
_ARM_PAD = "\n".join("    add r6, r6, #1" for _ in range(70))

_ARM_DRIVER = f"""
    .text
_start:
    mov r6, #0
    b body
body:
{_ARM_PAD}
    li r1, buffer
    mov r2, #7
    str r2, [r1]
    strb r2, [r1, #4]
    cmp r2, #7
    streq r2, [r1, #8]
    strne r2, [r1, #12]
    mov r3, #1
    mov r4, #2
    stmia r1, {{r3, r4}}
    ldr r5, [r1]
    mov r0, #0
    swi #0
    .data
buffer:
    .word 0, 0, 0, 0
"""

_PPC_PAD = "\n".join("    addi r6, r6, 1" for _ in range(70))

_PPC_DRIVER = f"""
    .text
_start:
    li r6, 0
    b body
body:
{_PPC_PAD}
    li32 r9, buffer
    li r10, 7
    stw r10, 0(r9)
    stb r10, 4(r9)
    lwz r11, 0(r9)
    li r0, 0
    li r3, 0
    sc
    .data
buffer:
    .word 0, 0
"""


def run_arm_driver():
    """Run the ARM driver under the compiling ISS; returns the
    interpreter with its populated decode cache and compiled blocks."""
    from ...isa.arm import assemble
    from ...iss import CompiledArmInterpreter

    interpreter = CompiledArmInterpreter(assemble(_ARM_DRIVER))
    interpreter.run()
    return interpreter


def run_ppc_driver():
    """Run the PPC driver under the (executor-chaining) compiling ISS."""
    from ...isa.ppc import assemble
    from ...iss import CompiledPpcInterpreter

    interpreter = CompiledPpcInterpreter(assemble(_PPC_DRIVER))
    interpreter.run()
    return interpreter
