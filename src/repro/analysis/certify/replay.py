"""Symbolic replay of generated OSM fast-path code (TRV001 / TRV003).

The replayer validates a generated artifact — a fused per-state stepper
(:func:`repro.core.fuse.generate_stepper`) or a compiled edge probe
(:func:`repro.core.edgecompile.compile_edge_probe`) — against the
*reference* transition semantics, without executing either.  It works in
two halves:

1. **Extraction** (:class:`_Extractor`): the artifact's source (captured
   on the function object as ``__fused_source__`` / ``__probe_source__``)
   is parsed and flattened into a linear sequence of *effect events* —
   guard calls, blocking refusals, buffer updates, holder flips, counter
   bumps, transaction appends, transition bookkeeping.  Bound constants
   (managers, slots, edge objects, predicates) are resolved through the
   function's ``__defaults__`` so events carry the real objects, and the
   token-buffer / transaction aliases are tracked through local
   assignments.  Every statement must classify: any write or call the
   extractor cannot place in its vocabulary raises
   :class:`ExtractionError`, which the caller reports as a conservative
   certification failure — unknown effects are treated as wrong, never
   ignored.

2. **Matching**: an *expected* event sequence is derived independently
   from the edge's ``condition.primitives`` plus the reference ordering
   rules — probe effects in primitive order, then commitment in
   :meth:`Transaction.commit` order (releases, discards, grants), then
   ``try_transition`` bookkeeping (current/last_edge/n_transitions/age,
   action, ``on_enter``, the initial-state buffer check).  Matching uses
   small regex-like combinators (:class:`_One`, :class:`_Zone`,
   :class:`_Rep`) with backtracking; manager-internal bookkeeping
   (free-counters, writer lists, ready bitmaps) is admitted through
   bounded zones that still *require* the reference counter updates.

A fused edge may legitimately compile to either the native inline form
or the transactional form (probe + ``txn.commit``); the replayer accepts
whichever of the two expected shapes matches.

Soundness caveat (documented in ``docs/static-analysis.md``): the replay
is *linear* — it checks that every effect the generated code can perform
appears in the reference order with the reference operands, and that
every refusal path escapes the attempt (``break`` / ``return False``),
but it does not model arbitrary branch interleavings.  The generators
only emit straight-line code with single-level refusal branches, so the
linearization is faithful for everything they produce today; code
outside that shape fails extraction rather than passing silently.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ...core.primitives import (
    Allocate,
    AllocateMany,
    Discard,
    Guard,
    Inquire,
    Release,
    ReleaseMany,
)
from .astnorm import parse_function

__all__ = [
    "ExtractionError",
    "replay_probe",
    "replay_stepper",
]

#: wildcard for matcher operands
ANY = object()

#: builtins the generators call for bookkeeping, never for effects
_PURE_BUILTINS = frozenset({
    "any", "enumerate", "id", "isinstance", "len", "list", "sorted", "str",
    "tuple", "type",
})

#: effect-free methods (reads / local-list plumbing)
_IGNORED_METHODS = frozenset({"get", "items", "keys", "values", "startswith"})


class ExtractionError(Exception):
    """Generated code contains a statement the replayer cannot classify."""


def _callable_key(fn) -> Tuple:
    """Identity key robust to bound-method re-creation: accessing
    ``primitive.probe`` twice yields two distinct bound-method objects
    wrapping the same function and receiver."""
    return (getattr(fn, "__func__", fn), getattr(fn, "__self__", None))


# --------------------------------------------------------------------------
# name resolution


def _param_env(node: ast.FunctionDef, fn) -> Dict[str, Tuple]:
    """Bindings for the generated function's parameters.

    Generated artifacts bind every captured constant as a keyword default
    (``def _fused_step(osm, clock, mgr_1=mgr_1, ...)``), so the live
    function's ``__defaults__`` align with the tail of the parameter
    list; the leading positional parameters are the runtime inputs.
    """
    names = [a.arg for a in node.args.args]
    defaults = fn.__defaults__ or ()
    if len(defaults) > len(names):
        raise ExtractionError("more defaults than parameters")
    env: Dict[str, Tuple] = {}
    for name, value in zip(names[len(names) - len(defaults):], defaults):
        env[name] = ("obj", value)
    return env


class _Extractor:
    """Flattens a generated function body into effect events."""

    def __init__(self, env: Dict[str, Tuple]):
        self.env = dict(env)
        self.events: List[Tuple] = []

    def emit(self, *event) -> None:
        self.events.append(tuple(event))

    # -- resolution --------------------------------------------------------

    def _resolve(self, node) -> Optional[Tuple]:
        """Binding for *node*: ("obj", o) | ("osm",) | ("clock",) |
        ("txn",) | ("buffer",) | ("local",) | None (unresolvable)."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        return None

    def _is_kind(self, node, kind: str) -> bool:
        binding = self._resolve(node)
        return binding is not None and binding[0] == kind

    def _obj(self, node):
        binding = self._resolve(node)
        if binding is not None and binding[0] == "obj":
            return binding[1]
        return None

    def _slot(self, node):
        """The slot-string operand of a buffer/txn operation, or ANY."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        value = self._obj(node)
        if isinstance(value, str):
            return value
        return ANY

    # -- statements --------------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for index, stmt in enumerate(body):
            before = len(self.events)
            self._stmt(stmt)
            # Refusal structure: a blocking assignment must be followed,
            # in the same suite, by an escape from the attempt — break,
            # ``return False`` or an ok-flag clear.  This is what makes
            # a refused probe actually short-circuit.
            if any(e[0] == "blocked" for e in self.events[before:]) and \
                    self._direct_blocked(stmt):
                if not any(self._is_escape(s) for s in body[index + 1:]):
                    raise ExtractionError(
                        "blocking refusal not followed by an escape")

    @staticmethod
    def _direct_blocked(stmt) -> bool:
        """True when *stmt* itself is the ``osm.blocked_on = (...)``
        assignment (nested refusals are checked at their own level)."""
        return (isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Attribute)
                and stmt.targets[0].attr == "blocked_on")

    @staticmethod
    def _is_escape(stmt) -> bool:
        if isinstance(stmt, ast.Break):
            return True
        if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Constant):
            return stmt.value.value is False
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is False):
            return True
        return False

    def _stmt(self, stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self._scan(stmt.value)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._augassign(stmt)
        elif isinstance(stmt, ast.Delete):
            self._delete(stmt)
        elif isinstance(stmt, ast.If):
            before = len(self.events)
            self._scan(stmt.test)
            if len(self.events) > before:
                # a refusing call in the test: the body must escape
                if not any(self._is_escape(s) for s in stmt.body):
                    raise ExtractionError("guarded test without an escape")
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._scan(stmt.iter)
            self._mark_local(stmt.target)
            self.run(stmt.body)
            if stmt.orelse:
                raise ExtractionError("for-else in generated code")
        elif isinstance(stmt, ast.Raise):
            # the exception expression is message formatting, not effects
            self.emit("raise")
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Pass)):
            pass
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        else:
            raise ExtractionError(
                f"unclassifiable statement {type(stmt).__name__}")

    def _mark_local(self, target) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = ("local",)
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                self._mark_local(element)
        else:
            raise ExtractionError("unsupported loop target")

    def _return(self, stmt) -> None:
        value = stmt.value
        if value is None or (isinstance(value, ast.Constant)
                             and value.value is None):
            self.emit("return_none")
        elif isinstance(value, ast.Constant) and value.value is False:
            pass  # refusal escape — checked structurally, not an effect
        elif isinstance(value, ast.Constant) and value.value is True:
            self.emit("return_true")
        else:
            obj = self._obj(value)
            if obj is None:
                raise ExtractionError("return of an unresolvable value")
            self.emit("return_obj", obj)

    def _assign(self, stmt) -> None:
        if len(stmt.targets) != 1:
            raise ExtractionError("chained assignment")
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            self._assign_name(target.id, stmt.value)
        elif isinstance(target, ast.Attribute):
            self._assign_attr(target, stmt.value)
        elif isinstance(target, ast.Subscript):
            self._scan(stmt.value)
            if self._is_kind(target.value, "buffer"):
                self.emit("buf_set", self._slot(target.slice))
            else:
                # manager-internal array bookkeeping (ready bitmaps etc.)
                self.emit("sub_set")
        else:
            raise ExtractionError("unsupported assignment target")

    def _assign_name(self, name: str, value) -> None:
        if isinstance(value, ast.Attribute) and self._is_kind(value.value, "osm"):
            if value.attr == "token_buffer":
                self.env[name] = ("buffer",)
                return
            if value.attr == "_txn":
                self.env[name] = ("txn",)
                return
        if isinstance(value, ast.Name):
            self.env[name] = self._resolve(value) or ("local",)
            return
        self._scan(value)
        self.env[name] = ("local",)

    def _assign_attr(self, target, value) -> None:
        attr = target.attr
        if attr == "holder":
            if isinstance(value, ast.Constant) and value.value is None:
                self.emit("holder_none")
            elif self._is_kind(value, "osm"):
                self.emit("holder_osm")
            else:
                raise ExtractionError("holder assigned a foreign value")
            return
        if self._is_kind(target.value, "osm"):
            if attr == "blocked_on":
                if isinstance(value, ast.Constant) and value.value is None:
                    self.emit("blocked_clear")
                elif isinstance(value, ast.Tuple) and value.elts:
                    self.emit("blocked", self._obj(value.elts[0]))
                else:
                    raise ExtractionError("unrecognized blocked_on value")
            elif attr == "current":
                obj = self._obj(value)
                if obj is None:
                    raise ExtractionError("current assigned unresolvable state")
                self.emit("set_current", obj)
            elif attr == "last_edge":
                obj = self._obj(value)
                if obj is None:
                    raise ExtractionError("last_edge assigned unresolvable edge")
                self.emit("set_last_edge", obj)
            elif attr == "age":
                if self._is_kind(value, "clock"):
                    self.emit("set_age_clock")
                elif _const_int(value) == -1:
                    self.emit("age_reset")
                else:
                    raise ExtractionError("age assigned unrecognized value")
            elif attr == "operation":
                if isinstance(value, ast.Constant) and value.value is None:
                    self.emit("op_none")
                else:
                    raise ExtractionError("operation assigned non-None")
            else:
                raise ExtractionError(f"write to osm.{attr}")
            return
        if self._is_kind(target.value, "txn") and attr == "dirty":
            return  # transaction-internal flag
        raise ExtractionError(f"unclassifiable attribute write .{attr}")

    def _augassign(self, stmt) -> None:
        target = stmt.target
        if not isinstance(target, ast.Attribute):
            raise ExtractionError("augmented assignment to non-attribute")
        if isinstance(stmt.op, ast.Add):
            sign = "+"
        elif isinstance(stmt.op, ast.Sub):
            sign = "-"
        else:
            raise ExtractionError("non-additive augmented assignment")
        if not (isinstance(stmt.value, ast.Constant) and stmt.value.value == 1):
            raise ExtractionError("counter bump by a non-1 amount")
        attr = target.attr
        if attr == "n_transitions" and self._is_kind(target.value, "osm"):
            self.emit("n_transitions")
        elif attr == "n_inquiries":
            self.emit("inq_count", self._obj(target.value))
        else:
            self.emit("ctr", attr, sign)

    def _delete(self, stmt) -> None:
        if len(stmt.targets) != 1:
            raise ExtractionError("multi-target delete")
        target = stmt.targets[0]
        if isinstance(target, ast.Subscript) and self._is_kind(target.value, "buffer"):
            self.emit("buf_del", self._slot(target.slice))
        else:
            raise ExtractionError("delete outside the token buffer")

    # -- expressions -------------------------------------------------------

    def _scan(self, node) -> None:
        """Post-order scan emitting events for every classified call."""
        if isinstance(node, ast.Lambda):
            raise ExtractionError("lambda in generated code")
        for child in ast.iter_child_nodes(node):
            self._scan(child)
        if isinstance(node, ast.Call):
            self._call(node)

    def _call(self, call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            binding = self._resolve(func)
            if binding is None:
                if func.id in _PURE_BUILTINS:
                    return
                raise ExtractionError(f"call to unknown name {func.id}")
            if binding[0] != "obj":
                raise ExtractionError(f"call to non-constant {func.id}")
            self._bound_call(binding[1], call)
            return
        if isinstance(func, ast.Attribute):
            self._method_call(func, call)
            return
        raise ExtractionError("call through an unclassifiable callee")

    def _bound_call(self, obj, call) -> None:
        args = call.args
        if len(args) == 1 and self._is_kind(args[0], "osm"):
            self.emit("call1", obj)
        elif len(args) == 2 and self._is_kind(args[0], "osm"):
            if self._is_kind(args[1], "txn"):
                self.emit("txn_probe", _callable_key(obj))
            else:
                self.emit("call2", obj)
        elif (len(args) == 3 and self._is_kind(args[0], "osm")
              and self._is_kind(args[2], "txn")):
            owner = getattr(obj, "__self__", None)
            name = getattr(getattr(obj, "__func__", obj), "__name__", "")
            if owner is None:
                raise ExtractionError("3-arg call to an unbound callable")
            self.emit("mgr_call", name, owner)
        else:
            raise ExtractionError("call with an unrecognized signature")

    def _method_call(self, func, call) -> None:
        method = func.attr
        if method in _IGNORED_METHODS:
            return
        if method == "append":
            base = func.value
            if (isinstance(base, ast.Attribute)
                    and self._is_kind(base.value, "txn")):
                self._txn_append(base.attr, call)
                return
            if any(self._is_kind(a, "osm") for a in call.args):
                self.emit("writers_append")
                return
            if isinstance(base, ast.Name) and self._is_kind(base, "local"):
                return  # building a local list
            raise ExtractionError("append to an unclassifiable list")
        if method == "add":
            base = func.value
            if (isinstance(base, ast.Attribute)
                    and self._is_kind(base.value, "txn")
                    and base.attr == "_granted_ids"):
                return
            raise ExtractionError("set add outside the transaction")
        if method == "remove":
            if any(self._is_kind(a, "osm") for a in call.args):
                self.emit("writers_remove")
                return
            raise ExtractionError("remove of a non-osm value")
        if method in ("reset", "is_tentatively_released"):
            if self._is_kind(func.value, "txn"):
                return  # transaction-internal reset / pure query
            raise ExtractionError(f"{method} outside the transaction")
        if method == "commit":
            if self._is_kind(func.value, "txn"):
                self.emit("txn_commit")
                return
            raise ExtractionError("commit outside the transaction")
        if method == "release":
            self.emit("release_call")
            return
        if method == "on_discard":
            self.emit("on_discard")
            return
        if method == "on_release_commit":
            self.emit("on_release_commit")
            return
        if method == "write":
            base = func.value
            if isinstance(base, ast.Attribute) and base.attr == "backing":
                self.emit("backing_write")
                return
            raise ExtractionError("write call outside a register backing")
        raise ExtractionError(f"unclassifiable method call .{method}")

    def _txn_append(self, collection: str, call) -> None:
        arg = call.args[0] if len(call.args) == 1 else None
        elts = arg.elts if isinstance(arg, ast.Tuple) else []
        if collection == "grants":
            slot = self._slot(elts[0]) if elts else ANY
            self.emit("t_grant", slot)
        elif collection == "inquiries":
            mgr = self._obj(elts[0]) if elts else None
            self.emit("t_inq", mgr)
        elif collection == "releases":
            slot = self._slot(elts[2]) if len(elts) > 2 else ANY
            self.emit("t_rel", slot)
        elif collection == "discards":
            slot = self._slot(elts[1]) if len(elts) > 1 else ANY
            self.emit("t_disc", slot)
        else:
            raise ExtractionError(f"append to txn.{collection}")


def _const_int(node) -> Optional[int]:
    try:
        value = ast.literal_eval(node)
    except (ValueError, TypeError, SyntaxError):
        return None
    return value if isinstance(value, int) else None


# --------------------------------------------------------------------------
# matchers


def _event_matches(event: Tuple, kind: str, args: Tuple) -> bool:
    if event[0] != kind:
        return False
    for position, want in enumerate(args, start=1):
        if want is ANY:
            continue
        got = event[position] if len(event) > position else None
        if isinstance(want, (str, tuple)):
            if got != want:
                return False
        elif got is not want:
            return False
    return True


class _One:
    """Exactly one event of the given kind/operands."""

    def __init__(self, kind: str, *args):
        self.kind = kind
        self.args = args

    def ends(self, events: Sequence[Tuple], start: int) -> Iterator[int]:
        if start < len(events) and _event_matches(events[start], self.kind, self.args):
            yield start + 1


class _Zone:
    """A run of events drawn from *allowed* templates; *required* (when
    given) is an any-of set at least one consumed event must satisfy."""

    def __init__(self, allowed, minimum: int = 0, required=None):
        self.allowed = allowed
        self.minimum = minimum
        self.required = required

    def _ok(self, event) -> bool:
        return any(_event_matches(event, k, a) for k, a in self.allowed)

    def _satisfied(self, consumed) -> bool:
        if not self.required:
            return True
        return any(
            _event_matches(event, k, a)
            for event in consumed
            for k, a in self.required
        )

    def ends(self, events: Sequence[Tuple], start: int) -> Iterator[int]:
        end = start
        while True:
            if end - start >= self.minimum and self._satisfied(events[start:end]):
                yield end
            if end < len(events) and self._ok(events[end]):
                end += 1
            else:
                return


class _Rep:
    """*lo* to *hi* repetitions of a sub-sequence."""

    def __init__(self, sequence, lo: int, hi: int):
        self.sequence = sequence
        self.lo = lo
        self.hi = hi

    def ends(self, events: Sequence[Tuple], start: int) -> Iterator[int]:
        seen = set()

        def expand(position: int, count: int) -> Iterator[int]:
            if count >= self.lo and position not in seen:
                seen.add(position)
                yield position
            if count < self.hi:
                for nxt in _seq_ends(self.sequence, events, position):
                    yield from expand(nxt, count + 1)

        yield from expand(start, 0)


def _seq_ends(matchers, events: Sequence[Tuple], start: int) -> Iterator[int]:
    if not matchers:
        yield start
        return
    head, tail = matchers[0], matchers[1:]
    for middle in head.ends(events, start):
        yield from _seq_ends(tail, events, middle)


def _matches(matchers, events: Sequence[Tuple]) -> bool:
    return any(end == len(events) for end in _seq_ends(matchers, events, 0))


# --------------------------------------------------------------------------
# expected sequences


def _inlined(fn) -> bool:
    from ...core.fuse import safe_inline_expr
    inline = getattr(fn, "__fuse_inline__", None)
    return inline is not None and safe_inline_expr(inline)


def _slot_arg(slot) -> Any:
    return slot if isinstance(slot, str) else ANY


#: templates admitted inside a release-commit zone — the reference
#: counter vocabulary of the manager emitters, nothing else
_REL_COMMIT_ALLOWED = (
    ("ctr", ("n_releases", "+")), ("ctr", ("_n_free", "+")),
    ("ctr", ("_outstanding", "-")), ("writers_remove", ()),
    ("backing_write", ()), ("sub_set", ()), ("on_release_commit", ()),
)
#: any-of evidence the release actually committed
_REL_COMMIT_REQUIRED = (
    ("ctr", ("n_releases", "+")), ("ctr", ("_n_free", "+")),
    ("on_release_commit", ()),
)
#: templates admitted inside a grant-commit zone
_GRANT_ALLOWED = (
    ("ctr", ("n_allocates", "+")), ("ctr", ("_n_free", "-")),
    ("ctr", ("_outstanding", "+")), ("writers_append", ()), ("sub_set", ()),
)
#: any-of evidence the grant was counted
_GRANT_REQUIRED = (
    ("ctr", ("n_allocates", "+")), ("ctr", ("_n_free", "-")),
)


def _release_probe_zone(p, many: bool) -> _Zone:
    allowed = [("raise", ()), ("release_call", ()), ("blocked", (None,))]
    if p.value is not None:
        allowed.append(("call2" if many else "call1", (p.value,)))
    return _Zone(allowed, minimum=1, required=(("blocked", (None,)),))


def _native_expected(edge) -> Optional[List]:
    """Matchers for the native inline form, or None when the condition
    contains a primitive the native emitter cannot express."""
    primitives = edge.condition.primitives if edge.condition is not None else []
    sequence: List = []
    grants: List[Tuple[bool, Any]] = []
    releases: List[Tuple[bool, Any]] = []
    discards: List = []
    for p in primitives:
        kind = type(p)
        if kind is Guard:
            sequence.append(_One("call1", p.predicate))
        elif kind is Allocate:
            if p._dynamic and not _inlined(p.ident):
                sequence.append(_One("call1", p.ident))
            sequence.append(_One("blocked", p.manager))
            grants.append((False, p))
        elif kind is AllocateMany:
            if not _inlined(p.idents):
                sequence.append(_One("call1", p.idents))
            sequence.append(_One("blocked", p.manager))
            grants.append((True, p))
        elif kind is Inquire:
            group = [_One("blocked", p.manager), _One("inq_count", p.manager)]
            if p._dynamic:
                if not _inlined(p.ident):
                    sequence.append(_One("call1", p.ident))
                sequence.append(_Rep(group, 2, 2))
            elif isinstance(p.ident, (list, tuple)):
                n = len(p.ident)
                sequence.append(_Rep(group, n, n))
            else:
                sequence.extend(group)
        elif kind is Release:
            sequence.append(_release_probe_zone(p, many=False))
            releases.append((False, p))
        elif kind is ReleaseMany:
            sequence.append(_release_probe_zone(p, many=True))
            releases.append((True, p))
        elif kind is Discard:
            discards.append(p)
        else:
            return None  # custom primitive: never emitted natively
    # commit, in Transaction.commit order: releases, discards, grants
    for many, p in releases:
        slot = ANY if many else _slot_arg(p.slot)
        sequence.append(_One("buf_del", slot))
        sequence.append(_One("holder_none"))
        sequence.append(_Zone(_REL_COMMIT_ALLOWED, minimum=1,
                              required=_REL_COMMIT_REQUIRED))
    for p in discards:
        sequence.append(_One("buf_del", _slot_arg(p.slot) if p.slot is not None else ANY))
        sequence.append(_One("holder_none"))
        sequence.append(_One("on_discard"))
    for many, p in grants:
        slot = ANY if many else _slot_arg(p.slot)
        sequence.append(_One("holder_osm"))
        sequence.append(_One("buf_set", slot))
        sequence.append(_Zone(_GRANT_ALLOWED, minimum=1,
                              required=_GRANT_REQUIRED))
    sequence.extend(_bookkeeping_expected(edge))
    return sequence


def _txn_expected(edge) -> List:
    """Matchers for the transactional form: probe, commit, bookkeeping."""
    return [_One("txn_probe", ANY), _One("txn_commit")] + \
        _bookkeeping_expected(edge)


def _bookkeeping_expected(edge) -> List:
    """The ``try_transition`` post-commit tail, in reference order."""
    sequence = [
        _One("set_current", edge.dst),
        _One("set_last_edge", edge),
        _One("n_transitions"),
    ]
    if edge.src.is_initial:
        sequence.append(_One("set_age_clock"))
    if edge.action is not None:
        sequence.append(_One("call1", edge.action))
    if edge.dst.on_enter is not None:
        sequence.append(_One("call1", edge.dst.on_enter))
    if edge.dst.is_initial:
        sequence.extend([_One("raise"), _One("op_none"), _One("age_reset")])
    sequence.append(_One("return_obj", edge))
    return sequence


def _probe_expected(edge) -> Optional[List]:
    """Matchers for a compiled edge probe (:mod:`repro.core.edgecompile`)."""
    primitives = edge.condition.primitives if edge.condition is not None else []
    sequence: List = []
    for p in primitives:
        kind = type(p)
        if kind is Guard:
            sequence.append(_One("call1", p.predicate))
        elif kind is Allocate:
            if p._dynamic:
                sequence.append(_One("call1", p.ident))
            sequence.extend([
                _One("mgr_call", "allocate", p.manager),
                _One("blocked", p.manager),
                _One("t_grant", _slot_arg(p.slot)),
            ])
        elif kind is AllocateMany:
            sequence.extend([
                _One("call1", p.idents),
                _One("mgr_call", "allocate", p.manager),
                _One("blocked", p.manager),
                _One("t_grant", ANY),
            ])
        elif kind is Inquire:
            group = [
                _One("mgr_call", "inquire", p.manager),
                _One("blocked", p.manager),
                _One("t_inq", p.manager),
                _One("inq_count", p.manager),
            ]
            if p._dynamic:
                sequence.append(_One("call1", p.ident))
                sequence.append(_Rep(group, 2, 2))
            elif isinstance(p.ident, (list, tuple)):
                n = len(p.ident)
                sequence.append(_Rep(group, n, n))
            else:
                sequence.extend(group)
        elif kind is Release:
            allowed = [("raise", ()), ("release_call", ()), ("blocked", (None,))]
            if p.value is not None:
                allowed.append(("call1", (p.value,)))
            sequence.append(_Zone(allowed, minimum=1,
                                  required=(("release_call", ()),)))
            sequence.append(_One("t_rel", _slot_arg(p.slot)))
        elif kind is ReleaseMany:
            allowed = [("raise", ()), ("release_call", ()), ("blocked", (None,))]
            if p.value is not None:
                allowed.append(("call2", (p.value,)))
            sequence.append(_Zone(allowed, minimum=1,
                                  required=(("release_call", ()),)))
            sequence.append(_One("t_rel", ANY))
        elif kind is Discard:
            sequence.append(
                _One("t_disc", _slot_arg(p.slot) if p.slot is not None else ANY))
        else:
            # custom primitive: compiled as a bound probe(osm, txn) call
            probe = getattr(p, "probe", None)
            if not callable(probe):
                return None
            sequence.append(_One("txn_probe", _callable_key(probe)))
    sequence.append(_One("return_true"))
    return sequence


# --------------------------------------------------------------------------
# drivers


def replay_stepper(state, spec) -> List[str]:
    """Validate *state*'s fused stepper against its out-edge plans.

    Returns a list of problem strings; empty means the stepper replays
    clean (TRV001 passes for this state).
    """
    fn = state._fused
    if fn is None:
        return []
    source = getattr(fn, "__fused_source__", None)
    if source is None:
        return [f"fused stepper for {state.name} carries no __fused_source__"]
    try:
        node = parse_function(source, "_fused_step")
    except (ValueError, SyntaxError) as exc:
        return [f"{state.name}: unparseable stepper source: {exc}"]

    try:
        env = _param_env(node, fn)
    except ExtractionError as exc:
        return [f"{state.name}: {exc}"]
    names = [a.arg for a in node.args.args]
    if len(names) < 2:
        return [f"{state.name}: stepper signature too short"]
    env[names[0]] = ("osm",)
    env[names[1]] = ("clock",)

    problems: List[str] = []
    body = list(node.body)
    header = _Extractor(env)
    try:
        while body and not isinstance(body[0], ast.While):
            header._stmt(body.pop(0))
    except ExtractionError as exc:
        return [f"{state.name}: unclassifiable stepper header: {exc}"]
    if header.events != [("blocked_clear",)]:
        problems.append(f"{state.name}: stepper header does not clear blocked_on")
    if not body or not isinstance(body[-1], ast.Return):
        problems.append(f"{state.name}: stepper does not end in a return")
        return problems
    tail = _Extractor(header.env)
    try:
        tail._stmt(body.pop())
    except ExtractionError as exc:
        return problems + [f"{state.name}: {exc}"]
    if tail.events != [("return_none",)]:
        problems.append(f"{state.name}: stepper tail is not `return None`")

    edges = state.out_edges
    if len(body) != len(edges):
        problems.append(
            f"{state.name}: {len(body)} edge attempts generated for "
            f"{len(edges)} out-edges")
        return problems
    for edge, attempt in zip(edges, body):
        if not (isinstance(attempt, ast.While)
                and isinstance(attempt.test, ast.Constant)
                and attempt.test.value is True):
            problems.append(f"{edge.qualname}: edge attempt is not `while True`")
            continue
        extractor = _Extractor(header.env)
        try:
            extractor.run(attempt.body)
        except ExtractionError as exc:
            problems.append(f"{edge.qualname}: {exc}")
            continue
        native = _native_expected(edge)
        if native is not None and _matches(native, extractor.events):
            continue
        if _matches(_txn_expected(edge), extractor.events):
            continue
        problems.append(
            f"{edge.qualname}: generated effects do not replay against the "
            f"edge plan (events: {[e[0] for e in extractor.events]})")
    return problems


def replay_probe(edge, probe) -> List[str]:
    """Validate a compiled edge probe against the interpreted plan.

    Returns problem strings; an interpreted probe (no captured source)
    yields no problems — there is no translation to validate.
    """
    source = getattr(probe, "__probe_source__", None)
    if source is None:
        return []
    try:
        node = parse_function(source, "_probe")
    except (ValueError, SyntaxError) as exc:
        return [f"{edge.qualname}: unparseable probe source: {exc}"]
    try:
        env = _param_env(node, probe)
    except ExtractionError as exc:
        return [f"{edge.qualname}: {exc}"]
    names = [a.arg for a in node.args.args]
    if len(names) < 2:
        return [f"{edge.qualname}: probe signature too short"]
    env[names[0]] = ("osm",)
    env[names[1]] = ("txn",)
    extractor = _Extractor(env)
    try:
        extractor.run(node.body)
    except ExtractionError as exc:
        return [f"{edge.qualname}: {exc}"]
    expected = _probe_expected(edge)
    if expected is None:
        return [f"{edge.qualname}: compiled probe for a custom primitive"]
    if not _matches(expected, extractor.events):
        return [
            f"{edge.qualname}: compiled probe does not replay against the "
            f"interpreted plan (events: {[e[0] for e in extractor.events]})"]
    return []
