"""AST normalization helpers shared by transcheck and the snapshot tests.

Generated code is compared *structurally*: parse, then unparse, so
formatting details of the writers (indent width, blank lines, redundant
parentheses) never count as differences.  Python 3.9+ is required for
``ast.unparse`` — the package's floor.
"""

from __future__ import annotations

import ast
from typing import Optional


def normalize_source(source: str) -> str:
    """Parse-and-unparse *source* into a canonical text form."""
    return ast.unparse(ast.parse(source))


def parse_function(source: str, name: Optional[str] = None) -> ast.FunctionDef:
    """The (single) function definition in *source*.

    *name* pins the expected function name; a mismatch or a module that
    is not exactly one function definition raises ``ValueError`` —
    generated artifacts have a fixed shape and anything else means the
    generator (or the introspection hook) is broken.
    """
    tree = ast.parse(source)
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        raise ValueError("expected exactly one function definition")
    fn = tree.body[0]
    if name is not None and fn.name != name:
        raise ValueError(f"expected function {name!r}, found {fn.name!r}")
    return fn


def const_value(node: ast.AST):
    """The literal value of *node*, or ``...`` (Ellipsis) when the node
    is not a compile-time literal.  Ellipsis is used as the "unknown"
    sentinel because ``None`` is itself a legitimate literal."""
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError, TypeError):
        return ...
