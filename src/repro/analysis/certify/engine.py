"""transcheck engine: contexts, the TRV rule passes, and the drivers.

Mirrors the effects/audit engines' shape — a pass protocol over a
lazily-computed shared context, driven by :func:`certify_spec` (model
specs, rules TRV001–TRV003/TRV007–TRV008) and :func:`certify_isa` (ISA
targets, rules TRV004–TRV006) with the same suppression channels
(``spec.lint_allow`` / ``edge.lint_allow`` for specs, ``target.allow``
for ISAs).

:func:`certify_fused_states` is the *build-time gate*: called by
:func:`repro.core.fuse.enable_fusion` after fusing, it replays every
installed stepper (the TRV001 check) and returns the states whose
generated code failed validation, so the model demotes them back to the
per-edge plan before the first cycle runs.  It deliberately touches
nothing beyond the replayer — no audit targets, no ISS drivers — to
stay cheap on the model-construction path.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..diagnostics import Diagnostic, Report, Severity
from .fingerprint import generator_fingerprint
from .replay import replay_probe, replay_stepper

__all__ = [
    "DEFAULT_PASSES",
    "ISA_CODES",
    "SPEC_CODES",
    "CertifyPass",
    "IsaCertifyContext",
    "SpecCertifyContext",
    "certify_fused_states",
    "certify_isa",
    "certify_spec",
    "default_isa_passes",
    "default_spec_passes",
]

#: rule codes that run per model spec / per ISA target
SPEC_CODES = ("TRV001", "TRV002", "TRV003", "TRV007", "TRV008")
ISA_CODES = ("TRV004", "TRV005", "TRV006")

#: cap on repeated findings per (pass, anchor): keeps a systematically
#: broken generator from producing thousands of identical diagnostics
MAX_PER_ANCHOR = 4


# -- contexts ----------------------------------------------------------------

class SpecCertifyContext:
    """Per-run shared facts for the spec-side rules."""

    def __init__(self, spec):
        self.spec = spec
        self._ident_sites = None
        self._compilability = None
        # force every probe plan so the compile census and the compiled
        # probes exist regardless of what the model ran before
        for state in spec.states.values():
            state.probe_plan()

    @property
    def ident_sites(self):
        """Harvested dynamic-ident callables (effects engine harvest)."""
        if self._ident_sites is None:
            from ..effects.engine import harvest_spec
            self._ident_sites = [
                site for site in harvest_spec(self.spec) if site.role == "ident"
            ]
        return self._ident_sites

    @property
    def compilability(self):
        """The effectcheck compilability verdict for this spec."""
        if self._compilability is None:
            from ..effects import compilability_report, effects_spec
            report = effects_spec(self.spec)
            self._compilability = compilability_report(self.spec, report)
        return self._compilability

    def fused(self):
        """``(state, stepper)`` for every state with an installed stepper."""
        for state in self.spec.states.values():
            fn = getattr(state, "_fused", None)
            if fn is not None:
                yield state, fn


class IsaCertifyContext:
    """Per-run shared facts for the ISA-side rules: the audit lattice
    runs (reference semantics traffic) and the compiling-ISS driver."""

    def __init__(self, target):
        self.target = target
        self._audit = None
        self._iss = None
        self._iss_built = False

    @property
    def runs(self):
        """``class name -> [PointRun]`` from the audit harness."""
        if self._audit is None:
            from ..audit.engine import AuditContext
            self._audit = AuditContext(self.target)
        return self._audit.runs

    @property
    def iss(self):
        """The compiling ISS after running the bundled driver program,
        or None for targets without one (e.g. toy test targets)."""
        if not self._iss_built:
            from .isachecks import run_arm_driver, run_ppc_driver
            if self.target.name == "arm":
                self._iss = run_arm_driver()
            elif self.target.name == "ppc":
                self._iss = run_ppc_driver()
            self._iss_built = True
        return self._iss


# -- pass protocol -----------------------------------------------------------

class CertifyPass:
    """Base class of all transcheck rules (TRV001…)."""

    code: str = "TRV000"
    rule: str = "abstract"

    def run(self, ctx) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        ctx,
        message: str,
        severity: Severity = Severity.ERROR,
        state: Optional[str] = None,
        edge=None,
    ) -> Diagnostic:
        if edge is not None and state is None:
            state = edge.src.name
        subject = ctx.spec.name if hasattr(ctx, "spec") else ctx.target.name
        return Diagnostic(
            code=self.code,
            rule=self.rule,
            severity=severity,
            spec=subject,
            message=message,
            state=state,
            edge=edge.qualname if edge is not None else None,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.code})"


# -- spec-side rules ---------------------------------------------------------

class Trv001FusedReplay(CertifyPass):
    """Replay each fused stepper's source against the per-edge plan."""

    code = "TRV001"
    rule = "fused-stepper-replay"

    def run(self, ctx) -> Iterator[Diagnostic]:
        for state, fn in ctx.fused():
            if getattr(fn, "__fused_source__", None) is None:
                yield self.diag(
                    ctx,
                    f"fused stepper for state {state.name!r} carries no "
                    "__fused_source__ hook; generated code cannot be "
                    "validated",
                    state=state.name,
                )
                continue
            for problem in replay_stepper(state, ctx.spec)[:MAX_PER_ANCHOR]:
                yield self.diag(
                    ctx,
                    f"fused stepper diverges from the edge plan: {problem}",
                    state=state.name,
                )


class Trv002InlineContract(CertifyPass):
    """``__fuse_inline__`` declarations must match the tagged callable."""

    code = "TRV002"
    rule = "inline-ident-contract"

    def run(self, ctx) -> Iterator[Diagnostic]:
        from ...core.fuse import safe_inline_expr
        from ..effects.engine import PROBE_DEPTH
        from ..effects.footprint import analyze_callable

        for site in ctx.ident_sites:
            inline = getattr(site.fn, "__fuse_inline__", None)
            if inline is None:
                continue
            if not safe_inline_expr(inline):
                yield self.diag(
                    ctx,
                    f"{site.name}: __fuse_inline__ declaration "
                    f"{inline!r} is not a safe expression; the fuser "
                    "demotes the site to a dynamic call",
                    severity=Severity.WARNING,
                    edge=site.edge,
                )
                continue
            footprint = analyze_callable(
                site.fn, site.param_roles, depth=PROBE_DEPTH)
            if not footprint.pure:
                yield self.diag(
                    ctx,
                    f"{site.name}: callable tagged __fuse_inline__ is "
                    "impure (writes: "
                    f"{sorted(footprint.writes) or footprint.reason}); "
                    "the pasted expression cannot reproduce its effects",
                    edge=site.edge,
                )
            body = _single_return_expr(site.fn)
            if body is None:
                yield self.diag(
                    ctx,
                    f"{site.name}: inline contract unverifiable — the "
                    "tagged callable is not a single-return function",
                    severity=Severity.WARNING,
                    edge=site.edge,
                )
            elif body != _normalized_expr_dump(inline, "osm"):
                yield self.diag(
                    ctx,
                    f"{site.name}: __fuse_inline__ expression {inline!r} "
                    "diverges from the tagged callable's body",
                    edge=site.edge,
                )


class Trv003ProbeReplay(CertifyPass):
    """Replay each compiled edge probe against the primitive sequence."""

    code = "TRV003"
    rule = "edge-probe-replay"

    def run(self, ctx) -> Iterator[Diagnostic]:
        from ...core.edgecompile import compile_edge_probe

        for edge in ctx.spec.edges:
            if getattr(edge, "compile_mode", "auto") == "interpreted":
                continue  # pinned to the interpreted fallback: no artifact
            probe = compile_edge_probe(edge)
            if getattr(probe, "__probe_source__", None) is None:
                continue  # interpreted fallback closure: no artifact
            for problem in replay_probe(edge, probe)[:MAX_PER_ANCHOR]:
                yield self.diag(
                    ctx,
                    f"compiled probe diverges from the primitive plan: "
                    f"{problem}",
                    edge=edge,
                )


class Trv007FallbackConsistency(CertifyPass):
    """Installed steppers, the effectcheck verdict and the compile
    census must tell the same story."""

    code = "TRV007"
    rule = "fallback-consistency"

    def run(self, ctx) -> Iterator[Diagnostic]:
        fusable = set(ctx.compilability.fusable_states)
        for state, _fn in ctx.fused():
            if state.name not in fusable:
                yield self.diag(
                    ctx,
                    f"state {state.name!r} runs a fused stepper but "
                    "effectcheck deems it unfusable",
                    state=state.name,
                )
        stats = getattr(ctx.spec, "compile_stats", None)
        if stats is None:
            return
        for name, reason in sorted(stats.states.items()):
            state = ctx.spec.states.get(name)
            if state is None:
                continue
            fused = getattr(state, "_fused", None) is not None
            if reason is None and not fused:
                yield self.diag(
                    ctx,
                    f"compile census counts state {name!r} as fused but "
                    "no stepper is installed",
                    state=name,
                )
            elif reason is not None and fused:
                yield self.diag(
                    ctx,
                    f"compile census counts state {name!r} as a fallback "
                    f"({reason}) but a fused stepper is installed",
                    state=name,
                )


class Trv008GeneratorDrift(CertifyPass):
    """Fuse certificates must match the current generators and steppers."""

    code = "TRV008"
    rule = "generator-drift"

    def run(self, ctx) -> Iterator[Diagnostic]:
        actual = sorted(state.name for state, _fn in ctx.fused())
        certificate = getattr(ctx.spec, "fuse_certificate", None)
        if certificate is None:
            if actual:
                yield self.diag(
                    ctx,
                    f"states {actual} run fused steppers but the spec "
                    "carries no fuse certificate",
                )
            return
        fingerprint = generator_fingerprint()
        if certificate.get("generator") != fingerprint:
            yield self.diag(
                ctx,
                "stale fuse certificate: the code generators changed "
                f"since it was stamped (certificate "
                f"{str(certificate.get('generator'))[:12]}…, current "
                f"{fingerprint[:12]}…)",
            )
        stamped = sorted(certificate.get("fused_states") or [])
        if stamped != actual:
            yield self.diag(
                ctx,
                f"fuse certificate covers states {stamped} but states "
                f"{actual} run fused steppers",
            )


# -- ISA-side rules ----------------------------------------------------------

class Trv004ExecgenWriteSet(CertifyPass):
    """Generated executors must cover the reference semantics' writes.

    For every audit lattice point the reference semantics executed, the
    static may-write set of the execgen translation must contain every
    architectural write the reference performed (registers, flags,
    SPRs, memory).  *translate* is injectable for the mutation tests.
    """

    code = "TRV004"
    rule = "execgen-write-set"

    def __init__(self, translate=None):
        self._translate = translate

    def _translator(self, target):
        if self._translate is not None:
            return self._translate
        if target.name == "arm":
            from ...isa.arm.execgen import _translate
            return _translate
        if target.name == "ppc":
            from ...isa.ppc.execgen import _translate
            return _translate
        return None

    def run(self, ctx) -> Iterator[Diagnostic]:
        from .isachecks import static_writes

        translate = self._translator(ctx.target)
        if translate is None:
            return
        flag_nums = dict(ctx.target.flag_regs)
        spr_nums = dict(ctx.target.spr_regs)
        reported = {}
        for cls_name, runs in sorted(ctx.runs.items()):
            for run in runs:
                if run.udf or run.error is not None:
                    continue
                source = translate(run.instr, "_exec")
                if source is None:
                    continue  # interpreted fallback: no artifact
                static = static_writes(source)
                if static.syscall:
                    continue  # syscall side effects are out of scope
                covered = set(static.regs)
                covered.update(flag_nums[f] for f in static.flags
                               if f in flag_nums)
                covered.update(spr_nums[s] for s in static.sprs
                               if s in spr_nums)
                missing = [] if -1 in covered else sorted(
                    run.writes - covered)
                if missing and reported.setdefault(
                        (cls_name, tuple(missing)), 0) < MAX_PER_ANCHOR:
                    reported[(cls_name, tuple(missing))] += 1
                    yield self.diag(
                        ctx,
                        f"{run.label}: reference semantics wrote hazard "
                        f"register(s) {missing} the generated executor "
                        "never writes",
                        state=cls_name,
                    )
                if run.state.memory.stores and not static.mem:
                    key = (cls_name, "mem")
                    if reported.setdefault(key, 0) < MAX_PER_ANCHOR:
                        reported[key] += 1
                        yield self.diag(
                            ctx,
                            f"{run.label}: reference semantics stored to "
                            "memory but the generated executor performs "
                            "no memory write",
                            state=cls_name,
                        )


class Trv005BlockStoreGuards(CertifyPass):
    """Compiled ARM blocks must guard every store with ``_b.valid``.

    Only the ARM target translates whole blocks to source; the PPC
    compiling ISS chains the per-instruction executors (reference code,
    documented exemption in docs/static-analysis.md).  *interpreter* and
    *mutate* are injectable for the mutation tests.
    """

    code = "TRV005"
    rule = "block-store-guards"

    def __init__(self, interpreter=None, mutate=None):
        self._interpreter = interpreter
        self._mutate = mutate

    def run(self, ctx) -> Iterator[Diagnostic]:
        from .isachecks import check_store_guards

        interpreter = self._interpreter
        if interpreter is None:
            if ctx.target.name != "arm":
                return
            interpreter = ctx.iss
        if interpreter is None:
            return
        saw_store = False
        for entry, block in sorted(interpreter.decode_cache.blocks.items()):
            source = getattr(block.compiled, "__block_source__", None)
            if source is None:
                yield self.diag(
                    ctx,
                    f"compiled block {entry:#x} carries no "
                    "__block_source__ hook; generated code cannot be "
                    "validated",
                )
                continue
            if self._mutate is not None:
                source = self._mutate(source)
            if "write_" in source:
                saw_store = True
            for problem in check_store_guards(source)[:MAX_PER_ANCHOR]:
                yield self.diag(ctx, f"block {entry:#x}: {problem}")
        if not saw_store:
            yield self.diag(
                ctx,
                "driver program compiled no store-bearing block; the "
                "store-guard check ran vacuously",
                severity=Severity.WARNING,
            )


class Trv006PageMapCoverage(CertifyPass):
    """Every live block must be indexed under every page it spans."""

    code = "TRV006"
    rule = "page-map-coverage"

    def __init__(self, decode_cache=None):
        self._decode_cache = decode_cache

    def run(self, ctx) -> Iterator[Diagnostic]:
        from .isachecks import check_page_map

        cache = self._decode_cache
        if cache is None:
            interpreter = ctx.iss
            if interpreter is None:
                return
            cache = interpreter.decode_cache
        for problem in check_page_map(cache):
            yield self.diag(ctx, problem)


# -- TRV002 helpers ----------------------------------------------------------

def _single_return_expr(fn) -> Optional[str]:
    """The normalized ``ast.dump`` of *fn*'s body when it is a single
    ``return <expr>`` (or a lambda), with its first parameter renamed to
    ``osm``; None otherwise."""
    import ast
    import inspect
    import textwrap

    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError, ValueError):
        return None
    node = None
    for candidate in ast.walk(tree):
        if isinstance(candidate, (ast.FunctionDef, ast.Lambda)):
            node = candidate
            break
    if node is None or not node.args.args:
        return None
    param = node.args.args[0].arg
    if isinstance(node, ast.Lambda):
        expr = node.body
    else:
        if len(node.body) != 1 or not isinstance(node.body[0], ast.Return) \
                or node.body[0].value is None:
            return None
        expr = node.body[0].value
    return _normalized_expr_dump(ast.unparse(expr), param)


def _normalized_expr_dump(expr: str, param: str) -> Optional[str]:
    """``ast.dump`` of *expr* with the name *param* rewritten to ``osm``."""
    import ast

    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError:
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == param:
            node.id = "osm"
    return ast.dump(tree)


# -- drivers -----------------------------------------------------------------

def default_spec_passes() -> List[CertifyPass]:
    """Fresh instances of the per-spec rules, in code order."""
    return [
        Trv001FusedReplay(),
        Trv002InlineContract(),
        Trv003ProbeReplay(),
        Trv007FallbackConsistency(),
        Trv008GeneratorDrift(),
    ]


def default_isa_passes() -> List[CertifyPass]:
    """Fresh instances of the per-ISA rules, in code order."""
    return [
        Trv004ExecgenWriteSet(),
        Trv005BlockStoreGuards(),
        Trv006PageMapCoverage(),
    ]


#: code -> pass class mapping of the bundled rules (for --rules filters)
DEFAULT_PASSES = {p.code: type(p)
                  for p in default_spec_passes() + default_isa_passes()}


def _filter_passes(passes, codes):
    if codes is None:
        return list(passes)
    wanted = set(codes)
    unknown = wanted - {p.code for p in passes}
    if unknown:
        raise ValueError(f"unknown certify rule code(s): {sorted(unknown)}")
    return [p for p in passes if p.code in wanted]


def certify_spec(
    spec,
    passes: Optional[Sequence[CertifyPass]] = None,
    codes: Optional[Iterable[str]] = None,
) -> Report:
    """Run the spec-side transcheck rules over *spec*.

    Suppression reuses the lint allow channel: a ``TRV`` code named in
    ``edge.lint_allow`` or ``spec.lint_allow`` marks the finding as an
    audited suppression (kept in the report, excluded from the
    pass/fail verdict).
    """
    if passes is None:
        passes = default_spec_passes()
    passes = _filter_passes(passes, codes)
    ctx = SpecCertifyContext(spec)
    report = Report(spec=spec.name, tool="certify")
    spec_allow = set(getattr(spec, "lint_allow", ()))
    edge_allow = {edge.qualname: set(edge.lint_allow) for edge in spec.edges}
    for certify_pass in passes:
        report.passes_run.append(certify_pass.code)
        for diagnostic in certify_pass.run(ctx):
            if diagnostic.code in spec_allow:
                diagnostic.suppressed = True
            elif diagnostic.edge is not None and diagnostic.code in \
                    edge_allow.get(diagnostic.edge, ()):
                diagnostic.suppressed = True
            report.diagnostics.append(diagnostic)
    report.sort()
    return report


def certify_isa(
    target,
    passes: Optional[Sequence[CertifyPass]] = None,
    codes: Optional[Iterable[str]] = None,
) -> Report:
    """Run the ISA-side transcheck rules over an audit target (by name
    or as an :class:`~repro.analysis.audit.targets.AuditTarget`)."""
    if isinstance(target, str):
        from ..audit.targets import build_target
        target = build_target(target)
    if passes is None:
        passes = default_isa_passes()
    passes = _filter_passes(passes, codes)
    ctx = IsaCertifyContext(target)
    report = Report(spec=target.name, tool="certify")
    for certify_pass in passes:
        report.passes_run.append(certify_pass.code)
        for diagnostic in certify_pass.run(ctx):
            if diagnostic.code in target.allow:
                diagnostic.suppressed = True
            report.diagnostics.append(diagnostic)
    report.sort()
    return report


# -- build-time gate ---------------------------------------------------------

def certify_fused_states(spec) -> List[Tuple[str, str]]:
    """Replay every installed fused stepper; returns ``(state name,
    reason)`` for each one that fails translation validation.

    The fast path of ``repro certify`` rule TRV001, packaged for
    :func:`repro.core.fuse.enable_fusion`: the caller demotes the named
    states via ``apply_compilability`` before the model runs a cycle.
    """
    failures: List[Tuple[str, str]] = []
    for state in spec.states.values():
        fn = getattr(state, "_fused", None)
        if fn is None:
            continue
        if getattr(fn, "__fused_source__", None) is None:
            failures.append((state.name, "no __fused_source__ hook"))
            continue
        problems = replay_stepper(state, spec)
        if problems:
            failures.append((state.name, problems[0]))
    return failures
