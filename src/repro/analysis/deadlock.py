"""Deprecated shim: the hold-allocate deadlock analysis moved to
:mod:`repro.analysis.lint.graph` (the lint/checker stack is the single
owner of spec-graph facts).

``DeadlockReport`` is re-exported unchanged; :func:`analyze` delegates
to :func:`repro.analysis.lint.graph.analyze_deadlock` after emitting a
:class:`DeprecationWarning`.  New code should import from the lint
package or run the OSM008 lint pass, which reports cycles through the
shared diagnostics schema.
"""

from __future__ import annotations

import warnings

from .lint.graph import DeadlockReport, analyze_deadlock

__all__ = ["DeadlockReport", "analyze"]


def analyze(spec) -> DeadlockReport:
    """Deprecated alias of :func:`repro.analysis.lint.graph.analyze_deadlock`."""
    warnings.warn(
        "repro.analysis.deadlock.analyze is deprecated; use "
        "repro.analysis.lint.graph.analyze_deadlock (or the OSM008 lint pass)",
        DeprecationWarning,
        stacklevel=2,
    )
    return analyze_deadlock(spec)
