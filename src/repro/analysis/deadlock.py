"""Static cyclic-resource-dependency detection.

Section 3.4: "scheduling deadlock may occur in the model if cyclic
resource dependency involving two or more OSMs exists ...  In OSM based
microprocessor models, such cyclic dependency implies a cyclic pipeline."

The static analysis approximates hold-and-wait: walking a specification's
edges, manager B depends on manager A when some edge *allocates from B
while holding a token of A* (the A token was acquired earlier on the path
and not yet released).  A cycle in this hold-allocate graph is a
potential deadlock — a cyclic pipeline — which the director would abort
on at run time; catching it statically is one of the validation payoffs
of the declarative model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..core.osm import MachineSpec
from ..core.primitives import Allocate, AllocateMany, Discard, Release, ReleaseMany


@dataclass
class DeadlockReport:
    #: hold-allocate dependencies: (held manager, requested manager)
    dependencies: Set[Tuple[str, str]] = field(default_factory=set)
    cycles: List[List[str]] = field(default_factory=list)

    @property
    def deadlock_free(self) -> bool:
        return not self.cycles


def analyze(spec: MachineSpec) -> DeadlockReport:
    """Build the hold-allocate graph of *spec* and find its cycles."""
    report = DeadlockReport()
    if spec.initial is None:
        raise ValueError(f"{spec.name}: no initial state")

    # Depth-first exploration of (state, frozenset of (slot, manager)
    # pairs): the slot-to-manager binding is part of the abstract token
    # buffer, so a slot name like "unit" reused by several parallel edges
    # (one per function unit) resolves correctly along each path.
    start = (spec.initial.name, frozenset())
    seen = {start}
    frontier = [start]
    while frontier:
        state_name, held = frontier.pop()
        state = spec.states[state_name]
        for edge in state.out_edges:
            new_held = dict(held)
            for primitive in edge.condition.primitives:
                if isinstance(primitive, (Allocate, AllocateMany)):
                    manager = primitive.manager.name
                    for holder in dict(held).values():
                        report.dependencies.add((holder, manager))
                    new_held[primitive.slot] = manager
                elif isinstance(primitive, Release):
                    new_held.pop(primitive.slot, None)
                elif isinstance(primitive, ReleaseMany):
                    for slot in [s for s in new_held if s.startswith(primitive.prefix)]:
                        new_held.pop(slot)
                elif isinstance(primitive, Discard):
                    if primitive.slot is None:
                        new_held.clear()
                    else:
                        new_held.pop(primitive.slot, None)
            successor = (edge.dst.name, frozenset(new_held.items()))
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)

    report.cycles = _find_cycles(report.dependencies)
    return report


def _find_cycles(dependencies: Set[Tuple[str, str]]) -> List[List[str]]:
    graph: Dict[str, List[str]] = {}
    for src, dst in dependencies:
        graph.setdefault(src, []).append(dst)
        graph.setdefault(dst, [])
    cycles: List[List[str]] = []
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}

    def visit(node: str, path: List[str]) -> None:
        colour[node] = GREY
        path.append(node)
        for succ in graph[node]:
            if colour[succ] == GREY:
                cycle = path[path.index(succ):] + [succ]
                if sorted(cycle[:-1]) not in [sorted(c[:-1]) for c in cycles]:
                    cycles.append(cycle)
            elif colour[succ] == WHITE:
                visit(succ, path)
        path.pop()
        colour[node] = BLACK

    for node in list(graph):
        if colour[node] == WHITE:
            visit(node, [])
    return cycles
