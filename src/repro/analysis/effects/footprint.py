"""Effect-footprint inference over live Python callables.

effectcheck's substrate: given a callable that model code hangs on an
OSM edge (a guard predicate, a dynamic token identifier, a release
value, a custom primitive ``probe``, an edge action, a state
``on_enter`` or a director rank key), infer a :class:`Footprint` — the
sets of abstract locations it reads and writes, the nondeterminism
sources it touches, and the calls it makes that the analyzer cannot see
through.

The analysis is source-level: ``inspect.getsource`` + ``ast`` over the
*live* function object, with the function's closure cells, globals and
bound ``self`` used as an environment to resolve names to concrete
objects.  When no source is recoverable (C builtins, ``exec``-built
code, unparseable inline-lambda fragments) a coarse bytecode walk
(:mod:`dis`) stands in, and the footprint is flagged imprecise.

Location grammar
----------------
``osm.operation.seq``
    dotted path rooted at a *symbolic* parameter role (``osm``, ``txn``,
    ``token`` …) — per-operation state of the probed OSM.
``shared:FetchUnit.slots``
    attribute of a concrete object reached through the closure or bound
    ``self`` — state shared between OSMs.
``global:repro.models.x.counter``
    module-global binding (or attribute chain hanging off one).
``…[]``
    element of a subscripted/iterated container.
``?.attr``
    attribute of an unresolvable receiver (bytecode fallback, or a
    receiver the resolver lost track of) — treated as shared by the
    rules, conservatively.

Soundness caveats (documented in ``docs/static-analysis.md``): methods
invoked *on symbolic roots* (e.g. ``osm.operation.helper()``) are
assumed read-only unless their name is in the known-mutator table;
callables defined in ``repro.core`` are trusted to honour the probe
protocol rather than re-analyzed; recursion into resolved model-level
callees is depth-bounded.
"""

from __future__ import annotations

import ast
import dis
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["Footprint", "analyze_callable"]


#: modules whose use marks a callable nondeterministic (EFF006) — their
#: values vary across runs, so baking them into compiled probes (or any
#: replay) diverges
NONDET_MODULES = {"random", "time", "secrets", "uuid", "datetime", "os"}

#: builtins that are nondeterministic across interpreter runs or smuggle
#: in ambient state
NONDET_BUILTINS = {"id", "input", "globals", "locals", "vars", "memoryview"}

#: builtins known not to mutate their arguments or ambient state
PURE_BUILTINS = {
    "abs", "all", "any", "bin", "bool", "bytes", "callable", "chr",
    "dict", "divmod", "enumerate", "filter", "float", "format",
    "frozenset", "getattr", "hasattr", "hash", "hex", "int",
    "isinstance", "issubclass", "iter", "len", "list", "map", "max",
    "min", "next", "oct", "ord", "pow", "range", "repr", "reversed",
    "round", "set", "slice", "sorted", "str", "sum", "tuple", "type",
    "zip",
}

#: method names that mutate their receiver (the conservative core of the
#: list/set/dict/deque protocols)
MUTATOR_METHODS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "pop", "popleft", "popitem", "remove", "reverse",
    "rotate", "setdefault", "sort", "update", "write", "writelines",
}

#: method names known to only read their receiver
PURE_METHODS = {
    "copy", "count", "decode", "encode", "endswith", "format", "get",
    "index", "isdigit", "items", "join", "keys", "ljust", "lower",
    "lstrip", "most_common", "rjust", "rstrip", "split", "startswith",
    "strip", "upper", "values",
}

#: read-only OperationStateMachine helpers (callable on the ``osm`` root)
OSM_PURE_METHODS = {"holds", "token", "slot_of"}

#: Transaction methods — writes to the transaction are the probe
#: protocol's sanctioned effect channel
TXN_METHODS = {
    "add_grant", "add_inquiry", "add_release", "add_discard",
    "is_tentatively_released", "reset",
}

#: modules whose callables are trusted to honour the documented probe
#: protocol (manager.allocate/inquire/release write only the transaction
#: and blocked_on) instead of being re-analyzed
TRUSTED_MODULE_PREFIX = "repro.core"

#: immutable types treated as constants: resolving a name to one of
#: these records no read, because the value cannot change in flight
_CONST_TYPES = (int, float, complex, str, bytes, bool, type(None), frozenset)


@dataclass
class Footprint:
    """The inferred effect set of one callable (plus bounded callees)."""

    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    #: nondeterminism sources touched (module.attr or builtin names)
    nondet: Set[str] = field(default_factory=set)
    #: calls the analyzer could not see through or classify
    opaque: Set[str] = field(default_factory=set)
    #: calls that were resolved and classified (for reporting)
    calls: Set[str] = field(default_factory=set)
    #: True when a ``.notify(...)`` call was seen (observable-version bump)
    notifies: bool = False
    #: False when no source/bytecode at all was recoverable
    analyzable: bool = True
    #: True when the coarse bytecode walk stood in for the AST analysis
    via_bytecode: bool = False
    reason: Optional[str] = None

    def merge(self, other: "Footprint") -> None:
        self.reads |= other.reads
        self.writes |= other.writes
        self.nondet |= other.nondet
        self.opaque |= other.opaque
        self.calls |= other.calls
        self.notifies = self.notifies or other.notifies
        self.analyzable = self.analyzable and other.analyzable
        self.via_bytecode = self.via_bytecode or other.via_bytecode
        if self.reason is None:
            self.reason = other.reason

    @property
    def pure(self) -> bool:
        """No writes, no nondeterminism, no notify."""
        return not self.writes and not self.nondet and not self.notifies

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "nondet": sorted(self.nondet),
            "opaque": sorted(self.opaque),
            "notifies": self.notifies,
            "analyzable": self.analyzable,
        }


class _Ref:
    """Resolution of an expression: a symbolic path, a concrete object,
    a module, a callable, a constant, a fresh local, or unknown."""

    __slots__ = ("kind", "path", "obj")

    def __init__(self, kind: str, path: str = "", obj: Any = None):
        self.kind = kind  # sym | obj | objattr | module | func | const | local | unknown
        self.path = path
        self.obj = obj

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Ref({self.kind}, {self.path!r})"


_UNKNOWN = _Ref("unknown")


def analyze_callable(
    fn,
    param_roles: Sequence[str] = ("osm",),
    depth: int = 2,
) -> Footprint:
    """Infer the effect footprint of *fn*.

    ``param_roles`` names the symbolic roots bound to the positional
    parameters (after any bound ``self``), e.g. ``("osm",)`` for guard
    predicates and ``("osm", "txn")`` for primitive probes.  *depth*
    bounds recursion into resolved model-level callees.
    """
    bindings: List[_Ref] = [_Ref("sym", role) for role in param_roles]
    return _analyze(fn, bindings, depth, active=set())


def _analyze(fn, bindings: List[_Ref], depth: int, active: Set[int]) -> Footprint:
    fn = inspect.unwrap(fn)
    self_ref: Optional[_Ref] = None
    if inspect.ismethod(fn):
        self_obj = fn.__self__
        self_ref = _classify_object(self_obj, f"shared:{type(self_obj).__name__}")
        fn = fn.__func__

    code = getattr(fn, "__code__", None)
    if code is None:
        name = getattr(fn, "__name__", repr(fn))
        if name in PURE_BUILTINS:
            return Footprint()
        fp = Footprint(analyzable=False, reason=f"no code object for {name!r}")
        fp.opaque.add(name)
        return fp

    if id(code) in active:
        return Footprint()  # recursive cycle: already being accounted
    active = active | {id(code)}

    node = _function_node(fn)
    if node is None:
        return _bytecode_footprint(fn)

    env_closure: Dict[str, Any] = {}
    for free, cell in zip(code.co_freevars, fn.__closure__ or ()):
        try:
            env_closure[free] = cell.cell_contents
        except ValueError:
            pass
    env_globals = getattr(fn, "__globals__", {})

    params = [a.arg for a in node.args.args]
    param_map: Dict[str, _Ref] = {}
    if self_ref is not None and params:
        param_map[params[0]] = self_ref
        params = params[1:]
    for name, ref in zip(params, bindings):
        param_map[name] = ref
    for name in params[len(bindings):]:
        param_map[name] = _Ref("sym", name)
    for extra in (node.args.kwonlyargs or []):
        param_map[extra.arg] = _Ref("sym", extra.arg)

    visitor = _EffectVisitor(
        fn=fn,
        param_map=param_map,
        closure=env_closure,
        fn_globals=env_globals,
        depth=depth,
        active=active,
    )
    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        visitor.visit(stmt)
    return visitor.fp


def _function_node(fn):
    """The ``ast`` node of *fn*'s definition, or None when unparseable."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError, ValueError):
        return None
    name = fn.__name__
    lambdas = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name:
            return node
        if isinstance(node, ast.Lambda):
            lambdas.append(node)
    if name == "<lambda>":
        code = fn.__code__
        want = tuple(code.co_varnames[: code.co_argcount])
        matches = [
            lam for lam in lambdas
            if tuple(a.arg for a in lam.args.args) == want
        ]
        if len(matches) == 1:
            return matches[0]
        # several same-signature lambdas on one source line: match by
        # column offset against the code object when possible
        for lam in matches:
            if lam.lineno == 1 and lam.col_offset == code.co_firstlineno:
                return lam  # pragma: no cover - heuristic
    return None


def _classify_object(obj: Any, path_hint: str) -> _Ref:
    """Classify a concrete environment value."""
    if isinstance(obj, _CONST_TYPES):
        return _Ref("const", path_hint, obj)
    if isinstance(obj, tuple) and all(isinstance(x, _CONST_TYPES) for x in obj):
        return _Ref("const", path_hint, obj)
    if inspect.ismodule(obj):
        return _Ref("module", obj.__name__, obj)
    if callable(obj) and not isinstance(obj, type) and (
        inspect.isfunction(obj) or inspect.ismethod(obj) or inspect.isbuiltin(obj)
    ):
        qual = getattr(obj, "__qualname__", getattr(obj, "__name__", path_hint))
        return _Ref("func", qual, obj)
    if isinstance(obj, type):
        return _Ref("func", getattr(obj, "__qualname__", path_hint), obj)
    return _Ref("obj", path_hint, obj)


class _EffectVisitor(ast.NodeVisitor):
    def __init__(self, fn, param_map, closure, fn_globals, depth, active):
        self.fn = fn
        self.module = getattr(fn, "__module__", "?") or "?"
        self.param_map = param_map
        self.closure = closure
        self.fn_globals = fn_globals
        self.depth = depth
        self.active = active
        self.locals: Dict[str, _Ref] = dict(param_map)
        self.global_decls: Set[str] = set()
        self.fp = Footprint()

    # -- name resolution ---------------------------------------------------

    def _lookup(self, name: str) -> _Ref:
        if name in self.locals:
            return self.locals[name]
        if name in self.closure:
            obj = self.closure[name]
            return _classify_object(obj, f"shared:{type(obj).__name__}")
        if name in self.fn_globals:
            obj = self.fn_globals[name]
            ref = _classify_object(obj, f"global:{self.module}.{name}")
            if ref.kind == "obj":
                # a mutable module-global: attribute traffic through it is
                # global-state traffic, keep the global: root
                ref.path = f"global:{self.module}.{name}"
            return ref
        builtins = self.fn_globals.get("__builtins__", __builtins__)
        if not isinstance(builtins, dict):
            builtins = vars(builtins)
        if name in builtins:
            if name in NONDET_BUILTINS:
                return _Ref("func", f"builtin:{name}", builtins[name])
            return _classify_object(builtins[name], f"builtin:{name}")
        return _UNKNOWN

    def _resolve(self, node: ast.AST) -> _Ref:
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            attr = node.attr
            if base.kind == "sym":
                return _Ref("sym", f"{base.path}.{attr}")
            if base.kind == "objattr":
                return _Ref("objattr", f"{base.path}.{attr}")
            if base.kind == "obj":
                try:
                    raw = inspect.getattr_static(base.obj, attr)
                except AttributeError:
                    return _Ref("objattr", f"{base.path}.{attr}")
                if inspect.isfunction(raw):
                    import types

                    bound = types.MethodType(raw, base.obj)
                    return _Ref("func", f"{base.path}.{attr}", bound)
                if isinstance(raw, (staticmethod, classmethod)):
                    return _Ref("func", f"{base.path}.{attr}", raw.__func__)
                if isinstance(raw, property):
                    return _Ref("objattr", f"{base.path}.{attr}")
                ref = _classify_object(raw, f"{base.path}.{attr}")
                if ref.kind == "obj":
                    ref.path = f"{base.path}.{attr}"
                return ref
            if base.kind == "module":
                obj = getattr(base.obj, attr, None)
                root = base.path.split(".")[0]
                if root in NONDET_MODULES:
                    return _Ref("func", f"{base.path}.{attr}", obj) if callable(obj) \
                        else _Ref("objattr", f"nondet:{base.path}.{attr}")
                if obj is None:
                    return _Ref("objattr", f"global:{base.path}.{attr}")
                ref = _classify_object(obj, f"global:{base.path}.{attr}")
                if ref.kind == "obj":
                    ref.path = f"global:{base.path}.{attr}"
                return ref
            if base.kind == "func":
                return _Ref("unknown", f"{base.path}.{attr}")
            if base.kind == "const":
                return _Ref("const", f"{base.path}.{attr}", None)
            if base.kind == "local":
                return _Ref("local", f"{base.path}.{attr}")
            return _Ref("unknown", f"{base.path}.{attr}" if base.path else "")
        if isinstance(node, ast.Subscript):
            base = self._resolve(node.value)
            if base.kind in ("sym", "obj", "objattr"):
                kind = "sym" if base.kind == "sym" else "objattr"
                return _Ref(kind, f"{base.path}[]")
            return _UNKNOWN
        if isinstance(node, ast.Call):
            return _Ref("local", "<call-result>")
        if isinstance(node, (ast.Constant, ast.JoinedStr)):
            return _Ref("const", "<literal>")
        if isinstance(node, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
            return _Ref("local", "<literal>")
        if isinstance(node, ast.IfExp):
            then = self._resolve(node.body)
            other = self._resolve(node.orelse)
            if then.kind == other.kind == "sym":
                return then  # lossy: either branch, same treatment
            return _UNKNOWN
        if isinstance(node, ast.BoolOp):
            return _UNKNOWN
        return _UNKNOWN

    # -- reads -------------------------------------------------------------

    def _record_read(self, ref: _Ref) -> None:
        if ref.kind in ("sym", "objattr"):
            if ref.path.startswith("nondet:"):
                self.fp.nondet.add(ref.path[len("nondet:"):])
            else:
                self.fp.reads.add(ref.path)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            ref = self._lookup(node.id)
            self._record_read(ref)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not isinstance(node.ctx, ast.Load):
            self.generic_visit(node)
            return
        ref = self._resolve(node)
        if ref.kind == "unknown":
            # e.g. foo().bar — resolution lost the receiver; still visit
            # the receiver expression for its own effects
            self.generic_visit(node)
            return
        if ref.kind == "obj" and ref.path.startswith(("shared:", "global:")):
            self.fp.reads.add(ref.path)
        self._record_read(ref)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load):
            ref = self._resolve(node)
            self._record_read(ref)
            self.visit(node.slice)
            # record the container read too (osm.token_buffer[x] reads both)
            base = self._resolve(node.value)
            self._record_read(base)
            if isinstance(node.value, (ast.Call, ast.Subscript)):
                self.visit(node.value)
        else:
            self.generic_visit(node)

    # -- writes ------------------------------------------------------------

    def _record_write(self, target: ast.AST, rhs_ref: Optional[_Ref]) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.global_decls:
                self.fp.writes.add(f"global:{self.module}.{name}")
                return
            if rhs_ref is not None and rhs_ref.kind in (
                "sym", "obj", "objattr", "module", "func", "const"
            ):
                self.locals[name] = rhs_ref
            else:
                self.locals[name] = _Ref("local", name)
            return
        if isinstance(target, ast.Attribute):
            base = self._resolve(target.value)
            attr = target.attr
            if base.kind in ("sym", "objattr"):
                self.fp.writes.add(f"{base.path}.{attr}")
            elif base.kind == "obj":
                self.fp.writes.add(f"{base.path}.{attr}")
            elif base.kind == "module":
                self.fp.writes.add(f"global:{base.path}.{attr}")
            elif base.kind == "local":
                pass  # mutation of a locally-created object: invisible
            else:
                self.fp.writes.add(f"?.{attr}")
            return
        if isinstance(target, ast.Subscript):
            base = self._resolve(target.value)
            if base.kind in ("sym", "objattr", "obj"):
                self.fp.writes.add(f"{base.path}[]")
            elif base.kind == "local":
                pass
            else:
                self.fp.writes.add("?[]")
            self.visit(target.slice)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write(elt, None)
            return
        if isinstance(target, ast.Starred):
            self._record_write(target.value, None)

    def visit_Assign(self, node: ast.Assign) -> None:
        rhs_ref = None
        if isinstance(node.value, (ast.Name, ast.Attribute, ast.Subscript)):
            rhs_ref = self._resolve(node.value)
        self.visit(node.value)
        for target in node.targets:
            self._record_write(target, rhs_ref)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            rhs_ref = None
            if isinstance(node.value, (ast.Name, ast.Attribute, ast.Subscript)):
                rhs_ref = self._resolve(node.value)
            self.visit(node.value)
            self._record_write(node.target, rhs_ref)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        # an augmented target is both read and written
        if isinstance(node.target, (ast.Attribute, ast.Subscript)):
            ref = self._resolve(node.target)
            self._record_read(ref)
        self._record_write(node.target, None)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write(target, None)

    def visit_Global(self, node: ast.Global) -> None:
        self.global_decls.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        for name in node.names:
            self.fp.writes.add(f"shared:nonlocal.{name}")

    # -- loops / comprehensions -------------------------------------------

    def _bind_loop_target(self, target: ast.AST, iter_node: ast.AST) -> None:
        iter_ref = self._resolve(iter_node)
        if iter_ref.kind in ("sym", "objattr", "obj") and iter_ref.path:
            elem_kind = "sym" if iter_ref.kind == "sym" else "objattr"
            elem = _Ref(elem_kind, f"{iter_ref.path}[]")
        else:
            elem = None
        names = []
        stack = [target]
        while stack:
            t = stack.pop()
            if isinstance(t, ast.Name):
                names.append(t.id)
            elif isinstance(t, (ast.Tuple, ast.List)):
                stack.extend(t.elts)
            elif isinstance(t, ast.Starred):
                stack.append(t.value)
        for name in names:
            self.locals[name] = elem if elem is not None else _Ref("local", name)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._record_read(self._resolve(node.iter))
        self._bind_loop_target(node.target, node.iter)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self.visit(gen.iter)
            self._record_read(self._resolve(gen.iter))
            self._bind_loop_target(gen.target, gen.iter)
            for cond in gen.ifs:
                self.visit(cond)

    def visit_ListComp(self, node) -> None:
        self.visit_comprehension_generators(node.generators)
        self.visit(node.elt)

    def visit_SetComp(self, node) -> None:
        self.visit_comprehension_generators(node.generators)
        self.visit(node.elt)

    def visit_GeneratorExp(self, node) -> None:
        self.visit_comprehension_generators(node.generators)
        self.visit(node.elt)

    def visit_DictComp(self, node) -> None:
        self.visit_comprehension_generators(node.generators)
        self.visit(node.key)
        self.visit(node.value)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # a nested lambda's body executes later in the same environment:
        # analyze it inline with its params as opaque locals
        saved = dict(self.locals)
        for a in node.args.args:
            self.locals[a.arg] = _Ref("local", a.arg)
        self.visit(node.body)
        self.locals = saved

    def visit_FunctionDef(self, node) -> None:
        pass  # nested defs: effects happen only if called (handled there)

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- imports / nondet --------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in NONDET_MODULES:
                self.fp.nondet.add(f"import:{alias.name}")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in NONDET_MODULES:
            self.fp.nondet.add(f"import:{node.module}")

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

        func = node.func
        if isinstance(func, ast.Attribute):
            self._dispatch_method_call(func, node)
            return
        ref = self._resolve(func)
        self._dispatch_resolved_call(ref, node)

    def _dispatch_method_call(self, func: ast.Attribute, node: ast.Call) -> None:
        base = self._resolve(func.value)
        name = func.attr
        if name == "notify":
            self.fp.notifies = True
            self.fp.calls.add(f"{base.path}.notify" if base.path else "notify")
            return
        if base.kind in ("sym", "objattr"):
            receiver = base.path
            self._record_read(base)
            root = receiver.split(".")[0].split("[")[0]
            if name in MUTATOR_METHODS:
                self.fp.writes.add(receiver)
            elif root == "osm" and name == "note_blocked_on":
                self.fp.writes.add("osm.blocked_on")
            elif root == "txn" and name in TXN_METHODS:
                self.fp.writes.add("txn")
            elif root == "osm" and name in OSM_PURE_METHODS:
                pass
            elif name in PURE_METHODS:
                pass
            else:
                # soundness caveat: unresolvable method on a symbolic
                # receiver is assumed read-only (see module docstring)
                self.fp.calls.add(f"{receiver}.{name}")
            return
        if base.kind == "obj":
            # concrete receiver (closure object, module global): classify
            # by method name first — builtin container methods have no
            # code object to recurse into
            if name in MUTATOR_METHODS:
                self.fp.writes.add(base.path)
                return
            if name in PURE_METHODS:
                if base.path.startswith(("shared:", "global:")):
                    self.fp.reads.add(base.path)
                return
        # resolvable receiver: fall through to the resolved-call path
        ref = self._resolve(func)
        self._dispatch_resolved_call(ref, node, receiver=base)

    def _dispatch_resolved_call(
        self, ref: _Ref, node: ast.Call, receiver: Optional[_Ref] = None
    ) -> None:
        if ref.kind == "func":
            obj = ref.obj
            name = getattr(obj, "__name__", ref.path)
            module = getattr(obj, "__module__", "") or ""
            if ref.path.startswith("builtin:") or module == "builtins":
                if name in NONDET_BUILTINS:
                    self.fp.nondet.add(name)
                elif name in PURE_BUILTINS:
                    pass
                elif name in MUTATOR_METHODS and receiver is not None:
                    self.fp.writes.add(receiver.path)
                elif name in PURE_METHODS:
                    pass
                else:
                    self.fp.opaque.add(name)
                return
            # C-implemented module members (random.random, time.time)
            # carry no __module__; the resolved path still names it
            if (module.split(".")[0] in NONDET_MODULES
                    or ref.path.split(".")[0] in NONDET_MODULES):
                self.fp.nondet.add(ref.path if not module else f"{module}.{name}")
                return
            if isinstance(obj, type):
                # class instantiation: assumed to build a fresh object
                self.fp.calls.add(ref.path)
                return
            if module.startswith(TRUSTED_MODULE_PREFIX):
                # trusted to honour the probe protocol; record the call
                self.fp.calls.add(ref.path)
                if name == "notify":
                    self.fp.notifies = True
                return
            target = inspect.unwrap(obj) if not inspect.ismethod(obj) else obj
            if self.depth > 0 and getattr(
                inspect.unwrap(obj), "__code__", None
            ) is not None:
                self.fp.calls.add(ref.path)
                sub = self._analyze_callee(obj, node)
                self.fp.merge(sub)
                return
            if getattr(target, "__code__", None) is None and name in PURE_METHODS:
                return
            self.fp.opaque.add(ref.path)
            return
        if ref.kind == "module":
            return
        if ref.kind in ("obj", "objattr", "unknown", "local"):
            label = ref.path or "<dynamic>"
            self.fp.opaque.add(label)
            return
        if ref.kind == "const":
            return

    def _analyze_callee(self, obj, node: ast.Call) -> Footprint:
        """Recurse into a resolved model-level callee, mapping its
        parameters onto the caller's argument paths."""
        bindings: List[_Ref] = []
        for arg in node.args:
            ref = self._resolve(arg)
            if ref.kind in ("sym", "objattr"):
                bindings.append(ref)
            elif ref.kind == "obj":
                bindings.append(ref)
            else:
                bindings.append(_Ref("local", "<arg>"))
        try:
            return _analyze(obj, bindings, self.depth - 1, self.active)
        except RecursionError:  # pragma: no cover - defensive
            fp = Footprint()
            fp.opaque.add(getattr(obj, "__qualname__", repr(obj)))
            return fp


def _bytecode_footprint(fn) -> Footprint:
    """Coarse :mod:`dis`-based fallback when no AST is recoverable.

    Receivers are unknown at this level, so attribute stores surface as
    ``?.attr`` writes and any mutator-named method load is treated as a
    potential write — imprecise but conservative in the direction the
    rules care about.
    """
    fp = Footprint(via_bytecode=True)
    code = getattr(fn, "__code__", None)
    if code is None:
        fp.analyzable = False
        fp.reason = "no code object"
        return fp
    module = getattr(fn, "__module__", "?") or "?"
    stack = [code]
    while stack:
        c = stack.pop()
        for const in c.co_consts:
            if hasattr(const, "co_code"):
                stack.append(const)
        for ins in dis.get_instructions(c):
            op = ins.opname
            if op == "STORE_ATTR":
                fp.writes.add(f"?.{ins.argval}")
            elif op in ("STORE_GLOBAL", "DELETE_GLOBAL"):
                fp.writes.add(f"global:{module}.{ins.argval}")
            elif op in ("STORE_SUBSCR", "DELETE_SUBSCR"):
                fp.writes.add("?[]")
            elif op in ("LOAD_GLOBAL", "LOAD_NAME"):
                name = ins.argval
                if name in NONDET_MODULES or name in NONDET_BUILTINS:
                    fp.nondet.add(name)
            elif op == "IMPORT_NAME":
                if str(ins.argval).split(".")[0] in NONDET_MODULES:
                    fp.nondet.add(f"import:{ins.argval}")
            elif op in ("LOAD_METHOD", "LOAD_ATTR"):
                name = ins.argval
                if name in MUTATOR_METHODS:
                    fp.writes.add(f"?.{name}")
                elif name == "notify":
                    fp.notifies = True
                else:
                    fp.reads.add(f"?.{name}")
    return fp
